"""Golden-report regression: every figure/table artefact is byte-pinned.

``tests/golden/report_digests.json`` stores the SHA-256 of the rendered text
report and of every exported CSV for a small fixed-seed campaign.  Any byte
drift — a reordered row, a changed float format, a semantic change to a
scanner — fails here before it can silently change the reproduced evaluation.

Regenerate (after reviewing the change is intentional!) with:

    PYTHONPATH=src python scripts/regenerate_golden.py
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "report_digests.json")
SCRIPT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "scripts", "regenerate_golden.py"
)


def _load_regenerator():
    spec = importlib.util.spec_from_file_location("regenerate_golden", SCRIPT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def regenerated(golden):
    module = _load_regenerator()
    return module.compute_golden_digests(golden["campaign"])


class TestGoldenReport:
    def test_every_pinned_artefact_is_byte_identical(self, golden, regenerated):
        drifted = {
            name: (digest, regenerated.get(name))
            for name, digest in golden["digests"].items()
            if regenerated.get(name) != digest
        }
        assert not drifted, (
            "golden artefacts drifted (review, then regenerate with "
            "'PYTHONPATH=src python scripts/regenerate_golden.py'): "
            f"{sorted(drifted)}"
        )

    def test_no_unpinned_artefacts_appear(self, golden, regenerated):
        extra = set(regenerated) - set(golden["digests"])
        assert not extra, (
            "new exported artefacts are not golden-pinned (regenerate with "
            "'PYTHONPATH=src python scripts/regenerate_golden.py'): "
            f"{sorted(extra)}"
        )

    def test_golden_set_covers_the_full_evaluation(self, golden):
        names = set(golden["digests"])
        assert "evaluation.txt" in names
        # One artefact per report section (CDF sections export several files).
        for prefix in (
            "funnel", "figure02b", "figure03", "figure04", "figure05", "figure06",
            "figure07a", "figure07b", "figure08", "figure09", "figure11",
            "figure12", "figure13", "figure14", "table01", "table02", "table03",
            "compression", "meta_prefix",
        ):
            assert any(name.startswith(prefix) for name in names), prefix
