"""Unit tests for core limits, classification helpers, and amplification math."""

import pytest

from repro.core import (
    AMPLIFICATION_LIMIT_HISTORY,
    ANTI_AMPLIFICATION_FACTOR,
    BROWSER_PROFILES,
    HandshakeClass,
    amplification_factor,
    amplification_limit,
    classify_flight,
    exceeds_limit,
    summarize_amplification,
)
from repro.core.limits import COMMON_AMPLIFICATION_LIMITS, LARGER_COMMON_LIMIT, MIN_INITIAL_SIZE


class TestLimits:
    def test_factor_and_minimum(self):
        assert ANTI_AMPLIFICATION_FACTOR == 3
        assert MIN_INITIAL_SIZE == 1200

    def test_amplification_limit(self):
        assert amplification_limit(1200) == 3600
        assert amplification_limit(1357) == 4071
        with pytest.raises(ValueError):
            amplification_limit(-1)

    def test_common_limits_match_browser_initials(self):
        assert set(COMMON_AMPLIFICATION_LIMITS) == {3750, 4071}
        assert LARGER_COMMON_LIMIT == 4071

    def test_browser_profiles_match_table1(self):
        assert BROWSER_PROFILES["firefox"].initial_size == 1357
        assert BROWSER_PROFILES["chromium"].initial_size == 1250
        assert BROWSER_PROFILES["safari"].initial_size is None
        assert not BROWSER_PROFILES["safari"].supports_quic
        assert BROWSER_PROFILES["chromium"].amplification_limit == 3750
        assert BROWSER_PROFILES["firefox"].compression_algorithms == ()

    def test_draft_history_ends_with_rfc9000_byte_limit(self):
        assert len(AMPLIFICATION_LIMIT_HISTORY) == 5
        assert AMPLIFICATION_LIMIT_HISTORY[-1].byte_limited
        assert "three times" in AMPLIFICATION_LIMIT_HISTORY[-1].rule
        assert not AMPLIFICATION_LIMIT_HISTORY[0].byte_limited


class TestClassifyFlight:
    def test_retry_takes_precedence(self):
        assert classify_flight(1200, 10_000, 2, used_retry=True) is HandshakeClass.RETRY

    def test_multi_rtt_when_extra_round_trips(self):
        assert classify_flight(1200, 3000, 2, used_retry=False) is HandshakeClass.MULTI_RTT

    def test_amplification_when_limit_exceeded_in_one_rtt(self):
        assert classify_flight(1200, 3601, 1, used_retry=False) is HandshakeClass.AMPLIFICATION

    def test_one_rtt_when_compliant(self):
        assert classify_flight(1200, 3600, 1, used_retry=False) is HandshakeClass.ONE_RTT

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            classify_flight(0, 100, 1, False)
        with pytest.raises(ValueError):
            classify_flight(1200, 100, 0, False)

    def test_class_properties(self):
        assert HandshakeClass.ONE_RTT.completes_in_one_rtt
        assert HandshakeClass.AMPLIFICATION.completes_in_one_rtt
        assert not HandshakeClass.MULTI_RTT.completes_in_one_rtt
        assert HandshakeClass.MULTI_RTT.is_rfc_compliant
        assert not HandshakeClass.AMPLIFICATION.is_rfc_compliant


class TestAmplificationMath:
    def test_factor(self):
        assert amplification_factor(4086, 1362) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            amplification_factor(100, 0)
        with pytest.raises(ValueError):
            amplification_factor(-1, 100)

    def test_exceeds_limit(self):
        assert not exceeds_limit(3600, 1200)
        assert exceeds_limit(3601, 1200)

    def test_summary_statistics(self):
        report = summarize_amplification([1.0, 2.0, 3.0, 4.0, 10.0])
        assert report.count == 5
        assert report.minimum == 1.0
        assert report.maximum == 10.0
        assert report.median == 3.0
        assert report.share_exceeding_limit == pytest.approx(2 / 5)
        assert set(report.as_dict()) == {
            "count", "min", "median", "p90", "p99", "max", "share_exceeding_limit",
        }

    def test_summary_of_empty_input(self):
        report = summarize_amplification([])
        assert report.count == 0
        assert report.maximum == 0.0
