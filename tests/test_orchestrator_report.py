"""Tests for the campaign orchestrator and the full evaluation report."""

import pytest

from repro.analysis.report import build_report, class_shares
from repro.quic.handshake import HandshakeClass
from repro.scanners import MeasurementCampaign
from repro.webpki import PopulationConfig, generate_population


class TestCampaignResults:
    def test_results_are_internally_consistent(self, campaign_results):
        results = campaign_results
        quic_count = len(results.quic_deployments())
        assert len(results.handshakes) == quic_count
        assert len(results.quic_certificates) == quic_count
        assert len(results.compression) == quic_count
        assert results.sweep is not None
        assert len(results.meta_probe_before) == 256
        assert len(results.meta_probe_after) == 256
        assert results.analysis_initial_size == 1362

    def test_all_quic_handshakes_reachable_at_default_size(self, campaign_results):
        # At 1362 bytes, only heavily tunnelled services could drop out; the
        # overwhelming majority must respond.
        reachable = len(campaign_results.reachable_handshakes())
        assert reachable / len(campaign_results.handshakes) > 0.95

    def test_provider_lookup(self, campaign_results):
        deployment = campaign_results.quic_deployments()[0]
        assert campaign_results.provider_of(deployment.domain) == deployment.provider
        assert campaign_results.provider_of("definitely-not-scanned.example") is None

    def test_class_shares_sum_to_one(self, campaign_results):
        shares = class_shares(campaign_results)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[HandshakeClass.AMPLIFICATION] > shares[HandshakeClass.ONE_RTT]

    def test_campaign_without_sweep(self):
        population = generate_population(PopulationConfig(size=400, seed=5))
        results = MeasurementCampaign(population=population, run_sweep=False).run()
        assert results.sweep is None
        assert len(results.handshakes) == len(results.quic_deployments())


class TestEvaluationReport:
    def test_report_contains_every_experiment(self, campaign_results):
        report = build_report(campaign_results)
        expected_sections = {
            "funnel", "figure02b", "figure03", "table01", "figure04", "figure05",
            "figure06", "figure07a", "figure07b", "figure08", "table02", "compression",
            "figure09", "meta_prefix", "figure11", "figure12", "figure13", "figure14",
            "table03",
        }
        assert expected_sections <= set(report.keys())
        assert "## figure06" in report.text
        assert "## table03" in report.text
        assert len(report.text) > 4000

    def test_report_without_sweep_omits_figure03(self, campaign_results):
        report = build_report(campaign_results, include_sweep=False)
        assert "figure03" not in report.keys()

    def test_report_sections_accessible_by_key(self, campaign_results):
        report = build_report(campaign_results)
        assert report["figure06"].quic_median < report["figure06"].https_only_median
