"""Unit tests for RFC 8879 certificate compression."""

import pytest

from repro.tls.cert_compression import (
    CertificateCompressionAlgorithm,
    CompressionResult,
    chain_payload,
    compress_certificate_chain,
    compression_ratio,
)


class TestAlgorithmRegistry:
    def test_code_points_match_rfc8879(self):
        assert CertificateCompressionAlgorithm.ZLIB.code == 1
        assert CertificateCompressionAlgorithm.BROTLI.code == 2
        assert CertificateCompressionAlgorithm.ZSTD.code == 3

    def test_from_code_roundtrip(self):
        for algorithm in CertificateCompressionAlgorithm:
            assert CertificateCompressionAlgorithm.from_code(algorithm.code) is algorithm

    def test_from_unknown_code(self):
        with pytest.raises(ValueError):
            CertificateCompressionAlgorithm.from_code(99)


class TestChainPayload:
    def test_framing_overhead_per_certificate(self, cloudflare_chain):
        ders = [c.der for c in cloudflare_chain]
        payload = chain_payload(ders)
        # 3-byte list length + per-entry 3-byte length and 2-byte extensions.
        assert len(payload) == sum(len(d) for d in ders) + 3 + 5 * len(ders)

    def test_empty_chain_payload(self):
        assert chain_payload([]) == b"\x00\x00\x00"


class TestCompression:
    def test_compression_reduces_size(self, lets_encrypt_long_chain):
        result = compress_certificate_chain([c.der for c in lets_encrypt_long_chain])
        assert result.compressed_size < result.uncompressed_size
        assert result.saved_bytes > 0

    def test_ratio_matches_paper_band(self, campaign_results):
        """Mean compression rate over many chains lands near the paper's 65-75 %."""
        chains = [
            d.delivered_chain
            for d in campaign_results.quic_deployments()[:150]
            if d.delivered_chain is not None
        ]
        ratios = [
            compress_certificate_chain([c.der for c in chain]).ratio for chain in chains
        ]
        mean_ratio = sum(ratios) / len(ratios)
        assert 0.55 <= mean_ratio <= 0.85

    def test_brotli_beats_plain_zlib_model(self, cloudflare_chain):
        ders = [c.der for c in cloudflare_chain]
        zlib_result = compress_certificate_chain(ders, CertificateCompressionAlgorithm.ZLIB)
        brotli_result = compress_certificate_chain(ders, CertificateCompressionAlgorithm.BROTLI)
        zstd_result = compress_certificate_chain(ders, CertificateCompressionAlgorithm.ZSTD)
        assert zlib_result.uncompressed_size == brotli_result.uncompressed_size
        # Calibrated ordering: zlib <= brotli <= zstd output sizes.
        assert zlib_result.compressed_size <= brotli_result.compressed_size <= zstd_result.compressed_size

    def test_fits_within(self, cloudflare_chain):
        result = compress_certificate_chain([c.der for c in cloudflare_chain])
        assert result.fits_within(result.compressed_size)
        assert not result.fits_within(result.compressed_size - 1)

    def test_ratio_of_empty_payload(self):
        result = CompressionResult(CertificateCompressionAlgorithm.ZLIB, 0, 0)
        assert result.ratio == 0.0

    def test_compression_ratio_helper(self, cloudflare_chain):
        result = compress_certificate_chain([c.der for c in cloudflare_chain])
        assert compression_ratio(result) == result.ratio
        assert 0.0 < result.ratio < 1.0
