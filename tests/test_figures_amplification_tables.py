"""Tests for the amplification figures (9, 11, Meta groups) and tables (1, 3), funnel, compression."""

import pytest

from repro.analysis.figures import (
    compression,
    figure09,
    figure11,
    funnel,
    meta_prefix,
    table01,
    table03,
)
from repro.tls.cert_compression import CertificateCompressionAlgorithm


class TestFigure09:
    def test_meta_amplifies_most(self, campaign_results):
        result = figure09.compute(campaign_results.backscatter)
        assert {"cloudflare", "google", "meta"} <= set(result.providers())
        assert result.maximum("meta") > 15
        assert result.maximum("meta") > result.maximum("cloudflare")
        assert result.maximum("cloudflare") < 12
        assert result.maximum("google") < 12
        for provider in ("cloudflare", "google", "meta"):
            assert result.share_exceeding(provider, 3.0) > 0.5
        assert "Figure 9" in result.render_text()


class TestMetaPrefix:
    def test_three_groups_with_expected_factors(self, campaign_results):
        result = meta_prefix.compute(campaign_results.meta_probe_before)
        assert result.probed_addresses == 256
        assert result.count(1) > 100
        assert result.count(2) > 10
        assert result.count(3) > 5
        assert 3.5 <= result.mean_amplification(2) <= 8      # paper: >5x
        assert result.mean_amplification(3) > 20             # paper: >28x
        assert "group 3" in result.render_text()


class TestFigure11:
    def test_disclosure_reduces_amplification(self, campaign_results):
        result = figure11.compute(
            campaign_results.meta_probe_before, campaign_results.meta_probe_after
        )
        assert result.before.max_amplification > 20
        assert result.after.max_amplification < 8
        assert result.improvement_factor > 3
        # After the fix the responses are homogeneous but still above the limit.
        assert result.after.share_above(3.0) > 0.9
        assert result.after.mean_amplification == pytest.approx(5.0, abs=1.5)
        assert len(result.before.per_octet) == len(result.after.per_octet)
        assert "Figure 11" in result.render_text()


class TestTable01:
    def test_browser_rows_and_support(self, campaign_results):
        result = table01.compute(campaign_results.compression)
        assert result.scanned_services == len(campaign_results.compression)
        brotli = CertificateCompressionAlgorithm.BROTLI
        assert result.support_shares[brotli] == pytest.approx(0.96, abs=0.05)
        assert result.mean_rates[brotli] == pytest.approx(0.73, abs=0.10)
        assert result.all_three_share < 0.02                       # paper: 0.05 %
        text = result.render_text()
        assert "Firefox" in text and "1357" in text and "no QUIC" in text


class TestTable03:
    def test_history_rows(self):
        result = table03.compute()
        assert len(result.rows) == 5
        assert result.byte_limited_since == "Draft 15 - 32"
        assert "Table 3" in result.render_text()


class TestFunnel:
    def test_funnel_shares(self, campaign_results):
        result = funnel.compute(
            campaign_results.https_scan.funnel, len(campaign_results.quic_deployments())
        )
        assert result.resolved_share == pytest.approx(0.976, abs=0.03)
        assert result.a_record_share == pytest.approx(0.866, abs=0.05)
        assert result.quic_share == pytest.approx(0.21, abs=0.05)
        assert len(result.as_table()) == 7
        assert "funnel" in result.render_text().lower()


class TestCompressionExperiment:
    def test_synthetic_and_wild_rates(self, campaign_results):
        result = compression.compute(
            campaign_results.quic_deployments(), campaign_results.compression
        )
        assert 0.55 <= result.median_synthetic_rate <= 0.80   # paper: ≈65 %
        assert result.share_below_limit_compressed >= 0.97    # paper: 99 %
        assert result.wild_mean_rate == pytest.approx(0.73, abs=0.10)
        assert result.wild_support_share > 0.9
        assert result.synthetic.share_below_limit_uncompressed < result.share_below_limit_compressed
        assert "Compression experiment" in result.render_text()
