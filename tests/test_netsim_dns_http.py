"""Unit tests for the simulated DNS resolver and HTTP origins."""

import pytest

from repro.netsim import DnsRcode, HttpOrigin, IPv4Address, RedirectKind, SimulatedResolver
from repro.netsim.http import target_domain


class TestResolver:
    def test_resolution_success(self):
        resolver = SimulatedResolver()
        resolver.add_record("example.org", IPv4Address.parse("93.184.216.34"))
        result = resolver.resolve("EXAMPLE.ORG")
        assert result.rcode is DnsRcode.NOERROR
        assert result.has_address
        assert str(result.address) == "93.184.216.34"

    def test_unknown_name_is_nxdomain(self):
        resolver = SimulatedResolver()
        assert resolver.resolve("missing.example").rcode is DnsRcode.NXDOMAIN

    def test_failures(self):
        resolver = SimulatedResolver()
        resolver.add_failure("broken.example", DnsRcode.SERVFAIL)
        resolver.add_failure("slow.example", DnsRcode.TIMEOUT)
        assert resolver.resolve("broken.example").rcode is DnsRcode.SERVFAIL
        assert not resolver.resolve("slow.example").has_address

    def test_no_a_record(self):
        resolver = SimulatedResolver()
        resolver.add_no_address("mx-only.example")
        result = resolver.resolve("mx-only.example")
        assert result.rcode is DnsRcode.NOERROR
        assert not result.has_address

    def test_add_failure_rejects_noerror(self):
        resolver = SimulatedResolver()
        with pytest.raises(ValueError):
            resolver.add_failure("x.example", DnsRcode.NOERROR)

    def test_query_counter(self):
        resolver = SimulatedResolver()
        resolver.resolve("a.example")
        resolver.resolve("b.example")
        assert resolver.queries_issued == 2


class TestHttpOrigin:
    def test_https_serves_chain(self, cloudflare_chain):
        origin = HttpOrigin(domain="site.example", https_chain=cloudflare_chain)
        response = origin.request(443)
        assert response is not None and response.is_secure
        assert response.tls_chain is cloudflare_chain

    def test_port80_redirects_to_https_by_default(self, cloudflare_chain):
        origin = HttpOrigin(domain="site.example", https_chain=cloudflare_chain)
        response = origin.request(80)
        assert response.is_redirect
        assert response.redirect_target == "https://site.example/"

    def test_explicit_redirect_to_other_domain(self, cloudflare_chain):
        origin = HttpOrigin(
            domain="old.example",
            https_chain=cloudflare_chain,
            redirect_kind=RedirectKind.HTTP_301,
            redirect_target="https://new.example/",
        )
        assert origin.request(443).redirect_target == "https://new.example/"

    def test_meta_refresh_redirect(self):
        origin = HttpOrigin(
            domain="meta.example",
            redirect_kind=RedirectKind.HTML_META_REFRESH,
            redirect_target="https://target.example/",
        )
        response = origin.request(80)
        assert not response.is_redirect
        assert response.redirect_target == "https://target.example/"

    def test_closed_ports_return_none(self):
        origin = HttpOrigin(domain="closed.example", port80_open=False, port443_open=False)
        assert origin.request(80) is None
        assert origin.request(443) is None

    def test_http_only_site(self):
        origin = HttpOrigin(domain="plain.example")
        assert origin.request(443) is None
        assert origin.request(80).status == 200

    def test_unknown_port_rejected(self):
        with pytest.raises(ValueError):
            HttpOrigin(domain="x.example").request(8080)


class TestTargetDomain:
    @pytest.mark.parametrize(
        "url,expected",
        [
            ("https://www.example.org/path", "www.example.org"),
            ("http://example.org", "example.org"),
            ("bare.example", "bare.example"),
            ("HTTPS://UPPER.example/", "upper.example"),
        ],
    )
    def test_extraction(self, url, expected):
        assert target_domain(url) == expected
