"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis.cdf import EmpiricalCdf
from repro.asn1 import decode_integer, decode_length, decode_oid, decode_tlv, encode_integer, encode_length, encode_oid
from repro.core.amplification import summarize_amplification
from repro.core.classification import classify_flight
from repro.core.guidance import InitialSizeCache
from repro.core.limits import MIN_INITIAL_SIZE, amplification_limit
from repro.quic.anti_amplification import AmplificationTracker
from repro.quic.connection_id import ConnectionId
from repro.quic.frames import CryptoFrame, PaddingFrame, split_crypto_stream
from repro.quic.packet import InitialPacket
from repro.quic.varint import decode_varint, encode_varint, varint_size
from repro.quic.coalescing import split_into_datagrams
from repro.quic.handshake import HandshakeClass


# ---------------------------------------------------------------------------
# Encoding round-trips
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**62 - 1))
def test_varint_roundtrip(value):
    encoded = encode_varint(value)
    decoded, consumed = decode_varint(encoded)
    assert decoded == value
    assert consumed == len(encoded) == varint_size(value)


@given(st.integers(min_value=0, max_value=2**62 - 1))
def test_varint_encoding_is_minimal_and_ordered_by_size(value):
    # A longer encoding never encodes a smaller range.
    size = varint_size(value)
    assert size in (1, 2, 4, 8)
    if size > 1:
        assert value >= {2: 1 << 6, 4: 1 << 14, 8: 1 << 30}[size]


@given(st.integers(min_value=-(2**256), max_value=2**256))
def test_der_integer_roundtrip(value):
    tag, content, consumed = decode_tlv(encode_integer(value))
    assert decode_integer(content) == value
    assert consumed == len(encode_integer(value))


@given(st.integers(min_value=0, max_value=2**31))
def test_der_length_roundtrip(length):
    encoded = encode_length(length)
    decoded, offset = decode_length(encoded, 0)
    assert decoded == length and offset == len(encoded)


@given(
    st.lists(st.integers(min_value=0, max_value=2**28), min_size=0, max_size=8).map(
        lambda arcs: "1.3." + ".".join(str(a) for a in arcs) if arcs else "1.3"
    )
)
def test_oid_roundtrip(dotted):
    _, content, _ = decode_tlv(encode_oid(dotted))
    assert decode_oid(content) == dotted


# ---------------------------------------------------------------------------
# QUIC invariants
# ---------------------------------------------------------------------------

@given(st.binary(min_size=0, max_size=6000), st.integers(min_value=1, max_value=1500))
def test_split_crypto_stream_is_lossless_and_contiguous(data, chunk_size):
    frames = split_crypto_stream(data, chunk_size)
    assert b"".join(f.data for f in frames) == data
    offset = 0
    for frame in frames:
        assert frame.offset == offset
        offset = frame.end_offset


@given(st.integers(min_value=1200, max_value=1472), st.binary(min_size=1, max_size=900))
def test_initial_padding_reaches_exact_target(target, payload):
    packet = InitialPacket(
        ConnectionId.generate("d", 8), ConnectionId.generate("s", 8), 0,
        (CryptoFrame(0, payload),),
    )
    padded = packet.with_padding_to(target)
    assert padded.size == max(target, packet.size)
    assert len(padded.encode()) == padded.size


@given(st.lists(st.integers(min_value=1, max_value=1300), min_size=1, max_size=25), st.booleans())
def test_datagram_splitting_preserves_bytes_and_respects_mtu(sizes, coalesce_enabled):
    packets = [
        InitialPacket(
            ConnectionId.generate("d", 8), ConnectionId.generate("s", 8), i,
            (CryptoFrame(0, bytes(size)),),
        )
        for i, size in enumerate(sizes)
    ]
    datagrams = split_into_datagrams(packets, mtu=1472, coalescing_enabled=coalesce_enabled)
    assert sum(d.size for d in datagrams) == sum(p.size for p in packets)
    assert all(d.size <= 1472 for d in datagrams)
    if not coalesce_enabled:
        assert len(datagrams) == len(packets)


@given(
    st.lists(
        st.tuples(st.sampled_from(["recv", "send"]), st.integers(min_value=0, max_value=5000)),
        max_size=60,
    )
)
def test_amplification_tracker_never_exceeds_limit_when_respected(events):
    """A sender that only sends what ``can_send`` allows never violates the limit."""
    tracker = AmplificationTracker()
    for kind, size in events:
        if kind == "recv":
            tracker.on_datagram_received(size)
        else:
            if tracker.can_send(size):
                tracker.on_datagram_sent(size)
    assert not tracker.violates_rfc_limit
    assert tracker.bytes_sent <= tracker.limit


@given(st.integers(min_value=1200, max_value=1472), st.integers(min_value=0, max_value=60000),
       st.integers(min_value=1, max_value=4), st.booleans())
def test_classification_is_total_and_consistent(initial, server_bytes, rtts, retry):
    handshake_class = classify_flight(initial, server_bytes, rtts, retry)
    assert isinstance(handshake_class, HandshakeClass)
    if retry:
        assert handshake_class is HandshakeClass.RETRY
    elif rtts == 1 and server_bytes <= amplification_limit(initial):
        assert handshake_class is HandshakeClass.ONE_RTT


# ---------------------------------------------------------------------------
# Analysis invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=300))
def test_cdf_is_monotone_and_bounded(values):
    cdf = EmpiricalCdf.from_values(values)
    assert cdf.probability_at(min(values) - 1) == 0.0
    assert cdf.probability_at(max(values)) == 1.0
    points = cdf.points(max_points=50)
    ys = [y for _, y in points]
    assert all(0 < y <= 1 for y in ys)
    assert ys == sorted(ys)
    assert min(values) <= cdf.median <= max(values)


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=200))
def test_amplification_summary_ordering(factors):
    report = summarize_amplification(factors)
    assert report.minimum <= report.median <= report.p90 <= report.p99 <= report.maximum
    assert 0.0 <= report.share_exceeding_limit <= 1.0
    assert report.count == len(factors)


@given(st.integers(min_value=0, max_value=40000), st.booleans())
def test_initial_size_cache_suggestions_are_valid(flight_bytes, achieved):
    cache = InitialSizeCache()
    entry = cache.record_handshake("server.example", flight_bytes, achieved)
    assert MIN_INITIAL_SIZE <= entry.suggested_initial_size <= 1472
    # The suggestion, if it fits below the MTU, gives the server enough budget.
    if entry.suggested_initial_size < 1472:
        assert 3 * entry.suggested_initial_size >= min(flight_bytes, 3 * 1472)


# ---------------------------------------------------------------------------
# Streaming reduction invariants
# ---------------------------------------------------------------------------

from functools import lru_cache

from repro.scanners.sharding import ShardTask, plan_shards, scan_shard
from repro.scanners.streaming import CampaignReducer, ReductionSpec, summarize_shard
from repro.webpki.population import PopulationConfig

_REDUCTION_SPEC = ReductionSpec(spoof_limit_per_provider=5)
_REDUCTION_SWEEP_SIZES = (1200, 1350, 1472)


@lru_cache(maxsize=1)
def _shard_summaries():
    """Six real shard summaries of a small campaign, computed once."""
    config = PopulationConfig(size=384, seed=13)
    summaries = []
    offset = 0
    for spec in plan_shards(config.size, 64):
        task = ShardTask(
            index=spec.index,
            population_config=config,
            start=spec.start,
            stop=spec.stop,
            run_sweep=True,
            sweep_local_selection=(offset, 7),
            sweep_initial_sizes=_REDUCTION_SWEEP_SIZES,
        )
        deployments = tuple(task.resolve_deployments())
        offset += sum(1 for d in deployments if d.category.value == "quic")
        scan = scan_shard(task, deployments=deployments)
        summaries.append(summarize_shard(task, deployments, scan, _REDUCTION_SPEC))
    return tuple(summaries)


def _fresh_reducer():
    return CampaignReducer(
        spec=_REDUCTION_SPEC, run_sweep=True, sweep_initial_sizes=_REDUCTION_SWEEP_SIZES
    )


@lru_cache(maxsize=1)
def _reference_reduction():
    reducer = _fresh_reducer()
    for summary in _shard_summaries():
        reducer.add(summary)
    return reducer.reduced_scan()


@settings(max_examples=25, deadline=None)
@given(st.permutations(range(6)))
def test_campaign_reduction_is_shard_order_insensitive(order):
    """Adding shard summaries in any order yields the identical reduction."""
    summaries = _shard_summaries()
    reducer = _fresh_reducer()
    for index in order:
        reducer.add(summaries[index])
    reduced = reducer.reduced_scan()
    reference = _reference_reduction()
    assert reduced == reference
    assert reduced.flight_cache == reference.flight_cache


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=5), max_size=5, unique=True),
    st.permutations(range(6)),
)
def test_campaign_reduction_merge_is_associative(cuts, order):
    """Partitioning shards into sub-reducers and merging them in any order
    equals reducing everything in one go (merge is associative and
    commutative), flight-cache counters included."""
    summaries = _shard_summaries()
    boundaries = [0] + sorted(cuts) + [6]
    groups = [
        [order[i] for i in range(start, stop)]
        for start, stop in zip(boundaries, boundaries[1:])
        if stop > start
    ]
    partial_reducers = []
    for group in groups:
        partial = _fresh_reducer()
        for index in group:
            partial.add(summaries[index])
        partial_reducers.append(partial)
    combined = partial_reducers[0]
    for partial in partial_reducers[1:]:
        combined.merge(partial)
    assert combined.reduced_scan() == _reference_reduction()


def test_campaign_reduction_rejects_duplicate_shards():
    import pytest

    summaries = _shard_summaries()
    reducer = _fresh_reducer()
    reducer.add(summaries[0])
    with pytest.raises(ValueError):
        reducer.add(summaries[0])


# ---------------------------------------------------------------------------
# Columnar scan kernel vs the object wire model
# ---------------------------------------------------------------------------
#
# The columnar backend (repro.scanners.columnar) re-derives every handshake
# observable as batch arithmetic instead of building packet/frame objects.
# These properties pin that arithmetic to the object model it mirrors, for
# randomized single-deployment inputs and for degenerate whole shards.

from dataclasses import replace

import pytest

from repro.quic.client import QuicClientConfig
from repro.quic.connection_id import ConnectionId
from repro.quic.frames import PaddingFrame
from repro.quic.handshake import simulate_handshake
from repro.quic.packet import HandshakePacket, InitialPacket
from repro.quic.profiles import BUILTIN_PROFILES
from repro.quic.server import FlightPlanCache
from repro.scanners import columnar
from repro.scanners.columnar import summarize_shard_columnar
from repro.tls.cert_compression import (
    CertificateCompressionAlgorithm,
    chain_payload,
    compressed_size_for_deflate,
    deflate_size,
)
from repro.webpki.deployment import ServiceCategory
from repro.webpki.population import generate_population
from repro.x509.ca import default_hierarchy

_CA_LABELS = tuple(sorted(default_hierarchy().profiles))
_SERVER_PROFILES = tuple(sorted(BUILTIN_PROFILES))
_COMPRESSION_ALGORITHMS = tuple(CertificateCompressionAlgorithm)


@lru_cache(maxsize=None)
def _issued_chain(ca_label, domain):
    return default_hierarchy().profiles[ca_label].issue(domain)


@settings(max_examples=200, deadline=None)
@given(
    payload=st.integers(min_value=1, max_value=4000),
    packet_number=st.integers(min_value=0, max_value=(1 << 30)),
)
def test_columnar_packet_arithmetic_matches_packet_objects(payload, packet_number):
    """_pn_len/_packet_size reproduce QuicPacket.size exactly — packet-number
    width and the varint width of the length field included."""
    client_cid = ConnectionId.generate("client")
    server_cid = ConnectionId.generate("server")
    frames = (PaddingFrame(payload),)
    pn_len = columnar._pn_len(packet_number)
    handshake = HandshakePacket(client_cid, server_cid, packet_number, frames)
    assert pn_len == handshake.packet_number_length
    assert (
        columnar._packet_size(columnar._HANDSHAKE_BASE, payload, pn_len)
        == handshake.size
    )
    initial = InitialPacket(client_cid, server_cid, packet_number, frames)
    assert (
        columnar._packet_size(columnar._INITIAL_BASE, payload, pn_len)
        == initial.size
    )


@settings(max_examples=25, deadline=None)
@given(
    ca=st.sampled_from(_CA_LABELS),
    algorithm=st.sampled_from(_COMPRESSION_ALGORITHMS),
)
def test_chain_columns_match_object_payload_sizes(ca, algorithm):
    """_ChainColumns' payload/deflate lengths equal the real encoded payload,
    and the split compression helpers equal CertificateCompressionAlgorithm's
    own compressed_size."""
    chain = _issued_chain(ca, "columns.example")
    columns = columnar._ChainColumns(chain)
    payload = chain_payload(cert.der for cert in chain.certificates)
    assert columns.payload_len == len(payload)
    assert columns.deflate_len == deflate_size(payload)
    assert compressed_size_for_deflate(
        algorithm, columns.deflate_len
    ) == algorithm.compressed_size(payload)


@settings(max_examples=80, deadline=None)
@given(
    ca=st.sampled_from(_CA_LABELS),
    server=st.sampled_from(_SERVER_PROFILES),
    initial_size=st.integers(min_value=1200, max_value=1472),
    offer=st.lists(
        st.sampled_from(_COMPRESSION_ALGORITHMS), unique=True, max_size=3
    ).map(tuple),
    domain=st.sampled_from(
        ("example.org", "cdn.a.test", "w" * 40 + ".retry-token-truncation.example")
    ),
)
def test_columnar_measure_matches_simulated_handshake(
    ca, server, initial_size, offer, domain
):
    """The fused _measure kernel equals a full object-model handshake for any
    (CA profile, server profile, Initial size, compression offer): class,
    first-RTT bytes, total bytes, TLS payload, QUIC overhead, round trips and
    the amplification ratio."""
    chain = _issued_chain(ca, domain)
    profile = BUILTIN_PROFILES[server]
    outcome = simulate_handshake(
        domain,
        chain,
        profile,
        QuicClientConfig(
            initial_datagram_size=initial_size, compression_algorithms=offer
        ),
    )
    trace = outcome.trace
    measured = columnar._measure(
        domain,
        profile,
        columnar._ChainColumns(chain),
        offer,
        initial_size,
        FlightPlanCache(),
    )
    assert measured == (
        outcome.handshake_class,
        trace.server_bytes_first_rtt,
        trace.server_bytes_total,
        trace.tls_payload_bytes,
        trace.quic_overhead_bytes,
        trace.round_trips,
    )
    assert measured[1] / initial_size == trace.first_rtt_amplification


@lru_cache(maxsize=1)
def _edge_shard_deployments():
    deployments = tuple(
        generate_population(PopulationConfig(size=420, seed=23)).deployments
    )
    # One fingerprint per protocol across the whole shard: every chain slot
    # points at a single shared chain object, so the columnar dedup index
    # collapses the shard to (at most) two distinct shapes with maximal
    # multiplicity — the degenerate opposite of the natural population.
    quic_donor = next(d.quic_chain for d in deployments if d.quic_chain is not None)
    https_donor = next(d.https_chain for d in deployments if d.https_chain is not None)
    one_fingerprint = tuple(
        replace(
            d,
            quic_chain=quic_donor if d.quic_chain is not None else None,
            https_chain=https_donor if d.https_chain is not None else None,
        )
        for d in deployments[:64]
    )
    # Every provider unique: the per-provider spoof-candidate cap and the
    # multiplicity index both degenerate to count 1 everywhere.
    providers_distinct = tuple(
        replace(d, provider=f"provider-{index}" if d.provider else None)
        for index, d in enumerate(deployments[:64])
    )
    return {
        "empty": (),
        "single-domain": deployments[:1],
        "all-non-quic": tuple(
            d for d in deployments if d.category is not ServiceCategory.QUIC
        )[:64],
        "all-spoof-target": tuple(
            d for d in deployments if d.supports_quic and d.provider
        )[:64],
        "one-fingerprint": one_fingerprint,
        "providers-distinct": providers_distinct,
    }


@pytest.mark.parametrize(
    "case",
    [
        "empty",
        "single-domain",
        "all-non-quic",
        "all-spoof-target",
        "one-fingerprint",
        "providers-distinct",
    ],
)
def test_edge_shards_identical_under_both_backends(case):
    """Degenerate shards summarise identically under both backends."""
    deployments = _edge_shard_deployments()[case]
    task = ShardTask(
        index=0,
        deployments=deployments,
        start=0,
        stop=len(deployments),
        run_sweep=True,
        sweep_local_selection=(0, 5),
    )
    scan = scan_shard(task, deployments=deployments)
    expected = summarize_shard(task, deployments, scan, _REDUCTION_SPEC)
    assert summarize_shard_columnar(task, deployments, _REDUCTION_SPEC) == expected
