"""Unit tests for IPv4 addressing."""

import pytest

from repro.netsim import IPv4Address, IPv4Prefix


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        for text in ("0.0.0.0", "10.1.2.3", "157.240.20.63", "255.255.255.255"):
            assert str(IPv4Address.parse(text)) == text

    def test_invalid_addresses_rejected(self):
        for text in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                IPv4Address.parse(text)
        with pytest.raises(ValueError):
            IPv4Address(-1)
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)

    def test_octets_and_host_octet(self):
        address = IPv4Address.parse("157.240.20.63")
        assert address.octets == (157, 240, 20, 63)
        assert address.host_octet == 63

    def test_addition(self):
        assert str(IPv4Address.parse("10.0.0.250") + 10) == "10.0.1.4"

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")


class TestIPv4Prefix:
    def test_parse_and_str(self):
        prefix = IPv4Prefix.parse("157.240.20.0/24")
        assert str(prefix) == "157.240.20.0/24"
        assert prefix.num_addresses == 256

    def test_host_bits_must_be_zero(self):
        with pytest.raises(ValueError):
            IPv4Prefix.parse("10.0.0.1/24")

    def test_contains(self):
        prefix = IPv4Prefix.parse("104.16.0.0/16")
        assert prefix.contains(IPv4Address.parse("104.16.200.7"))
        assert not prefix.contains(IPv4Address.parse("104.17.0.1"))

    def test_address_at_and_bounds(self):
        prefix = IPv4Prefix.parse("198.51.100.0/24")
        assert str(prefix.address_at(63)) == "198.51.100.63"
        with pytest.raises(ValueError):
            prefix.address_at(256)

    def test_iter_hosts_count(self):
        prefix = IPv4Prefix.parse("192.0.2.0/29")
        hosts = list(prefix.iter_hosts())
        assert len(hosts) == 8
        assert hosts[0] == prefix.network

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            IPv4Prefix(IPv4Address.parse("10.0.0.0"), 33)
