"""Tests for the evaluation export (text report + per-figure CSV files)."""

import csv
import os

import pytest

from repro.analysis.export import export_evaluation
from repro.analysis.report import build_report


@pytest.fixture(scope="module")
def exported(campaign_results, tmp_path_factory):
    directory = tmp_path_factory.mktemp("evaluation-export")
    report = build_report(campaign_results)
    return export_evaluation(campaign_results, str(directory), report)


class TestExport:
    def test_report_file_written(self, exported):
        assert os.path.exists(exported.report_path)
        with open(exported.report_path, encoding="utf-8") as handle:
            content = handle.read()
        assert "figure06" in content and "Table 2" in content

    def test_every_major_figure_has_a_csv(self, exported):
        for name in (
            "figure03", "figure04", "figure05", "figure06_quic", "figure06_https_only",
            "figure07a", "figure07b", "figure08", "figure09_meta", "figure11",
            "figure12", "figure13", "figure14", "meta_prefix", "compression",
            "table01", "table02", "table03", "funnel",
        ):
            assert name in exported.csv_paths, name
            assert os.path.exists(exported.csv_paths[name])
        assert exported.file_count == len(exported.csv_paths) + 1

    def test_csv_files_parse_and_have_rows(self, exported):
        for name, path in exported.csv_paths.items():
            with open(path, newline="", encoding="utf-8") as handle:
                rows = list(csv.reader(handle))
            assert len(rows) >= 2, f"{name} has no data rows"
            header, first_row = rows[0], rows[1]
            assert len(header) == len(first_row)

    def test_figure06_cdf_is_monotone_in_csv(self, exported):
        with open(exported.csv_paths["figure06_quic"], newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        probabilities = [float(row["cumulative_probability"]) for row in rows]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] == pytest.approx(1.0)

    def test_export_is_idempotent(self, campaign_results, tmp_path):
        first = export_evaluation(campaign_results, str(tmp_path))
        second = export_evaluation(campaign_results, str(tmp_path))
        assert first.csv_paths.keys() == second.csv_paths.keys()
