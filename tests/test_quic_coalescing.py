"""Unit tests for packet coalescing into UDP datagrams."""

import pytest

from repro.quic import ConnectionId, HandshakePacket, InitialPacket, UdpDatagram, coalesce, split_into_datagrams
from repro.quic.frames import AckFrame, CryptoFrame


def _packets(sizes, dcid=None, scid=None):
    dcid = dcid or ConnectionId.generate("d", 8)
    scid = scid or ConnectionId.generate("s", 8)
    packets = []
    for index, size in enumerate(sizes):
        packets.append(HandshakePacket(dcid, scid, index, (CryptoFrame(0, bytes(size)),)))
    return packets


class TestUdpDatagram:
    def test_requires_at_least_one_packet(self):
        with pytest.raises(ValueError):
            UdpDatagram(())

    def test_size_is_sum_of_packets(self):
        packets = _packets([100, 200])
        datagram = UdpDatagram(tuple(packets))
        assert datagram.size == sum(p.size for p in packets)
        assert datagram.is_coalesced
        assert len(datagram.encode()) == datagram.size

    def test_contains_initial_and_ack_eliciting(self):
        dcid, scid = ConnectionId.generate("d", 8), ConnectionId.generate("s", 8)
        initial = InitialPacket(dcid, scid, 0, (AckFrame(),))
        datagram = UdpDatagram((initial,))
        assert datagram.contains_initial
        assert not datagram.is_ack_eliciting


class TestCoalesce:
    def test_respects_mtu(self):
        packets = _packets([800, 800])
        with pytest.raises(ValueError):
            coalesce(packets, mtu=1400)
        datagram = coalesce(packets, mtu=2000)
        assert datagram.size <= 2000

    def test_split_with_coalescing_packs_greedily(self):
        packets = _packets([600, 600, 600])
        datagrams = split_into_datagrams(packets, mtu=1400, coalescing_enabled=True)
        assert len(datagrams) == 2
        assert datagrams[0].is_coalesced

    def test_split_without_coalescing_one_packet_per_datagram(self):
        packets = _packets([600, 600, 600])
        datagrams = split_into_datagrams(packets, mtu=1400, coalescing_enabled=False)
        assert len(datagrams) == 3
        assert all(not d.is_coalesced for d in datagrams)

    def test_all_bytes_preserved(self):
        packets = _packets([500, 900, 1300, 200])
        datagrams = split_into_datagrams(packets, mtu=1472)
        assert sum(d.size for d in datagrams) == sum(p.size for p in packets)

    def test_single_oversized_packet_rejected(self):
        packets = _packets([2000])
        with pytest.raises(ValueError):
            split_into_datagrams(packets, mtu=1472)
