"""Unit tests for QUIC variable-length integers."""

import pytest

from repro.quic import VarintError, decode_varint, encode_varint, varint_size


class TestVarintSize:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4), (2**30 - 1, 4), (2**30, 8), (2**62 - 1, 8)],
    )
    def test_boundaries(self, value, expected):
        assert varint_size(value) == expected

    def test_out_of_range(self):
        with pytest.raises(VarintError):
            varint_size(-1)
        with pytest.raises(VarintError):
            varint_size(2**62)


class TestVarintEncoding:
    def test_rfc9000_appendix_a_examples(self):
        # RFC 9000 Appendix A.1 sample encodings.
        assert encode_varint(151288809941952652) == bytes.fromhex("c2197c5eff14e88c")
        assert encode_varint(494878333) == bytes.fromhex("9d7f3e7d")
        assert encode_varint(15293) == bytes.fromhex("7bbd")
        assert encode_varint(37) == bytes.fromhex("25")

    @pytest.mark.parametrize("value", [0, 1, 63, 64, 300, 16383, 16384, 10**6, 2**30, 2**62 - 1])
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, consumed = decode_varint(encoded)
        assert decoded == value
        assert consumed == len(encoded) == varint_size(value)

    def test_decode_with_offset(self):
        data = b"\xff" + encode_varint(1200)
        value, offset = decode_varint(data, 1)
        assert value == 1200
        assert offset == len(data)

    def test_decode_truncated(self):
        with pytest.raises(VarintError):
            decode_varint(b"")
        with pytest.raises(VarintError):
            decode_varint(encode_varint(2**40)[:-2])
