"""Unit tests for the HTTPS certificate scanner."""

import pytest

from repro.netsim import HttpOrigin, IPv4Address, RedirectKind, SimulatedResolver
from repro.netsim.dns import DnsRcode
from repro.scanners import HttpsScanner
from repro.webpki.deployment import ServiceCategory


class TestHttpsScannerUnit:
    def _scanner(self, cloudflare_chain, lets_encrypt_short_chain):
        resolver = SimulatedResolver()
        resolver.add_record("secure.example", IPv4Address.parse("10.0.0.1"))
        resolver.add_record("redirecting.example", IPv4Address.parse("10.0.0.2"))
        resolver.add_record("target.example", IPv4Address.parse("10.0.0.3"))
        resolver.add_record("plain.example", IPv4Address.parse("10.0.0.4"))
        resolver.add_failure("broken.example", DnsRcode.SERVFAIL)
        origins = {
            "secure.example": HttpOrigin("secure.example", https_chain=cloudflare_chain),
            "redirecting.example": HttpOrigin(
                "redirecting.example",
                https_chain=cloudflare_chain,
                redirect_kind=RedirectKind.HTTP_301,
                redirect_target="https://target.example/",
            ),
            "target.example": HttpOrigin("target.example", https_chain=lets_encrypt_short_chain),
            "plain.example": HttpOrigin("plain.example"),
        }
        return HttpsScanner(resolver, origins)

    def test_collects_certificates_for_secure_names(self, cloudflare_chain, lets_encrypt_short_chain):
        scanner = self._scanner(cloudflare_chain, lets_encrypt_short_chain)
        result = scanner.scan([("secure.example", 1), ("plain.example", 2), ("broken.example", 3)])
        assert result.funnel.names_total == 3
        assert result.funnel.dns_servfail == 1
        assert result.funnel.names_with_certificates == 1
        assert len(result.records_for("secure.example")) == 1

    def test_follows_redirects_and_collects_both_chains(self, cloudflare_chain, lets_encrypt_short_chain):
        scanner = self._scanner(cloudflare_chain, lets_encrypt_short_chain)
        result = scanner.scan([("redirecting.example", 1)])
        records = result.records_for("redirecting.example")
        served = {record.served_domain for record in records}
        assert served == {"redirecting.example", "target.example"}
        assert any(record.via_redirect for record in records)
        assert result.funnel.unique_certificate_chains == 2

    def test_chains_by_requested_domain_prefers_direct_hit(
        self, cloudflare_chain, lets_encrypt_short_chain
    ):
        scanner = self._scanner(cloudflare_chain, lets_encrypt_short_chain)
        result = scanner.scan([("redirecting.example", 1)])
        chains = result.chains_by_requested_domain()
        assert chains["redirecting.example"].leaf.subject_common_name == "fixture-cf.example"

    def test_redirect_loops_terminate(self, cloudflare_chain, lets_encrypt_short_chain):
        resolver = SimulatedResolver()
        resolver.add_record("a.example", IPv4Address.parse("10.0.0.1"))
        resolver.add_record("b.example", IPv4Address.parse("10.0.0.2"))
        origins = {
            "a.example": HttpOrigin(
                "a.example", https_chain=cloudflare_chain,
                redirect_kind=RedirectKind.HTTP_302, redirect_target="https://b.example/",
            ),
            "b.example": HttpOrigin(
                "b.example", https_chain=lets_encrypt_short_chain,
                redirect_kind=RedirectKind.HTTP_302, redirect_target="https://a.example/",
            ),
        }
        result = HttpsScanner(resolver, origins).scan([("a.example", 1)])
        assert len(result.records_for("a.example")) == 2  # visited each once


class TestHttpsScannerOnPopulation:
    def test_funnel_matches_paper_shape(self, campaign_results):
        funnel = campaign_results.https_scan.funnel
        total = funnel.names_total
        assert funnel.dns_noerror / total == pytest.approx(0.976, abs=0.03)
        assert funnel.with_a_record / total == pytest.approx(0.866, abs=0.05)
        assert funnel.names_with_certificates / total == pytest.approx(0.80, abs=0.06)

    def test_certificates_collected_for_all_tls_deployments(self, campaign_results):
        population = campaign_results.population
        with_cert = {
            d.domain
            for d in population.deployments
            if d.category.has_certificate
        }
        collected = {record.requested_domain for record in campaign_results.https_scan.records}
        assert with_cert <= collected
