"""Unit tests for the UDP fabric and the telescope."""

import pytest

from repro.netsim import IPv4Address, IPv4Prefix, QuicServiceHost, Telescope, UdpNetwork
from repro.netsim.telescope import BackscatterPacket
from repro.quic.client import QuicClientConfig
from repro.quic.profiles import MVFST_LIKE, RFC_COMPLIANT


@pytest.fixture
def network(cloudflare_chain, lets_encrypt_long_chain):
    network = UdpNetwork()
    network.attach_host(
        QuicServiceHost(
            address=IPv4Address.parse("104.16.0.1"),
            domain="cf.example",
            chain=cloudflare_chain,
            profile=RFC_COMPLIANT,
        )
    )
    network.attach_host(
        QuicServiceHost(
            address=IPv4Address.parse("104.16.0.2"),
            domain="tunnelled.example",
            chain=lets_encrypt_long_chain,
            profile=RFC_COMPLIANT,
            encapsulation_overhead=48,
        )
    )
    return network


class TestQuicServiceHost:
    def test_max_acceptable_initial_without_tunnel(self, cloudflare_chain):
        host = QuicServiceHost(
            address=IPv4Address.parse("10.0.0.1"),
            domain="x.example",
            chain=cloudflare_chain,
            profile=RFC_COMPLIANT,
        )
        assert host.max_acceptable_initial() == 1472
        assert host.accepts_initial(1472)

    def test_tunnel_overhead_reduces_acceptable_initial(self, cloudflare_chain):
        host = QuicServiceHost(
            address=IPv4Address.parse("10.0.0.2"),
            domain="t.example",
            chain=cloudflare_chain,
            profile=RFC_COMPLIANT,
            encapsulation_overhead=48,
        )
        assert host.max_acceptable_initial() == 1424
        assert host.accepts_initial(1424)
        assert not host.accepts_initial(1425)


class TestUdpNetwork:
    def test_host_lookup_by_address_and_domain(self, network):
        assert network.host_at(IPv4Address.parse("104.16.0.1")).domain == "cf.example"
        assert network.host_for_domain("CF.EXAMPLE").domain == "cf.example"
        assert network.host_at(IPv4Address.parse("9.9.9.9")) is None
        assert len(network) == 2

    def test_hosts_in_prefix(self, network):
        prefix = IPv4Prefix.parse("104.16.0.0/24")
        assert len(network.hosts_in_prefix(prefix)) == 2

    def test_probe_unresponsive_address(self, network):
        result = network.probe_unvalidated(IPv4Address.parse("8.8.8.8"))
        assert not result.responded
        assert result.bytes_returned == 0

    def test_probe_responding_host(self, network):
        result = network.probe_unvalidated(IPv4Address.parse("104.16.0.1"))
        assert result.responded
        assert result.bytes_returned > 1000

    def test_probe_dropped_by_tunnel_mtu(self, network):
        large_client = QuicClientConfig(initial_datagram_size=1472)
        result = network.probe_unvalidated(IPv4Address.parse("104.16.0.2"), client=large_client)
        assert not result.responded
        small_client = QuicClientConfig(initial_datagram_size=1250)
        assert network.probe_unvalidated(IPv4Address.parse("104.16.0.2"), client=small_client).responded


class TestTelescope:
    def test_backscatter_recorded_only_for_telescope_prefix(self, network):
        telescope = Telescope("ucsd-like")
        prefix = IPv4Prefix.parse("198.51.100.0/24")
        network.attach_telescope(prefix, telescope)

        inside = prefix.address_at(10)
        outside = IPv4Address.parse("203.0.113.5")
        network.probe_unvalidated(IPv4Address.parse("104.16.0.1"), spoofed_source=inside)
        network.probe_unvalidated(IPv4Address.parse("104.16.0.1"), spoofed_source=outside)
        assert len(telescope) > 0
        assert all(prefix.contains(p.victim_address) for p in telescope.packets)

    def test_sessions_group_by_scid(self):
        telescope = Telescope()
        address = IPv4Address.parse("1.2.3.4")
        victim = IPv4Address.parse("198.51.100.9")
        for index, (scid, size, ts) in enumerate(
            [("a", 1000, 0.0), ("a", 2000, 3.0), ("b", 500, 1.0)]
        ):
            telescope.observe(
                BackscatterPacket(
                    server_address=address,
                    victim_address=victim,
                    domain="d.example",
                    source_connection_id=scid,
                    size=size,
                    timestamp=ts,
                )
            )
        sessions = {s.source_connection_id: s for s in telescope.sessions()}
        assert sessions["a"].total_bytes == 3000
        assert sessions["a"].packet_count == 2
        assert sessions["a"].duration_seconds == pytest.approx(3.0)
        assert sessions["b"].total_bytes == 500
        assert sessions["a"].amplification_factor(1000) == pytest.approx(3.0)

    def test_total_bytes_and_clear(self):
        telescope = Telescope()
        telescope.observe(
            BackscatterPacket(
                server_address=IPv4Address.parse("1.1.1.1"),
                victim_address=IPv4Address.parse("198.51.100.1"),
                domain="d.example",
                source_connection_id="x",
                size=1234,
                timestamp=0.0,
            )
        )
        assert telescope.total_bytes == 1234
        telescope.clear()
        assert len(telescope) == 0
