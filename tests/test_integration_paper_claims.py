"""End-to-end checks of the paper's headline claims against the reproduction.

Each test cites the claim from the paper (section / figure) and asserts that
the reproduced measurement lands in a band around it.  Bands are generous —
the substrate is a synthetic population, not the 2022 Internet — but tight
enough that a structural regression (broken amplification accounting, broken
coalescing, broken chain generation) breaks the test.
"""

import pytest

from repro.analysis.report import build_report, class_shares
from repro.quic.handshake import HandshakeClass


@pytest.fixture(scope="module")
def report(campaign_results):
    return build_report(campaign_results)


class TestSection41HandshakeClasses:
    def test_amplification_and_multi_rtt_dominate(self, campaign_results):
        """§4.1: 61 % amplification, 38 % multi-RTT at a 1362-byte Initial."""
        shares = class_shares(campaign_results)
        assert shares[HandshakeClass.AMPLIFICATION] == pytest.approx(0.61, abs=0.10)
        assert shares[HandshakeClass.MULTI_RTT] == pytest.approx(0.38, abs=0.10)

    def test_one_rtt_and_retry_are_rare(self, campaign_results):
        """§4.1: 0.75 % 1-RTT and 0.07 % Retry — DoS protection and fast
        handshakes are rare."""
        shares = class_shares(campaign_results)
        assert shares[HandshakeClass.ONE_RTT] < 0.05
        assert shares[HandshakeClass.RETRY] < 0.01

    def test_amplification_factor_stays_below_six(self, report):
        """§4.1 / Figure 4: first-RTT amplification stays relatively small."""
        figure04 = report["figure04"]
        assert figure04.share_below(6.0) > 0.95

    def test_cloudflare_explains_most_amplifying_handshakes(self, campaign_results):
        """§4.1: 96 % of amplifying handshakes come from one provider's stack."""
        amplifying = [
            o for o in campaign_results.reachable_handshakes()
            if o.handshake_class is HandshakeClass.AMPLIFICATION
        ]
        cloudflare = sum(1 for o in amplifying if o.provider == "cloudflare")
        assert cloudflare / len(amplifying) > 0.9


class TestSection42Certificates:
    def test_tls_bytes_cause_multi_rtt(self, report):
        """§4.2 / Figure 5: TLS payload alone exceeds the limit for ≈87 % of
        multi-RTT handshakes."""
        assert report["figure05"].share_tls_alone_exceeds == pytest.approx(0.87, abs=0.13)

    def test_chain_size_medians_and_limit_share(self, report):
        """§4.2 / Figure 6: medians 2329 B (QUIC) vs 4022 B (HTTPS-only), 35 %
        of chains above 3x1357 B."""
        figure06 = report["figure06"]
        assert figure06.quic_median == pytest.approx(2329, rel=0.25)
        assert figure06.https_only_median == pytest.approx(4022, rel=0.15)
        assert figure06.share_exceeding_limit == pytest.approx(0.35, abs=0.08)

    def test_quic_consolidation(self, report):
        """§4.2 / Figure 7: top-10 parent chains cover 96.5 % of QUIC services
        but only 72 % of HTTPS-only services."""
        assert report["figure07a"].top10_coverage == pytest.approx(0.965, abs=0.04)
        assert report["figure07b"].top10_coverage == pytest.approx(0.72, abs=0.12)

    def test_crypto_algorithm_split(self, report):
        """§4.2 / Table 2: QUIC leaves are mostly ECDSA, HTTPS-only mostly RSA."""
        table02 = report["table02"]
        assert table02.ecdsa_share("QUIC", "Leaf") == pytest.approx(0.789, abs=0.15)
        assert table02.rsa_share("HTTPS-only", "Leaf") == pytest.approx(0.895, abs=0.12)

    def test_compression_rescues_almost_all_chains(self, report):
        """§4.2: ≈65 % median compression rate; 99 % of compressed chains fit
        below the common limit; 96 % of services support brotli."""
        experiment = report["compression"]
        assert experiment.median_synthetic_rate == pytest.approx(0.65, abs=0.10)
        assert experiment.share_below_limit_compressed >= 0.97
        assert experiment.wild_support_share == pytest.approx(0.96, abs=0.05)


class TestSection43Amplification:
    def test_backscatter_amplification_per_hypergiant(self, report):
        """§4.3 / Figure 9: Cloudflare and Google mostly below 10x, Meta up to ≈45x."""
        figure09 = report["figure09"]
        assert figure09.maximum("cloudflare") < 12
        assert figure09.maximum("google") < 12
        assert figure09.maximum("meta") > 15

    def test_meta_prefix_groups(self, report):
        """§4.3: the Meta /24 shows three groups — no service, ≈5x, ≈28x."""
        groups = report["meta_prefix"]
        assert groups.mean_amplification(2) == pytest.approx(5.0, abs=2.0)
        assert groups.mean_amplification(3) == pytest.approx(28.0, abs=10.0)

    def test_disclosure_improved_meta_but_limit_still_exceeded(self, report):
        """Appendix B / Figure 11: after disclosure the mean drops to ≈5x,
        which still exceeds the RFC 9000 limit."""
        figure11 = report["figure11"]
        assert figure11.after.mean_amplification == pytest.approx(5.0, abs=1.5)
        assert figure11.after.mean_amplification > 3.0
        assert figure11.before.max_amplification > figure11.after.max_amplification * 3


class TestAppendixD:
    def test_deployment_stable_across_ranks(self, report):
        """Appendix D / Figure 12: ≈21 % QUIC per rank group, small deviation."""
        figure12 = report["figure12"]
        assert figure12.mean_quic_share == pytest.approx(0.21, abs=0.05)
        assert figure12.quic_share_stddev < 0.05

    def test_handshake_classes_stable_across_ranks(self, report):
        """Appendix D / Figure 13: classes stable; 1-RTT more common at the top."""
        figure13 = report["figure13"]
        top, rest = figure13.one_rtt_share_top_vs_rest()
        assert top >= rest


class TestAppendixE:
    def test_cruise_liner_certificates_are_rare(self, report):
        """Appendix E / Figure 14: most leaves spend <10 % of bytes on SANs and
        only ≈0.1 % combine a high SAN share with an over-limit size."""
        figure14 = report["figure14"]
        assert figure14.share_san_below_10pct > 0.5
        assert figure14.share_high_san_and_over_limit < 0.02
