"""Pinned parent-memory budget for streamed campaigns.

The whole point of the streaming reduction pipeline is that the parent never
materialises the population: a streamed 100k-domain campaign (plus its full
report) must fit a pinned peak-RSS budget — the eager path needs ~600 MB for
the population alone at this size (docs/PERFORMANCE.md).

The campaign takes a couple of minutes single-core, so the test is marked
``memory_budget`` (CI deselects it with ``-m "not memory_budget"``) and
additionally env-gated: set ``REPRO_MEMORY_BUDGET_TESTS=1`` to run it.  The
measurement runs in a fresh subprocess so earlier tests cannot inflate the
RSS high-water mark.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

#: Peak parent RSS allowed for a streamed 100k-domain campaign + report.
#: Measured ~180 MB on the reference container (docs/PERFORMANCE.md) — much
#: of it the bounded client-side LRU memos, not the reduction state.
#: The budget leaves headroom for allocator/platform variance while still
#: catching any reduction regression that starts retaining chains.
BUDGET_MB = 300

CAMPAIGN_SOURCE = """
import resource
from repro.analysis.report import build_report
from repro.scanners import MeasurementCampaign
from repro.webpki.population import PopulationConfig

results = MeasurementCampaign(
    population_config=PopulationConfig(size=100_000, seed=2022),
    stream=True,
).run()
report = build_report(results)
assert results.scan.deployment_count == 100_000
assert len(report.text) > 4000
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


@pytest.mark.memory_budget
@pytest.mark.skipif(
    not os.environ.get("REPRO_MEMORY_BUDGET_TESTS"),
    reason="set REPRO_MEMORY_BUDGET_TESTS=1 to run the (slow) memory-budget test",
)
def test_streamed_100k_campaign_stays_under_memory_budget():
    environment = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    environment["PYTHONPATH"] = os.path.abspath(src)
    completed = subprocess.run(
        [sys.executable, "-c", CAMPAIGN_SOURCE],
        capture_output=True,
        text=True,
        env=environment,
        check=True,
    )
    peak_rss = int(completed.stdout.strip().splitlines()[-1])
    # ru_maxrss is kilobytes on Linux but bytes on macOS.
    peak_rss_mb = peak_rss / (1024 * 1024 if sys.platform == "darwin" else 1024)
    assert peak_rss_mb < BUDGET_MB, (
        f"streamed 100k campaign peaked at {peak_rss_mb:.0f} MB "
        f"(budget {BUDGET_MB} MB) — the reduction is retaining too much"
    )
