"""Cross-scenario shard reuse differentials: one generation, N campaigns, zero drift.

The grid sweep path (:func:`repro.scanners.orchestrator.run_grid_campaign`)
materialises each shard's baseline skeletons once and replays every scenario's
pure transform over them.  Everything here pins the contract that makes the
amortisation safe to use: per-scenario reports and exported CSVs are
byte-identical to N fully independent campaigns, across worker counts, shard
sizes and scan backends; a SIGKILLed grid run resumes at ``(shard, scenario)``
granularity to the same bytes; ``baseline-2022`` inside a grid still matches
the golden artefact digests; and the adoption-curve table is deterministic
and monotone.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.analysis.export import export_evaluation
from repro.analysis.report import build_report
from repro.scanners import MeasurementCampaign, run_grid_campaign
from repro.scanners.checkpoint import CheckpointError
from repro.scanners.faults import CheckpointFault, FaultPlan
from repro.scenarios import ScenarioError, ScenarioSpec, load_scenario
from repro.scenarios.compare import compare_grid
from repro.scenarios.grid import (
    BUILTIN_GRIDS,
    COMPRESSION_ADOPTION_GRID,
    ScenarioGrid,
    load_grid,
)
from repro.webpki.population import PopulationConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "report_digests.json")

POPULATION_SIZE = 480
SHARD_SIZE = 120  # -> shards 0..3
SPOOFED = 12

GRID_MEMBERS = ("baseline-2022", "universal-compression", "trimmed-chains")


@pytest.fixture(scope="module")
def config():
    return PopulationConfig(size=POPULATION_SIZE, seed=2022)


@pytest.fixture(scope="module")
def grid():
    return ScenarioGrid(
        name="test-grid",
        scenarios=tuple(load_scenario(name) for name in GRID_MEMBERS),
    )


@pytest.fixture(scope="module")
def independent(config, grid):
    """N fully independent streamed campaigns: the bytes the grid must hit."""
    results = {}
    for scenario in grid:
        campaign = MeasurementCampaign(
            population_config=scenario.population_config(base=config),
            stream=True,
            shard_size=SHARD_SIZE,
            spoofed_targets_per_provider=SPOOFED,
        )
        results[scenario.name] = campaign.run()
    return results


def _export_digests(results, directory) -> dict:
    export_evaluation(results, str(directory))
    digests = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            digests[name] = hashlib.sha256(handle.read()).hexdigest()
    return digests


class TestGridMatchesIndependentCampaigns:
    @pytest.mark.parametrize(
        "workers,shard_size,backend",
        [
            (1, SHARD_SIZE, "object"),
            (2, SHARD_SIZE, "columnar"),
            (1, POPULATION_SIZE, "columnar"),  # single shard
            (2, 160, "object"),  # shard size that matches no reference run
        ],
    )
    def test_reports_byte_identical(
        self, config, grid, independent, workers, shard_size, backend
    ):
        results = run_grid_campaign(
            grid,
            config=config,
            workers=workers,
            shard_size=shard_size,
            spoofed_targets_per_provider=SPOOFED,
            scan_backend=backend,
        )
        assert set(results) == set(GRID_MEMBERS)
        for name in GRID_MEMBERS:
            assert (
                build_report(results[name]).text
                == build_report(independent[name]).text
            ), f"grid report for {name} drifted from the independent campaign"

    def test_exported_csvs_byte_identical(self, config, grid, independent, tmp_path):
        results = run_grid_campaign(
            grid,
            config=config,
            shard_size=SHARD_SIZE,
            spoofed_targets_per_provider=SPOOFED,
            scan_backend="columnar",
        )
        for name in GRID_MEMBERS:
            grid_digests = _export_digests(results[name], tmp_path / f"grid-{name}")
            solo_digests = _export_digests(independent[name], tmp_path / f"solo-{name}")
            assert grid_digests == solo_digests

    def test_grid_rejects_scenario_carrying_config(self, grid):
        carrying = load_scenario("trimmed-chains").population_config(
            size=POPULATION_SIZE, seed=2022
        )
        with pytest.raises(ValueError, match="scenario-free base config"):
            run_grid_campaign(grid, config=carrying)


class TestGridCheckpointResume:
    def test_partial_grid_resumes_to_identical_reports(
        self, config, grid, independent, tmp_path
    ):
        first = run_grid_campaign(
            grid,
            config=config,
            shard_size=SHARD_SIZE,
            spoofed_targets_per_provider=SPOOFED,
            checkpoint_dir=str(tmp_path),
        )
        checkpoints = sorted(
            name for name in os.listdir(tmp_path) if name.endswith(".ckpt")
        )
        assert len(checkpoints) == 4 * len(GRID_MEMBERS)
        # Lose a few (shard, scenario) pairs; the resume must re-scan exactly
        # the missing members and land on the same bytes.
        for name in checkpoints[:3]:
            os.unlink(tmp_path / name)
        lines = []
        resumed = run_grid_campaign(
            grid,
            config=config,
            shard_size=SHARD_SIZE,
            spoofed_targets_per_provider=SPOOFED,
            checkpoint_dir=str(tmp_path),
            resume=True,
            progress=lines.append,
        )
        assert any("resumed 9/12" in line for line in lines)
        for name in GRID_MEMBERS:
            assert build_report(resumed[name]).text == build_report(first[name]).text
            assert build_report(first[name]).text == build_report(independent[name]).text

    def test_resume_survives_grid_reorder_and_rename(self, config, grid, tmp_path):
        run_grid_campaign(
            grid,
            config=config,
            shard_size=SHARD_SIZE,
            spoofed_targets_per_provider=SPOOFED,
            checkpoint_dir=str(tmp_path),
        )
        reordered = ScenarioGrid(
            name="same-grid-other-name",
            scenarios=tuple(reversed(grid.scenarios)),
        )
        lines = []
        run_grid_campaign(
            reordered,
            config=config,
            shard_size=SHARD_SIZE,
            spoofed_targets_per_provider=SPOOFED,
            checkpoint_dir=str(tmp_path),
            resume=True,
            progress=lines.append,
        )
        assert any("resumed 12/12" in line for line in lines)

    def test_different_grid_is_rejected(self, config, grid, tmp_path):
        run_grid_campaign(
            grid,
            config=config,
            shard_size=SHARD_SIZE,
            spoofed_targets_per_provider=SPOOFED,
            checkpoint_dir=str(tmp_path),
        )
        other = ScenarioGrid(
            name="other", scenarios=(load_scenario("large-initials"),)
        )
        with pytest.raises(CheckpointError, match="different campaign"):
            run_grid_campaign(
                other,
                config=config,
                shard_size=SHARD_SIZE,
                spoofed_targets_per_provider=SPOOFED,
                checkpoint_dir=str(tmp_path),
                resume=True,
            )


class TestGridKillAndResumeSubprocess:
    """SIGKILL a grid sweep mid-campaign, resume, cmp every member report."""

    def _campaign(self, tmp_path, *extra, check_signal=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        command = [
            sys.executable, "-m", "repro", "campaign",
            "--size", str(POPULATION_SIZE), "--seed", "2022",
            "--shard-size", str(SHARD_SIZE),
            "--scenario-grid", "baseline-2022,trimmed-chains",
            *extra,
        ]
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=300,
            env=env, cwd=str(tmp_path),
        )
        if check_signal is None:
            assert completed.returncode == 0, completed.stderr
        else:
            assert completed.returncode == check_signal, completed.stderr
        return completed

    def test_sigkilled_grid_resumes_byte_identically(self, tmp_path):
        plan = FaultPlan(checkpoint=(CheckpointFault(shard=2, kind="kill-run"),))
        (tmp_path / "plan.json").write_text(plan.to_json(), encoding="utf-8")

        self._campaign(tmp_path, "--output", "clean")
        self._campaign(
            tmp_path,
            "--checkpoint-dir", "ckpt", "--fault-plan", "plan.json",
            "--output", "interrupted",
            check_signal=-9,  # SIGKILL, exactly as a crash/OOM-kill would land
        )
        # The kill fired on the first checkpoint save of shard 2: shards 0-1
        # are fully persisted (2 members each), shard 2 has one member, and no
        # torn report directory exists.
        checkpoints = [
            name for name in os.listdir(tmp_path / "ckpt") if name.endswith(".ckpt")
        ]
        assert len(checkpoints) == 5
        assert not (tmp_path / "interrupted").exists()

        self._campaign(tmp_path, "--checkpoint-dir", "ckpt", "--resume", "--output", "resumed")
        for member in ("baseline-2022", "trimmed-chains"):
            clean = (tmp_path / "clean" / f"{member}.report.txt").read_bytes()
            resumed = (tmp_path / "resumed" / f"{member}.report.txt").read_bytes()
            assert resumed == clean


class TestBaselineInGridMatchesGolden:
    def test_baseline_member_reproduces_golden_artefacts(self, tmp_path):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        params = golden["campaign"]
        grid = ScenarioGrid(
            name="golden-check", scenarios=(load_scenario("baseline-2022"),)
        )
        results = run_grid_campaign(
            grid,
            config=PopulationConfig(size=params["size"], seed=params["seed"]),
            spoofed_targets_per_provider=params["spoofed_targets_per_provider"],
        )
        digests = _export_digests(results["baseline-2022"], tmp_path)
        # The golden campaign also ran the Initial-size sweep; grid sweeps are
        # single-size by design, so sweep-derived artefacts (figure03 and the
        # sweep section of evaluation.txt) are out of scope here.  Every
        # other artefact must match the golden digest byte for byte.
        comparable = {
            name: digest
            for name, digest in digests.items()
            if name in golden["digests"] and name != "evaluation.txt"
        }
        assert len(comparable) >= 20
        drifted = {
            name
            for name, digest in comparable.items()
            if golden["digests"][name] != digest
        }
        assert not drifted, f"grid baseline drifted from golden artefacts: {sorted(drifted)}"


class TestAdoptionCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return compare_grid(
            "compression-adoption",
            size=600,
            seed=2022,
            shard_size=200,
            spoofed_targets_per_provider=SPOOFED,
        )

    def test_curve_is_monotone_in_adoption(self, curve):
        fractions = [
            outcome.scenario.compression_adoption for outcome in curve.outcomes
        ]
        assert fractions == sorted(fractions) and len(fractions) == 11
        exceeding = [outcome.exceeding_share for outcome in curve.outcomes]
        one_rtt = [outcome.one_rtt_share for outcome in curve.outcomes]
        assert all(a >= b for a, b in zip(exceeding, exceeding[1:]))
        assert all(a <= b for a, b in zip(one_rtt, one_rtt[1:]))

    def test_full_adoption_matches_universal_compression(self, curve):
        import dataclasses

        from repro.scenarios.compare import ScenarioOutcome, outcome_from_results

        campaign = MeasurementCampaign(
            population_config=load_scenario("universal-compression").population_config(
                size=600, seed=2022
            ),
            stream=True,
            shard_size=200,
            spoofed_targets_per_provider=SPOOFED,
        )
        universal = outcome_from_results(
            load_scenario("universal-compression"), campaign.run()
        )
        full = curve.outcomes[-1]
        assert full.scenario.compression_adoption == 1.0
        numeric = [
            field.name
            for field in dataclasses.fields(ScenarioOutcome)
            if field.name != "scenario"
        ]
        for name in numeric:
            assert getattr(full, name) == getattr(universal, name), name

    def test_rendered_table_is_deterministic_and_worker_invariant(self, curve):
        again = compare_grid(
            COMPRESSION_ADOPTION_GRID,
            size=600,
            seed=2022,
            workers=2,
            shard_size=150,
            spoofed_targets_per_provider=SPOOFED,
            scan_backend="columnar",
        )
        assert again.render_text() == curve.render_text()
        text = curve.render_text()
        assert "median amplification vs compression adoption fraction" in text
        assert "100%" in text and "0%" in text


class TestGridSpecification:
    def test_round_trips_through_json(self, grid):
        clone = ScenarioGrid.from_json(json.dumps(grid.to_dict()))
        assert clone == grid
        assert clone.fingerprint() == grid.fingerprint()

    def test_fingerprint_ignores_order_and_name(self, grid):
        shuffled = ScenarioGrid(
            name="renamed", scenarios=tuple(reversed(grid.scenarios))
        )
        assert shuffled.fingerprint() == grid.fingerprint()
        other = ScenarioGrid(name=grid.name, scenarios=grid.scenarios[:2])
        assert other.fingerprint() != grid.fingerprint()

    def test_axis_products_expand_over_base(self):
        payload = {
            "name": "adoption-x-trim",
            "base": "baseline-2022",
            "axes": {
                "compression_adoption": [0.0, 0.5, 1.0],
                "trim_chain_depth": [None, 2],
            },
        }
        expanded = ScenarioGrid.from_dict(payload)
        assert len(expanded) == 6
        names = expanded.member_names
        assert "baseline-2022+compression_adoption=0.5+trim_chain_depth=2" in names
        fractions = {spec.compression_adoption for spec in expanded}
        assert fractions == {0.0, 0.5, 1.0}

    def test_builtin_grids_resolve_by_name(self):
        for name in BUILTIN_GRIDS:
            loaded = load_grid(name)
            assert loaded.name == name and len(loaded) >= 2
        comma = load_grid("baseline-2022,trimmed-chains")
        assert comma.member_names == ("baseline-2022", "trimmed-chains")

    def test_rejects_malformed_grids(self, tmp_path):
        with pytest.raises(ScenarioError, match="has no scenarios"):
            ScenarioGrid(name="empty", scenarios=())
        with pytest.raises(ScenarioError, match="duplicate"):
            ScenarioGrid(
                name="dupes",
                scenarios=(load_scenario("baseline-2022"),) * 2,
            )
        with pytest.raises(ScenarioError, match="duplicate"):
            # Cosmetic differences (description) do not make two members
            # distinct: the fingerprint ignores them.
            ScenarioGrid(
                name="same-knobs",
                scenarios=(
                    ScenarioSpec(name="a", trim_chain_depth=2),
                    ScenarioSpec(name="a", trim_chain_depth=2, description="twin"),
                ),
            )
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_grid(str(bad))
        with pytest.raises(ScenarioError, match="unknown scenario grid"):
            load_grid("no-such-grid")

    def test_adoption_knob_validation(self):
        with pytest.raises(ScenarioError, match="compression_adoption"):
            ScenarioSpec(name="bad", compression_adoption=1.5)
        with pytest.raises(ScenarioError, match="compression_adoption"):
            ScenarioSpec(name="bad", compression_adoption=True)
        spec = ScenarioSpec(name="ok", compression_adoption=0)
        assert spec.compression_adoption == 0.0
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.fingerprint() == spec.fingerprint()

    def test_adopter_set_is_monotone(self):
        domains = [f"domain-{i}.example" for i in range(500)]
        previous = set()
        for percent in range(0, 101, 10):
            spec = ScenarioSpec(
                name=f"p{percent}", compression_adoption=percent / 100
            )
            adopters = {d for d in domains if spec.adopts_compression(d)}
            assert previous <= adopters
            previous = adopters
        assert previous == set(domains)
