"""Unit tests for the public key / signature size models."""

import pytest

from repro.asn1 import decode_tlv, iter_tlvs
from repro.asn1.tags import Tag
from repro.x509.keys import KeyAlgorithm, PublicKey, SignatureAlgorithm


class TestKeyAlgorithm:
    def test_families(self):
        assert KeyAlgorithm.RSA_2048.is_rsa and not KeyAlgorithm.RSA_2048.is_ecdsa
        assert KeyAlgorithm.ECDSA_P256.is_ecdsa and not KeyAlgorithm.ECDSA_P256.is_rsa

    def test_labels(self):
        assert KeyAlgorithm.RSA_4096.label == "RSA-4096"
        assert KeyAlgorithm.ECDSA_P384.label == "ECDSA-384"


class TestSpkiSizes:
    def test_rsa_2048_spki_size_realistic(self):
        spki = PublicKey(KeyAlgorithm.RSA_2048, "owner").spki_der()
        # Real RSA-2048 SPKI structures are 294 bytes.
        assert 290 <= len(spki) <= 300

    def test_rsa_4096_spki_size_realistic(self):
        spki = PublicKey(KeyAlgorithm.RSA_4096, "owner").spki_der()
        assert 540 <= len(spki) <= 560

    def test_ecdsa_p256_spki_size_realistic(self):
        spki = PublicKey(KeyAlgorithm.ECDSA_P256, "owner").spki_der()
        # Real P-256 SPKI structures are 91 bytes.
        assert 85 <= len(spki) <= 95

    def test_ecdsa_p384_spki_size_realistic(self):
        spki = PublicKey(KeyAlgorithm.ECDSA_P384, "owner").spki_der()
        assert 115 <= len(spki) <= 125

    def test_spki_is_valid_der_sequence(self):
        spki = PublicKey(KeyAlgorithm.ECDSA_P256, "owner").spki_der()
        tag, content, consumed = decode_tlv(spki)
        assert tag == Tag.SEQUENCE
        assert consumed == len(spki)
        children = list(iter_tlvs(content))
        assert len(children) == 2  # AlgorithmIdentifier, subjectPublicKey

    def test_determinism(self):
        a = PublicKey(KeyAlgorithm.RSA_2048, "same-owner").spki_der()
        b = PublicKey(KeyAlgorithm.RSA_2048, "same-owner").spki_der()
        assert a == b

    def test_different_owners_have_different_keys(self):
        a = PublicKey(KeyAlgorithm.RSA_2048, "owner-a").spki_der()
        b = PublicKey(KeyAlgorithm.RSA_2048, "owner-b").spki_der()
        assert a != b
        assert len(a) == len(b)

    def test_key_identifier_is_20_bytes(self):
        assert len(PublicKey(KeyAlgorithm.ECDSA_P256, "o").key_identifier()) == 20


class TestSignatures:
    def test_rsa_signature_length_matches_modulus(self):
        key = PublicKey(KeyAlgorithm.RSA_2048, "signer")
        signature = key.sign(b"message", SignatureAlgorithm.SHA256_WITH_RSA)
        assert len(signature) == 256

    def test_rsa_4096_signature_length(self):
        key = PublicKey(KeyAlgorithm.RSA_4096, "signer")
        assert len(key.sign(b"m", SignatureAlgorithm.SHA256_WITH_RSA)) == 512

    def test_ecdsa_p256_signature_length_realistic(self):
        key = PublicKey(KeyAlgorithm.ECDSA_P256, "signer")
        signature = key.sign(b"message", SignatureAlgorithm.ECDSA_WITH_SHA256)
        assert 68 <= len(signature) <= 74

    def test_ecdsa_p384_signature_length_realistic(self):
        key = PublicKey(KeyAlgorithm.ECDSA_P384, "signer")
        signature = key.sign(b"message", SignatureAlgorithm.ECDSA_WITH_SHA384)
        assert 100 <= len(signature) <= 106

    def test_signature_depends_on_message(self):
        key = PublicKey(KeyAlgorithm.ECDSA_P256, "signer")
        assert key.sign(b"a", SignatureAlgorithm.ECDSA_WITH_SHA256) != key.sign(
            b"b", SignatureAlgorithm.ECDSA_WITH_SHA256
        )

    def test_signature_deterministic(self):
        key = PublicKey(KeyAlgorithm.ECDSA_P256, "signer")
        assert key.sign(b"a", SignatureAlgorithm.ECDSA_WITH_SHA256) == key.sign(
            b"a", SignatureAlgorithm.ECDSA_WITH_SHA256
        )


class TestSignatureAlgorithmSelection:
    def test_rsa_signer_uses_rsa_signature(self):
        key = PublicKey(KeyAlgorithm.RSA_2048, "ca")
        assert SignatureAlgorithm.for_signer(key) is SignatureAlgorithm.SHA256_WITH_RSA

    def test_p384_signer_uses_sha384(self):
        key = PublicKey(KeyAlgorithm.ECDSA_P384, "ca")
        assert SignatureAlgorithm.for_signer(key) is SignatureAlgorithm.ECDSA_WITH_SHA384

    def test_p256_signer_uses_sha256(self):
        key = PublicKey(KeyAlgorithm.ECDSA_P256, "ca")
        assert SignatureAlgorithm.for_signer(key) is SignatureAlgorithm.ECDSA_WITH_SHA256

    def test_algorithm_identifier_rsa_has_null_params(self):
        encoded = SignatureAlgorithm.SHA256_WITH_RSA.encode_algorithm_identifier()
        assert encoded.endswith(b"\x05\x00")

    def test_algorithm_identifier_ecdsa_has_no_params(self):
        encoded = SignatureAlgorithm.ECDSA_WITH_SHA256.encode_algorithm_identifier()
        assert not encoded.endswith(b"\x05\x00")
