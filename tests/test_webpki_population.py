"""Unit and calibration tests for the population generator."""

import random

import pytest

from repro.netsim.dns import DnsRcode
from repro.quic.profiles import MVFST_LIKE, MVFST_PATCHED
from repro.webpki import (
    HTTPS_ONLY_ARCHETYPES,
    PROVIDERS,
    QUIC_ARCHETYPES,
    PopulationConfig,
    ServiceCategory,
    generate_population,
    sample_san_count,
)
from repro.webpki.population import (
    META_HIGH_AMPLIFICATION_OCTETS,
    META_NO_SERVICE_OCTETS,
    build_meta_point_of_presence,
    meta_domain_for_octet,
)
from repro.x509.ca import default_hierarchy


class TestArchetypes:
    def test_quic_weights_cover_figure7a_rows(self):
        weights = {a.name: a.weight for a in QUIC_ARCHETYPES}
        assert weights["cloudflare-ecdsa"] == pytest.approx(61.54)
        assert weights["lets-encrypt-long-rsa"] == pytest.approx(16.80)
        assert sum(weights.values()) == pytest.approx(100.0, abs=2.0)

    def test_https_only_weights_sum_to_about_100(self):
        assert sum(a.weight for a in HTTPS_ONLY_ARCHETYPES) == pytest.approx(100.0, abs=2.0)

    def test_archetype_ca_profiles_exist(self):
        hierarchy = default_hierarchy()
        for archetype in QUIC_ARCHETYPES + HTTPS_ONLY_ARCHETYPES:
            assert archetype.ca_profile in hierarchy.profiles
            assert archetype.provider in PROVIDERS

    def test_sample_san_count_has_heavy_tail(self):
        rng = random.Random(0)
        archetype = QUIC_ARCHETYPES[0]
        counts = [sample_san_count(rng, archetype) for _ in range(4000)]
        assert min(counts) >= 1
        assert max(counts) > 100  # cruise liners exist
        assert sorted(counts)[len(counts) // 2] <= 6  # but the median stays small


class TestPopulationConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PopulationConfig(size=0)
        with pytest.raises(ValueError):
            PopulationConfig(servfail_fraction=0.9, no_a_record_fraction=0.2)
        with pytest.raises(ValueError):
            PopulationConfig(quic_fraction_of_resolved=0.6, https_only_fraction_of_resolved=0.6)


class TestGeneratedPopulation:
    def test_deterministic(self):
        a = generate_population(PopulationConfig(size=300, seed=9))
        b = generate_population(PopulationConfig(size=300, seed=9))
        assert [d.domain for d in a.deployments] == [d.domain for d in b.deployments]
        assert [d.category for d in a.deployments] == [d.category for d in b.deployments]

    def test_every_domain_has_a_deployment(self, small_population):
        assert len(small_population) == small_population.config.size
        assert small_population.deployment(small_population.deployments[0].domain) is not None

    def test_category_shares_match_paper_funnel(self, small_population):
        counts = small_population.category_counts()
        total = len(small_population)
        assert counts[ServiceCategory.QUIC] / total == pytest.approx(0.21, abs=0.04)
        assert counts[ServiceCategory.HTTPS_ONLY] / total == pytest.approx(0.59, abs=0.05)
        assert counts[ServiceCategory.UNRESOLVED] / total == pytest.approx(0.134, abs=0.04)

    def test_quic_services_have_chains_and_behavior(self, small_population):
        for deployment in small_population.quic_services():
            assert deployment.quic_chain is not None
            assert deployment.https_chain is not None
            assert deployment.server_behavior is not None
            assert deployment.resolves

    def test_https_only_services_have_no_quic(self, small_population):
        for deployment in small_population.https_only_services():
            assert not deployment.supports_quic
            assert deployment.supports_https

    def test_unresolved_deployments_have_failures(self, small_population):
        for deployment in small_population.by_category(ServiceCategory.UNRESOLVED):
            assert deployment.dns_rcode is not DnsRcode.NOERROR or deployment.address is None

    def test_most_quic_services_share_cert_with_https(self, small_population):
        quic = small_population.quic_services()
        same = sum(1 for d in quic if d.quic_chain is d.https_chain)
        assert same / len(quic) > 0.9

    def test_cloudflare_dominates_quic_services(self, small_population):
        quic = small_population.quic_services()
        cloudflare = sum(1 for d in quic if d.provider == "cloudflare")
        assert cloudflare / len(quic) == pytest.approx(0.615, abs=0.06)

    def test_rank_group_labels(self, small_population):
        deployment = small_population.deployments[0]
        assert deployment.rank == 1
        assert deployment.rank_group == 0
        assert deployment.rank_group_label(100) == "[1, 101)"

    def test_top_ranked_services_more_often_tunnelled(self):
        population = generate_population(PopulationConfig(size=4000, seed=11))
        quic = population.quic_services()
        top_size = population.config.size // 100
        top = [d for d in quic if d.rank <= top_size]
        rest = [d for d in quic if d.rank > top_size]
        if top:
            top_share = sum(1 for d in top if d.encapsulation_overhead) / len(top)
            rest_share = sum(1 for d in rest if d.encapsulation_overhead) / len(rest)
            assert top_share > rest_share

    def test_build_resolver_and_network_cover_population(self, small_population):
        resolver = small_population.build_resolver()
        network = small_population.build_network()
        assert len(network) == len(small_population.quic_services())
        quic_domain = small_population.quic_services()[0].domain
        assert resolver.resolve(quic_domain).has_address
        assert network.host_for_domain(quic_domain) is not None

    def test_build_origins_include_redirect_targets(self, small_population):
        origins = small_population.build_origins()
        redirecting = [d for d in small_population.deployments if d.redirect_to and d.supports_https]
        assert redirecting, "expected some redirecting deployments"
        sample = redirecting[0]
        assert sample.domain in origins
        assert sample.redirect_to in origins


class TestMetaPointOfPresence:
    def test_no_service_octets_are_skipped(self):
        hosts = build_meta_point_of_presence(patched=False)
        octets = {host.address.host_octet for host in hosts}
        assert octets.isdisjoint(META_NO_SERVICE_OCTETS)

    def test_domains_map_to_expected_groups(self):
        for octet in sorted(META_HIGH_AMPLIFICATION_OCTETS)[:5]:
            assert meta_domain_for_octet(octet) in ("instagram.com", "whatsapp.net")

    def test_unpatched_pop_contains_both_profiles(self):
        hosts = build_meta_point_of_presence(patched=False)
        profiles = {host.profile.name for host in hosts}
        assert MVFST_LIKE.name in profiles
        assert MVFST_PATCHED.name in profiles

    def test_patched_pop_is_homogeneous(self):
        hosts = build_meta_point_of_presence(patched=True)
        assert {host.profile.name for host in hosts} == {MVFST_PATCHED.name}

    def test_chains_are_meta_sized(self):
        hosts = build_meta_point_of_presence(patched=False)
        sizes = [host.chain.total_size for host in hosts]
        assert min(sizes) > 3500  # large SAN-heavy chains drive the ≈5x flight
