"""Unit tests for OID encoding."""

import pytest

from repro.asn1 import OID, Asn1Error, decode_oid, decode_tlv, encode_oid
from repro.asn1.oid import ObjectIdentifier
from repro.asn1.tags import Tag


class TestOidEncoding:
    def test_common_name_oid_bytes(self):
        # 2.5.4.3 encodes to 55 04 03.
        assert encode_oid("2.5.4.3") == b"\x06\x03\x55\x04\x03"

    def test_rsa_encryption_oid_bytes(self):
        # Known DER for 1.2.840.113549.1.1.1.
        assert encode_oid("1.2.840.113549.1.1.1") == bytes.fromhex("06092a864886f70d010101")

    @pytest.mark.parametrize(
        "dotted",
        [
            "2.5.4.3",
            "1.2.840.113549.1.1.11",
            "1.3.6.1.5.5.7.3.1",
            "2.23.140.1.2.1",
            "1.3.6.1.4.1.11129.2.4.2",
        ],
    )
    def test_roundtrip(self, dotted):
        tag, content, _ = decode_tlv(encode_oid(dotted))
        assert tag == Tag.OBJECT_IDENTIFIER
        assert decode_oid(content) == dotted

    def test_single_arc_rejected(self):
        with pytest.raises(Asn1Error):
            encode_oid("2")

    def test_invalid_root_rejected(self):
        with pytest.raises(Asn1Error):
            encode_oid("3.1")
        with pytest.raises(Asn1Error):
            encode_oid("1.40")

    def test_decode_empty_rejected(self):
        with pytest.raises(Asn1Error):
            decode_oid(b"")

    def test_decode_truncated_arc_rejected(self):
        with pytest.raises(Asn1Error):
            decode_oid(b"\x55\x84")  # continuation bit set but no next octet


class TestOidRegistry:
    def test_registry_names_are_consistent(self):
        assert OID.COMMON_NAME.name == "commonName"
        assert OID.SUBJECT_ALT_NAME.dotted == "2.5.29.17"
        assert OID.SHA256_WITH_RSA.dotted == "1.2.840.113549.1.1.11"

    def test_object_identifier_encode_helper(self):
        oid = ObjectIdentifier("2.5.29.17", "subjectAltName")
        assert oid.encode() == encode_oid("2.5.29.17")
        assert oid.arcs == (2, 5, 29, 17)

    def test_registry_oids_all_encode(self):
        for attribute in vars(OID).values():
            if isinstance(attribute, ObjectIdentifier):
                encoded = attribute.encode()
                assert encoded[0] == Tag.OBJECT_IDENTIFIER
                _, content, _ = decode_tlv(encoded)
                assert decode_oid(content) == attribute.dotted
