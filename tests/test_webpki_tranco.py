"""Unit tests for the Tranco-like list generator."""

import pytest

from repro.webpki import generate_tranco_list


class TestTrancoGeneration:
    def test_size_and_uniqueness(self):
        tranco = generate_tranco_list(5000, seed=1)
        assert len(tranco) == 5000
        assert len(set(tranco.domains)) == 5000

    def test_deterministic_for_seed(self):
        assert generate_tranco_list(500, seed=7).domains == generate_tranco_list(500, seed=7).domains

    def test_different_seeds_differ(self):
        assert generate_tranco_list(500, seed=1).domains != generate_tranco_list(500, seed=2).domains

    def test_names_look_like_domains(self):
        tranco = generate_tranco_list(300, seed=3)
        for name in tranco:
            assert "." in name
            label, _, tld = name.rpartition(".")
            assert label and tld
            assert name == name.lower()

    def test_rank_accessors(self):
        tranco = generate_tranco_list(100, seed=4)
        domain = tranco.domain_at(10)
        assert tranco.rank_of(domain) == 10
        assert tranco.top(5) == tranco.domains[:5]

    def test_rank_groups_partition_the_list(self):
        tranco = generate_tranco_list(1000, seed=5)
        groups = tranco.rank_groups(group_size=300)
        assert [bounds for bounds, _ in groups] == [(1, 300), (301, 600), (601, 900), (901, 1000)]
        assert sum(len(names) for _, names in groups) == 1000

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_tranco_list(0)
