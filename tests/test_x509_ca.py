"""Unit tests for the CA hierarchy and issuance."""

import pytest

from repro.x509 import build_hierarchy, issue_leaf
from repro.x509.ca import default_hierarchy
from repro.x509.keys import KeyAlgorithm


class TestHierarchyConstruction:
    def test_contains_the_major_cas(self, hierarchy):
        for root in ("ISRG Root X1", "ISRG Root X2", "GTS Root R1", "DigiCert Global Root CA"):
            assert root in hierarchy.roots
        for intermediate in ("R3", "E1", "GTS CA 1C3", "Cloudflare Inc ECC CA-3"):
            assert intermediate in hierarchy.intermediates

    def test_roots_are_self_signed(self, hierarchy):
        for ca in hierarchy.roots.values():
            assert ca.certificate.is_self_signed
            assert ca.certificate.is_ca

    def test_intermediates_are_not_self_signed(self, hierarchy):
        for ca in hierarchy.intermediates.values():
            assert not ca.certificate.is_self_signed

    def test_profiles_present_for_figure7_rows(self, hierarchy):
        for label in (
            "Cloudflare ECC CA-3",
            "Let's Encrypt R3 + cross-signed X1",
            "Let's Encrypt R3 + root X1",
            "Google 1C3",
            "Sectigo RSA DV / USERTRUST",
            "Amazon RSA 2048 M02 (long)",
        ):
            assert label in hierarchy.profiles

    def test_default_hierarchy_is_cached(self):
        assert default_hierarchy() is default_hierarchy()

    def test_build_hierarchy_is_deterministic(self):
        a, b = build_hierarchy(), build_hierarchy()
        for label in a.profiles:
            assert a.profiles[label].parent_chain_size == b.profiles[label].parent_chain_size


class TestIssuance:
    def test_issue_produces_ordered_chain(self, hierarchy):
        chain = hierarchy.profiles["Google 1C3"].issue("issue-test.example")
        assert chain.is_correctly_ordered()
        assert chain.leaf.subject_common_name == "issue-test.example"

    def test_leaf_key_override(self, hierarchy):
        profile = hierarchy.profiles["Let's Encrypt R3 (short)"]
        rsa = profile.issue("rsa.example", key_algorithm=KeyAlgorithm.RSA_2048)
        ecdsa = profile.issue("ec.example", key_algorithm=KeyAlgorithm.ECDSA_P256)
        assert rsa.leaf.key_algorithm is KeyAlgorithm.RSA_2048
        assert ecdsa.leaf.key_algorithm is KeyAlgorithm.ECDSA_P256
        assert rsa.leaf_size > ecdsa.leaf_size

    def test_default_san_names(self, hierarchy):
        chain = hierarchy.profiles["Cloudflare ECC CA-3"].issue("sans.example")
        assert "sans.example" in chain.leaf.san_names
        assert "www.sans.example" in chain.leaf.san_names

    def test_custom_san_names_grow_leaf(self, hierarchy):
        profile = hierarchy.profiles["Cloudflare ECC CA-3"]
        small = profile.issue("small.example", san_names=["small.example"])
        large = profile.issue(
            "large.example", san_names=[f"alt{i}.large.example" for i in range(100)]
        )
        assert large.leaf_size > small.leaf_size + 1000

    def test_issue_leaf_directly(self, hierarchy):
        issuer = hierarchy.intermediates["R3"]
        leaf = issue_leaf(issuer, "direct.example")
        assert leaf.issuer_common_name == "R3"
        assert not leaf.is_ca

    def test_chain_size_targets_match_paper_shape(self, hierarchy):
        """Cloudflare-style chains are small; RSA long chains are near/above 4 kB."""
        cloudflare = hierarchy.profiles["Cloudflare ECC CA-3"].issue("cf.example")
        le_long = hierarchy.profiles["Let's Encrypt R3 + cross-signed X1"].issue("le.example")
        amazon = hierarchy.profiles["Amazon RSA 2048 M02 (long)"].issue("am.example")
        assert cloudflare.total_size < 2500
        assert 3300 <= le_long.total_size <= 4700
        assert amazon.total_size > 4000

    def test_issuance_is_deterministic_per_domain(self, hierarchy):
        profile = hierarchy.profiles["Cloudflare ECC CA-3"]
        assert (
            profile.issue("det.example").leaf.fingerprint()
            == profile.issue("det.example").leaf.fingerprint()
        )
