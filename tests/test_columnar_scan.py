"""Backend-differential tests: the columnar scan kernel vs the object pipeline.

The contract under test (docs/ARCHITECTURE.md, "Columnar scan core"): the
fused arithmetic backend of :mod:`repro.scanners.columnar` produces
byte-identical reports, per-figure CSVs, shard summaries and even flight-plan
cache counters to the reference object pipeline — for any seed, worker count,
shard size and built-in scenario, through both the streamed and the eager
entry points, across a checkpoint/resume seam written by the *other* backend,
and against the SHA-256 golden digests of ``tests/golden/report_digests.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

import pytest

from repro.analysis.export import export_evaluation
from repro.analysis.report import build_report
from repro.scanners import MeasurementCampaign
from repro.scanners.columnar import (
    SCAN_BACKENDS,
    SCAN_BACKEND_ENV,
    resolve_scan_backend,
    summarize_shard_columnar,
)
from repro.scanners.sharding import ShardTask, run_sharded_scan, scan_shard
from repro.scanners.streaming import (
    ReducedCampaignResults,
    ReductionSpec,
    run_streaming_scan,
    summarize_shard,
)
from repro.scenarios import BUILTIN_SCENARIOS
from repro.webpki.population import PopulationConfig, generate_population

#: Spans several shards at the shard sizes below while keeping the matrix fast.
POPULATION_SIZE = 900

CAMPAIGN_KWARGS = dict(
    run_sweep=True,
    sweep_sample_size=60,
    spoofed_targets_per_provider=12,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "report_digests.json")


def _streamed(config, backend, **kwargs):
    return MeasurementCampaign(
        population_config=config,
        stream=True,
        scan_backend=backend,
        **CAMPAIGN_KWARGS,
        **kwargs,
    ).run()


class TestColumnarMatchesObject:
    @pytest.mark.parametrize("seed", [2022, 7])
    def test_streamed_reports_and_state_identical(self, seed):
        config = PopulationConfig(size=POPULATION_SIZE, seed=seed)
        reference = _streamed(config, "object", shard_size=256)
        columnar = _streamed(config, "columnar", shard_size=256)
        assert isinstance(columnar, ReducedCampaignResults)
        assert build_report(reference).text == build_report(columnar).text
        # Full reduced-state equality: funnel, every CDF accumulator, compact
        # figure rows, comparison counters AND flight-cache counters.
        assert reference.scan == columnar.scan
        assert reference.flight_cache == columnar.flight_cache

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_count_does_not_change_columnar_report(self, workers):
        config = PopulationConfig(size=POPULATION_SIZE, seed=5)
        reference = _streamed(config, "object", workers=1, shard_size=256)
        columnar = _streamed(config, "columnar", workers=workers, shard_size=256)
        assert build_report(reference).text == build_report(columnar).text
        assert reference.flight_cache == columnar.flight_cache

    @pytest.mark.parametrize("shard_size", [128, 512])
    def test_shard_size_does_not_change_columnar_report(self, shard_size):
        config = PopulationConfig(size=POPULATION_SIZE, seed=5)
        reference = _streamed(config, "object", shard_size=shard_size)
        columnar = _streamed(config, "columnar", shard_size=shard_size)
        assert build_report(reference).text == build_report(columnar).text
        assert reference.scan == columnar.scan

    def test_eager_columnar_matches_eager_object(self):
        """``scan_backend='columnar'`` without ``stream`` still runs eagerly
        (materialised population, stage 5 included) and reports identically."""
        config = PopulationConfig(size=POPULATION_SIZE, seed=3)
        eager_object = MeasurementCampaign(
            population=generate_population(config), **CAMPAIGN_KWARGS
        ).run()
        eager_columnar = MeasurementCampaign(
            population=generate_population(config),
            scan_backend="columnar",
            **CAMPAIGN_KWARGS,
        ).run()
        assert isinstance(eager_columnar, ReducedCampaignResults)
        assert build_report(eager_object).text == build_report(eager_columnar).text

    @pytest.mark.parametrize("name", sorted(BUILTIN_SCENARIOS))
    def test_every_builtin_scenario_is_backend_invariant(self, name):
        scenario = BUILTIN_SCENARIOS[name]
        config = PopulationConfig(size=600, seed=11)
        reference = MeasurementCampaign(
            population_config=config,
            stream=True,
            scenario=scenario,
            shard_size=200,
            **CAMPAIGN_KWARGS,
        ).run()
        columnar = MeasurementCampaign(
            population_config=config,
            stream=True,
            scenario=scenario,
            shard_size=200,
            scan_backend="columnar",
            **CAMPAIGN_KWARGS,
        ).run()
        assert reference.scan == columnar.scan
        assert build_report(reference).text == build_report(columnar).text

    def test_csv_exports_byte_identical(self, tmp_path):
        config = PopulationConfig(size=POPULATION_SIZE, seed=3)
        reference = _streamed(config, "object", shard_size=256)
        columnar = _streamed(config, "columnar", shard_size=256)
        object_dir = tmp_path / "object"
        columnar_dir = tmp_path / "columnar"
        export_evaluation(reference, str(object_dir))
        export_evaluation(columnar, str(columnar_dir))
        names = sorted(os.listdir(object_dir))
        assert names == sorted(os.listdir(columnar_dir))
        for name in names:
            assert (object_dir / name).read_bytes() == (
                columnar_dir / name
            ).read_bytes(), name

    def test_shard_summaries_equal_per_shard(self):
        """The unit contract: kernel summary == object summary, shard by shard."""
        config = PopulationConfig(size=700, seed=13)
        spec = ReductionSpec(spoof_limit_per_provider=12)
        for start, stop, index in ((0, 250, 0), (250, 500, 1), (500, 700, 2)):
            task = ShardTask(
                index=index,
                population_config=config,
                start=start,
                stop=stop,
                run_sweep=True,
                sweep_local_selection=(index, 3),
            )
            deployments = tuple(task.resolve_deployments())
            expected = summarize_shard(
                task, deployments, scan_shard(task, deployments=deployments), spec
            )
            assert summarize_shard_columnar(task, deployments, spec) == expected


class TestCrossBackendResume:
    @pytest.mark.parametrize(
        "write_backend,resume_backend",
        [("object", "columnar"), ("columnar", "object")],
    )
    def test_resume_from_other_backends_checkpoints(
        self, tmp_path, write_backend, resume_backend
    ):
        """Checkpoints are backend-agnostic: summaries written by one backend
        finish byte-identically under the other."""
        config = PopulationConfig(size=800, seed=17)
        ckpt = str(tmp_path / "ckpt")
        full = run_streaming_scan(
            config, shard_size=200, checkpoint_dir=ckpt, scan_backend=write_backend
        )
        # Drop two shards so the resume genuinely re-scans under the other
        # backend rather than folding checkpoints only.
        removed = sorted(
            name for name in os.listdir(ckpt) if name.endswith(".ckpt")
        )[:2]
        assert len(removed) == 2
        for name in removed:
            os.remove(os.path.join(ckpt, name))
        resumed = run_streaming_scan(
            config,
            shard_size=200,
            checkpoint_dir=ckpt,
            resume=True,
            scan_backend=resume_backend,
        )
        assert resumed == full


class TestColumnarGoldenDigests:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            return json.load(handle)

    @pytest.mark.parametrize("stream", [False, True])
    def test_columnar_reproduces_golden_digests(self, golden, stream):
        params = golden["campaign"]
        config = PopulationConfig(size=params["size"], seed=params["seed"])
        kwargs = dict(
            run_sweep=True,
            sweep_sample_size=params["sweep_sample_size"],
            spoofed_targets_per_provider=params["spoofed_targets_per_provider"],
            scan_backend="columnar",
        )
        if stream:
            campaign = MeasurementCampaign(
                population_config=config, stream=True, **kwargs
            )
        else:
            campaign = MeasurementCampaign(
                population=generate_population(config), **kwargs
            )
        results = campaign.run()
        with tempfile.TemporaryDirectory() as directory:
            export_evaluation(results, directory)
            produced = {
                name: hashlib.sha256(
                    open(os.path.join(directory, name), "rb").read()
                ).hexdigest()
                for name in sorted(os.listdir(directory))
            }
        assert produced == golden["digests"]


class TestBackendSelection:
    def test_registry_and_default(self, monkeypatch):
        monkeypatch.delenv(SCAN_BACKEND_ENV, raising=False)
        assert SCAN_BACKENDS == ("object", "columnar")
        assert resolve_scan_backend() == "object"
        assert resolve_scan_backend("columnar") == "columnar"

    def test_invalid_explicit_backend_is_rejected(self):
        with pytest.raises(ValueError, match="columnar"):
            resolve_scan_backend("numpy")

    def test_invalid_env_backend_is_rejected(self, monkeypatch):
        monkeypatch.setenv(SCAN_BACKEND_ENV, "bogus")
        with pytest.raises(ValueError, match=SCAN_BACKEND_ENV):
            resolve_scan_backend()

    def test_empty_env_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv(SCAN_BACKEND_ENV, "")
        assert resolve_scan_backend() == "object"

    def test_env_knob_drives_streamed_runs(self, monkeypatch):
        config = PopulationConfig(size=400, seed=2)
        monkeypatch.delenv(SCAN_BACKEND_ENV, raising=False)
        reference = run_streaming_scan(config, shard_size=200)
        monkeypatch.setenv(SCAN_BACKEND_ENV, "columnar")
        via_env = run_streaming_scan(config, shard_size=200)
        assert via_env == reference

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(SCAN_BACKEND_ENV, "bogus")
        assert resolve_scan_backend("object") == "object"

    def test_run_sharded_scan_rejects_columnar(self):
        population = generate_population(PopulationConfig(size=120, seed=2))
        with pytest.raises(ValueError, match="streaming"):
            run_sharded_scan(population, scan_backend="columnar")

    def test_campaign_rejects_unknown_backend_eagerly(self):
        with pytest.raises(ValueError, match="choose from"):
            MeasurementCampaign(
                population_config=PopulationConfig(size=100, seed=1),
                stream=True,
                scan_backend="vectorised",
            )

    def test_shard_task_defaults_to_object(self):
        assert ShardTask(index=0).scan_backend == "object"
