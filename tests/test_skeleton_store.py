"""Skeleton-store warm starts: byte-identical, self-verifying, scenario-shared.

The store is an optimisation, never a source of truth: a warm campaign must
produce the same bytes as a cache-free one on every dispatch path (streamed,
eager, grid, any backend/worker/shard-size combination), one directory must
serve every scenario over its population, and any defective file — torn,
corrupt, stale-format, foreign — must be quarantined and its shard silently
regenerated to the same bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile

import pytest

from repro.analysis.export import export_evaluation
from repro.analysis.report import build_report
from repro.scanners import MeasurementCampaign, run_grid_campaign
from repro.scanners.faults import corrupt_file, truncate_file
from repro.scanners.skeleton_store import (
    GENERATION_SHARD_SIZE,
    SKELETON_FORMAT,
    SkeletonKey,
    SkeletonStore,
    SkeletonStoreError,
    cache_counters,
    decode_skeleton_file,
    deployments_for_range,
    encode_skeleton_file,
    generate_population_cached,
    population_fingerprint,
    reset_cache_counters,
    reset_stores,
    shard_count,
    skeletons_for_range,
    store_for,
    warm,
)
from repro.scenarios import load_scenario
from repro.scenarios.grid import load_grid
from repro.webpki import population as population_module
from repro.webpki.population import PopulationConfig, generate_population

POPULATION_SIZE = 360  # < GENERATION_SHARD_SIZE: exactly one generation shard
SHARD_SIZE = 120
SPOOFED = 12
CAMPAIGN_KWARGS = dict(stream=True, shard_size=SHARD_SIZE, spoofed_targets_per_provider=SPOOFED)

GRID_MEMBERS = ("baseline-2022", "trimmed-chains", "universal-compression")


@pytest.fixture(autouse=True)
def _isolate_process_state():
    reset_stores()
    reset_cache_counters()
    yield
    reset_stores()
    reset_cache_counters()


@pytest.fixture(scope="module")
def config():
    return PopulationConfig(size=POPULATION_SIZE, seed=2022)


@pytest.fixture(scope="module")
def warmed_dir(config, tmp_path_factory) -> str:
    """One fully warmed cache directory for ``config`` (treated read-only)."""
    directory = str(tmp_path_factory.mktemp("skel-warm"))
    hits, misses = warm(directory, config)
    assert (hits, misses) == (0, shard_count(POPULATION_SIZE))
    return directory


@pytest.fixture(scope="module")
def references(config):
    """Cache-free streamed report texts: the bytes every warm run must hit."""
    texts = {
        "plain": build_report(
            MeasurementCampaign(population_config=config, **CAMPAIGN_KWARGS).run()
        ).text
    }
    for name in GRID_MEMBERS:
        member = load_scenario(name).population_config(base=config)
        texts[name] = build_report(
            MeasurementCampaign(population_config=member, **CAMPAIGN_KWARGS).run()
        ).text
    return texts


@pytest.fixture(scope="module")
def shard_and_cache(config, warmed_dir):
    store = SkeletonStore(warmed_dir)
    shard, cache = store.load_or_generate(config, 0)
    return shard, cache


class TestWireFormat:
    def test_round_trip(self, config, shard_and_cache):
        shard, cache = shard_and_cache
        key = SkeletonKey.for_config(config, 0)
        decoded, decoded_cache = decode_skeleton_file(
            encode_skeleton_file(shard, dict(cache), key=key), key=key
        )
        assert decoded.index == shard.index
        assert decoded.start_rank == shard.start_rank
        assert decoded.skeletons == shard.skeletons
        assert set(decoded_cache) == set(cache)
        for spec, chain in cache.items():
            assert decoded_cache[spec].leaf.der == chain.leaf.der

    def test_encoding_is_deterministic(self, config, shard_and_cache):
        shard, cache = shard_and_cache
        key = SkeletonKey.for_config(config, 0)
        assert encode_skeleton_file(shard, dict(cache), key=key) == encode_skeleton_file(
            shard, dict(cache), key=key
        )

    def test_header_carries_version_and_digest(self, shard_and_cache):
        shard, cache = shard_and_cache
        header = encode_skeleton_file(shard, dict(cache)).split(b"\n", 1)[0].split(b" ")
        assert header[0] == SKELETON_FORMAT
        assert len(header) == 3 and len(header[2]) == 64

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda data: data[: len(data) // 2],            # truncated
            lambda data: data.replace(b"/1", b"/0", 1),     # stale version
            lambda data: b"",                               # empty file
            lambda data: b"not a skeleton shard",           # garbage
        ],
    )
    def test_defective_bytes_raise(self, shard_and_cache, mangle):
        shard, cache = shard_and_cache
        data = encode_skeleton_file(shard, dict(cache))
        with pytest.raises(SkeletonStoreError):
            decode_skeleton_file(mangle(data))

    def test_flipped_payload_byte_raises(self, shard_and_cache):
        shard, cache = shard_and_cache
        data = bytearray(encode_skeleton_file(shard, dict(cache)))
        data[-3] ^= 0xFF
        with pytest.raises(SkeletonStoreError):
            decode_skeleton_file(bytes(data))

    def test_wrong_content_address_raises(self, config, shard_and_cache):
        shard, cache = shard_and_cache
        key = SkeletonKey.for_config(config, 0)
        other = SkeletonKey.for_config(
            dataclasses.replace(config, seed=7), 0
        )
        data = encode_skeleton_file(shard, dict(cache), key=other)
        with pytest.raises(SkeletonStoreError, match="foreign or renamed"):
            decode_skeleton_file(data, key=key)

    def test_populate_false_skips_the_annex(self, config, shard_and_cache):
        shard, cache = shard_and_cache
        key = SkeletonKey.for_config(config, 0)
        data = encode_skeleton_file(shard, dict(cache), key=key)
        decoded, decoded_cache = decode_skeleton_file(data, populate=False, key=key)
        assert decoded.skeletons == shard.skeletons
        assert decoded_cache is None


class TestContentAddressing:
    def test_filename_embeds_index_and_digest(self, config):
        key = SkeletonKey.for_config(config, 3)
        assert key.filename().startswith("skel-000003-")
        assert key.filename().endswith(".skel")

    def test_distinct_populations_get_distinct_filenames(self, config):
        names = {
            SkeletonKey.for_config(config, 0).filename(),
            SkeletonKey.for_config(dataclasses.replace(config, seed=7), 0).filename(),
            SkeletonKey.for_config(dataclasses.replace(config, size=480), 0).filename(),
            SkeletonKey.for_config(
                dataclasses.replace(config, redirect_fraction=0.5), 0
            ).filename(),
            SkeletonKey.for_config(config, 1).filename(),
        }
        assert len(names) == 5

    def test_scenarios_share_the_baseline_address(self, config):
        """Scenarios are post-RNG transforms: they must not fragment the cache."""
        base = SkeletonKey.for_config(config, 0)
        for name in GRID_MEMBERS:
            member = load_scenario(name).population_config(base=config)
            assert population_fingerprint(member) == population_fingerprint(config)
            assert SkeletonKey.for_config(member, 0).filename() == base.filename()

    def test_shard_count_and_partial_last_shard(self):
        assert shard_count(1) == 1
        assert shard_count(GENERATION_SHARD_SIZE) == 1
        assert shard_count(GENERATION_SHARD_SIZE + 76) == 2
        key = SkeletonKey.for_config(
            PopulationConfig(size=GENERATION_SHARD_SIZE + 76, seed=1), 1
        )
        assert key.expected_length() == 76


class TestByteIdentity:
    @pytest.mark.parametrize(
        "workers,shard_size,backend",
        [
            (1, SHARD_SIZE, "object"),
            (2, SHARD_SIZE, "columnar"),
            (2, 90, "columnar"),  # scan shards that straddle nothing evenly
        ],
    )
    def test_cold_then_warm_streamed_runs_match_cache_free(
        self, config, references, tmp_path, workers, shard_size, backend
    ):
        directory = str(tmp_path / "skel")
        kwargs = dict(
            population_config=config,
            stream=True,
            workers=workers,
            shard_size=shard_size,
            spoofed_targets_per_provider=SPOOFED,
            scan_backend=backend,
            skeleton_cache_dir=directory,
        )
        cold = build_report(MeasurementCampaign(**kwargs).run()).text
        entries = SkeletonStore(directory).entries()
        assert len(entries) == shard_count(POPULATION_SIZE)  # cold run populated
        stamps = {
            name: os.stat(os.path.join(directory, name)).st_mtime_ns
            for name in entries
        }
        reset_stores()
        warm_text = build_report(MeasurementCampaign(**kwargs).run()).text
        assert cold == references["plain"]
        assert warm_text == references["plain"]
        # The warm run replayed every shard: nothing was rewritten.  (Cache
        # counters live per process, so with workers > 1 disk state is the
        # only observable.)
        for name, stamp in stamps.items():
            assert os.stat(os.path.join(directory, name)).st_mtime_ns == stamp

    def test_eager_campaign_through_the_store(self, config, warmed_dir):
        plain = build_report(
            MeasurementCampaign(
                population_config=config, spoofed_targets_per_provider=SPOOFED
            ).run()
        ).text
        cached = build_report(
            MeasurementCampaign(
                population_config=config,
                spoofed_targets_per_provider=SPOOFED,
                skeleton_cache_dir=warmed_dir,
            ).run()
        ).text
        assert cached == plain
        assert cache_counters()["misses"] == 0

    def test_generate_population_cached_matches_eager(self, config, warmed_dir):
        eager = generate_population(config)
        cached = generate_population_cached(SkeletonStore(warmed_dir), config)
        assert cache_counters()["misses"] == 0
        assert cached._shard_regenerable is True
        assert cached.config == eager.config
        assert len(cached.deployments) == len(eager.deployments)
        for ours, theirs in zip(cached.deployments, eager.deployments):
            assert ours.domain == theirs.domain
            for attribute in ("https_chain", "quic_chain"):
                ours_chain = getattr(ours, attribute)
                theirs_chain = getattr(theirs, attribute)
                assert (ours_chain is None) == (theirs_chain is None)
                if ours_chain is not None:
                    assert ours_chain.leaf.der == theirs_chain.leaf.der
                    assert len(ours_chain.certificates) == len(theirs_chain.certificates)

    def test_one_store_serves_every_scenario(self, config, references, warmed_dir):
        """Cross-scenario sharing: warm baseline shards, no new entries, no misses."""
        entries_before = SkeletonStore(warmed_dir).entries()
        for name in GRID_MEMBERS:
            member = load_scenario(name).population_config(base=config)
            reset_stores()
            reset_cache_counters()
            text = build_report(
                MeasurementCampaign(
                    population_config=member,
                    skeleton_cache_dir=warmed_dir,
                    **CAMPAIGN_KWARGS,
                ).run()
            ).text
            assert text == references[name], f"warm {name} drifted from cache-free"
            assert cache_counters()["misses"] == 0
        assert SkeletonStore(warmed_dir).entries() == entries_before

    def test_grid_campaign_through_the_store(self, config, references, warmed_dir):
        results = run_grid_campaign(
            load_grid(",".join(GRID_MEMBERS)),
            config=config,
            shard_size=SHARD_SIZE,
            spoofed_targets_per_provider=SPOOFED,
            scan_backend="columnar",
            skeleton_cache_dir=warmed_dir,
        )
        assert cache_counters()["misses"] == 0
        for name in GRID_MEMBERS:
            assert build_report(results[name]).text == references[name]

    def test_range_slicing_across_generation_shard_boundary(self, tmp_path):
        size = GENERATION_SHARD_SIZE + 76
        config = PopulationConfig(size=size, seed=5)
        store = SkeletonStore(str(tmp_path / "skel"))
        start, stop = GENERATION_SHARD_SIZE - 20, GENERATION_SHARD_SIZE + 60
        cached = skeletons_for_range(store, config, start, stop)
        eager = population_module.deployments_for_range(
            config, start, stop, skeleton=True
        )
        assert cached == list(eager)
        with pytest.raises(ValueError, match="out of bounds"):
            skeletons_for_range(store, config, 0, size + 1)

    def test_materialised_range_matches_eager(self, config, warmed_dir):
        eager = population_module.deployments_for_range(config, 100, 140)
        cached = deployments_for_range(SkeletonStore(warmed_dir), config, 100, 140)
        assert len(cached) == len(eager)
        for ours, theirs in zip(cached, eager):
            assert ours.domain == theirs.domain
            if theirs.https_chain is not None:
                assert ours.https_chain.leaf.der == theirs.https_chain.leaf.der


class TestGoldenArtefacts:
    def test_golden_digests_through_a_warmed_cache(self, tmp_path):
        """The byte-pinned reference campaign, warm-started: zero drift."""
        golden_path = os.path.join(
            os.path.dirname(__file__), "golden", "report_digests.json"
        )
        with open(golden_path, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        params = golden["campaign"]
        config = PopulationConfig(size=params["size"], seed=params["seed"])
        directory = str(tmp_path / "skel")
        warm(directory, config)
        reset_cache_counters()
        results = MeasurementCampaign(
            population=generate_population_cached(SkeletonStore(directory), config),
            run_sweep=True,
            sweep_sample_size=params["sweep_sample_size"],
            spoofed_targets_per_provider=params["spoofed_targets_per_provider"],
        ).run()
        assert cache_counters()["misses"] == 0
        with tempfile.TemporaryDirectory() as export_dir:
            export_evaluation(results, export_dir)
            for name in sorted(os.listdir(export_dir)):
                with open(os.path.join(export_dir, name), "rb") as handle:
                    digest = hashlib.sha256(handle.read()).hexdigest()
                assert digest == golden["digests"].get(name), (
                    f"warm-started {name} drifted from the golden artefact"
                )


def _warm_campaign_text(config, directory) -> str:
    return build_report(
        MeasurementCampaign(
            population_config=config, skeleton_cache_dir=directory, **CAMPAIGN_KWARGS
        ).run()
    ).text


class TestQuarantine:
    @pytest.fixture()
    def damaged_dir(self, warmed_dir, tmp_path):
        """A private copy of the warmed directory for destructive tests."""
        directory = str(tmp_path / "skel")
        shutil.copytree(warmed_dir, directory)
        return directory

    @pytest.mark.parametrize(
        "damage",
        [
            truncate_file,
            corrupt_file,
            lambda path: open(path, "wb").close(),  # emptied
        ],
        ids=["truncated", "corrupted", "emptied"],
    )
    def test_defective_file_is_quarantined_and_regenerated(
        self, config, references, damaged_dir, damage
    ):
        store = SkeletonStore(damaged_dir)
        victim = store.entries()[0]
        damage(os.path.join(damaged_dir, victim))
        assert _warm_campaign_text(config, damaged_dir) == references["plain"]
        assert cache_counters()["misses"] == 1
        fresh = SkeletonStore(damaged_dir)
        assert victim in fresh.entries()  # regenerated under the same address
        assert os.listdir(fresh.quarantine_directory)  # evidence kept

    def test_stale_format_version_is_quarantined(self, config, references, damaged_dir):
        store = SkeletonStore(damaged_dir)
        path = os.path.join(damaged_dir, store.entries()[0])
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data.replace(b"/1", b"/0", 1))
        assert _warm_campaign_text(config, damaged_dir) == references["plain"]
        assert os.listdir(SkeletonStore(damaged_dir).quarantine_directory)

    def test_foreign_shard_under_expected_name_is_quarantined(
        self, config, references, damaged_dir, tmp_path
    ):
        """A same-shape shard of another population, renamed to the expected
        filename, is internally consistent — only the embedded content
        address gives it away."""
        foreign_config = dataclasses.replace(config, seed=7)
        foreign_dir = str(tmp_path / "foreign")
        warm(foreign_dir, foreign_config)
        foreign_store = SkeletonStore(foreign_dir)
        foreign_path = os.path.join(foreign_dir, foreign_store.entries()[0])
        store = SkeletonStore(damaged_dir)
        victim = os.path.join(damaged_dir, store.entries()[0])
        shutil.copyfile(foreign_path, victim)
        reset_cache_counters()
        assert _warm_campaign_text(config, damaged_dir) == references["plain"]
        assert cache_counters()["misses"] == 1
        assert os.listdir(SkeletonStore(damaged_dir).quarantine_directory)

    def test_memo_is_authoritative_until_reset(self, config, tmp_path):
        directory = str(tmp_path / "skel")
        warm(directory, config)
        store = SkeletonStore(directory)
        shard, _ = store.load_or_generate(config, 0)
        corrupt_file(os.path.join(directory, store.entries()[0]))
        again, _ = store.load_or_generate(config, 0)
        assert again is shard  # decoded-shard memo: disk not consulted
        assert store.misses == 0
        store.reset_memo()
        store.load_or_generate(config, 0)  # now quarantines and regenerates
        assert store.misses == 1
        assert os.listdir(store.quarantine_directory)


class TestDirectoryBinding:
    def test_rebinding_the_same_population_is_fine(self, config, warmed_dir):
        SkeletonStore(warmed_dir).bind(config)

    @pytest.mark.parametrize(
        "other",
        [
            lambda config: dataclasses.replace(config, size=600),
            lambda config: dataclasses.replace(config, seed=7),
        ],
        ids=["size", "seed"],
    )
    def test_mismatched_population_is_rejected(self, config, warmed_dir, other):
        with pytest.raises(SkeletonStoreError, match="different population"):
            SkeletonStore(warmed_dir).bind(other(config))

    def test_mismatched_cache_fails_the_campaign_eagerly(self, config, warmed_dir):
        campaign = MeasurementCampaign(
            population_config=dataclasses.replace(config, size=240),
            skeleton_cache_dir=warmed_dir,
            **CAMPAIGN_KWARGS,
        )
        with pytest.raises(SkeletonStoreError, match="different population"):
            campaign.run()

    def test_unreadable_metadata_is_rejected(self, config, tmp_path):
        store = SkeletonStore(str(tmp_path / "skel"))
        with open(store.metadata_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(SkeletonStoreError, match="unreadable"):
            store.bind(config)

    def test_store_caches_baseline_shards_only(self, config, tmp_path):
        member = load_scenario("trimmed-chains").population_config(base=config)
        assert member.scenario is not None and not member.scenario.is_identity
        store = SkeletonStore(str(tmp_path / "skel"))
        with pytest.raises(SkeletonStoreError, match="baseline"):
            store.load_or_generate(member, 0)


class TestWarmAndCounters:
    def test_warm_twice_reports_hits(self, config, tmp_path):
        directory = str(tmp_path / "skel")
        assert warm(directory, config) == (0, 1)
        assert warm(directory, config) == (1, 0)
        assert cache_counters() == {"hits": 1, "misses": 1}
        reset_cache_counters()
        assert cache_counters() == {"hits": 0, "misses": 0}

    def test_warm_strips_scenarios(self, config, tmp_path):
        directory = str(tmp_path / "skel")
        member = load_scenario("trimmed-chains").population_config(base=config)
        assert warm(directory, member) == (0, 1)
        assert warm(directory, config) == (1, 0)  # same baseline entry

    def test_store_registry_is_per_directory_until_reset(self, tmp_path):
        directory = str(tmp_path / "skel")
        store = store_for(directory)
        assert store_for(directory) is store
        assert store_for(str(tmp_path / "other")) is not store
        reset_stores()
        assert store_for(directory) is not store


class TestWarmPathObjects:
    def test_chain_spec_pickles_without_its_hash_memo(self, shard_and_cache):
        _, cache = shard_and_cache
        spec = next(iter(cache))
        memoized = hash(spec)
        assert "_hash" not in spec.__getstate__()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == memoized

    def test_deferred_leaf_expands_to_the_issued_fields(self, config, warmed_dir):
        eager = population_module.deployments_for_range(config, 0, 24)
        cached = deployments_for_range(SkeletonStore(warmed_dir), config, 0, 24)
        compared = 0
        for ours, theirs in zip(cached, eager):
            if theirs.https_chain is None:
                continue
            ours_leaf = ours.https_chain.leaf
            theirs_leaf = theirs.https_chain.leaf
            assert ours_leaf.der == theirs_leaf.der
            assert ours_leaf.san_names == theirs_leaf.san_names
            # The deferred fields expand on first read, to the issued values.
            assert ours_leaf.subject == theirs_leaf.subject
            assert ours_leaf.validity == theirs_leaf.validity
            assert ours_leaf.extensions == theirs_leaf.extensions
            assert "_deferred" not in ours_leaf.__dict__
            compared += 1
        assert compared > 0

    def test_deferred_leaf_pickles_after_expansion(self, config, warmed_dir):
        shard, cache = SkeletonStore(warmed_dir).load_or_generate(config, 0)
        leaf = next(iter(cache.values())).leaf
        assert "_deferred" in leaf.__dict__
        clone = pickle.loads(pickle.dumps(leaf))
        assert "_deferred" not in clone.__dict__
        assert clone.der == leaf.der
        assert clone.subject == leaf.subject
        assert clone.validity == leaf.validity
