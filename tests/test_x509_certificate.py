"""Unit tests for certificate construction."""

import pytest

from repro.asn1 import decode_tlv, iter_tlvs
from repro.asn1.tags import Tag
from repro.x509 import (
    CertificateBuilder,
    DistinguishedName,
    KeyAlgorithm,
    PublicKey,
    SubjectAlternativeName,
    Validity,
)
from repro.x509.certificate import serial_from_seed
from repro.x509.extensions import BasicConstraints, KeyUsage


def _build_certificate(key_algorithm=KeyAlgorithm.ECDSA_P256, issuer_algorithm=KeyAlgorithm.RSA_2048):
    subject = DistinguishedName.build(common_name="unit.example.org")
    issuer = DistinguishedName.build(common_name="Unit Test CA", organization="Unit", country="US")
    issuer_key = PublicKey(issuer_algorithm, "unit-ca")
    builder = CertificateBuilder(
        subject=subject,
        issuer=issuer,
        public_key=PublicKey(key_algorithm, "unit-leaf"),
        issuer_key=issuer_key,
        validity=Validity.for_days(90),
        serial_number=serial_from_seed("unit-test"),
        extensions=[
            BasicConstraints(ca=False),
            KeyUsage(digital_signature=True),
            SubjectAlternativeName(["unit.example.org"]),
        ],
        san_names=("unit.example.org",),
    )
    return builder.build()


class TestCertificateStructure:
    def test_der_is_a_sequence_of_three_components(self):
        certificate = _build_certificate()
        tag, content, consumed = decode_tlv(certificate.der)
        assert tag == Tag.SEQUENCE
        assert consumed == len(certificate.der)
        children = list(iter_tlvs(content))
        assert len(children) == 3  # tbsCertificate, signatureAlgorithm, signatureValue

    def test_size_equals_der_length(self):
        certificate = _build_certificate()
        assert certificate.size == len(certificate.der)

    def test_tbs_is_embedded_in_der(self):
        certificate = _build_certificate()
        assert certificate.tbs_der in certificate.der

    def test_accessors(self):
        certificate = _build_certificate()
        assert certificate.subject_common_name == "unit.example.org"
        assert certificate.issuer_common_name == "Unit Test CA"
        assert certificate.is_self_signed is False
        assert certificate.key_algorithm is KeyAlgorithm.ECDSA_P256
        assert certificate.san_names == ("unit.example.org",)

    def test_fingerprint_is_stable_hex(self):
        certificate = _build_certificate()
        assert certificate.fingerprint() == certificate.fingerprint()
        assert len(certificate.fingerprint()) == 64

    def test_extension_lookup(self):
        certificate = _build_certificate()
        assert certificate.san_extension is not None
        assert certificate.extension("1.2.3.4") is None

    def test_rsa_signed_cert_larger_than_ecdsa_signed(self):
        rsa_signed = _build_certificate(issuer_algorithm=KeyAlgorithm.RSA_4096)
        ec_signed = _build_certificate(issuer_algorithm=KeyAlgorithm.ECDSA_P256)
        assert rsa_signed.size > ec_signed.size + 300

    def test_leaf_sizes_are_realistic(self):
        ecdsa = _build_certificate(key_algorithm=KeyAlgorithm.ECDSA_P256)
        rsa = _build_certificate(key_algorithm=KeyAlgorithm.RSA_2048)
        # A minimally-extended DV leaf; real-world leaves are 0.8-1.6 kB, this
        # one omits AIA/SCTs so it sits a bit below that.
        assert 400 <= ecdsa.size <= 1600
        assert rsa.size > ecdsa.size


class TestValidity:
    def test_for_days(self):
        validity = Validity.for_days(90)
        assert (validity.not_after - validity.not_before).days == 90

    def test_encoding_contains_two_utc_times(self):
        encoded = Validity.for_days(30).encode()
        _, content, _ = decode_tlv(encoded)
        children = list(iter_tlvs(content))
        assert len(children) == 2
        assert all(tag == Tag.UTC_TIME for tag, _ in children)


class TestSerials:
    def test_serial_is_positive_and_large(self):
        serial = serial_from_seed("abc")
        assert serial > 0
        assert serial.bit_length() >= 120

    def test_serial_deterministic_and_distinct(self):
        assert serial_from_seed("abc") == serial_from_seed("abc")
        assert serial_from_seed("abc") != serial_from_seed("abd")
