"""Shared fixtures.

Expensive objects (the CA hierarchy, a synthetic population, a full campaign
run) are built once per session and shared; they are deterministic, so sharing
them does not couple tests.
"""

from __future__ import annotations

import pytest

from repro.quic.client import QuicClientConfig
from repro.scanners.orchestrator import CampaignResults, MeasurementCampaign
from repro.webpki.population import InternetPopulation, PopulationConfig, generate_population
from repro.x509.ca import WebPkiHierarchy, default_hierarchy


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "memory_budget: slow peak-RSS budget tests (env-gated via "
        "REPRO_MEMORY_BUDGET_TESTS; CI deselects with -m 'not memory_budget')",
    )


@pytest.fixture(scope="session")
def hierarchy() -> WebPkiHierarchy:
    """The (cached, deterministic) Web PKI hierarchy."""
    return default_hierarchy()


@pytest.fixture(scope="session")
def small_population() -> InternetPopulation:
    """A small but statistically meaningful synthetic population."""
    return generate_population(PopulationConfig(size=1500, seed=42))


@pytest.fixture(scope="session")
def campaign_results(small_population: InternetPopulation) -> CampaignResults:
    """A full campaign over the small population, with a sampled sweep."""
    campaign = MeasurementCampaign(
        population=small_population,
        run_sweep=True,
        sweep_sample_size=120,
        spoofed_targets_per_provider=25,
    )
    return campaign.run()


@pytest.fixture(scope="session")
def browser_client() -> QuicClientConfig:
    """A Firefox-like client (the 1362-byte analysis size of the paper)."""
    return QuicClientConfig(initial_datagram_size=1362)


@pytest.fixture(scope="session")
def cloudflare_chain(hierarchy: WebPkiHierarchy):
    return hierarchy.profiles["Cloudflare ECC CA-3"].issue("fixture-cf.example")


@pytest.fixture(scope="session")
def lets_encrypt_long_chain(hierarchy: WebPkiHierarchy):
    return hierarchy.profiles["Let's Encrypt R3 + cross-signed X1"].issue("fixture-le.example")


@pytest.fixture(scope="session")
def lets_encrypt_short_chain(hierarchy: WebPkiHierarchy):
    return hierarchy.profiles["Let's Encrypt E1 (short)"].issue("fixture-e1.example")
