"""Tests for the size-memoization layer and the server flight-plan cache.

The wire-model sizes are observable paper quantities, so the arithmetic
(cached) sizes must equal the encoded lengths exactly, and a cached
:class:`ServerFlightPlan` must be byte-for-byte what a fresh build produces.
"""

from __future__ import annotations

import random

import pytest

from repro.quic.client import QuicClientConfig, build_client_initial_datagram
from repro.quic.coalescing import UdpDatagram
from repro.quic.connection_id import ConnectionId
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    PaddingFrame,
    PingFrame,
)
from repro.quic.packet import (
    HandshakePacket,
    InitialPacket,
    OneRttPacket,
    RetryPacket,
)
from repro.quic.profiles import BUILTIN_PROFILES
from repro.quic.server import FlightPlanCache, QuicServer
from repro.quic.varint import MAX_VARINT, VarintError, encode_varint, varint_size
from repro.tls.handshake_messages import ClientHello
from repro.webpki.deployment import ServiceCategory


def _random_frame(rng: random.Random):
    kind = rng.randrange(5)
    if kind == 0:
        return PaddingFrame(rng.randrange(0, 1400))
    if kind == 1:
        return PingFrame()
    if kind == 2:
        return AckFrame(
            largest_acknowledged=rng.randrange(1 << 20),
            ack_delay=rng.randrange(1 << 14),
            first_ack_range=rng.randrange(1 << 8),
        )
    if kind == 3:
        return CryptoFrame(
            offset=rng.randrange(1 << 16), data=rng.randbytes(rng.randrange(0, 1200))
        )
    return ConnectionCloseFrame(
        error_code=rng.randrange(1 << 10),
        frame_type=rng.randrange(64),
        reason="r" * rng.randrange(0, 40),
    )


def _random_packet(rng: random.Random):
    dcid = ConnectionId.generate(f"dcid:{rng.randrange(1 << 30)}", rng.randrange(0, 21))
    scid = ConnectionId.generate(f"scid:{rng.randrange(1 << 30)}", rng.randrange(0, 21))
    frames = tuple(_random_frame(rng) for _ in range(rng.randrange(1, 5)))
    kind = rng.randrange(4)
    if kind == 0:
        token = rng.randbytes(rng.randrange(0, 64))
        return InitialPacket(dcid, scid, rng.randrange(1 << 24), frames, token=token)
    if kind == 1:
        return HandshakePacket(dcid, scid, rng.randrange(1 << 24), frames)
    if kind == 2:
        return RetryPacket(dcid, scid, token=rng.randbytes(rng.randrange(1, 64)))
    return OneRttPacket(dcid, rng.randrange(1 << 24), frames)


class TestVarintSize:
    @pytest.mark.parametrize(
        "value",
        [0, 1, 63, 64, 255, 16_383, 16_384, (1 << 30) - 1, 1 << 30, MAX_VARINT],
    )
    def test_matches_encoded_length_at_boundaries(self, value):
        assert varint_size(value) == len(encode_varint(value))

    def test_randomized_matches_encoded_length(self):
        rng = random.Random("varint-sizes")
        for _ in range(2000):
            value = rng.randrange(MAX_VARINT + 1)
            assert varint_size(value) == len(encode_varint(value))

    def test_out_of_range_rejected(self):
        with pytest.raises(VarintError):
            varint_size(-1)
        with pytest.raises(VarintError):
            varint_size(MAX_VARINT + 1)


class TestSizesEqualEncodedLength:
    def test_random_frames(self):
        rng = random.Random("frame-sizes")
        for _ in range(500):
            frame = _random_frame(rng)
            assert frame.size == len(frame.encode())

    def test_random_packets(self):
        rng = random.Random("packet-sizes")
        for _ in range(300):
            packet = _random_packet(rng)
            assert packet.size == len(packet.encode())
            assert packet.payload_size == sum(f.size for f in packet.frames)

    def test_random_datagrams(self):
        rng = random.Random("datagram-sizes")
        for _ in range(100):
            packets = tuple(_random_packet(rng) for _ in range(rng.randrange(1, 4)))
            datagram = UdpDatagram(packets)
            assert datagram.size == len(datagram.encode())
            assert datagram.padding_bytes == sum(p.padding_bytes for p in packets)

    def test_padded_client_initials_across_sweep_sizes(self):
        for size in (1200, 1252, 1362, 1472):
            datagram = build_client_initial_datagram(
                "sweep.example", QuicClientConfig(initial_datagram_size=size)
            )
            assert datagram.size == size
            assert len(datagram.encode()) == size


def _plan_bytes(plan):
    retry = plan.retry_datagram.encode() if plan.retry_datagram else b""
    return (
        retry,
        tuple(d.encode() for d in plan.first_rtt_datagrams),
        tuple(d.encode() for d in plan.deferred_datagrams),
    )


class TestFlightPlanCache:
    @pytest.mark.parametrize(
        "profile", list(BUILTIN_PROFILES.values()), ids=lambda p: p.name
    )
    def test_cached_plan_byte_identical_to_fresh(self, profile, cloudflare_chain):
        hello = ClientHello(server_name="cache.example")
        shared = FlightPlanCache()
        first = QuicServer(
            "cache.example", cloudflare_chain, profile, flight_cache=shared
        ).respond_to_initial(hello, client_initial_size=1362)
        cached = QuicServer(
            "cache.example", cloudflare_chain, profile, flight_cache=shared
        ).respond_to_initial(hello, client_initial_size=1362)
        fresh = QuicServer(
            "cache.example", cloudflare_chain, profile, flight_cache=FlightPlanCache()
        ).respond_to_initial(hello, client_initial_size=1362)

        assert shared.cache_info().hits >= 1
        assert _plan_bytes(first) == _plan_bytes(cached) == _plan_bytes(fresh)
        assert first.total_bytes == cached.total_bytes == fresh.total_bytes
        assert first.tls_flight.total_crypto_size == fresh.tls_flight.total_crypto_size

    def test_tracker_is_fresh_per_plan(self, cloudflare_chain):
        profile = BUILTIN_PROFILES["rfc-compliant"]
        server = QuicServer(
            "tracker.example", cloudflare_chain, profile, flight_cache=FlightPlanCache()
        )
        hello = ClientHello(server_name="tracker.example")
        plan_a = server.respond_to_initial(hello, client_initial_size=1200)
        plan_b = server.respond_to_initial(hello, client_initial_size=1200)
        assert plan_a.tracker is not plan_b.tracker
        plan_a.tracker.on_datagram_sent(10_000)
        assert plan_b.tracker.bytes_sent != plan_a.tracker.bytes_sent

    def test_initial_size_shares_one_cached_flight(self, cloudflare_chain):
        profile = BUILTIN_PROFILES["rfc-compliant"]
        cache = FlightPlanCache()
        hello = ClientHello(server_name="sizes.example")
        for size in (1200, 1250, 1362, 1472):
            QuicServer(
                "sizes.example", cloudflare_chain, profile, flight_cache=cache
            ).respond_to_initial(hello, client_initial_size=size)
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == 3
        assert info.hit_rate == pytest.approx(0.75)

    def test_lru_eviction_bounds_entries(self, cloudflare_chain):
        profile = BUILTIN_PROFILES["rfc-compliant"]
        cache = FlightPlanCache(maxsize=2)
        for index in range(4):
            hello = ClientHello(server_name=f"evict-{index}.example")
            QuicServer(
                f"evict-{index}.example", cloudflare_chain, profile, flight_cache=cache
            ).respond_to_initial(hello, client_initial_size=1200)
        assert cache.cache_info().currsize == 2

    def test_campaign_surfaces_hit_rate(self, campaign_results):
        info = campaign_results.flight_cache
        assert info is not None
        assert info.hits + info.misses > 0
        assert info.hit_rate > 0.8


class TestPopulationCategoryIndex:
    def test_index_matches_full_scan(self, small_population):
        for category in ServiceCategory:
            expected = [
                d for d in small_population.deployments if d.category is category
            ]
            assert small_population.by_category(category) == expected
        assert small_population.quic_services() == small_population.by_category(
            ServiceCategory.QUIC
        )

    def test_category_counts_sum_to_population(self, small_population):
        counts = small_population.category_counts()
        assert sum(counts.values()) == len(small_population)
