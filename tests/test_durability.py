"""Durability differentials: injected faults must not move a single byte.

Every test here runs the streaming campaign under a scripted
:class:`~repro.scanners.faults.FaultPlan` — a worker raises, dies by SIGKILL
or stalls past the dispatch timeout, a checkpoint is corrupted, the whole run
is killed mid-campaign — and then pins that the recovered report (and the
exported CSVs) is byte-identical to an uninterrupted run.  Faults are keyed
by ``(shard index, attempt)``, so "crash once, succeed on retry" is
deterministic and repeatable.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time

import pytest

import repro.scanners.streaming as streaming
from repro.analysis.export import export_evaluation
from repro.analysis.report import build_report
from repro.scanners import MeasurementCampaign
from repro.scanners.checkpoint import CheckpointKey, CheckpointStore
from repro.scanners.faults import (
    FAULT_PLAN_ENV,
    CheckpointFault,
    FaultPlan,
    FaultPlanError,
    WorkerFault,
    load_fault_plan,
)
from repro.scanners.sharding import (
    RetryPolicy,
    ShardDispatchError,
    dispatch_with_retry,
)
from repro.webpki.population import PopulationConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

POPULATION_SIZE = 480
SHARD_SIZE = 120  # -> shards 0..3
CAMPAIGN_KWARGS = dict(stream=True, shard_size=SHARD_SIZE, spoofed_targets_per_provider=12)

#: Fast retries: tests inject failures on purpose, waiting is pure overhead.
FAST_RETRIES = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.02)


@pytest.fixture(scope="module")
def config():
    return PopulationConfig(size=POPULATION_SIZE, seed=2022)


@pytest.fixture(scope="module")
def reference(config):
    """The uninterrupted run every faulted run must reproduce byte for byte."""
    results = MeasurementCampaign(population_config=config, **CAMPAIGN_KWARGS).run()
    return build_report(results).text


def _run(config, **kwargs):
    merged = dict(CAMPAIGN_KWARGS)
    merged.update(kwargs)
    return MeasurementCampaign(population_config=config, **merged).run()


def _export_digests(results, directory) -> dict:
    export_evaluation(results, str(directory))
    digests = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            digests[name] = hashlib.sha256(handle.read()).hexdigest()
    return digests


class TestWorkerFaultRecovery:
    def test_raise_once_is_retried_byte_identically(self, config, reference):
        plan = FaultPlan(worker=(WorkerFault(shard=1, attempt=0, kind="raise"),))
        results = _run(config, retry_policy=FAST_RETRIES, fault_plan=plan)
        assert build_report(results).text == reference

    def test_raise_on_every_shard_once_still_recovers(self, config, reference):
        plan = FaultPlan(
            worker=tuple(
                WorkerFault(shard=shard, attempt=0, kind="raise") for shard in range(4)
            )
        )
        results = _run(config, retry_policy=FAST_RETRIES, fault_plan=plan)
        assert build_report(results).text == reference

    def test_exhausted_retries_fail_loudly_with_manifest(self, config, tmp_path):
        plan = FaultPlan(
            worker=tuple(
                WorkerFault(shard=1, attempt=attempt, kind="raise")
                for attempt in range(FAST_RETRIES.max_attempts)
            )
        )
        with pytest.raises(ShardDispatchError) as excinfo:
            _run(
                config,
                retry_policy=FAST_RETRIES,
                fault_plan=plan,
                checkpoint_dir=str(tmp_path),
            )
        assert excinfo.value.incomplete == (1,)
        assert excinfo.value.completed == (0, 2, 3)
        with open(tmp_path / "incomplete.json", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest == {"completed": [0, 2, 3], "incomplete": [1]}

    def test_manifest_is_cleared_by_a_successful_resume(
        self, config, reference, tmp_path
    ):
        plan = FaultPlan(
            worker=tuple(
                WorkerFault(shard=1, attempt=attempt, kind="raise")
                for attempt in range(FAST_RETRIES.max_attempts)
            )
        )
        with pytest.raises(ShardDispatchError):
            _run(
                config,
                retry_policy=FAST_RETRIES,
                fault_plan=plan,
                checkpoint_dir=str(tmp_path),
            )
        results = _run(config, checkpoint_dir=str(tmp_path), resume=True)
        assert build_report(results).text == reference
        assert not (tmp_path / "incomplete.json").exists()

    def test_killed_worker_breaks_the_pool_and_recovers(self, config, reference):
        plan = FaultPlan(worker=(WorkerFault(shard=2, attempt=0, kind="kill"),))
        results = _run(config, workers=2, retry_policy=FAST_RETRIES, fault_plan=plan)
        assert build_report(results).text == reference

    def test_stalled_shard_times_out_and_recovers(self, config, reference):
        plan = FaultPlan(
            worker=(WorkerFault(shard=0, attempt=0, kind="stall", stall_seconds=30.0),)
        )
        policy = RetryPolicy(
            max_attempts=3, shard_timeout=1.0, backoff_base=0.01, backoff_cap=0.02
        )
        results = _run(config, workers=2, retry_policy=policy, fault_plan=plan)
        assert build_report(results).text == reference

    def test_three_stalled_shards_share_one_timeout_window(self, config, reference):
        """The regression the shared deadline fixes: K simultaneous stalls used
        to serialise into K full timeout windows; now the round abandons all
        of them together after ~one window, and the retries still land on the
        reference bytes."""
        plan = FaultPlan(
            worker=tuple(
                WorkerFault(shard=shard, attempt=0, kind="stall", stall_seconds=30.0)
                for shard in (0, 1, 2)
            )
        )
        policy = RetryPolicy(
            max_attempts=3, shard_timeout=2.5, backoff_base=0.01, backoff_cap=0.02
        )
        start = time.monotonic()
        results = _run(config, workers=4, retry_policy=policy, fault_plan=plan)
        elapsed = time.monotonic() - start
        assert build_report(results).text == reference
        # One shared window (2.5s) + scan work; the serial accumulation bug
        # would burn >= 3 windows (7.5s) before the first retry even starts.
        assert elapsed < 6.0, f"round took {elapsed:.1f}s — timeout windows serialised?"


#: Process-pool workers must be picklable, hence module level: sleep for the
#: scripted duration, then return the shard index.
def _sleep_worker(payload):
    index, seconds = payload
    time.sleep(seconds)
    return index


class TestSharedTimeoutWindow:
    """Unit-level pin on the dispatcher itself, free of scan-work noise."""

    STALLED = frozenset({0, 2, 4})
    TIMEOUT = 1.5

    def test_simultaneous_stalls_cost_one_window_not_k(self):
        policy = RetryPolicy(
            max_attempts=2,
            shard_timeout=self.TIMEOUT,
            backoff_base=0.01,
            backoff_cap=0.02,
        )
        collected = {}

        def make_payload(index, attempt):
            stalled = attempt == 0 and index in self.STALLED
            return (index, 30.0 if stalled else 0.0)

        start = time.monotonic()
        dispatch_with_retry(
            list(range(6)),
            make_payload,
            _sleep_worker,
            workers=6,
            policy=policy,
            on_result=lambda index, result, attempt: collected.__setitem__(
                index, (result, attempt)
            ),
        )
        elapsed = time.monotonic() - start
        # Every shard completed exactly once; the stalled three on attempt 1.
        assert collected == {
            index: (index, 1 if index in self.STALLED else 0) for index in range(6)
        }
        # One shared window plus pool spin-up; the serial per-future wait this
        # pins against needed >= 3 * TIMEOUT = 4.5s of timeouts alone.
        assert elapsed < 3 * self.TIMEOUT, (
            f"dispatch took {elapsed:.1f}s for 3 stalls at a {self.TIMEOUT}s "
            "timeout — windows serialised?"
        )


class TestResume:
    def test_resume_dispatches_only_missing_shards(
        self, config, reference, tmp_path, monkeypatch
    ):
        _run(config, checkpoint_dir=str(tmp_path))
        missing = CheckpointKey.for_campaign(config, SHARD_SIZE, 2)
        os.unlink(tmp_path / missing.filename())

        dispatched = []
        original = streaming.dispatch_with_retry

        def spy(indices, *args, **kwargs):
            dispatched.append(list(indices))
            return original(indices, *args, **kwargs)

        monkeypatch.setattr(streaming, "dispatch_with_retry", spy)
        results = _run(config, checkpoint_dir=str(tmp_path), resume=True)
        assert dispatched == [[2]]
        assert build_report(results).text == reference

    def test_resume_of_a_complete_directory_dispatches_nothing(
        self, config, reference, tmp_path, monkeypatch
    ):
        _run(config, checkpoint_dir=str(tmp_path))
        dispatched = []
        original = streaming.dispatch_with_retry

        def spy(indices, *args, **kwargs):
            dispatched.append(list(indices))
            return original(indices, *args, **kwargs)

        monkeypatch.setattr(streaming, "dispatch_with_retry", spy)
        results = _run(config, checkpoint_dir=str(tmp_path), resume=True)
        assert dispatched == [[]]
        assert build_report(results).text == reference

    def test_interrupt_corrupt_resume_is_byte_identical(
        self, config, reference, tmp_path
    ):
        """The acceptance scenario: crash at a shard, corrupt a checkpoint, resume."""
        plan = FaultPlan(
            worker=(WorkerFault(shard=1, attempt=0, kind="raise"),),
            checkpoint=(CheckpointFault(shard=2, kind="corrupt"),),
        )
        first = _run(
            config,
            retry_policy=FAST_RETRIES,
            fault_plan=plan,
            checkpoint_dir=str(tmp_path),
        )
        assert build_report(first).text == reference  # faults never move bytes
        # The resume must notice shard 2's corrupted checkpoint, quarantine it
        # and re-scan — and still land on the same report.
        resumed = _run(config, checkpoint_dir=str(tmp_path), resume=True)
        assert build_report(resumed).text == reference
        quarantined = os.listdir(tmp_path / "quarantine")
        assert len(quarantined) == 1
        assert quarantined[0].startswith("shard-000002-")

    def test_stall_then_resume_is_byte_identical(self, config, reference, tmp_path):
        """A timed-out attempt whose retry checkpointed must leave a directory
        that resumes byte-identically — the late-writer race fixed by
        attempt-aware saves."""
        plan = FaultPlan(
            worker=(WorkerFault(shard=1, attempt=0, kind="stall", stall_seconds=30.0),)
        )
        policy = RetryPolicy(
            max_attempts=3, shard_timeout=1.0, backoff_base=0.01, backoff_cap=0.02
        )
        results = _run(
            config,
            workers=2,
            retry_policy=policy,
            fault_plan=plan,
            checkpoint_dir=str(tmp_path),
        )
        assert build_report(results).text == reference
        resumed = _run(config, checkpoint_dir=str(tmp_path), resume=True)
        assert build_report(resumed).text == reference
        # All four shards checkpointed — shard 1 by its retry attempt.
        store = CheckpointStore(str(tmp_path))
        for index in range(4):
            key = CheckpointKey.for_campaign(config, SHARD_SIZE, index)
            assert store.load(key) is not None

    def test_checkpoint_fault_keyed_to_retry_attempt_fires_only_then(
        self, config, reference, tmp_path
    ):
        """``attempt=1`` narrows the corruption to the retry's checkpoint: the
        resume must quarantine exactly that shard and re-scan it."""
        plan = FaultPlan(
            worker=(WorkerFault(shard=2, attempt=0, kind="raise"),),
            checkpoint=(CheckpointFault(shard=2, kind="corrupt", attempt=1),),
        )
        first = _run(
            config,
            retry_policy=FAST_RETRIES,
            fault_plan=plan,
            checkpoint_dir=str(tmp_path),
        )
        assert build_report(first).text == reference
        resumed = _run(config, checkpoint_dir=str(tmp_path), resume=True)
        assert build_report(resumed).text == reference
        quarantined = os.listdir(tmp_path / "quarantine")
        assert len(quarantined) == 1
        assert quarantined[0].startswith("shard-000002-")

    def test_checkpoint_fault_keyed_to_a_missed_attempt_never_fires(
        self, config, reference, tmp_path, monkeypatch
    ):
        """Shard 2's attempt 0 raises before checkpointing, so a fault keyed
        to attempt 0 has nothing to damage: the retry's checkpoint stays
        valid and the resume dispatches nothing."""
        plan = FaultPlan(
            worker=(WorkerFault(shard=2, attempt=0, kind="raise"),),
            checkpoint=(CheckpointFault(shard=2, kind="corrupt", attempt=0),),
        )
        first = _run(
            config,
            retry_policy=FAST_RETRIES,
            fault_plan=plan,
            checkpoint_dir=str(tmp_path),
        )
        assert build_report(first).text == reference

        dispatched = []
        original = streaming.dispatch_with_retry

        def spy(indices, *args, **kwargs):
            dispatched.append(list(indices))
            return original(indices, *args, **kwargs)

        monkeypatch.setattr(streaming, "dispatch_with_retry", spy)
        resumed = _run(config, checkpoint_dir=str(tmp_path), resume=True)
        assert dispatched == [[]]
        assert build_report(resumed).text == reference
        assert not os.path.exists(tmp_path / "quarantine")

    def test_exports_after_faulted_resume_are_byte_identical(
        self, config, tmp_path
    ):
        clean = _run(config)
        expected = _export_digests(clean, tmp_path / "clean")

        plan = FaultPlan(
            worker=(WorkerFault(shard=0, attempt=0, kind="raise"),),
            checkpoint=(CheckpointFault(shard=3, kind="truncate"),),
        )
        _run(
            config,
            retry_policy=FAST_RETRIES,
            fault_plan=plan,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        resumed = _run(config, checkpoint_dir=str(tmp_path / "ckpt"), resume=True)
        assert _export_digests(resumed, tmp_path / "resumed") == expected

    def test_checkpointing_requires_the_streaming_pipeline(self, config, tmp_path):
        with pytest.raises(ValueError, match="stream"):
            MeasurementCampaign(
                population_config=config, checkpoint_dir=str(tmp_path)
            )


class TestFaultPlanSerialisation:
    PLAN = FaultPlan(
        worker=(
            WorkerFault(shard=1, attempt=0, kind="raise"),
            WorkerFault(shard=2, attempt=1, kind="stall", stall_seconds=3.5),
        ),
        checkpoint=(CheckpointFault(shard=0, kind="corrupt"),),
    )

    #: Same plan, with a checkpoint fault narrowed to one retry attempt.
    ATTEMPT_KEYED_PLAN = FaultPlan(
        checkpoint=(
            CheckpointFault(shard=0, kind="corrupt"),
            CheckpointFault(shard=1, kind="truncate", attempt=2),
        ),
    )

    def test_json_round_trip(self):
        assert FaultPlan.from_json(self.PLAN.to_json()) == self.PLAN

    def test_attempt_keyed_checkpoint_fault_round_trips(self):
        plan = self.ATTEMPT_KEYED_PLAN
        assert FaultPlan.from_json(plan.to_json()) == plan
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.checkpoint[0].attempt is None
        assert restored.checkpoint[1].attempt == 2

    def test_attempt_key_is_omitted_from_json_when_unset(self):
        """The legacy JSON shape (no ``attempt`` key) stays stable: only
        faults that carry an attempt serialise one."""
        entries = self.ATTEMPT_KEYED_PLAN.to_dict()["checkpoint"]
        assert "attempt" not in entries[0]
        assert entries[1]["attempt"] == 2

    def test_env_arming_with_inline_json(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, self.PLAN.to_json())
        assert load_fault_plan() == self.PLAN

    def test_env_arming_with_a_path(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self.PLAN.to_json(), encoding="utf-8")
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert load_fault_plan() == self.PLAN

    def test_no_plan_armed_means_none(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert load_fault_plan() is None

    @pytest.mark.parametrize(
        "payload",
        [
            "[]",                                     # not an object
            '{"worker": [{"shard": 0}]}',             # missing kind
            '{"worker": [{"shard": 0, "kind": "explode"}]}',  # unknown kind
            '{"checkpoint": [{"shard": 0, "kind": "raise"}]}',  # wrong family
            '{"surprise": []}',                       # unknown key
            "{not json",                              # malformed
        ],
    )
    def test_malformed_plans_are_rejected(self, payload):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json(payload)


class TestKillAndResumeSubprocess:
    """The CI smoke, as a test: SIGKILL the run mid-campaign, resume, diff."""

    def _campaign(self, tmp_path, *extra, check_signal=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        command = [
            sys.executable, "-m", "repro", "campaign",
            "--size", str(POPULATION_SIZE), "--seed", "2022",
            "--stream", "--shard-size", str(SHARD_SIZE),
            *extra,
        ]
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=300,
            env=env, cwd=str(tmp_path),
        )
        if check_signal is None:
            assert completed.returncode == 0, completed.stderr
        else:
            assert completed.returncode == check_signal, completed.stderr
        return completed

    def test_sigkilled_run_resumes_byte_identically(self, tmp_path):
        plan = FaultPlan(checkpoint=(CheckpointFault(shard=2, kind="kill-run"),))
        (tmp_path / "plan.json").write_text(plan.to_json(), encoding="utf-8")

        self._campaign(tmp_path, "--output", "clean.txt")
        self._campaign(
            tmp_path,
            "--checkpoint-dir", "ckpt", "--fault-plan", "plan.json",
            "--output", "interrupted.txt",
            check_signal=-9,  # SIGKILL, exactly as a crash/OOM-kill would land
        )
        # The kill left a partial directory (shards 0..2 checkpointed) and no
        # torn report.
        checkpoints = [
            name for name in os.listdir(tmp_path / "ckpt") if name.endswith(".ckpt")
        ]
        assert len(checkpoints) == 3
        assert not (tmp_path / "interrupted.txt").exists()

        self._campaign(
            tmp_path,
            "--checkpoint-dir", "ckpt", "--resume", "--output", "resumed.txt",
        )
        clean = (tmp_path / "clean.txt").read_bytes()
        resumed = (tmp_path / "resumed.txt").read_bytes()
        assert resumed == clean


class TestCheckpointOnlyRun:
    def test_checkpointed_run_is_byte_identical_and_persists_all_shards(
        self, config, reference, tmp_path
    ):
        results = _run(config, checkpoint_dir=str(tmp_path))
        assert build_report(results).text == reference
        store = CheckpointStore(str(tmp_path))
        for index in range(4):
            key = CheckpointKey.for_campaign(config, SHARD_SIZE, index)
            summary = store.load(key)
            assert summary is not None and summary.index == index
