"""Pins for the shared statistics helpers (repro.analysis.stats).

The percentile helper's index rounding is banker's (half-to-even, Python's
built-in ``round``): golden report digests were produced under it, so these
tests pin the exact boundary behaviour a half-up reimplementation would
silently change.
"""

import pytest

from repro.analysis.stats import mean, median, percentile, share


class TestPercentileBankersRounding:
    def test_half_rank_rounds_to_even_index_zero(self):
        # rank = 0.5 * (2 - 1) = 0.5 -> round() picks 0 (half-to-even),
        # NOT 1 as half-up rounding would.
        assert percentile([1.0, 2.0], 0.5) == 1.0

    def test_half_rank_rounds_to_even_index_two(self):
        # rank = 0.5 * (4 - 1) = 1.5 -> index 2 (even), same as half-up here,
        # so four-element medians take the upper middle.
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 3.0

    def test_six_elements_half_rank(self):
        # rank = 0.5 * 5 = 2.5 -> index 2 (half-to-even), NOT 3.
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 0.5) == 3.0

    def test_quarter_rank_half_boundary(self):
        # rank = 0.25 * (3 - 1) = 0.5 -> index 0.
        assert percentile([10.0, 20.0, 30.0], 0.25) == 10.0

    def test_p95_on_twenty_one_elements_is_exact(self):
        values = list(range(21))
        # rank = 0.95 * 20 = 19.0 exactly.
        assert percentile(values, 0.95) == 19

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_empty_input(self):
        assert percentile([], 0.5) == 0.0

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


def test_median_is_percentile_half():
    values = [4.0, 1.0, 2.0, 3.0]
    assert median(values) == percentile(values, 0.5)


def test_mean_empty_and_simple():
    assert mean([]) == 0.0
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_share():
    assert share([], lambda item: True) == 0.0
    assert share([1, 2, 3, 4], lambda item: item % 2 == 0) == 0.5
