"""Differential tests: streaming reduction vs. eager campaign results.

The streaming contract under test: a campaign reduced shard-by-shard in the
workers (``MeasurementCampaign(stream=True)``) produces byte-identical
report, figure and table output to the eager paths — for any seed, worker
count and shard size — while the parent only ever holds reduced summaries.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.export import export_evaluation
from repro.analysis.report import build_report, class_shares
from repro.scanners import MeasurementCampaign
from repro.scanners.streaming import ReducedCampaignResults
from repro.webpki.population import PopulationConfig, generate_population

#: Sized to span several scan shards at the shard sizes below while keeping
#: the full matrix fast.
POPULATION_SIZE = 900

CAMPAIGN_KWARGS = dict(
    run_sweep=True,
    sweep_sample_size=60,
    spoofed_targets_per_provider=12,
)


def _eager(config, **kwargs):
    population = generate_population(config)
    return MeasurementCampaign(population=population, **CAMPAIGN_KWARGS, **kwargs).run()


def _streamed(config, **kwargs):
    return MeasurementCampaign(
        population_config=config, stream=True, **CAMPAIGN_KWARGS, **kwargs
    ).run()


class TestStreamingMatchesEager:
    @pytest.mark.parametrize("seed", [2022, 7])
    def test_report_bytes_identical_to_serial(self, seed):
        config = PopulationConfig(size=POPULATION_SIZE, seed=seed)
        eager = _eager(config)
        streamed = _streamed(config, shard_size=256)
        assert isinstance(streamed, ReducedCampaignResults)
        assert build_report(eager).text == build_report(streamed).text

    def test_report_bytes_identical_to_sharded_with_matching_counters(self):
        """Same shard size => even the flight-cache counters line up."""
        config = PopulationConfig(size=POPULATION_SIZE, seed=3)
        sharded = MeasurementCampaign(
            population=generate_population(config),
            workers=1,
            shard_size=200,
            **CAMPAIGN_KWARGS,
        ).run()
        streamed = _streamed(config, workers=1, shard_size=200)
        assert build_report(sharded).text == build_report(streamed).text
        assert sharded.flight_cache == streamed.flight_cache
        assert sharded.certificate_comparison == streamed.certificate_comparison
        assert class_shares(sharded) == class_shares(streamed)
        assert (
            sharded.https_scan.funnel.as_dict() == streamed.scan.funnel.as_dict()
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_count_does_not_change_report(self, workers):
        config = PopulationConfig(size=POPULATION_SIZE, seed=5)
        reference = _streamed(config, workers=1, shard_size=256)
        other = _streamed(config, workers=workers, shard_size=256)
        assert build_report(reference).text == build_report(other).text
        assert reference.flight_cache == other.flight_cache

    @pytest.mark.parametrize("shard_size", [128, 512])
    def test_shard_size_does_not_change_report(self, shard_size):
        config = PopulationConfig(size=POPULATION_SIZE, seed=5)
        reference = _eager(config)
        streamed = _streamed(config, shard_size=shard_size)
        assert build_report(reference).text == build_report(streamed).text

    def test_without_sweep(self):
        config = PopulationConfig(size=POPULATION_SIZE, seed=9)
        eager = MeasurementCampaign(
            population=generate_population(config), spoofed_targets_per_provider=12
        ).run()
        streamed = MeasurementCampaign(
            population_config=config, stream=True, spoofed_targets_per_provider=12
        ).run()
        assert streamed.sweep is None
        assert build_report(eager).text == build_report(streamed).text


class TestStreamingExports:
    def test_csv_exports_byte_identical(self, tmp_path):
        config = PopulationConfig(size=POPULATION_SIZE, seed=3)
        eager = _eager(config)
        streamed = _streamed(config, shard_size=256)
        eager_dir = tmp_path / "eager"
        streamed_dir = tmp_path / "streamed"
        export_evaluation(eager, str(eager_dir))
        export_evaluation(streamed, str(streamed_dir))
        eager_files = sorted(os.listdir(eager_dir))
        assert eager_files == sorted(os.listdir(streamed_dir))
        for name in eager_files:
            assert (eager_dir / name).read_bytes() == (streamed_dir / name).read_bytes(), name


class TestReducedResultsShape:
    def test_counts_cover_population(self):
        config = PopulationConfig(size=POPULATION_SIZE, seed=3)
        streamed = _streamed(config, shard_size=256)
        scan = streamed.scan
        assert scan.deployment_count == config.size
        assert streamed.population_size == config.size
        assert scan.handshake_total == scan.quic_count
        assert scan.quic_certificate_count == scan.quic_count
        assert scan.wild_count == scan.quic_count
        assert scan.funnel.names_total == config.size
        assert len(streamed.meta_probe_before) == 256
        assert len(streamed.meta_probe_after) == 256

    def test_streaming_rejects_materialised_population(self):
        population = generate_population(PopulationConfig(size=400, seed=5))
        with pytest.raises(ValueError):
            MeasurementCampaign(population=population, stream=True)

    def test_spoof_selection_matches_eager_walk(self):
        config = PopulationConfig(size=POPULATION_SIZE, seed=3)
        population = generate_population(config)
        campaign = MeasurementCampaign(
            population=population, spoofed_targets_per_provider=12
        )
        eager_domains = [d.domain for d in campaign._pick_spoof_deployments()]
        streamed = _streamed(config, shard_size=128)
        streamed_domains = [d.domain for d in streamed.scan.spoof_deployments]
        assert streamed_domains == eager_domains
