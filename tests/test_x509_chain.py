"""Unit tests for certificate chains."""

import pytest

from repro.x509 import CertificateChain, ChainOrderError
from repro.x509.chain import chain_fingerprint, find_common_parent_chains, validate_order


class TestChainBasics:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            CertificateChain(())

    def test_depth_and_iteration(self, lets_encrypt_long_chain):
        assert lets_encrypt_long_chain.depth == 3
        assert len(list(lets_encrypt_long_chain)) == 3

    def test_leaf_and_intermediates(self, lets_encrypt_long_chain):
        assert lets_encrypt_long_chain.leaf.subject_common_name == "fixture-le.example"
        assert len(lets_encrypt_long_chain.intermediates) == 2

    def test_total_size_is_sum_of_certificates(self, cloudflare_chain):
        assert cloudflare_chain.total_size == sum(c.size for c in cloudflare_chain)

    def test_parent_chain_size_excludes_leaf(self, cloudflare_chain):
        assert (
            cloudflare_chain.parent_chain_size
            == cloudflare_chain.total_size - cloudflare_chain.leaf_size
        )

    def test_exceeds(self, cloudflare_chain):
        assert cloudflare_chain.exceeds(100)
        assert not cloudflare_chain.exceeds(10**6)

    def test_sizes_by_depth(self, lets_encrypt_long_chain):
        sizes = lets_encrypt_long_chain.sizes_by_depth()
        assert len(sizes) == 3
        assert sizes[0] == lets_encrypt_long_chain.leaf_size

    def test_with_leaf_swaps_only_leaf(self, cloudflare_chain, lets_encrypt_short_chain):
        swapped = cloudflare_chain.with_leaf(lets_encrypt_short_chain.leaf)
        assert swapped.leaf is lets_encrypt_short_chain.leaf
        assert swapped.intermediates == cloudflare_chain.intermediates


class TestChainHygiene:
    def test_issued_chains_are_correctly_ordered(self, lets_encrypt_long_chain, cloudflare_chain):
        assert lets_encrypt_long_chain.is_correctly_ordered()
        assert cloudflare_chain.is_correctly_ordered()

    def test_shuffled_chain_detected_as_misordered(self, lets_encrypt_long_chain):
        certificates = lets_encrypt_long_chain.certificates
        shuffled = CertificateChain((certificates[1], certificates[0], certificates[2]))
        assert not shuffled.is_correctly_ordered()
        with pytest.raises(ChainOrderError):
            validate_order(shuffled.certificates)

    def test_includes_trust_anchor_detection(self, hierarchy):
        with_root = hierarchy.profiles["Google 1C3"].issue("anchor.example")
        without_root = hierarchy.profiles["Cloudflare ECC CA-3"].issue("anchor2.example")
        assert with_root.includes_trust_anchor()
        assert not without_root.includes_trust_anchor()

    def test_cross_signed_detection(self, hierarchy):
        cross = hierarchy.profiles["Let's Encrypt R3 + cross-signed X1"].issue("c.example")
        plain = hierarchy.profiles["Let's Encrypt R3 (short)"].issue("p.example")
        assert cross.includes_cross_signed()
        assert not plain.includes_cross_signed()


class TestParentChainGrouping:
    def test_parent_chain_key_distinguishes_cross_signed_root(self, hierarchy):
        cross = hierarchy.profiles["Let's Encrypt R3 + cross-signed X1"].issue("a.example")
        with_root = hierarchy.profiles["Let's Encrypt R3 + root X1"].issue("b.example")
        assert cross.parent_chain_key() != with_root.parent_chain_key()
        assert any("cross-signed" in label for label in cross.parent_chain_key())

    def test_parent_chain_key_for_depth_two(self, cloudflare_chain):
        assert cloudflare_chain.parent_chain_key() == ("Cloudflare Inc ECC CA-3",)

    def test_parent_chain_label_joins_names(self, lets_encrypt_long_chain):
        assert " / " in lets_encrypt_long_chain.parent_chain_label()

    def test_find_common_parent_chains_counts(self, hierarchy):
        chains = [
            hierarchy.profiles["Cloudflare ECC CA-3"].issue(f"d{i}.example") for i in range(5)
        ] + [hierarchy.profiles["Let's Encrypt E1 (short)"].issue("e.example")]
        ranked = find_common_parent_chains(chains, top_n=2)
        assert ranked[0][0] == ("Cloudflare Inc ECC CA-3",)
        assert ranked[0][1] == 5

    def test_chain_fingerprint_distinguishes_chains(self, cloudflare_chain, lets_encrypt_long_chain):
        assert chain_fingerprint(cloudflare_chain) != chain_fingerprint(lets_encrypt_long_chain)
        assert chain_fingerprint(cloudflare_chain) == chain_fingerprint(cloudflare_chain)
