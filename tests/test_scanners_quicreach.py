"""Unit tests for the quicreach-like scanner and the Initial-size sweep."""

import pytest

from repro.netsim import IPv4Address, QuicServiceHost, UdpNetwork
from repro.quic.handshake import HandshakeClass
from repro.quic.profiles import CLOUDFLARE_LIKE, RFC_COMPLIANT
from repro.scanners import InitialSizeSweep, QuicReach
from repro.scanners.quicreach import DEFAULT_ANALYSIS_INITIAL_SIZE, SWEEP_INITIAL_SIZES


@pytest.fixture
def small_network(cloudflare_chain, lets_encrypt_long_chain, lets_encrypt_short_chain):
    network = UdpNetwork()
    network.attach_host(
        QuicServiceHost(IPv4Address.parse("10.1.0.1"), "cf.example", cloudflare_chain, CLOUDFLARE_LIKE)
    )
    network.attach_host(
        QuicServiceHost(IPv4Address.parse("10.1.0.2"), "long.example", lets_encrypt_long_chain, RFC_COMPLIANT)
    )
    network.attach_host(
        QuicServiceHost(IPv4Address.parse("10.1.0.3"), "short.example", lets_encrypt_short_chain, RFC_COMPLIANT)
    )
    network.attach_host(
        QuicServiceHost(
            IPv4Address.parse("10.1.0.4"),
            "tunnelled.example",
            lets_encrypt_short_chain,
            RFC_COMPLIANT,
            encapsulation_overhead=60,
        )
    )
    return network


class TestQuicReach:
    def test_sweep_constants_match_paper(self):
        assert SWEEP_INITIAL_SIZES[0] == 1200
        assert SWEEP_INITIAL_SIZES[-1] == 1472
        assert DEFAULT_ANALYSIS_INITIAL_SIZE == 1362
        assert SWEEP_INITIAL_SIZES[1] - SWEEP_INITIAL_SIZES[0] == 10

    def test_scan_classifies_services(self, small_network):
        scanner = QuicReach(small_network)
        assert scanner.scan_domain("cf.example").handshake_class is HandshakeClass.AMPLIFICATION
        assert scanner.scan_domain("long.example").handshake_class is HandshakeClass.MULTI_RTT
        assert scanner.scan_domain("short.example").handshake_class is HandshakeClass.ONE_RTT

    def test_unknown_domain_is_unreachable(self, small_network):
        observation = QuicReach(small_network).scan_domain("nope.example")
        assert not observation.reachable
        assert observation.handshake_class is None

    def test_tunnelled_service_unreachable_for_large_initials(self, small_network):
        scanner = QuicReach(small_network)
        small = scanner.scan_domain("tunnelled.example", initial_size=1250)
        large = scanner.scan_domain("tunnelled.example", initial_size=1472)
        assert small.reachable
        assert not large.reachable

    def test_observation_byte_accounting(self, small_network):
        observation = QuicReach(small_network).scan_domain("cf.example")
        assert observation.total_bytes >= observation.first_rtt_bytes
        assert observation.tls_payload_bytes > 0
        assert observation.quic_overhead_bytes > 0
        assert observation.amplification_factor == pytest.approx(
            observation.first_rtt_bytes / observation.initial_size
        )
        assert observation.exceeds_limit

    def test_scan_many_preserves_metadata(self, small_network):
        observations = QuicReach(small_network).scan_many(
            [("cf.example", 5, "cloudflare"), ("short.example", 9, None)]
        )
        assert observations[0].rank == 5 and observations[0].provider == "cloudflare"
        assert observations[1].rank == 9


class TestInitialSizeSweep:
    def test_sweep_covers_all_sizes(self, small_network):
        sweep = InitialSizeSweep(QuicReach(small_network), initial_sizes=(1200, 1350, 1472))
        result = sweep.run([("cf.example", 1, None), ("short.example", 2, None)])
        assert result.initial_sizes() == (1200, 1350, 1472)
        assert len(result.observations) == 6

    def test_class_counts_and_reachability(self, small_network):
        sweep = InitialSizeSweep(QuicReach(small_network), initial_sizes=(1250, 1472))
        result = sweep.run(
            [("cf.example", 1, None), ("short.example", 2, None), ("tunnelled.example", 3, None)]
        )
        assert result.reachable_count(1250) == 3
        assert result.reachable_count(1472) == 2
        counts = result.class_counts(1250)
        assert counts[HandshakeClass.AMPLIFICATION] == 1
        assert counts[HandshakeClass.ONE_RTT] == 2
