"""Tests for the handshake-centric figures (3, 4, 5, 12, 13)."""

import pytest

from repro.analysis.figures import figure03, figure04, figure05, figure12, figure13
from repro.quic.handshake import HandshakeClass


class TestFigure03:
    def test_class_shares_match_paper_at_default_size(self, campaign_results):
        result = figure03.compute(campaign_results.sweep)
        size = 1360  # closest sweep point to the 1362-byte analysis size
        assert size in result.counts or 1362 in result.counts
        probe_size = size if size in result.counts else 1362
        amplification = result.share(probe_size, HandshakeClass.AMPLIFICATION)
        multi_rtt = result.share(probe_size, HandshakeClass.MULTI_RTT)
        one_rtt = result.share(probe_size, HandshakeClass.ONE_RTT)
        assert amplification == pytest.approx(0.61, abs=0.12)
        assert multi_rtt == pytest.approx(0.38, abs=0.12)
        assert one_rtt < 0.06

    def test_amplification_independent_of_initial_size(self, campaign_results):
        result = figure03.compute(campaign_results.sweep)
        sizes = result.initial_sizes()
        counts = [result.counts[s].get(HandshakeClass.AMPLIFICATION, 0) for s in sizes]
        assert max(counts) - min(counts) <= max(3, 0.1 * max(counts))

    def test_larger_initials_shift_multi_rtt_towards_one_rtt(self, campaign_results):
        result = figure03.compute(campaign_results.sweep)
        sizes = result.initial_sizes()
        first, last = sizes[0], sizes[-1]
        assert result.share(last, HandshakeClass.ONE_RTT) >= result.share(first, HandshakeClass.ONE_RTT)
        assert result.share(last, HandshakeClass.MULTI_RTT) <= result.share(first, HandshakeClass.MULTI_RTT)

    def test_reachability_drops_slightly_for_large_initials(self, campaign_results):
        result = figure03.compute(campaign_results.sweep)
        assert 0.0 < result.reachability_drop() < 0.10

    def test_table_and_text(self, campaign_results):
        result = figure03.compute(campaign_results.sweep)
        table = result.as_table()
        assert len(table) == len(result.initial_sizes())
        assert "Figure 3" in result.render_text()


class TestFigure04:
    def test_amplification_factors_small_but_above_three(self, campaign_results):
        result = figure04.compute(campaign_results.handshakes)
        assert result.service_count > 50
        assert 3.0 < result.median < 6.0
        assert result.maximum < 8.0
        assert result.share_below(6.0) > 0.95  # the paper: factors stay below ≈6x
        assert "Figure 4" in result.render_text()

    def test_empty_observations(self):
        result = figure04.compute([])
        assert result.service_count == 0


class TestFigure05:
    def test_tls_alone_exceeds_limit_for_most_multi_rtt(self, campaign_results):
        result = figure05.compute(campaign_results.handshakes)
        assert result.handshake_count > 30
        assert result.share_tls_alone_exceeds > 0.75  # paper: 87 %
        # Entries are sorted ascending by total bytes (the ranked x-axis).
        totals = [total for _, total, _ in result.entries]
        assert totals == sorted(totals)
        assert result.max_quic_overhead > 0
        assert "Figure 5" in result.render_text()


class TestFigure12:
    def test_shares_stable_across_rank_groups(self, campaign_results):
        result = figure12.compute(list(campaign_results.population.deployments))
        assert len(result.group_labels) == 10
        assert result.mean_quic_share == pytest.approx(0.21, abs=0.05)
        assert result.quic_share_stddev < 0.05  # paper: sigma = 3 percentage points
        assert "Figure 12" in result.render_text()

    def test_empty_input(self):
        result = figure12.compute([])
        assert result.group_labels == ()


class TestFigure13:
    def test_classes_stable_and_one_rtt_higher_at_top(self, campaign_results):
        # Five rank groups keep the per-group sample large enough for the
        # stability check to be meaningful at the test population size.
        result = figure13.compute(campaign_results.handshakes, group_count=5)
        assert len(result.group_labels) >= 4
        amplification_shares = [
            result.share(label, HandshakeClass.AMPLIFICATION) for label in result.group_labels
        ]
        assert max(amplification_shares) - min(amplification_shares) < 0.35
        top, rest = result.one_rtt_share_top_vs_rest()
        assert top >= rest  # paper: 3.02 % in the top group vs <0.95 % elsewhere
        assert "Figure 13" in result.render_text()

    def test_empty_observations(self):
        result = figure13.compute([])
        assert result.group_labels == ()
