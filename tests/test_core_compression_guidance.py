"""Unit tests for the compression study and the §5 guidance."""

import pytest

from repro.core import HandshakeClass, InitialSizeCache, run_compression_study
from repro.core.compression_study import run_all_algorithms
from repro.core.guidance import derive_guidance
from repro.core.limits import LARGER_COMMON_LIMIT, MIN_INITIAL_SIZE
from repro.tls.cert_compression import CertificateCompressionAlgorithm


class TestCompressionStudy:
    def test_empty_input(self):
        result = run_compression_study([])
        assert result.chain_count == 0
        assert result.median_compression_rate == 0.0

    def test_study_over_population_matches_paper(self, campaign_results):
        chains = [
            d.delivered_chain for d in campaign_results.quic_deployments() if d.delivered_chain
        ][:250]
        result = run_compression_study(chains)
        # Paper: ≈65 % median rate, ≈99 % of chains below the limit once compressed.
        assert 0.55 <= result.median_compression_rate <= 0.8
        assert result.share_below_limit_compressed >= 0.97
        assert result.share_below_limit_compressed >= result.share_below_limit_uncompressed
        assert result.share_rescued >= 0.0
        assert result.limit_bytes == LARGER_COMMON_LIMIT

    def test_as_dict_keys(self, campaign_results):
        chains = [
            d.delivered_chain for d in campaign_results.quic_deployments() if d.delivered_chain
        ][:20]
        result = run_compression_study(chains)
        assert result.as_dict()["algorithm"] == "brotli"

    def test_all_algorithms_study(self, campaign_results):
        chains = [
            d.delivered_chain for d in campaign_results.quic_deployments() if d.delivered_chain
        ][:40]
        results = run_all_algorithms(chains)
        assert set(results) == set(CertificateCompressionAlgorithm)
        for result in results.values():
            assert result.chain_count == len(chains)


class TestInitialSizeCache:
    def test_default_for_unknown_server(self):
        cache = InitialSizeCache(default_initial_size=1250)
        assert cache.initial_size_for("unknown.example") == 1250
        assert "unknown.example" not in cache

    def test_record_handshake_suggests_fitting_initial(self):
        cache = InitialSizeCache(default_initial_size=1250)
        entry = cache.record_handshake("big.example", server_first_flight_bytes=4300, achieved_one_rtt=False)
        assert entry.suggested_initial_size >= 4300 / 3
        assert cache.initial_size_for("big.example") == entry.suggested_initial_size
        assert len(cache) == 1

    def test_suggestion_respects_minimum_and_mtu(self):
        cache = InitialSizeCache(default_initial_size=1250)
        small = cache.record_handshake("tiny.example", 900, achieved_one_rtt=True)
        assert small.suggested_initial_size >= MIN_INITIAL_SIZE
        huge = cache.record_handshake("huge.example", 30_000, achieved_one_rtt=False)
        assert huge.suggested_initial_size <= 1472

    def test_record_chain_seeds_cache(self, lets_encrypt_short_chain):
        cache = InitialSizeCache()
        cache.record_chain("seeded.example", lets_encrypt_short_chain)
        assert "seeded.example" in cache
        assert cache.initial_size_for("seeded.example") >= MIN_INITIAL_SIZE

    def test_invalid_defaults_rejected(self):
        with pytest.raises(ValueError):
            InitialSizeCache(default_initial_size=1000)
        cache = InitialSizeCache()
        with pytest.raises(ValueError):
            cache.record_handshake("x.example", -1, True)


class TestGuidance:
    def test_guidance_covers_all_stakeholders(self):
        guidance = derive_guidance(
            class_shares={
                HandshakeClass.AMPLIFICATION: 0.61,
                HandshakeClass.MULTI_RTT: 0.38,
                HandshakeClass.ONE_RTT: 0.0075,
                HandshakeClass.RETRY: 0.0007,
            },
            median_compression_rate=0.65,
            share_compressed_below_limit=0.99,
            share_quic_leaf_ecdsa=0.789,
        )
        audiences = {g.audience for g in guidance}
        assert "IETF / protocol" in audiences
        assert "server implementations" in audiences
        assert "certificate authorities" in audiences
        assert len(guidance) >= 5
        server_guidance = next(g for g in guidance if g.audience == "server implementations")
        assert server_guidance.value == pytest.approx(0.61)
