"""Checkpoint-store integrity: every defect is detected, quarantined, re-scanned.

A checkpoint is an optimisation, never a source of truth: the store must
refuse to trust a torn, corrupted, stale-format or foreign file — each is
moved into ``quarantine/`` and its shard simply re-scanned, and the resumed
report stays byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import shutil
from types import SimpleNamespace

import pytest

from repro.analysis.report import build_report
from repro.core.ioutil import atomic_write_bytes, atomic_write_text
from repro.scanners import MeasurementCampaign
from repro.scanners.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointKey,
    CheckpointStore,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.scanners.faults import corrupt_file, truncate_file
from repro.scenarios import BUILTIN_SCENARIOS
from repro.webpki.population import PopulationConfig

POPULATION_SIZE = 360
SHARD_SIZE = 120
CAMPAIGN_KWARGS = dict(stream=True, shard_size=SHARD_SIZE, spoofed_targets_per_provider=12)


@pytest.fixture(scope="module")
def config():
    return PopulationConfig(size=POPULATION_SIZE, seed=2022)


@pytest.fixture(scope="module")
def checkpointed_run(config, tmp_path_factory):
    """One finished checkpointed campaign: (reference report text, directory)."""
    directory = tmp_path_factory.mktemp("ckpt-reference")
    results = MeasurementCampaign(
        population_config=config, checkpoint_dir=str(directory), **CAMPAIGN_KWARGS
    ).run()
    return build_report(results).text, directory


def _checkpoint_files(directory) -> list:
    return sorted(
        name for name in os.listdir(directory) if name.endswith(".ckpt")
    )


def _resume(config, directory):
    results = MeasurementCampaign(
        population_config=config,
        checkpoint_dir=str(directory),
        resume=True,
        **CAMPAIGN_KWARGS,
    ).run()
    return build_report(results).text


def _damaged_copy(checkpointed_run, tmp_path, damage) -> tuple:
    """Copy the reference checkpoint dir and apply ``damage`` to one file."""
    reference, source = checkpointed_run
    directory = tmp_path / "ckpt"
    shutil.copytree(source, directory)
    victim = os.path.join(directory, _checkpoint_files(directory)[1])
    damage(victim)
    return reference, directory, os.path.basename(victim)


class TestWireFormat:
    def test_round_trip(self):
        payload = {"shard": 7, "values": [1, 2, 3]}
        assert decode_checkpoint(encode_checkpoint(payload)) == payload

    def test_header_carries_version_and_digest(self):
        data = encode_checkpoint("x")
        header = data.split(b"\n", 1)[0].split(b" ")
        assert header[0] == CHECKPOINT_FORMAT
        assert len(header) == 3 and len(header[2]) == 64

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda data: data[: len(data) // 2],            # truncated
            lambda data: data.replace(b"/1", b"/0", 1),     # stale version
            lambda data: b"",                               # empty file
            lambda data: b"not a checkpoint at all",        # garbage
        ],
    )
    def test_defective_bytes_raise(self, mangle):
        data = encode_checkpoint({"shard": 1})
        with pytest.raises(CheckpointError):
            decode_checkpoint(mangle(data))

    def test_flipped_payload_byte_raises(self):
        data = bytearray(encode_checkpoint({"shard": 1}))
        data[-3] ^= 0xFF
        with pytest.raises(CheckpointError, match="digest mismatch"):
            decode_checkpoint(bytes(data))


class TestContentAddressing:
    def test_filename_embeds_index_and_campaign_digest(self, config):
        key = CheckpointKey.for_campaign(config, SHARD_SIZE, 3)
        assert key.filename().startswith("shard-000003-")
        assert key.filename().endswith(".ckpt")

    def test_different_campaign_means_different_filename(self, config):
        base = CheckpointKey.for_campaign(config, SHARD_SIZE, 0)
        other_seed = CheckpointKey.for_campaign(
            PopulationConfig(size=POPULATION_SIZE, seed=7), SHARD_SIZE, 0
        )
        other_shards = CheckpointKey.for_campaign(config, 60, 0)
        scenario_config = BUILTIN_SCENARIOS["trimmed-chains"].population_config(
            base=config
        )
        other_scenario = CheckpointKey.for_campaign(scenario_config, SHARD_SIZE, 0)
        names = {
            base.filename(),
            other_seed.filename(),
            other_shards.filename(),
            other_scenario.filename(),
        }
        assert len(names) == 4


class TestQuarantine:
    def test_truncated_checkpoint_is_quarantined_and_rescanned(
        self, config, checkpointed_run, tmp_path
    ):
        reference, directory, victim = _damaged_copy(
            checkpointed_run, tmp_path, truncate_file
        )
        assert _resume(config, directory) == reference
        assert victim in os.listdir(directory / "quarantine")
        # The re-scanned shard was re-checkpointed with valid bytes.
        assert victim in _checkpoint_files(directory)

    def test_flipped_byte_is_quarantined_and_rescanned(
        self, config, checkpointed_run, tmp_path
    ):
        reference, directory, victim = _damaged_copy(
            checkpointed_run, tmp_path, corrupt_file
        )
        assert _resume(config, directory) == reference
        assert victim in os.listdir(directory / "quarantine")

    def test_stale_format_version_is_quarantined_and_rescanned(
        self, config, checkpointed_run, tmp_path
    ):
        def stale(path):
            with open(path, "rb") as handle:
                data = handle.read()
            atomic_write_bytes(path, data.replace(b"repro-ckpt/1", b"repro-ckpt/0", 1))

        reference, directory, victim = _damaged_copy(checkpointed_run, tmp_path, stale)
        assert _resume(config, directory) == reference
        assert victim in os.listdir(directory / "quarantine")

    def test_foreign_summary_under_expected_name_is_quarantined(
        self, config, checkpointed_run, tmp_path
    ):
        """A file whose embedded summary belongs elsewhere is never trusted."""
        reference, source = checkpointed_run
        directory = tmp_path / "ckpt"
        shutil.copytree(source, directory)
        store = CheckpointStore(str(directory))
        key = CheckpointKey.for_campaign(config, SHARD_SIZE, 1)
        foreign = SimpleNamespace(index=1, scenario_fingerprint="0" * 64)
        store.save(key, foreign)
        assert store.load(key) is None
        assert os.listdir(directory / "quarantine")
        assert _resume(config, directory) == reference

    def test_quarantine_never_overwrites_evidence(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for _ in range(2):
            path = tmp_path / "shard-000000-aaaa.ckpt"
            path.write_bytes(b"garbage")
            store.quarantine(str(path))
        assert len(os.listdir(store.quarantine_directory)) == 2


class TestAttemptAwareSaves:
    """The late-writer guard: a timed-out attempt's result surfacing after its
    retry already checkpointed must never clobber the newer bytes."""

    def _key(self, config):
        return CheckpointKey.for_campaign(config, SHARD_SIZE, 0)

    def test_stale_attempt_write_is_suppressed(self, config, tmp_path):
        store = CheckpointStore(str(tmp_path))
        key = self._key(config)
        retry = SimpleNamespace(index=0, scenario_fingerprint="f" * 64, origin="retry")
        late = SimpleNamespace(index=0, scenario_fingerprint="f" * 64, origin="late")
        path = store.save(key, retry, attempt=1)
        persisted = open(path, "rb").read()
        # The stalled attempt-0 writer lands afterwards: skipped, same path.
        assert store.save(key, late, attempt=0) == path
        assert open(path, "rb").read() == persisted

    def test_equal_and_newer_attempts_overwrite(self, config, tmp_path):
        store = CheckpointStore(str(tmp_path))
        key = self._key(config)
        path = store.save(
            key, SimpleNamespace(index=0, scenario_fingerprint="a" * 64), attempt=0
        )
        first = open(path, "rb").read()
        store.save(
            key, SimpleNamespace(index=0, scenario_fingerprint="b" * 64), attempt=0
        )
        second = open(path, "rb").read()
        assert second != first  # same attempt: deterministic rewrite is fine
        store.save(
            key, SimpleNamespace(index=0, scenario_fingerprint="c" * 64), attempt=2
        )
        assert open(path, "rb").read() != second

    def test_suppression_is_per_file_not_per_store(self, config, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(self._key(config), SimpleNamespace(index=0), attempt=3)
        other = CheckpointKey.for_campaign(config, SHARD_SIZE, 1)
        payload = SimpleNamespace(index=1, scenario_fingerprint="d" * 64)
        path = store.save(other, payload, attempt=0)
        assert decode_checkpoint(open(path, "rb").read()).index == 1


class TestCampaignBinding:
    def test_mixed_campaign_directory_is_rejected(self, config, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind_campaign(config, SHARD_SIZE)
        with pytest.raises(CheckpointError, match="different campaign"):
            store.bind_campaign(
                PopulationConfig(size=POPULATION_SIZE, seed=7), SHARD_SIZE
            )
        with pytest.raises(CheckpointError, match="shard_size"):
            store.bind_campaign(config, 60)

    def test_mixed_scenario_directory_is_rejected(self, config, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind_campaign(config, SHARD_SIZE)
        scenario_config = BUILTIN_SCENARIOS["ecdsa-only"].population_config(base=config)
        with pytest.raises(CheckpointError, match="scenario"):
            store.bind_campaign(scenario_config, SHARD_SIZE)

    def test_rebinding_the_same_campaign_is_fine(self, config, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind_campaign(config, SHARD_SIZE)
        store.bind_campaign(config, SHARD_SIZE)

    def test_unreadable_metadata_is_rejected(self, config, tmp_path):
        store = CheckpointStore(str(tmp_path))
        (tmp_path / "campaign.json").write_text("{torn", encoding="utf-8")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.bind_campaign(config, SHARD_SIZE)


class TestManifests:
    def test_incomplete_manifest_names_missing_shards(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.write_incomplete_manifest(completed=[0, 2], incomplete=[3, 1])
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest == {"completed": [0, 2], "incomplete": [1, 3]}
        store.clear_incomplete_manifest()
        assert not os.path.exists(path)
        store.clear_incomplete_manifest()  # idempotent


class TestAtomicWrites:
    def test_no_tmp_files_survive(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(str(target), "first\n")
        atomic_write_text(str(target), "second\n")
        assert target.read_text() == "second\n"
        assert os.listdir(tmp_path) == ["artifact.txt"]

    def test_failed_write_leaves_destination_untouched(self, tmp_path, monkeypatch):
        target = tmp_path / "artifact.txt"
        atomic_write_text(str(target), "intact\n")
        monkeypatch.setattr(os, "replace", _boom)
        with pytest.raises(RuntimeError):
            atomic_write_text(str(target), "torn\n")
        assert target.read_text() == "intact\n"
        assert os.listdir(tmp_path) == ["artifact.txt"]


def _boom(*_args):
    raise RuntimeError("injected replace failure")
