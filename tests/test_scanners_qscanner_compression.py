"""Unit tests for the QScanner-like certificate fetcher and the compression scanner."""

import pytest

from repro.netsim import IPv4Address, QuicServiceHost, UdpNetwork
from repro.quic.profiles import CLOUDFLARE_LIKE, MVFST_LIKE, RFC_COMPLIANT_NO_COMPRESSION
from repro.scanners import CompressionScanner, QScanner
from repro.tls.cert_compression import CertificateCompressionAlgorithm


@pytest.fixture
def network(cloudflare_chain, lets_encrypt_long_chain, lets_encrypt_short_chain):
    network = UdpNetwork()
    network.attach_host(
        QuicServiceHost(IPv4Address.parse("10.2.0.1"), "brotli.example", cloudflare_chain, CLOUDFLARE_LIKE)
    )
    network.attach_host(
        QuicServiceHost(IPv4Address.parse("10.2.0.2"), "all.example", lets_encrypt_long_chain, MVFST_LIKE)
    )
    network.attach_host(
        QuicServiceHost(
            IPv4Address.parse("10.2.0.3"),
            "none.example",
            lets_encrypt_short_chain,
            RFC_COMPLIANT_NO_COMPRESSION,
        )
    )
    return network


class TestQScanner:
    def test_fetch_returns_served_chain(self, network, cloudflare_chain):
        record = QScanner(network).fetch("brotli.example")
        assert record is not None
        assert record.chain is cloudflare_chain
        assert record.chain_size == cloudflare_chain.total_size

    def test_fetch_unknown_domain(self, network):
        assert QScanner(network).fetch("unknown.example") is None

    def test_fetch_many_skips_missing(self, network):
        records = QScanner(network).fetch_many(["brotli.example", "unknown.example", "all.example"])
        assert [r.domain for r in records] == ["brotli.example", "all.example"]

    def test_comparison_with_https_chains(self, network, cloudflare_chain, lets_encrypt_short_chain):
        scanner = QScanner(network)
        records = scanner.fetch_many(["brotli.example", "all.example"])
        https_chains = {
            "brotli.example": cloudflare_chain,        # identical
            "all.example": lets_encrypt_short_chain,   # rotated / different
        }
        comparison = scanner.compare_with_https(records, https_chains)
        assert comparison.total_compared == 2
        assert comparison.identical == 1
        assert comparison.identical_share == pytest.approx(0.5)
        assert comparison.different_share == pytest.approx(0.5)

    def test_comparison_in_campaign_matches_paper(self, campaign_results):
        comparison = campaign_results.certificate_comparison
        assert comparison.identical_share == pytest.approx(0.967, abs=0.03)


class TestCompressionScanner:
    def test_supported_algorithms_follow_profile(self, network):
        scanner = CompressionScanner(network)
        brotli_only = scanner.scan("brotli.example")
        all_three = scanner.scan("all.example")
        none = scanner.scan("none.example")
        assert brotli_only.supported_algorithms == (CertificateCompressionAlgorithm.BROTLI,)
        assert all_three.supports_all_three
        assert not none.supports_any

    def test_compression_rate_only_for_supported(self, network):
        scanner = CompressionScanner(network)
        observation = scanner.scan("brotli.example")
        assert observation.compression_rate(CertificateCompressionAlgorithm.BROTLI) > 0.4
        assert observation.compression_rate(CertificateCompressionAlgorithm.ZSTD) is None

    def test_fits_limit(self, network):
        observation = CompressionScanner(network).scan("all.example")
        assert observation.fits_limit(CertificateCompressionAlgorithm.BROTLI, 4071) is True
        assert observation.fits_limit(CertificateCompressionAlgorithm.BROTLI, 10) is False

    def test_unknown_domain(self, network):
        assert CompressionScanner(network).scan("unknown.example") is None

    def test_aggregates(self, network):
        scanner = CompressionScanner(network)
        observations = scanner.scan_many(["brotli.example", "all.example", "none.example"])
        support = CompressionScanner.support_share(observations, CertificateCompressionAlgorithm.BROTLI)
        assert support == pytest.approx(2 / 3)
        rate = CompressionScanner.mean_compression_rate(
            observations, CertificateCompressionAlgorithm.BROTLI
        )
        assert 0.4 < rate < 0.9
        assert CompressionScanner.mean_compression_rate([], CertificateCompressionAlgorithm.ZSTD) is None

    def test_campaign_brotli_support_matches_paper(self, campaign_results):
        observations = campaign_results.compression
        support = CompressionScanner.support_share(
            observations, CertificateCompressionAlgorithm.BROTLI
        )
        assert support == pytest.approx(0.96, abs=0.04)
