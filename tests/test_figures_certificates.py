"""Tests for the certificate-centric figures (2b, 6, 7, 8, 14, Table 2)."""

import pytest

from repro.analysis.figures import figure02b, figure06, figure07, figure08, figure14, table02
from repro.core.limits import LARGER_COMMON_LIMIT
from repro.x509.keys import KeyAlgorithm


class TestFigure02b:
    def test_extensions_are_the_largest_field(self, campaign_results):
        certificates = figure02b.certificates_from_results(campaign_results)
        result = figure02b.compute(certificates)
        assert result.certificate_count == len(certificates) > 1000
        ordering = result.ordering_by_median()
        assert ordering[0] == "Extensions"
        assert result.median("Subject") < result.median("PublicKeyInfo")
        assert "Figure 2(b)" in result.render_text()


class TestFigure06:
    def test_quic_chains_smaller_than_https_only(self, campaign_results):
        result = figure06.compute(
            campaign_results.quic_deployments(), campaign_results.https_only_deployments()
        )
        assert result.quic_median < result.https_only_median
        # Paper: 2329 vs 4022 bytes; allow generous bands around the shape.
        assert 1700 <= result.quic_median <= 3000
        assert 3400 <= result.https_only_median <= 4600
        assert 0.25 <= result.share_exceeding_limit <= 0.45
        assert result.https_only_maximum > 15_000  # the 18-38 kB tail
        assert result.limit_bytes == LARGER_COMMON_LIMIT

    def test_empty_inputs(self):
        result = figure06.compute([], [])
        assert result.share_exceeding_limit == 0.0


class TestFigure07:
    def test_quic_consolidation_stronger_than_https_only(self, campaign_results):
        quic = figure07.compute(campaign_results.quic_deployments(), "QUIC services")
        https = figure07.compute(campaign_results.https_only_deployments(), "HTTPS-only services")
        assert quic.top10_coverage > https.top10_coverage
        assert quic.top10_coverage > 0.9          # paper: 96.5 %
        assert 0.55 <= https.top10_coverage <= 0.95  # paper: 72 %

    def test_cloudflare_is_the_top_quic_chain(self, campaign_results):
        quic = figure07.compute(campaign_results.quic_deployments(), "QUIC services")
        top_row = quic.rows[0]
        assert "Cloudflare" in top_row.label
        assert top_row.share == pytest.approx(0.6, abs=0.08)
        assert top_row.parent_chain_size < 1500

    def test_majority_of_top_chains_exceed_limits(self, campaign_results):
        from repro.core.limits import COMMON_AMPLIFICATION_LIMITS

        quic = figure07.compute(campaign_results.quic_deployments(), "QUIC services")
        # Paper: 7 of the top-10 QUIC parent chains (with median leaf) exceed
        # common amplification limits... but the dominant Cloudflare chain does not.
        exceeding = quic.rows_exceeding(min(COMMON_AMPLIFICATION_LIMITS))
        assert 3 <= exceeding <= 9
        assert not quic.rows[0].exceeds_limit(LARGER_COMMON_LIMIT)

    def test_row_size_accounting(self, campaign_results):
        quic = figure07.compute(campaign_results.quic_deployments(), "QUIC services")
        for row in quic.rows:
            assert row.typical_total_size == row.parent_chain_size + row.median_leaf_size
            assert row.max_leaf_size >= row.median_leaf_size
            assert row.service_count > 0

    def test_render_text(self, campaign_results):
        quic = figure07.compute(campaign_results.quic_deployments(), "QUIC services")
        assert "top-10 parent chains" in quic.render_text()


class TestFigure08:
    def test_nonleaf_of_large_chains_dominate(self, campaign_results):
        result = figure08.compute(campaign_results.quic_deployments())
        assert result.large_chain_nonleaf_heaviest
        large_nonleaf = result.group(">4000, Non-leaf")
        small_nonleaf = result.group("<=4000, Non-leaf")
        assert large_nonleaf.public_key_info + large_nonleaf.signature > (
            small_nonleaf.public_key_info + small_nonleaf.signature
        )
        assert all(result.counts[label] > 0 for label in result.counts)

    def test_render_text_lists_all_groups(self, campaign_results):
        text = figure08.compute(campaign_results.quic_deployments()).render_text()
        assert ">4000, Non-leaf" in text and "<=4000, Leaf" in text


class TestTable02:
    def test_quic_leaves_mostly_ecdsa(self, campaign_results):
        result = table02.compute(
            campaign_results.quic_deployments(), campaign_results.https_only_deployments()
        )
        assert result.ecdsa_share("QUIC", "Leaf") > 0.6          # paper: 78.9 %
        assert result.rsa_share("HTTPS-only", "Leaf") > 0.8      # paper: 89.5 %
        assert result.ecdsa_share("QUIC", "Leaf") > result.ecdsa_share("HTTPS-only", "Leaf")
        assert result.ecdsa_share("QUIC", "Non-leaf") > result.ecdsa_share("HTTPS-only", "Non-leaf")

    def test_shares_sum_to_one_per_group(self, campaign_results):
        result = table02.compute(
            campaign_results.quic_deployments(), campaign_results.https_only_deployments()
        )
        for group in ("QUIC", "HTTPS-only"):
            for cert_type in ("Leaf", "Non-leaf"):
                total = sum(
                    result.share(group, cert_type, algorithm)
                    for algorithm in KeyAlgorithm
                )
                assert total == pytest.approx(1.0, abs=1e-6)

    def test_render_text(self, campaign_results):
        result = table02.compute(
            campaign_results.quic_deployments(), campaign_results.https_only_deployments()
        )
        assert "Table 2" in result.render_text()


class TestFigure14:
    def test_cruise_liners_are_rare(self, campaign_results):
        result = figure14.compute(campaign_results.quic_deployments())
        assert result.leaf_count > 100
        assert result.share_san_below_10pct > 0.5
        assert result.share_high_san_and_over_limit < 0.05
        assert 0.0 < result.top1pct_san_share_threshold < 1.0

    def test_empty_input(self):
        result = figure14.compute([])
        assert result.leaf_count == 0
