"""Unit tests for the ZMap-like prober and the backscatter analysis."""

import pytest

from repro.netsim import IPv4Prefix, Telescope, UdpNetwork
from repro.scanners import BackscatterAnalyzer, ZmapScanner, simulate_spoofed_campaign
from repro.scanners.orchestrator import META_POP_PREFIX
from repro.webpki.population import build_meta_point_of_presence


@pytest.fixture(scope="module")
def meta_network():
    network = UdpNetwork()
    for host in build_meta_point_of_presence(patched=False, prefix=META_POP_PREFIX):
        network.attach_host(host)
    return network


class TestZmapScanner:
    def test_probe_prefix_covers_every_address(self, meta_network):
        scanner = ZmapScanner(meta_network)
        results = scanner.probe_prefix(META_POP_PREFIX)
        assert len(results) == 256
        responding = scanner.responding_hosts(results)
        assert 0 < len(responding) < 256

    def test_response_groups_match_paper(self, meta_network):
        results = ZmapScanner(meta_network).probe_prefix(META_POP_PREFIX)
        groups = {}
        for result in results:
            groups.setdefault(result.response_group(), []).append(result)
        # Group 1: no service; group 2: bounded ≈5x; group 3: storm ≈28x.
        assert set(groups) == {1, 2, 3}
        mean2 = sum(r.amplification_factor for r in groups[2]) / len(groups[2])
        mean3 = sum(r.amplification_factor for r in groups[3]) / len(groups[3])
        assert 3.5 <= mean2 <= 8
        assert mean3 > 20
        group3_domains = {r.domain for r in groups[3]}
        assert group3_domains <= {"instagram.com", "whatsapp.net"}

    def test_probe_size_recorded(self, meta_network):
        scanner = ZmapScanner(meta_network, probe_size=1252)
        result = scanner.probe_address(META_POP_PREFIX.address_at(1))
        assert result.probe_size == 1252
        assert result.host_octet == 1


class TestBackscatter:
    def test_spoofed_campaign_fills_telescope(self, meta_network):
        telescope = Telescope()
        telescope_prefix = IPv4Prefix.parse("198.51.100.0/24")
        meta_network.attach_telescope(telescope_prefix, telescope)
        targets = [host.address for host in meta_network.hosts_in_prefix(META_POP_PREFIX)]
        responded = simulate_spoofed_campaign(meta_network, targets, telescope_prefix)
        assert responded == len(targets)
        assert len(telescope) > len(targets)  # several datagrams per session

        analyzer = BackscatterAnalyzer(telescope, lambda domain: "meta")
        per_provider = analyzer.analyze()
        assert "meta" in per_provider
        meta = per_provider["meta"]
        assert meta.session_count == pytest.approx(len(targets), abs=3)
        assert meta.max_amplification > 10  # the instagram/whatsapp storm group
        assert meta.share_exceeding(3.0) > 0.9

    def test_campaign_backscatter_shapes(self, campaign_results):
        backscatter = campaign_results.backscatter
        assert {"cloudflare", "google", "meta"} <= set(backscatter)
        assert backscatter["meta"].max_amplification > backscatter["cloudflare"].max_amplification
        assert backscatter["cloudflare"].max_amplification < 12
        assert backscatter["google"].max_amplification < 12
        for provider in ("cloudflare", "google", "meta"):
            assert backscatter[provider].share_exceeding(3.0) > 0.5
