"""Unit tests for the analysis building blocks: Table, EmpiricalCdf, stats."""

import pytest

from repro.analysis import Column, EmpiricalCdf, Table, mean, median, percentile, share


class TestTable:
    def test_requires_columns_and_unique_names(self):
        with pytest.raises(ValueError):
            Table([])
        with pytest.raises(ValueError):
            Table([Column("a"), Column("a")])

    def test_add_row_positional_and_named(self):
        table = Table([Column("name"), Column("value", ".1f")])
        table.add_row("x", 1.25)
        table.add_row(name="y", value=2.5)
        assert len(table) == 2
        assert table.column("name") == ["x", "y"]
        assert table.rows()[1] == {"name": "y", "value": 2.5}

    def test_add_row_arity_checked(self):
        table = Table([Column("a"), Column("b")])
        with pytest.raises(ValueError):
            table.add_row(1)
        with pytest.raises(ValueError):
            table.add_row(1, 2, named=3)

    def test_render_text_and_csv(self):
        table = Table([Column("step"), Column("share", ".0%")])
        table.add_row("resolved", 0.976)
        text = table.render_text("Funnel")
        assert "Funnel" in text and "98%" in text and "resolved" in text
        assert table.to_csv().splitlines()[0] == "step,share"


class TestEmpiricalCdf:
    def test_empty(self):
        cdf = EmpiricalCdf.from_values([])
        assert cdf.is_empty
        assert cdf.probability_at(10) == 0.0
        assert cdf.quantile(0.5) == 0.0
        assert cdf.points() == []

    def test_probability_at(self):
        cdf = EmpiricalCdf.from_values([1, 2, 3, 4])
        assert cdf.probability_at(0) == 0.0
        assert cdf.probability_at(2) == 0.5
        assert cdf.probability_at(4) == 1.0
        assert cdf.probability_at(100) == 1.0

    def test_quantiles(self):
        cdf = EmpiricalCdf.from_values(range(1, 101))
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 100
        assert cdf.median == 50
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_monotonicity_of_points(self):
        cdf = EmpiricalCdf.from_values([5, 1, 7, 3, 9, 2] * 30)
        points = cdf.points(max_points=20)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_values_get_sorted_on_construction(self):
        cdf = EmpiricalCdf((3.0, 1.0, 2.0))
        assert cdf.values == (1.0, 2.0, 3.0)

    def test_render_text_contains_sample_size(self):
        cdf = EmpiricalCdf.from_values([100, 200, 300])
        assert "n=3" in cdf.render_text("bytes")

    def test_from_counts_ignores_zero_multiplicity_entries(self):
        cdf = EmpiricalCdf.from_counts({1.0: 0, 2.0: 3})
        assert cdf == EmpiricalCdf.from_values([2.0, 2.0, 2.0])
        assert cdf.probability_at(1.0) == 0.0
        all_zero = EmpiricalCdf.from_counts({1.0: 0})
        assert all_zero.is_empty
        assert all_zero.points() == []

    def test_from_counts_rejects_negative_multiplicities(self):
        with pytest.raises(ValueError, match="negative multiplicity"):
            EmpiricalCdf.from_counts({1.0: -3, 2.0: 5})


class TestStats:
    def test_mean_median(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert median([1, 2, 100]) == 2

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 0.0) == 0
        assert percentile(values, 1.0) == 100
        assert percentile(values, 0.9) == 90
        with pytest.raises(ValueError):
            percentile(values, 2)

    def test_share(self):
        assert share([1, 2, 3, 4], lambda v: v % 2 == 0) == 0.5
        assert share([], lambda v: True) == 0.0
