"""Determinism tests for the sharded campaign runner and streaming generation.

The contract under test: a seeded campaign produces byte-identical results no
matter how the work is split — serial vs. sharded, one worker vs. many
processes, eager vs. streaming population generation.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import build_report
from repro.scanners.orchestrator import MeasurementCampaign
from repro.scanners.sharding import (
    DEFAULT_SHARD_SIZE,
    build_shard_tasks,
    merge_shard_results,
    plan_shards,
    run_sharded_scan,
    scan_shard,
)
from repro.webpki.deployment import ServiceCategory
from repro.webpki.population import (
    GENERATION_SHARD_SIZE,
    InternetPopulation,
    PopulationConfig,
    generate_population,
    generate_shard,
    iter_population_shards,
)
from repro.x509.field_sizes import measure_field_sizes

#: Small population with several scan shards (shard_size=256 below) so the
#: merge logic is actually exercised; sized to keep the 4-process test quick.
CONFIG = PopulationConfig(size=1200, seed=77)
SHARD_SIZE = 256


@pytest.fixture(scope="module")
def population():
    return generate_population(CONFIG)


def _campaign(population, **kwargs):
    return MeasurementCampaign(
        population=population,
        run_sweep=True,
        sweep_sample_size=80,
        spoofed_targets_per_provider=20,
        **kwargs,
    ).run()


class TestPlanShards:
    def test_covers_every_deployment_exactly_once(self):
        specs = plan_shards(1000, shard_size=128)
        assert specs[0].start == 0
        assert specs[-1].stop == 1000
        for left, right in zip(specs, specs[1:]):
            assert left.stop == right.start
        assert sum(len(spec) for spec in specs) == 1000

    def test_last_shard_may_be_short(self):
        specs = plan_shards(1000, shard_size=300)
        assert [len(spec) for spec in specs] == [300, 300, 300, 100]

    def test_boundaries_do_not_depend_on_worker_count(self):
        # There is no worker parameter at all: the plan is a pure function of
        # (total, shard_size), which is what makes N-process runs mergeable.
        assert plan_shards(5000) == plan_shards(5000, DEFAULT_SHARD_SIZE)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(100, shard_size=0)
        with pytest.raises(ValueError):
            plan_shards(-1)


class TestStreamingGeneration:
    def test_streaming_equals_eager(self, population):
        streamed = [
            deployment
            for shard in iter_population_shards(CONFIG)
            for deployment in shard.deployments
        ]
        assert len(streamed) == len(population.deployments)
        for streamed_d, eager_d in zip(streamed, population.deployments):
            assert streamed_d.domain == eager_d.domain
            assert streamed_d.rank == eager_d.rank
            assert streamed_d.category == eager_d.category
            assert streamed_d.address == eager_d.address
            assert streamed_d.provider == eager_d.provider
            if eager_d.https_chain is not None:
                assert streamed_d.https_chain.fingerprint == eager_d.https_chain.fingerprint
            if eager_d.quic_chain is not None:
                assert streamed_d.quic_chain.fingerprint == eager_d.quic_chain.fingerprint

    def test_shards_are_rank_contiguous(self):
        shards = list(iter_population_shards(CONFIG))
        assert shards[0].start_rank == 1
        for shard in shards:
            ranks = [d.rank for d in shard.deployments]
            assert ranks == list(range(shard.start_rank, shard.start_rank + len(ranks)))
        assert shards[-1].end_rank == CONFIG.size

    def test_single_shard_generation_is_order_independent(self):
        # Shard 1 generated alone equals shard 1 from the stream: it depends
        # only on (seed, shard_index), never on shard 0 having been generated.
        alone = generate_shard(CONFIG, 1)
        streamed = list(iter_population_shards(CONFIG))[1]
        assert alone.start_rank == streamed.start_rank == GENERATION_SHARD_SIZE + 1
        assert [d.domain for d in alone.deployments] == [
            d.domain for d in streamed.deployments
        ]
        assert [d.address for d in alone.deployments] == [
            d.address for d in streamed.deployments
        ]

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(ValueError):
            generate_shard(CONFIG, 99)


class TestShardedScanDeterminism:
    def test_workers_1_vs_4_byte_identical_report(self, population):
        """The acceptance criterion: same seed => same report bytes, any N."""
        results_1 = _campaign(population, workers=1, shard_size=SHARD_SIZE)
        results_4 = _campaign(population, workers=4, shard_size=SHARD_SIZE)
        assert build_report(results_1).text == build_report(results_4).text
        assert results_1.flight_cache == results_4.flight_cache
        assert results_1.https_scan.funnel.as_dict() == results_4.https_scan.funnel.as_dict()
        assert results_1.handshakes == results_4.handshakes
        assert results_1.sweep.observations == results_4.sweep.observations

    def test_sharded_equals_serial_report(self, population):
        serial = _campaign(population)
        sharded = _campaign(population, workers=1, shard_size=SHARD_SIZE)
        assert build_report(serial).text == build_report(sharded).text

    def test_shard_size_does_not_change_results(self, population):
        small = _campaign(population, workers=1, shard_size=200)
        large = _campaign(population, workers=1, shard_size=800)
        assert build_report(small).text == build_report(large).text

    def test_merge_is_shard_order_insensitive(self, population):
        tasks = build_shard_tasks(
            population.deployments, shard_size=SHARD_SIZE,
            run_sweep=True, sweep_sample_size=80,
        )
        partials = [scan_shard(task) for task in tasks]
        forward = merge_shard_results(partials, run_sweep=True)
        backward = merge_shard_results(list(reversed(partials)), run_sweep=True)
        assert forward.handshakes == backward.handshakes
        assert forward.https_scan.records == backward.https_scan.records
        assert forward.sweep.observations == backward.sweep.observations
        assert forward.flight_cache == backward.flight_cache

    def test_merged_shapes_cover_population(self, population):
        merged = run_sharded_scan(
            population, workers=1, shard_size=SHARD_SIZE,
            run_sweep=False,
        )
        quic_count = sum(
            1 for d in population.deployments if d.category is ServiceCategory.QUIC
        )
        assert len(merged.handshakes) == quic_count
        assert len(merged.quic_certificates) == quic_count
        assert len(merged.compression) == quic_count
        assert merged.sweep is None
        assert merged.https_scan.funnel.names_total == len(population.deployments)
        # One handshake per domain and the cache key includes the domain, so a
        # sweepless scan is all misses; every flight still lands in the cache.
        assert merged.flight_cache.hits == 0
        assert merged.flight_cache.misses == merged.flight_cache.currsize

    def test_sweep_on_hand_assembled_population(self, population):
        """Regression: sweep targets route by list index, not rank.

        A hand-assembled population (here: the QUIC subset, so ranks are
        sparse and far exceed the list length) used to crash task building —
        or silently sweep the wrong shards when merely reordered.
        """
        quic_only = [
            d for d in population.deployments if d.category is ServiceCategory.QUIC
        ]
        subset = InternetPopulation(
            config=population.config, tranco=population.tranco, deployments=quic_only
        )
        kwargs = dict(run_sweep=True, sweep_sample_size=60, spoofed_targets_per_provider=10)
        serial = MeasurementCampaign(population=subset, **kwargs).run()
        sharded = MeasurementCampaign(
            population=subset, workers=1, shard_size=64, **kwargs
        ).run()
        assert build_report(serial).text == build_report(sharded).text
        reachable = [o for o in sharded.sweep.observations if o.reachable]
        assert len(reachable) > len(sharded.sweep.observations) * 0.9

    def test_sweep_reuses_per_shard_caches(self, population):
        merged = run_sharded_scan(
            population, workers=1, shard_size=SHARD_SIZE,
            run_sweep=True, sweep_sample_size=80,
        )
        # The sweep replays each sampled domain at every Initial size; all but
        # the first replay hit the shard's cache.
        assert merged.flight_cache.hits > merged.flight_cache.misses


class TestFieldSizeMemo:
    def test_repeated_measurement_returns_cached_object(self, population):
        certificate = population.quic_services()[0].https_chain.leaf
        first = measure_field_sizes(certificate)
        second = measure_field_sizes(certificate)
        assert second is first  # memoized on the frozen instance

    def test_memoized_sizes_still_account_for_every_byte(self, population):
        for deployment in population.quic_services()[:20]:
            for certificate in deployment.https_chain:
                sizes = measure_field_sizes(certificate)
                assert sizes.total == certificate.size
                accounted = (
                    sizes.subject + sizes.issuer + sizes.public_key_info
                    + sizes.extensions + sizes.signature + sizes.other
                )
                assert accounted == sizes.total
