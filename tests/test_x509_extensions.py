"""Unit tests for X.509 v3 extensions."""

import pytest

from repro.asn1 import OID, decode_tlv, iter_tlvs
from repro.x509.extensions import (
    AuthorityInformationAccess,
    AuthorityKeyIdentifier,
    BasicConstraints,
    CertificatePolicies,
    CrlDistributionPoints,
    Extension,
    ExtendedKeyUsage,
    KeyUsage,
    SignedCertificateTimestamps,
    SubjectAlternativeName,
    SubjectKeyIdentifier,
    encode_extensions,
)


class TestBasicConstraints:
    def test_ca_true_encoded(self):
        extension = BasicConstraints(ca=True, path_length=0)
        assert extension.oid.dotted == OID.BASIC_CONSTRAINTS.dotted
        assert extension.critical is True
        assert b"\x01\x01\xff" in extension.value  # BOOLEAN TRUE

    def test_leaf_basic_constraints_is_empty_sequence(self):
        extension = BasicConstraints(ca=False)
        assert extension.value == b"\x30\x00"


class TestKeyUsage:
    def test_cert_sign_flags(self):
        extension = KeyUsage(key_cert_sign=True, crl_sign=True)
        data = extension.value
        # BIT STRING with one content octet carrying bits 5 and 6.
        assert data[0] == 0x03
        assert data[-1] == 0x06

    def test_no_flags_produces_empty_bit_string(self):
        extension = KeyUsage()
        assert extension.value.endswith(b"\x00")

    def test_digital_signature_only(self):
        extension = KeyUsage(digital_signature=True)
        assert extension.value[-1] == 0x80


class TestSubjectAlternativeName:
    def test_contains_each_dns_name(self):
        extension = SubjectAlternativeName(["example.org", "www.example.org"])
        assert b"example.org" in extension.value
        assert b"www.example.org" in extension.value

    def test_size_grows_linearly_with_names(self):
        few = SubjectAlternativeName(["example.org"]).encoded_size()
        many = SubjectAlternativeName([f"host{i}.example.org" for i in range(50)]).encoded_size()
        assert many > few + 40 * 15  # each extra SAN is roughly name length + 2 bytes

    def test_empty_san_list_allowed(self):
        assert SubjectAlternativeName([]).encoded_size() > 0

    def test_uses_dns_general_name_tag(self):
        extension = SubjectAlternativeName(["example.org"])
        _, names, _ = decode_tlv(extension.value)
        tag, content, _ = decode_tlv(names)
        assert tag == 0x82  # context [2] dNSName
        assert content == b"example.org"


class TestKeyIdentifiers:
    def test_subject_key_identifier_wraps_octet_string(self):
        extension = SubjectKeyIdentifier(b"\x01" * 20)
        tag, content, _ = decode_tlv(extension.value)
        assert tag == 0x04 and content == b"\x01" * 20

    def test_authority_key_identifier_uses_context_tag(self):
        extension = AuthorityKeyIdentifier(b"\x02" * 20)
        _, content, _ = decode_tlv(extension.value)
        tag, inner, _ = decode_tlv(content)
        assert tag == 0x80 and inner == b"\x02" * 20


class TestUrlBearingExtensions:
    def test_aia_contains_urls(self):
        extension = AuthorityInformationAccess(
            ocsp_url="http://ocsp.example", ca_issuers_url="http://ca.example/ca.der"
        )
        assert b"http://ocsp.example" in extension.value
        assert b"http://ca.example/ca.der" in extension.value

    def test_crl_distribution_points_contains_url(self):
        extension = CrlDistributionPoints(["http://crl.example/x.crl"])
        assert b"http://crl.example/x.crl" in extension.value

    def test_certificate_policies_with_cps(self):
        extension = CertificatePolicies(cps_url="https://cps.example")
        assert b"https://cps.example" in extension.value

    def test_certificate_policies_default_dv(self):
        extension = CertificatePolicies()
        assert extension.encoded_size() > 10


class TestSctList:
    def test_size_scales_with_count(self):
        two = SignedCertificateTimestamps(count=2).encoded_size()
        three = SignedCertificateTimestamps(count=3).encoded_size()
        assert 100 < three - two < 140  # one SCT is ~120 bytes

    def test_deterministic_for_same_seed(self):
        a = SignedCertificateTimestamps(count=2, log_seed="x")
        b = SignedCertificateTimestamps(count=2, log_seed="x")
        assert a.value == b.value


class TestExtensionFraming:
    def test_extension_encode_includes_critical_flag_only_when_set(self):
        critical = BasicConstraints(ca=True).encode()
        non_critical = ExtendedKeyUsage().encode()
        assert b"\x01\x01\xff" in critical
        assert b"\x01\x01\xff" not in non_critical

    def test_encode_extensions_wraps_in_explicit_3(self):
        block = encode_extensions([BasicConstraints(ca=False), ExtendedKeyUsage()])
        assert block[0] == 0xA3

    def test_extension_sizes_sum_close_to_block_size(self):
        extensions = [BasicConstraints(ca=False), ExtendedKeyUsage(), SubjectKeyIdentifier(b"k" * 20)]
        block = encode_extensions(extensions)
        total = sum(e.encoded_size() for e in extensions)
        assert total < len(block) <= total + 10  # framing adds a handful of bytes
