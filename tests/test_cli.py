"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.scenarios import BUILTIN_SCENARIOS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.size == 3000 and args.seed == 2022 and not args.sweep

    def test_predict_arguments(self):
        args = build_parser().parse_args(
            ["predict", "--chain", "Cloudflare ECC CA-3", "--initial-size", "1250"]
        )
        assert args.chain == "Cloudflare ECC CA-3"
        assert args.initial_size == 1250


class TestCommands:
    def test_profiles_lists_chains_and_behaviours(self, capsys):
        assert main(["profiles"]) == 0
        output = capsys.readouterr().out
        assert "Cloudflare ECC CA-3" in output
        assert "cloudflare-like" in output
        assert "mvfst-like" in output

    def test_predict_known_chain(self, capsys):
        assert main(["predict", "--chain", "Let's Encrypt E1 (short)"]) == 0
        output = capsys.readouterr().out
        assert "predicted class:     1-RTT" in output

    def test_predict_large_chain_with_and_without_compression(self, capsys):
        assert main(["predict", "--chain", "Amazon RSA 2048 M02 (long)"]) == 0
        plain = capsys.readouterr().out
        assert "Multi-RTT" in plain
        assert main(["predict", "--chain", "Amazon RSA 2048 M02 (long)", "--compression", "brotli"]) == 0
        compressed = capsys.readouterr().out
        assert "1-RTT" in compressed

    def test_predict_unknown_chain_fails(self, capsys):
        assert main(["predict", "--chain", "No Such CA"]) == 2
        assert "unknown chain profile" in capsys.readouterr().err

    def test_campaign_stream_flag_parses(self):
        args = build_parser().parse_args(["campaign", "--stream", "--workers", "2"])
        assert args.stream and args.workers == 2
        assert not build_parser().parse_args(["campaign"]).stream

    def test_streamed_campaign_writes_report(self, tmp_path, capsys):
        output_file = tmp_path / "streamed.txt"
        assert main(
            ["campaign", "--size", "300", "--stream", "--output", str(output_file)]
        ) == 0
        content = output_file.read_text()
        assert "figure06" in content
        assert "Table 2" in content

    def test_predict_initial_size_moves_the_class(self, capsys):
        chain = "Let's Encrypt R3 + root X1"
        assert main(["predict", "--chain", chain, "--initial-size", "1200"]) == 0
        small = capsys.readouterr().out
        assert main(["predict", "--chain", chain, "--initial-size", "1472"]) == 0
        large = capsys.readouterr().out
        assert "smallest 1-RTT Initial" in small
        assert small != large

    def test_profiles_lists_every_builtin_behaviour(self, capsys):
        assert main(["profiles"]) == 0
        output = capsys.readouterr().out
        for name in ("rfc-compliant", "google-like", "retry-always", "mvfst-patched"):
            assert name in output

    def test_campaign_writes_report(self, tmp_path, capsys):
        output_file = tmp_path / "report.txt"
        export_dir = tmp_path / "export"
        assert main(
            ["campaign", "--size", "300", "--output", str(output_file), "--export-dir", str(export_dir)]
        ) == 0
        assert output_file.exists()
        content = output_file.read_text()
        assert "figure06" in content
        assert "Table 2" in content
        assert (export_dir / "evaluation.txt").exists()
        assert (export_dir / "figure06_quic.csv").exists()


class TestScenarioCommands:
    def test_scenarios_lists_builtins_with_descriptions(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for name, spec in BUILTIN_SCENARIOS.items():
            assert name in output
            assert spec.description.split("?")[0] in output

    def test_scenarios_names_prints_bare_names(self, capsys):
        assert main(["scenarios", "--names"]) == 0
        output = capsys.readouterr().out
        assert output.split() == list(BUILTIN_SCENARIOS)

    def test_campaign_under_a_builtin_scenario_stamps_the_report(self, tmp_path, capsys):
        output_file = tmp_path / "what-if.txt"
        assert main(
            ["campaign", "--size", "250", "--stream",
             "--scenario", "universal-compression", "--output", str(output_file)]
        ) == 0
        content = output_file.read_text()
        assert "scenario: universal-compression" in content
        assert "figure06" in content

    def test_campaign_under_a_scenario_file(self, tmp_path, capsys):
        scenario_file = tmp_path / "custom.json"
        scenario_file.write_text(
            BUILTIN_SCENARIOS["trimmed-chains"].to_json(), encoding="utf-8"
        )
        output_file = tmp_path / "custom.txt"
        assert main(
            ["campaign", "--size", "250", "--stream",
             "--scenario", str(scenario_file), "--output", str(output_file)]
        ) == 0
        assert "scenario: trimmed-chains" in output_file.read_text()

    def test_campaign_with_unknown_scenario_fails_readably(self, capsys):
        assert main(["campaign", "--size", "250", "--scenario", "no-such-world"]) == 2
        error = capsys.readouterr().err
        assert "unknown scenario 'no-such-world'" in error
        assert "baseline-2022" in error  # the message lists the built-ins

    def test_campaign_with_malformed_scenario_file_fails_readably(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["campaign", "--size", "250", "--scenario", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_compare_prints_the_delta_table(self, capsys):
        assert main(
            ["compare", "--scenarios", "baseline-2022,trimmed-chains", "--size", "250"]
        ) == 0
        output = capsys.readouterr().out
        assert "Scenario comparison" in output
        assert "trimmed-chains" in output
        assert "1-RTT share" in output

    def test_compare_with_unknown_scenario_fails_readably(self, capsys):
        assert main(["compare", "--scenarios", "nope", "--size", "250"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestGridCommands:
    def test_scenarios_grid_dry_runs_the_expansion(self, capsys):
        assert main(["scenarios", "--grid", "compression-adoption"]) == 0
        output = capsys.readouterr().out
        assert "Scenario grid 'compression-adoption' — 11 members" in output
        assert "compression-adoption-000" in output
        assert "compression-adoption-100" in output
        # Every member line carries its fingerprint prefix (16 hex chars).
        member_lines = [
            line for line in output.splitlines()
            if line.strip().startswith("compression-adoption-")
        ]
        assert len(member_lines) == 11
        for line in member_lines:
            fingerprint = line.split()[-1]
            assert len(fingerprint) == 16
            int(fingerprint, 16)

    def test_scenarios_grid_with_malformed_file_fails_readably(self, tmp_path, capsys):
        bad = tmp_path / "grid.json"
        bad.write_text("[1, 2", encoding="utf-8")
        assert main(["scenarios", "--grid", str(bad)]) == 2
        error = capsys.readouterr().err
        assert error.startswith("error:") and "not valid JSON" in error

    def test_campaign_scenario_grid_writes_one_report_per_member(self, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        assert main(
            ["campaign", "--size", "250",
             "--scenario-grid", "baseline-2022,trimmed-chains",
             "--output", str(out_dir)]
        ) == 0
        assert sorted(os.listdir(out_dir)) == [
            "baseline-2022.report.txt", "trimmed-chains.report.txt",
        ]
        trimmed = (out_dir / "trimmed-chains.report.txt").read_text()
        assert "scenario: trimmed-chains" in trimmed

    def test_campaign_scenario_grid_excludes_scenario_and_sweep(self, capsys):
        assert main(
            ["campaign", "--size", "250", "--scenario-grid", "what-ifs",
             "--scenario", "baseline-2022"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err
        assert main(
            ["campaign", "--size", "250", "--scenario-grid", "what-ifs", "--sweep"]
        ) == 2
        assert "--sweep" in capsys.readouterr().err

    def test_campaign_with_unknown_grid_fails_readably(self, capsys):
        assert main(["campaign", "--size", "250", "--scenario-grid", "no-such-grid"]) == 2
        error = capsys.readouterr().err
        assert "unknown scenario grid 'no-such-grid'" in error
        assert "compression-adoption" in error  # the message lists the built-ins

    def test_compare_grid_prints_the_adoption_table(self, capsys):
        assert main(
            ["compare", "--grid", "baseline-2022,universal-compression",
             "--size", "250"]
        ) == 0
        output = capsys.readouterr().out
        assert "Adoption curve" in output
        assert "median amplification vs compression adoption fraction" in output
        assert "universal-compression" in output

    def test_compare_grid_and_scenarios_are_mutually_exclusive(self, capsys):
        assert main(
            ["compare", "--grid", "what-ifs", "--scenarios", "baseline-2022"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_compare_with_malformed_grid_file_fails_readably(self, tmp_path, capsys):
        bad = tmp_path / "grid.json"
        bad.write_text('{"name": "x", "scenarios": [{"nope": 1}]}', encoding="utf-8")
        assert main(["compare", "--grid", str(bad), "--size", "250"]) == 2
        error = capsys.readouterr().err
        assert error.startswith("error:") and "unknown scenario field" in error

    def test_compare_progress_reports_reduced_shards(self, capsys):
        assert main(
            ["compare", "--scenarios", "baseline-2022,trimmed-chains",
             "--size", "250", "--progress"]
        ) == 0
        captured = capsys.readouterr()
        assert "Scenario comparison" in captured.out
        assert "scenario(s) reduced" in captured.err


class TestDurabilityFlags:
    def test_resume_without_checkpoint_dir_fails_readably(self, capsys):
        assert main(["campaign", "--size", "250", "--stream", "--resume"]) == 2
        assert "--resume needs --checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_dir_without_stream_fails_readably(self, tmp_path, capsys):
        assert main(
            ["campaign", "--size", "250", "--checkpoint-dir", str(tmp_path / "ckpt")]
        ) == 2
        assert "add --stream" in capsys.readouterr().err

    def test_malformed_fault_plan_fails_readably(self, tmp_path, capsys):
        bad = tmp_path / "plan.json"
        bad.write_text('{"worker": [{"shard": 0, "kind": "explode"}]}', encoding="utf-8")
        assert main(
            ["campaign", "--size", "250", "--stream", "--fault-plan", str(bad)]
        ) == 2
        assert "unknown worker fault kind" in capsys.readouterr().err

    def test_missing_fault_plan_file_fails_readably(self, tmp_path, capsys):
        assert main(
            ["campaign", "--size", "250", "--stream",
             "--fault-plan", str(tmp_path / "absent.json")]
        ) == 2
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_bad_retry_knobs_fail_readably(self, capsys):
        assert main(
            ["campaign", "--size", "250", "--stream", "--max-shard-retries", "0"]
        ) == 2
        assert "max_attempts must be positive" in capsys.readouterr().err
        assert main(
            ["campaign", "--size", "250", "--stream", "--shard-timeout", "-1"]
        ) == 2
        assert "shard_timeout must be positive" in capsys.readouterr().err

    def test_mismatched_resume_directory_fails_readably(self, tmp_path, capsys):
        checkpoint_dir = str(tmp_path / "ckpt")
        assert main(
            ["campaign", "--size", "250", "--stream",
             "--checkpoint-dir", checkpoint_dir,
             "--output", str(tmp_path / "first.txt")]
        ) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "--size", "300", "--stream", "--resume",
             "--checkpoint-dir", checkpoint_dir]
        ) == 2
        error = capsys.readouterr().err
        assert "different campaign" in error
        assert "size" in error

    def test_checkpoint_and_resume_round_trip_is_byte_identical(self, tmp_path, capsys):
        plain = tmp_path / "plain.txt"
        checkpointed = tmp_path / "checkpointed.txt"
        resumed = tmp_path / "resumed.txt"
        base = ["campaign", "--size", "250", "--stream", "--shard-size", "100"]
        assert main([*base, "--output", str(plain)]) == 0
        assert main(
            [*base, "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--output", str(checkpointed)]
        ) == 0
        assert main(
            [*base, "--checkpoint-dir", str(tmp_path / "ckpt"), "--resume",
             "--output", str(resumed)]
        ) == 0
        assert checkpointed.read_bytes() == plain.read_bytes()
        assert resumed.read_bytes() == plain.read_bytes()


class TestScanBackendFlag:
    def test_scan_backend_flag_parses(self):
        args = build_parser().parse_args(["campaign", "--scan-backend", "columnar"])
        assert args.scan_backend == "columnar"
        assert build_parser().parse_args(["campaign"]).scan_backend is None

    def test_unknown_backend_fails_readably(self, capsys):
        assert main(
            ["campaign", "--size", "250", "--scan-backend", "numpy"]
        ) == 2
        error = capsys.readouterr().err
        assert "unknown scan backend 'numpy'" in error
        assert "columnar" in error  # the message lists the registry

    def test_unknown_backend_fails_before_any_generation(self, capsys):
        # Validation is eager: with a 50M-domain population this returns
        # instantly only if the backend is checked before generation starts.
        assert main(
            ["campaign", "--size", "50000000", "--stream",
             "--scan-backend", "vectorised"]
        ) == 2
        assert "unknown scan backend" in capsys.readouterr().err

    def test_unknown_scenario_fails_before_any_generation(self, capsys):
        # Same eagerness contract for --scenario.
        assert main(
            ["campaign", "--size", "50000000", "--stream",
             "--scenario", "no-such-world"]
        ) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_env_backend_fails_readably(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_BACKEND", "bogus")
        assert main(["campaign", "--size", "250", "--stream"]) == 2
        error = capsys.readouterr().err
        assert "REPRO_SCAN_BACKEND" in error

    def test_columnar_backend_report_is_byte_identical(self, tmp_path):
        reference = tmp_path / "object.txt"
        columnar = tmp_path / "columnar.txt"
        base = ["campaign", "--size", "300", "--stream", "--shard-size", "100"]
        assert main([*base, "--output", str(reference)]) == 0
        assert main(
            [*base, "--scan-backend", "columnar", "--output", str(columnar)]
        ) == 0
        assert columnar.read_bytes() == reference.read_bytes()
