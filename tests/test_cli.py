"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.size == 3000 and args.seed == 2022 and not args.sweep

    def test_predict_arguments(self):
        args = build_parser().parse_args(
            ["predict", "--chain", "Cloudflare ECC CA-3", "--initial-size", "1250"]
        )
        assert args.chain == "Cloudflare ECC CA-3"
        assert args.initial_size == 1250


class TestCommands:
    def test_profiles_lists_chains_and_behaviours(self, capsys):
        assert main(["profiles"]) == 0
        output = capsys.readouterr().out
        assert "Cloudflare ECC CA-3" in output
        assert "cloudflare-like" in output
        assert "mvfst-like" in output

    def test_predict_known_chain(self, capsys):
        assert main(["predict", "--chain", "Let's Encrypt E1 (short)"]) == 0
        output = capsys.readouterr().out
        assert "predicted class:     1-RTT" in output

    def test_predict_large_chain_with_and_without_compression(self, capsys):
        assert main(["predict", "--chain", "Amazon RSA 2048 M02 (long)"]) == 0
        plain = capsys.readouterr().out
        assert "Multi-RTT" in plain
        assert main(["predict", "--chain", "Amazon RSA 2048 M02 (long)", "--compression", "brotli"]) == 0
        compressed = capsys.readouterr().out
        assert "1-RTT" in compressed

    def test_predict_unknown_chain_fails(self, capsys):
        assert main(["predict", "--chain", "No Such CA"]) == 2
        assert "unknown chain profile" in capsys.readouterr().err

    def test_campaign_stream_flag_parses(self):
        args = build_parser().parse_args(["campaign", "--stream", "--workers", "2"])
        assert args.stream and args.workers == 2
        assert not build_parser().parse_args(["campaign"]).stream

    def test_streamed_campaign_writes_report(self, tmp_path, capsys):
        output_file = tmp_path / "streamed.txt"
        assert main(
            ["campaign", "--size", "300", "--stream", "--output", str(output_file)]
        ) == 0
        content = output_file.read_text()
        assert "figure06" in content
        assert "Table 2" in content

    def test_campaign_writes_report(self, tmp_path, capsys):
        output_file = tmp_path / "report.txt"
        export_dir = tmp_path / "export"
        assert main(
            ["campaign", "--size", "300", "--output", str(output_file), "--export-dir", str(export_dir)]
        ) == 0
        assert output_file.exists()
        content = output_file.read_text()
        assert "figure06" in content
        assert "Table 2" in content
        assert (export_dir / "evaluation.txt").exists()
        assert (export_dir / "figure06_quic.csv").exists()
