"""Unit tests for the DER encoder/decoder."""

from datetime import datetime, timezone

import pytest

from repro.asn1 import (
    Asn1Error,
    decode_boolean,
    decode_bit_string,
    decode_integer,
    decode_length,
    decode_tlv,
    encode_boolean,
    encode_bit_string,
    encode_explicit,
    encode_generalized_time,
    encode_ia5_string,
    encode_integer,
    encode_length,
    encode_null,
    encode_octet_string,
    encode_printable_string,
    encode_sequence,
    encode_set,
    encode_tlv,
    encode_utc_time,
    encode_utf8_string,
    iter_tlvs,
)
from repro.asn1.tags import Tag


class TestLengthEncoding:
    def test_short_form(self):
        assert encode_length(0) == b"\x00"
        assert encode_length(127) == b"\x7f"

    def test_long_form_one_octet(self):
        assert encode_length(128) == b"\x81\x80"
        assert encode_length(255) == b"\x81\xff"

    def test_long_form_two_octets(self):
        assert encode_length(256) == b"\x82\x01\x00"
        assert encode_length(65535) == b"\x82\xff\xff"

    def test_negative_length_rejected(self):
        with pytest.raises(Asn1Error):
            encode_length(-1)

    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 256, 1000, 65536, 10**6])
    def test_roundtrip(self, value):
        encoded = encode_length(value)
        decoded, offset = decode_length(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_decode_truncated(self):
        with pytest.raises(Asn1Error):
            decode_length(b"", 0)
        with pytest.raises(Asn1Error):
            decode_length(b"\x82\x01", 0)

    def test_indefinite_length_rejected(self):
        with pytest.raises(Asn1Error):
            decode_length(b"\x80", 0)


class TestInteger:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 256, -1, -128, -129, 2**64, 65537, -(2**70)]
    )
    def test_roundtrip(self, value):
        tag, content, _ = decode_tlv(encode_integer(value))
        assert tag == Tag.INTEGER
        assert decode_integer(content) == value

    def test_zero_is_single_octet(self):
        assert encode_integer(0) == b"\x02\x01\x00"

    def test_positive_with_high_bit_gets_leading_zero(self):
        # 128 = 0x80 needs a leading 0x00 so it is not interpreted as negative.
        assert encode_integer(128) == b"\x02\x02\x00\x80"

    def test_minimal_encoding_no_redundant_octets(self):
        # 255 encodes as 00 FF (two octets), not 00 00 FF.
        assert encode_integer(255) == b"\x02\x02\x00\xff"

    @pytest.mark.parametrize(
        "value, content",
        [
            (-129, b"\xff\x7f"),
            (-128, b"\x80"),
            (0, b"\x00"),
            (127, b"\x7f"),
            (128, b"\x00\x80"),
        ],
    )
    def test_boundary_values_canonical_and_roundtrip(self, value, content):
        encoded = encode_integer(value)
        tag, decoded_content, _ = decode_tlv(encoded)
        assert tag == Tag.INTEGER
        assert decoded_content == content
        assert decode_integer(decoded_content) == value

    def test_decode_empty_rejected(self):
        with pytest.raises(Asn1Error):
            decode_integer(b"")


class TestBoolean:
    def test_true_false(self):
        assert encode_boolean(True) == b"\x01\x01\xff"
        assert encode_boolean(False) == b"\x01\x01\x00"

    def test_roundtrip(self):
        for value in (True, False):
            _, content, _ = decode_tlv(encode_boolean(value))
            assert decode_boolean(content) is value

    def test_decode_wrong_length(self):
        with pytest.raises(Asn1Error):
            decode_boolean(b"\xff\xff")

    @pytest.mark.parametrize("octet", [0x01, 0x7F, 0x80, 0xFE])
    def test_der_rejects_nonstandard_true_octets(self, octet):
        # BER accepts any nonzero octet as TRUE; DER (X.690 §11.1) does not.
        with pytest.raises(Asn1Error):
            decode_boolean(bytes([octet]))


class TestBitString:
    def test_prepends_unused_bit_count(self):
        encoded = encode_bit_string(b"\xab\xcd", unused_bits=4)
        tag, content, _ = decode_tlv(encoded)
        assert tag == Tag.BIT_STRING
        data, unused = decode_bit_string(content)
        assert data == b"\xab\xcd"
        assert unused == 4

    def test_invalid_unused_bits(self):
        with pytest.raises(Asn1Error):
            encode_bit_string(b"", unused_bits=8)

    def test_decode_empty_rejected(self):
        with pytest.raises(Asn1Error):
            decode_bit_string(b"")


class TestStringsAndTime:
    def test_utf8_string(self):
        encoded = encode_utf8_string("exämple")
        tag, content, _ = decode_tlv(encoded)
        assert tag == Tag.UTF8_STRING
        assert content.decode("utf-8") == "exämple"

    def test_printable_and_ia5(self):
        assert decode_tlv(encode_printable_string("US"))[1] == b"US"
        assert decode_tlv(encode_ia5_string("dns.example.org"))[1] == b"dns.example.org"

    def test_utc_time_format(self):
        moment = datetime(2022, 9, 10, 12, 34, 56, tzinfo=timezone.utc)
        _, content, _ = decode_tlv(encode_utc_time(moment))
        assert content == b"220910123456Z"

    def test_generalized_time_format(self):
        moment = datetime(2055, 1, 2, 3, 4, 5, tzinfo=timezone.utc)
        _, content, _ = decode_tlv(encode_generalized_time(moment))
        assert content == b"20550102030405Z"

    def test_null_and_octet_string(self):
        assert encode_null() == b"\x05\x00"
        tag, content, _ = decode_tlv(encode_octet_string(b"\x01\x02"))
        assert tag == Tag.OCTET_STRING and content == b"\x01\x02"


class TestConstructed:
    def test_sequence_concatenates_components(self):
        inner_a = encode_integer(1)
        inner_b = encode_integer(2)
        tag, content, _ = decode_tlv(encode_sequence(inner_a, inner_b))
        assert tag == Tag.SEQUENCE
        assert content == inner_a + inner_b

    def test_set_sorts_components(self):
        a = encode_integer(2)
        b = encode_integer(1)
        _, content, _ = decode_tlv(encode_set(a, b))
        assert content == b"".join(sorted([a, b]))

    def test_explicit_tagging(self):
        inner = encode_integer(2)
        encoded = encode_explicit(0, inner)
        assert encoded[0] == 0xA0
        _, content, _ = decode_tlv(encoded)
        assert content == inner

    def test_iter_tlvs_walks_all_children(self):
        children = [encode_integer(i) for i in range(5)]
        _, content, _ = decode_tlv(encode_sequence(*children))
        parsed = list(iter_tlvs(content))
        assert len(parsed) == 5
        assert [decode_integer(c) for _, c in parsed] == list(range(5))

    def test_decode_truncated_content(self):
        valid = encode_tlv(Tag.OCTET_STRING, b"abcdef")
        with pytest.raises(Asn1Error):
            decode_tlv(valid[:-1])

    def test_total_size_matches_length_header(self):
        payload = b"x" * 300
        encoded = encode_octet_string(payload)
        # 1 tag byte + 3 length bytes (0x82 + 2) + payload
        assert len(encoded) == 1 + 3 + 300
