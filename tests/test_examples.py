"""Smoke-execute every script in ``examples/`` so they cannot silently rot.

Each example is run as a real subprocess (its own interpreter, ``PYTHONPATH``
pointing at ``src/``) with a tiny population where the script takes one, so
the suite stays fast while still exercising the public API surface the
examples advertise.  A script that drifts from a moved or renamed API fails
here with its stderr attached.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: Arguments that keep each example tiny; scripts without an entry take none.
SMALL_ARGS = {
    "quickstart.py": ["250"],
    "full_evaluation.py": ["250"],
    "operator_chain_audit.py": ["smoke-test.example"],
}

#: A fragment every healthy run prints, per script (falls back to any output).
EXPECTED_OUTPUT = {
    "quickstart.py": "Handshake classes",
    "full_evaluation.py": "reproduced evaluation",
    "operator_chain_audit.py": "Certificate-chain audit",
    "browser_handshake_planning.py": "===",
    "amplification_audit.py": "Probing every host",
}

EXAMPLE_SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_every_example_is_covered():
    """A new example must declare its smoke arguments (or rely on defaults)."""
    assert EXAMPLE_SCRIPTS, "examples/ directory is empty?"
    unknown = set(SMALL_ARGS) - set(EXAMPLE_SCRIPTS)
    assert not unknown, f"SMALL_ARGS references missing examples: {sorted(unknown)}"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_to_completion(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *SMALL_ARGS.get(script, [])],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=REPO_ROOT,
    )
    assert process.returncode == 0, (
        f"{script} exited with {process.returncode}\n"
        f"stdout:\n{process.stdout[-2000:]}\nstderr:\n{process.stderr[-2000:]}"
    )
    expected = EXPECTED_OUTPUT.get(script)
    if expected is not None:
        assert expected in process.stdout, (
            f"{script} ran but did not print {expected!r}\n"
            f"stdout:\n{process.stdout[-2000:]}"
        )
