"""Unit tests for QUIC frames."""

import pytest

from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    FrameType,
    PaddingFrame,
    PingFrame,
    split_crypto_stream,
)


class TestPadding:
    def test_padding_is_zero_bytes(self):
        frame = PaddingFrame(10)
        assert frame.encode() == bytes(10)
        assert frame.size == 10

    def test_padding_not_ack_eliciting(self):
        assert PaddingFrame(1).is_ack_eliciting is False

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            PaddingFrame(-1)


class TestAckAndPing:
    def test_ack_not_ack_eliciting(self):
        assert AckFrame().is_ack_eliciting is False

    def test_ping_is_ack_eliciting(self):
        assert PingFrame().is_ack_eliciting is True
        assert PingFrame().encode() == bytes([FrameType.PING])

    def test_ack_encoding_starts_with_type(self):
        encoded = AckFrame(largest_acknowledged=3).encode()
        assert encoded[0] == FrameType.ACK
        assert len(encoded) >= 5


class TestCrypto:
    def test_crypto_frame_overhead_is_small(self):
        data = bytes(1000)
        frame = CryptoFrame(offset=0, data=data)
        assert frame.is_ack_eliciting
        assert 1002 <= frame.size <= 1006  # type + offset varint + length varint

    def test_end_offset(self):
        frame = CryptoFrame(offset=100, data=bytes(50))
        assert frame.end_offset == 150

    def test_split_crypto_stream_covers_all_bytes(self):
        data = bytes(range(256)) * 20  # 5120 bytes
        frames = split_crypto_stream(data, chunk_size=1400)
        assert sum(len(f.data) for f in frames) == len(data)
        assert frames[0].offset == 0
        assert frames[-1].end_offset == len(data)
        # Offsets are contiguous.
        for first, second in zip(frames, frames[1:]):
            assert first.end_offset == second.offset

    def test_split_empty_stream_yields_single_empty_frame(self):
        frames = split_crypto_stream(b"", chunk_size=1200)
        assert len(frames) == 1
        assert frames[0].data == b""

    def test_split_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            split_crypto_stream(b"abc", chunk_size=0)


class TestConnectionClose:
    def test_contains_reason(self):
        frame = ConnectionCloseFrame(error_code=7, reason="go away")
        assert b"go away" in frame.encode()
        assert frame.is_ack_eliciting is False
