"""Unit tests for the interplay prediction model."""

import pytest

from repro.core import HandshakeClass, predict_handshake, required_initial_size
from repro.core.interplay import server_flight_size
from repro.core.limits import MAX_INITIAL_SIZE_AT_MTU_1500, MIN_INITIAL_SIZE
from repro.quic import QuicClientConfig, simulate_handshake
from repro.quic.profiles import RFC_COMPLIANT
from repro.tls.cert_compression import CertificateCompressionAlgorithm


class TestServerFlightSize:
    def test_flight_larger_than_chain(self, cloudflare_chain):
        assert server_flight_size(cloudflare_chain) > cloudflare_chain.total_size

    def test_compression_shrinks_flight(self, lets_encrypt_long_chain):
        plain = server_flight_size(lets_encrypt_long_chain)
        compressed = server_flight_size(
            lets_encrypt_long_chain, CertificateCompressionAlgorithm.BROTLI
        )
        assert compressed < plain - 500


class TestPredictHandshake:
    def test_small_chain_predicts_one_rtt(self, lets_encrypt_short_chain):
        prediction = predict_handshake(lets_encrypt_short_chain, 1362)
        assert prediction.predicted_class is HandshakeClass.ONE_RTT
        assert prediction.fits_in_one_rtt
        assert prediction.headroom_bytes > 0

    def test_large_chain_predicts_multi_rtt_for_compliant_server(self, lets_encrypt_long_chain):
        prediction = predict_handshake(lets_encrypt_long_chain, 1362)
        assert prediction.predicted_class is HandshakeClass.MULTI_RTT
        assert prediction.headroom_bytes < 0

    def test_large_chain_predicts_amplification_for_noncompliant_server(self, lets_encrypt_long_chain):
        prediction = predict_handshake(lets_encrypt_long_chain, 1362, server_is_compliant=False)
        assert prediction.predicted_class is HandshakeClass.AMPLIFICATION

    def test_compression_restores_one_rtt(self, lets_encrypt_long_chain):
        prediction = predict_handshake(
            lets_encrypt_long_chain, 1362, compression=CertificateCompressionAlgorithm.BROTLI
        )
        assert prediction.predicted_class is HandshakeClass.ONE_RTT

    def test_initial_below_minimum_rejected(self, cloudflare_chain):
        with pytest.raises(ValueError):
            predict_handshake(cloudflare_chain, 1100)

    def test_prediction_agrees_with_simulation_for_compliant_servers(self, hierarchy):
        """The arithmetic model and the packet-level simulator must agree."""
        client = QuicClientConfig(initial_datagram_size=1362)
        for label in (
            "Cloudflare ECC CA-3",
            "Let's Encrypt E1 (short)",
            "Let's Encrypt R3 + cross-signed X1",
            "Google 1C3",
            "Sectigo RSA DV / USERTRUST",
            "GlobalSign Atlas R3 DV",
        ):
            chain = hierarchy.profiles[label].issue(f"agree-{label[:4].lower()}.example")
            predicted = predict_handshake(chain, 1362).predicted_class
            simulated = simulate_handshake("a.example", chain, RFC_COMPLIANT, client).handshake_class
            assert predicted is simulated, label


class TestRequiredInitialSize:
    def test_small_chain_needs_only_minimum(self, lets_encrypt_short_chain):
        assert required_initial_size(lets_encrypt_short_chain) == MIN_INITIAL_SIZE

    def test_medium_chain_needs_larger_initial(self, hierarchy):
        chain = hierarchy.profiles["GoDaddy G2"].issue("medium.example")
        needed = required_initial_size(chain)
        assert needed is not None
        assert MIN_INITIAL_SIZE < needed <= MAX_INITIAL_SIZE_AT_MTU_1500

    def test_large_chain_cannot_be_fixed_by_initial_size(self, hierarchy):
        chain = hierarchy.profiles["Amazon RSA 2048 M02 (long)"].issue("huge.example")
        assert required_initial_size(chain) is None

    def test_compression_lowers_required_initial(self, lets_encrypt_long_chain):
        uncompressed = required_initial_size(lets_encrypt_long_chain)
        compressed = required_initial_size(
            lets_encrypt_long_chain, CertificateCompressionAlgorithm.BROTLI
        )
        assert compressed == MIN_INITIAL_SIZE
        assert uncompressed is None or uncompressed > compressed
