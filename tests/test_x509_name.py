"""Unit tests for distinguished names."""

from repro.asn1 import OID, decode_tlv
from repro.asn1.tags import Tag
from repro.x509.name import DistinguishedName, RelativeName


class TestRelativeName:
    def test_country_uses_printable_string(self):
        encoded = RelativeName(OID.COUNTRY, "US").encode()
        assert b"\x13\x02US" in encoded  # PrintableString "US"

    def test_other_attributes_use_utf8(self):
        encoded = RelativeName(OID.COMMON_NAME, "example.org").encode()
        assert b"\x0c\x0bexample.org" in encoded  # UTF8String

    def test_str_uses_short_attribute_names(self):
        assert str(RelativeName(OID.COMMON_NAME, "example.org")) == "CN=example.org"
        assert str(RelativeName(OID.ORGANIZATION, "ACME")) == "O=ACME"


class TestDistinguishedName:
    def test_build_orders_attributes_conventionally(self):
        dn = DistinguishedName.build(common_name="x.org", organization="X", country="DE")
        rendered = str(dn)
        assert rendered.index("C=DE") < rendered.index("O=X") < rendered.index("CN=x.org")

    def test_encode_is_sequence(self):
        dn = DistinguishedName.build(common_name="x.org")
        tag, _, consumed = decode_tlv(dn.encode())
        assert tag == Tag.SEQUENCE
        assert consumed == len(dn.encode())

    def test_accessors(self):
        dn = DistinguishedName.build(common_name="x.org", organization="Org")
        assert dn.common_name == "x.org"
        assert dn.organization == "Org"

    def test_missing_attributes_return_none(self):
        dn = DistinguishedName.build(organization="Org")
        assert dn.common_name is None

    def test_encoded_size_grows_with_attributes(self):
        short = DistinguishedName.build(common_name="a.io")
        long = DistinguishedName.build(
            common_name="a-very-long-common-name.example.org",
            organization="A Rather Long Organization Name LLC",
            country="US",
            state="California",
            locality="San Francisco",
        )
        assert long.encoded_size() > short.encoded_size()

    def test_empty_name_encodes_to_empty_sequence(self):
        dn = DistinguishedName()
        assert dn.encode() == b"\x30\x00"
        assert dn.encoded_size() == 2

    def test_equal_names_have_equal_encodings(self):
        a = DistinguishedName.build(common_name="same.org", organization="Same")
        b = DistinguishedName.build(common_name="same.org", organization="Same")
        assert a.encode() == b.encode()
