"""Unit tests for the anti-amplification tracker."""

import pytest

from repro.quic import ANTI_AMPLIFICATION_FACTOR, AmplificationTracker


class TestCompliantAccounting:
    def test_limit_is_three_times_received(self):
        tracker = AmplificationTracker()
        tracker.on_datagram_received(1200)
        assert tracker.limit == 3600
        assert tracker.remaining_budget == 3600

    def test_budget_decreases_with_sends(self):
        tracker = AmplificationTracker()
        tracker.on_datagram_received(1200)
        tracker.on_datagram_sent(1000)
        assert tracker.remaining_budget == 2600
        assert tracker.can_send(2600)
        assert not tracker.can_send(2601)

    def test_blocked_when_budget_exhausted(self):
        tracker = AmplificationTracker()
        tracker.on_datagram_received(1200)
        tracker.on_datagram_sent(3600)
        assert tracker.is_blocked
        assert not tracker.can_send(1)

    def test_validation_lifts_the_limit(self):
        tracker = AmplificationTracker()
        tracker.on_datagram_received(1200)
        tracker.on_datagram_sent(3600)
        tracker.on_address_validated()
        assert not tracker.is_blocked
        assert tracker.can_send(10**6)

    def test_additional_receives_grow_budget(self):
        tracker = AmplificationTracker()
        tracker.on_datagram_received(1200)
        tracker.on_datagram_sent(3000)
        tracker.on_datagram_received(1200)
        assert tracker.remaining_budget == 2 * 3600 - 3000

    def test_negative_sizes_rejected(self):
        tracker = AmplificationTracker()
        with pytest.raises(ValueError):
            tracker.on_datagram_received(-1)
        with pytest.raises(ValueError):
            tracker.on_datagram_sent(-1)


class TestNonCompliantAccounting:
    def test_padding_exclusion_mimics_cloudflare(self):
        tracker = AmplificationTracker(exclude_padding=True)
        tracker.on_datagram_received(1200)
        tracker.on_datagram_sent(1200, padding_only=True)
        # The server's own accounting ignores the padded datagram...
        assert tracker.accounted_bytes_sent == 0
        assert tracker.can_send(3600)
        # ...but ground truth still sees the bytes.
        assert tracker.bytes_sent == 1200

    def test_ignore_limit_mimics_mvfst(self):
        tracker = AmplificationTracker(ignore_limit=True)
        tracker.on_datagram_received(1200)
        for _ in range(10):
            tracker.on_datagram_sent(3000)
        assert tracker.can_send(10**6)
        assert tracker.violates_rfc_limit

    def test_true_amplification_factor(self):
        tracker = AmplificationTracker()
        tracker.on_datagram_received(1000)
        tracker.on_datagram_sent(4500)
        assert tracker.true_amplification_factor == pytest.approx(4.5)
        assert tracker.violates_rfc_limit

    def test_factor_with_no_receives(self):
        tracker = AmplificationTracker()
        assert tracker.true_amplification_factor == 0.0
        tracker.on_datagram_sent(100)
        assert tracker.true_amplification_factor == float("inf")

    def test_rfc_violation_threshold_is_exactly_three_times(self):
        tracker = AmplificationTracker()
        tracker.on_datagram_received(1000)
        tracker.on_datagram_sent(ANTI_AMPLIFICATION_FACTOR * 1000)
        assert not tracker.violates_rfc_limit
        tracker.on_datagram_sent(1)
        assert tracker.violates_rfc_limit
