"""Two-phase generation contract: RNG-stream equality and differential suites.

Three invariants keep skeleton-based generation byte-identical to eager
generation (and therefore keep the golden report digests stable):

1. **Stream equality.**  The skeleton pass consumes exactly the draws full
   generation consumes, in the same order — materialisation draws nothing.
2. **Differential materialisation.**  A materialised skeleton equals the
   eagerly generated deployment field for field, chain object identity
   (shared QUIC/HTTPS chain) included.
3. **Fast-path issuance.**  The per-``(issuer, key algorithm)`` template path
   produces certificates byte-identical to the reference ``issue_leaf``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.webpki.population as population_module
from repro.scanners.sharding import ShardTask
from repro.webpki.deployment import ServiceCategory
from repro.webpki.population import (
    GENERATION_SHARD_SIZE,
    PopulationConfig,
    deployments_for_range,
    generate_shard,
    iter_population_shards,
)
from repro.webpki.skeleton import ChainSpec, DeploymentSkeleton, bloat_pool, draw_bloat_extras
from repro.webpki.tranco import generate_tranco_list
from repro.x509.ca import default_hierarchy, issue_leaf
from repro.x509.issuance import issue_leaf_fast, leaf_template
from repro.x509.keys import KeyAlgorithm


# ---------------------------------------------------------------------------
# Recording RNG: captures every draw any generation pass makes
# ---------------------------------------------------------------------------

class RecordingRandom(random.Random):
    """A ``random.Random`` that logs (method, repr(args), result) per draw."""

    log: list

    def __init__(self, *args):
        super().__init__(*args)
        self.log = []

    def _record(self, method, args, result):
        self.log.append((method, repr(args), repr(result)))
        return result

    def random(self):
        return self._record("random", (), super().random())

    def randint(self, a, b):
        return self._record("randint", (a, b), super().randint(a, b))

    def triangular(self, low=0.0, high=1.0, mode=None):
        return self._record("triangular", (low, high, mode), super().triangular(low, high, mode))

    def choice(self, seq):
        return self._record("choice", (len(seq),), super().choice(seq))

    def choices(self, population, weights=None, *, cum_weights=None, k=1):
        return self._record(
            "choices",
            (len(population), k),
            super().choices(population, weights, cum_weights=cum_weights, k=k),
        )


def _record_generation(monkeypatch, config: PopulationConfig, skeleton: bool):
    """Run one shard generation with a recording RNG; return (draw log, state)."""
    instances = []

    def recording_factory(*args):
        rng = RecordingRandom(*args)
        instances.append(rng)
        return rng

    # Warm the (memoized) ranked list first so the only RNG constructed under
    # the patch is the shard's own derived generator.
    generate_tranco_list(config.size, seed=config.seed)
    monkeypatch.setattr(population_module.random, "Random", recording_factory)
    try:
        generate_shard(config, 0, skeleton=skeleton)
    finally:
        monkeypatch.undo()
    assert len(instances) == 1, "one derived RNG per generation shard"
    return instances[0].log, instances[0].getstate()


config_strategy = st.builds(
    PopulationConfig,
    size=st.integers(min_value=20, max_value=300),
    seed=st.integers(min_value=0, max_value=2**16),
    different_quic_cert_fraction=st.sampled_from([0.0, 0.033, 0.5]),
    redirect_fraction=st.sampled_from([0.0, 0.15, 0.9]),
)


class TestRngStreamContract:
    @settings(max_examples=15, deadline=None)
    @given(config=config_strategy)
    def test_skeleton_pass_consumes_exactly_the_full_generation_stream(
        self, config
    ):
        """Same draws, same order, same final RNG state — phase 2 draws nothing."""
        monkeypatch = pytest.MonkeyPatch()
        skeleton_log, skeleton_state = _record_generation(monkeypatch, config, skeleton=True)
        full_log, full_state = _record_generation(monkeypatch, config, skeleton=False)
        assert skeleton_log == full_log
        assert skeleton_state == full_state
        assert skeleton_log, "generation must consume randomness"

    def test_draw_bloat_extras_consumes_the_legacy_bloat_stream(self):
        """One randint plus one equal-width choice per copy (the old draws)."""
        pool = bloat_pool()
        for seed in range(50):
            recorded = random.Random(f"bloat:{seed}")
            legacy = random.Random(f"bloat:{seed}")
            extras = draw_bloat_extras(recorded)
            copies = legacy.randint(12, 26)
            legacy_picks = [legacy.choice(pool) for _ in range(copies)]
            assert recorded.getstate() == legacy.getstate()
            assert len(extras) == copies
            assert [pool[index] for index in extras] == legacy_picks


class TestDifferentialMaterialisation:
    @settings(max_examples=10, deadline=None)
    @given(
        size=st.integers(min_value=20, max_value=250),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_materialized_skeletons_equal_eager_deployments(self, size, seed):
        config = PopulationConfig(size=size, seed=seed)
        eager = generate_shard(config, 0)
        skeleton_shard = generate_shard(config, 0, skeleton=True)
        materialized = skeleton_shard.materialize()
        assert materialized == eager
        for lazy, direct in zip(materialized.deployments, eager.deployments):
            assert lazy == direct  # dataclass equality covers every field
            if direct.https_chain is not None:
                assert lazy.https_chain.fingerprint == direct.https_chain.fingerprint
            # The common-case identity (QUIC delivers the HTTPS chain object)
            # survives two-phase generation.
            assert (lazy.quic_chain is lazy.https_chain) == (
                direct.quic_chain is direct.https_chain
            )

    def test_range_slicing_materializes_only_the_requested_slice(self):
        config = PopulationConfig(size=3 * GENERATION_SHARD_SIZE, seed=5)
        tranco = generate_tranco_list(config.size, seed=config.seed)
        start, stop = GENERATION_SHARD_SIZE // 2, 2 * GENERATION_SHARD_SIZE - 7
        full = [
            d
            for shard in iter_population_shards(config, tranco=tranco)
            for d in shard.deployments
        ]
        assert deployments_for_range(config, start, stop, tranco=tranco) == full[start:stop]
        skeletons = deployments_for_range(config, start, stop, tranco=tranco, skeleton=True)
        assert all(isinstance(s, DeploymentSkeleton) for s in skeletons)
        assert [s.materialize() for s in skeletons] == full[start:stop]

    def test_chain_spec_is_a_pure_value(self):
        spec = ChainSpec(
            domain="example.org",
            ca_profile="Let's Encrypt R3 + cross-signed X1",
            key_algorithm=KeyAlgorithm.RSA_2048,
            san_count=2,
            name_stem="example.org",
            validity_days=397,
            bloat_extras=(0, 3, 3, 41),
        )
        assert spec.san_names() == ["example.org", "www.example.org"]
        first = spec.materialize()
        second = spec.materialize()
        assert first == second
        assert first.fingerprint == second.fingerprint
        pool = bloat_pool()
        assert first.certificates[-4:] == (pool[0], pool[3], pool[3], pool[41])

    def test_skeleton_counts_match_materialized_categories(self):
        config = PopulationConfig(size=400, seed=11)
        shard = generate_shard(config, 0, skeleton=True)
        counts = shard.category_counts()
        materialized = shard.materialize()
        for category in ServiceCategory:
            assert counts[category] == sum(
                1 for d in materialized.deployments if d.category is category
            )


class TestShardTaskSkeletons:
    CONFIG = PopulationConfig(size=500, seed=23)

    def test_recipe_tasks_resolve_skeletons_without_chains(self):
        task = ShardTask(index=0, population_config=self.CONFIG, start=100, stop=400)
        skeletons = task.resolve_skeletons()
        deployments = task.resolve_deployments()
        assert all(isinstance(s, DeploymentSkeleton) for s in skeletons)
        assert [s.domain for s in skeletons] == [d.domain for d in deployments]
        assert [s.category for s in skeletons] == [d.category for d in deployments]
        assert [s.rank for s in skeletons] == [d.rank for d in deployments]
        assert [s.provider for s in skeletons] == [d.provider for d in deployments]

    def test_value_tasks_fall_back_to_deployments(self):
        deployments = tuple(deployments_for_range(self.CONFIG, 0, 64))
        task = ShardTask(index=0, deployments=deployments, start=0, stop=64)
        assert task.resolve_skeletons() == deployments


class TestIssuanceFastPath:
    def test_fast_path_is_byte_identical_to_reference_issue_leaf(self):
        hierarchy = default_hierarchy()
        sans = ("byte.test", "www.byte.test", "api.byte.test")
        for label, profile in list(hierarchy.profiles.items())[:12]:
            for algorithm in (profile.leaf_key_algorithm, KeyAlgorithm.ECDSA_P384):
                reference = issue_leaf(
                    issuer=profile.issuer,
                    domain="byte.test",
                    san_names=sans,
                    validity_days=365,
                    key_algorithm=algorithm,
                )
                fast = issue_leaf_fast(
                    leaf_template(profile.issuer, algorithm), "byte.test", sans, 365
                )
                assert fast.der == reference.der, label
                assert fast.tbs_der == reference.tbs_der, label
                assert fast == reference, label
                assert fast.san_names == reference.san_names
                assert [e.encode() for e in fast.extensions] == [
                    e.encode() for e in reference.extensions
                ]

    def test_profile_issue_matches_reference_for_default_sans(self):
        hierarchy = default_hierarchy()
        profile = hierarchy.profiles["Cloudflare ECC CA-3"]
        chain = profile.issue("defaults.test")
        reference = issue_leaf(
            issuer=profile.issuer,
            domain="defaults.test",
            key_algorithm=profile.leaf_key_algorithm,
        )
        assert chain.leaf.der == reference.der

    def test_template_is_cached_per_issuer_and_algorithm(self):
        hierarchy = default_hierarchy()
        issuer = hierarchy.profiles["Google 1C3"].issuer
        assert leaf_template(issuer, KeyAlgorithm.RSA_2048) is leaf_template(
            issuer, KeyAlgorithm.RSA_2048
        )
        assert leaf_template(issuer, KeyAlgorithm.RSA_2048) is not leaf_template(
            issuer, KeyAlgorithm.ECDSA_P256
        )
