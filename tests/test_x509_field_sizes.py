"""Unit tests for per-field size accounting."""

import pytest

from repro.x509.field_sizes import mean_field_sizes, measure_field_sizes, san_byte_share


class TestMeasureFieldSizes:
    def test_fields_sum_to_at_most_total(self, cloudflare_chain):
        for certificate in cloudflare_chain:
            sizes = measure_field_sizes(certificate)
            accounted = (
                sizes.subject
                + sizes.issuer
                + sizes.public_key_info
                + sizes.extensions
                + sizes.signature
            )
            assert accounted + sizes.other == sizes.total
            assert sizes.total == certificate.size

    def test_other_is_small_framing_overhead(self, lets_encrypt_short_chain):
        sizes = measure_field_sizes(lets_encrypt_short_chain.leaf)
        # Version, serial, validity, algorithm identifiers and framing stay below ~150 B.
        assert 0 < sizes.other < 180

    def test_extensions_dominate_leaf_certificates(self, cloudflare_chain):
        sizes = measure_field_sizes(cloudflare_chain.leaf)
        assert sizes.extensions > sizes.subject
        assert sizes.extensions > sizes.issuer

    def test_as_dict_keys(self, cloudflare_chain):
        sizes = measure_field_sizes(cloudflare_chain.leaf)
        assert set(sizes.as_dict()) == {
            "Subject", "Issuer", "PublicKeyInfo", "Extensions", "Signature", "Other", "Total",
        }


class TestSanByteShare:
    def test_share_between_zero_and_one(self, hierarchy):
        chain = hierarchy.profiles["Cloudflare ECC CA-3"].issue("share.example")
        assert 0.0 < san_byte_share(chain.leaf) < 1.0

    def test_ca_certificates_have_zero_san_share(self, cloudflare_chain):
        for certificate in cloudflare_chain.intermediates:
            assert san_byte_share(certificate) == 0.0

    def test_cruise_liner_has_high_share(self, hierarchy):
        profile = hierarchy.profiles["Cloudflare ECC CA-3"]
        cruise = profile.issue(
            "cruise.example", san_names=[f"tenant{i}.cruise.example" for i in range(300)]
        )
        assert san_byte_share(cruise.leaf) > 0.5


class TestMeanFieldSizes:
    def test_empty_input(self):
        sizes = mean_field_sizes([])
        assert sizes.total == 0

    def test_mean_over_identical_certs_equals_single(self, cloudflare_chain):
        leaf = cloudflare_chain.leaf
        single = measure_field_sizes(leaf)
        mean = mean_field_sizes([leaf, leaf, leaf])
        assert mean.total == single.total
        assert mean.extensions == single.extensions

    def test_mean_is_between_min_and_max(self, cloudflare_chain, lets_encrypt_long_chain):
        small = cloudflare_chain.leaf
        large = lets_encrypt_long_chain.certificates[1]
        mean = mean_field_sizes([small, large])
        assert min(small.size, large.size) <= mean.total <= max(small.size, large.size)
