"""Unit tests for the client second flight and transport parameters."""

import pytest

from repro.quic import ConnectionId, TransportParameters
from repro.quic.client import QuicClientConfig, build_client_second_flight
from repro.quic.varint import decode_varint


class TestClientSecondFlight:
    def test_second_flight_has_initial_ack_and_handshake(self):
        config = QuicClientConfig()
        datagrams = build_client_second_flight("client.example", config)
        assert len(datagrams) == 2
        initial_datagram, handshake_datagram = datagrams
        assert initial_datagram.contains_initial
        assert initial_datagram.size >= 1200  # padded per RFC 9000 §14.1
        assert not handshake_datagram.contains_initial

    def test_second_flight_is_small_compared_to_server_flight(self):
        config = QuicClientConfig()
        datagrams = build_client_second_flight("client.example", config)
        assert sum(d.size for d in datagrams) < 1600


class TestTransportParameters:
    def test_encoding_is_nonempty_and_deterministic(self):
        params = TransportParameters()
        assert params.encode() == params.encode()
        assert params.encoded_size > 20

    def test_connection_ids_included_when_set(self):
        scid = ConnectionId.generate("x", 8)
        with_cid = TransportParameters(initial_source_connection_id=scid)
        without = TransportParameters()
        assert with_cid.encoded_size > without.encoded_size
        assert scid.value in with_cid.encode()

    def test_disable_active_migration_adds_empty_parameter(self):
        enabled = TransportParameters(disable_active_migration=True)
        disabled = TransportParameters(disable_active_migration=False)
        assert enabled.encoded_size == disabled.encoded_size + 2

    def test_first_entry_is_valid_varint_id(self):
        encoded = TransportParameters().encode()
        parameter_id, offset = decode_varint(encoded, 0)
        length, _ = decode_varint(encoded, offset)
        assert parameter_id >= 0
        assert length >= 0
