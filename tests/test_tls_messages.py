"""Unit tests for TLS 1.3 handshake messages and extensions."""

import pytest

from repro.tls import (
    CertificateCompressionAlgorithm,
    CertificateMessage,
    CertificateVerify,
    CipherSuite,
    ClientHello,
    CompressedCertificateMessage,
    EncryptedExtensions,
    Finished,
    HandshakeType,
    ServerHello,
    build_server_first_flight,
)
from repro.tls.extensions import (
    CompressCertificateExtension,
    ExtensionType,
    ServerNameExtension,
    parse_compress_certificate,
)
from repro.x509.keys import KeyAlgorithm


class TestClientHello:
    def test_size_in_browser_range(self):
        hello = ClientHello(server_name="example.org")
        # Unpadded ClientHellos are a few hundred bytes before QUIC padding
        # (ours is lean: no GREASE, no pre-shared-key or padding extensions).
        assert 180 <= hello.size <= 700

    def test_size_grows_with_server_name(self):
        short = ClientHello(server_name="a.io").size
        long = ClientHello(server_name="a-very-long-subdomain.of.some.example.org").size
        assert long > short

    def test_compression_offer_adds_extension(self):
        plain = ClientHello(server_name="x.org")
        offering = ClientHello(
            server_name="x.org",
            compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,),
        )
        assert offering.offers_compression and not plain.offers_compression
        assert offering.size > plain.size
        types = [e.extension_type for e in offering.extensions()]
        assert ExtensionType.COMPRESS_CERTIFICATE in types

    def test_encoding_starts_with_handshake_type(self):
        hello = ClientHello(server_name="x.org")
        assert hello.encode()[0] == HandshakeType.CLIENT_HELLO

    def test_header_length_matches_body(self):
        hello = ClientHello(server_name="x.org")
        encoded = hello.encode()
        body_length = int.from_bytes(encoded[1:4], "big")
        assert len(encoded) == 4 + body_length


class TestServerMessages:
    def test_server_hello_size(self):
        assert 80 <= ServerHello().size <= 140

    def test_encrypted_extensions_size(self):
        assert 80 <= EncryptedExtensions().size <= 200

    def test_certificate_message_size_tracks_chain(self, cloudflare_chain, lets_encrypt_long_chain):
        small = CertificateMessage(cloudflare_chain)
        large = CertificateMessage(lets_encrypt_long_chain)
        assert small.size > cloudflare_chain.total_size  # framing on top of DER
        assert large.size - small.size == pytest.approx(
            lets_encrypt_long_chain.total_size - cloudflare_chain.total_size, abs=30
        )

    def test_certificate_verify_sizes(self):
        rsa = CertificateVerify(KeyAlgorithm.RSA_2048)
        ecdsa = CertificateVerify(KeyAlgorithm.ECDSA_P256)
        assert rsa.size == pytest.approx(264, abs=8)
        assert ecdsa.size == pytest.approx(79, abs=8)

    def test_finished_size_follows_hash(self):
        assert Finished(CipherSuite.TLS_AES_128_GCM_SHA256).size == 4 + 32
        assert Finished(CipherSuite.TLS_AES_256_GCM_SHA384).size == 4 + 48

    def test_compressed_certificate_smaller_than_plain(self, lets_encrypt_long_chain):
        plain = CertificateMessage(lets_encrypt_long_chain)
        compressed = CompressedCertificateMessage(
            lets_encrypt_long_chain, CertificateCompressionAlgorithm.BROTLI
        )
        assert compressed.size < plain.size
        assert compressed.message_type == HandshakeType.COMPRESSED_CERTIFICATE


class TestServerFirstFlight:
    def test_flight_splits_initial_and_handshake_levels(self, cloudflare_chain):
        flight = build_server_first_flight(cloudflare_chain)
        assert flight.initial_crypto_size == flight.server_hello.size
        assert flight.handshake_crypto_size > cloudflare_chain.total_size
        assert flight.total_crypto_size == flight.initial_crypto_size + flight.handshake_crypto_size

    def test_compression_negotiated_only_when_both_sides_support(self, cloudflare_chain):
        offering = ClientHello(
            server_name="x.org", compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,)
        )
        not_offering = ClientHello(server_name="x.org")

        both = build_server_first_flight(
            cloudflare_chain, offering, (CertificateCompressionAlgorithm.BROTLI,)
        )
        client_only = build_server_first_flight(cloudflare_chain, offering, ())
        server_only = build_server_first_flight(
            cloudflare_chain, not_offering, (CertificateCompressionAlgorithm.BROTLI,)
        )
        assert both.compression is CertificateCompressionAlgorithm.BROTLI
        assert client_only.compression is None
        assert server_only.compression is None
        assert both.total_crypto_size < client_only.total_crypto_size

    def test_first_offered_supported_algorithm_wins(self, cloudflare_chain):
        offering = ClientHello(
            server_name="x.org",
            compression_algorithms=(
                CertificateCompressionAlgorithm.ZSTD,
                CertificateCompressionAlgorithm.BROTLI,
            ),
        )
        flight = build_server_first_flight(
            cloudflare_chain,
            offering,
            (CertificateCompressionAlgorithm.BROTLI, CertificateCompressionAlgorithm.ZSTD),
        )
        assert flight.compression is CertificateCompressionAlgorithm.ZSTD


class TestExtensions:
    def test_extension_wire_format(self):
        extension = ServerNameExtension("example.org")
        encoded = extension.encode()
        assert int.from_bytes(encoded[0:2], "big") == ExtensionType.SERVER_NAME
        assert int.from_bytes(encoded[2:4], "big") == len(extension.body)
        assert extension.size == len(encoded)

    def test_compress_certificate_roundtrip(self):
        algorithms = (
            CertificateCompressionAlgorithm.BROTLI,
            CertificateCompressionAlgorithm.ZLIB,
        )
        extension = CompressCertificateExtension(algorithms)
        assert parse_compress_certificate(extension) == algorithms

    def test_parse_compress_certificate_rejects_other_types(self):
        with pytest.raises(ValueError):
            parse_compress_certificate(ServerNameExtension("x.org"))

    def test_cipher_suite_codes(self):
        assert CipherSuite.TLS_AES_128_GCM_SHA256.encode() == b"\x13\x01"
        assert len(CipherSuite.default_client_offer()) == 3
