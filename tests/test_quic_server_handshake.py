"""Unit tests for the QUIC server engine, handshake simulation and profiles."""

import pytest

from repro.quic import (
    BUILTIN_PROFILES,
    CoalescenceMode,
    HandshakeClass,
    QuicClientConfig,
    QuicServer,
    ServerBehaviorProfile,
    build_client_initial_datagram,
    simulate_handshake,
    simulate_unvalidated_probe,
)
from repro.quic.profiles import CLOUDFLARE_LIKE, MVFST_LIKE, RETRY_ALWAYS, RFC_COMPLIANT
from repro.tls.handshake_messages import ClientHello


class TestClientInitial:
    def test_padded_to_exact_size(self):
        for size in (1200, 1252, 1357, 1472):
            config = QuicClientConfig(initial_datagram_size=size)
            datagram = build_client_initial_datagram("client.example", config)
            assert datagram.size == size

    def test_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            QuicClientConfig(initial_datagram_size=1199)

    def test_above_mtu_rejected(self):
        with pytest.raises(ValueError):
            QuicClientConfig(initial_datagram_size=1500)

    def test_browser_profiles(self):
        chromium = QuicClientConfig.browser("chrome")
        firefox = QuicClientConfig.browser("firefox")
        assert chromium.initial_datagram_size == 1250
        assert chromium.compression_algorithms  # brotli
        assert firefox.initial_datagram_size == 1357
        assert not firefox.compression_algorithms
        with pytest.raises(ValueError):
            QuicClientConfig.browser("netscape")


class TestServerFlightPlans:
    def test_compliant_server_respects_limit(self, lets_encrypt_long_chain):
        server = QuicServer("srv.example", lets_encrypt_long_chain, RFC_COMPLIANT)
        plan = server.respond_to_initial(ClientHello(server_name="srv.example"), 1200)
        assert plan.first_rtt_bytes <= 3 * 1200
        assert plan.requires_additional_rtt
        assert plan.deferred_bytes > 0

    def test_small_chain_fits_in_one_rtt(self, lets_encrypt_short_chain):
        server = QuicServer("short.example", lets_encrypt_short_chain, RFC_COMPLIANT)
        plan = server.respond_to_initial(ClientHello(server_name="short.example"), 1362)
        assert not plan.requires_additional_rtt
        assert plan.first_rtt_bytes <= 3 * 1362

    def test_cloudflare_profile_exceeds_limit_in_one_rtt(self, cloudflare_chain):
        server = QuicServer("cf.example", cloudflare_chain, CLOUDFLARE_LIKE)
        plan = server.respond_to_initial(ClientHello(server_name="cf.example"), 1362)
        assert not plan.requires_additional_rtt
        assert plan.first_rtt_bytes > 3 * 1362
        # The split-Initial behaviour produces two padded Initial datagrams,
        # i.e. roughly 2400 bytes of padding overhead (the paper's 2462 bytes).
        assert plan.padding_bytes_first_rtt > 1800

    def test_cloudflare_sends_two_initial_datagrams(self, cloudflare_chain):
        server = QuicServer("cf.example", cloudflare_chain, CLOUDFLARE_LIKE)
        plan = server.respond_to_initial(ClientHello(server_name="cf.example"), 1362)
        initial_datagrams = [d for d in plan.first_rtt_datagrams if d.contains_initial]
        assert len(initial_datagrams) == 2
        assert all(d.size >= 1200 for d in initial_datagrams)
        assert all(not d.is_coalesced for d in plan.first_rtt_datagrams)

    def test_retry_profile_answers_with_retry_first(self, lets_encrypt_short_chain):
        server = QuicServer("retry.example", lets_encrypt_short_chain, RETRY_ALWAYS)
        plan = server.respond_to_initial(ClientHello(server_name="retry.example"), 1200)
        assert plan.uses_retry
        assert plan.first_rtt_datagrams == ()
        follow_up = server.respond_to_initial(
            ClientHello(server_name="retry.example"), 1200, client_sent_retry_token=True
        )
        assert not follow_up.uses_retry
        assert follow_up.first_rtt_bytes > 0

    def test_tls_bytes_total_close_to_flight(self, cloudflare_chain):
        server = QuicServer("tls.example", cloudflare_chain, RFC_COMPLIANT)
        plan = server.respond_to_initial(ClientHello(server_name="tls.example"), 1362)
        assert plan.tls_bytes_total > cloudflare_chain.total_size
        assert plan.quic_overhead_total > 0
        assert plan.total_bytes == plan.first_rtt_bytes + plan.deferred_bytes


class TestHandshakeSimulation:
    def test_classification_matches_profiles(self, hierarchy, browser_client):
        cases = [
            ("Cloudflare ECC CA-3", "cloudflare-like", HandshakeClass.AMPLIFICATION),
            ("Let's Encrypt R3 + cross-signed X1", "rfc-compliant", HandshakeClass.MULTI_RTT),
            ("Let's Encrypt E1 (short)", "rfc-compliant", HandshakeClass.ONE_RTT),
            ("Let's Encrypt R3 (short)", "retry-always", HandshakeClass.RETRY),
        ]
        for profile_label, behavior, expected in cases:
            chain = hierarchy.profiles[profile_label].issue(f"{behavior}.example")
            outcome = simulate_handshake(
                f"{behavior}.example", chain, BUILTIN_PROFILES[behavior], browser_client
            )
            assert outcome.handshake_class is expected, profile_label

    def test_trace_round_trips(self, hierarchy, browser_client):
        chain = hierarchy.profiles["Let's Encrypt R3 + cross-signed X1"].issue("rtt.example")
        outcome = simulate_handshake("rtt.example", chain, RFC_COMPLIANT, browser_client)
        assert outcome.trace.round_trips == 2
        short = hierarchy.profiles["Let's Encrypt E1 (short)"].issue("rtt2.example")
        outcome_short = simulate_handshake("rtt2.example", short, RFC_COMPLIANT, browser_client)
        assert outcome_short.trace.round_trips == 1

    def test_amplification_factor_of_compliant_server_below_three(self, hierarchy, browser_client):
        chain = hierarchy.profiles["Let's Encrypt E1 (short)"].issue("amp.example")
        outcome = simulate_handshake("amp.example", chain, RFC_COMPLIANT, browser_client)
        assert outcome.trace.first_rtt_amplification <= 3.0

    def test_larger_initial_can_turn_multi_rtt_into_one_rtt(self, hierarchy):
        chain = hierarchy.profiles["GoDaddy G2"].issue("border.example")
        small = simulate_handshake(
            "border.example", chain, RFC_COMPLIANT, QuicClientConfig(initial_datagram_size=1200)
        )
        large = simulate_handshake(
            "border.example", chain, RFC_COMPLIANT, QuicClientConfig(initial_datagram_size=1472)
        )
        assert small.handshake_class is HandshakeClass.MULTI_RTT
        assert large.handshake_class is HandshakeClass.ONE_RTT


class TestUnvalidatedProbes:
    def test_compliant_server_stays_near_limit(self, lets_encrypt_long_chain):
        probe = simulate_unvalidated_probe("p.example", lets_encrypt_long_chain, RFC_COMPLIANT)
        assert probe.amplification_factor <= 3.5

    def test_mvfst_like_server_amplifies_heavily(self, hierarchy):
        chain = hierarchy.profiles["DigiCert SHA2 + root (Meta)"].issue(
            "meta.example", san_names=[f"alt{i}.meta.example" for i in range(60)]
        )
        probe = simulate_unvalidated_probe("meta.example", chain, MVFST_LIKE)
        assert probe.amplification_factor > 15
        assert probe.violates_limit

    def test_retry_probe_is_tiny(self, lets_encrypt_short_chain):
        probe = simulate_unvalidated_probe("r.example", lets_encrypt_short_chain, RETRY_ALWAYS)
        assert probe.amplification_factor < 0.5

    def test_schedule_is_consistent_with_total(self, cloudflare_chain):
        server = QuicServer("sched.example", cloudflare_chain, MVFST_LIKE)
        hello = ClientHello(server_name="sched.example")
        plan, schedule = server.unvalidated_transmission_schedule(hello, 1252)
        _, total = server.unvalidated_transmission(hello, 1252)
        assert sum(size for _, size in schedule) == total
        assert schedule[0][0] == 0.0
        assert schedule[-1][0] > 0.0  # retransmission rounds are delayed


class TestProfiles:
    def test_builtin_profile_names(self):
        for name in ("rfc-compliant", "cloudflare-like", "mvfst-like", "retry-always", "google-like"):
            assert name in BUILTIN_PROFILES

    def test_describe_mentions_key_attributes(self):
        description = CLOUDFLARE_LIKE.describe()
        assert "padding-counted=no" in description
        assert "coalescence=split-initial-ack" in description

    def test_with_compression_returns_new_profile(self):
        from repro.tls.cert_compression import CertificateCompressionAlgorithm

        profile = RFC_COMPLIANT.with_compression(CertificateCompressionAlgorithm.ZSTD)
        assert profile.supports_compression(CertificateCompressionAlgorithm.ZSTD)
        assert not RFC_COMPLIANT.supports_compression(CertificateCompressionAlgorithm.ZSTD)
