"""Unit tests for QUIC packet size accounting."""

import pytest

from repro.quic import (
    AEAD_TAG_SIZE,
    MIN_CLIENT_INITIAL_SIZE,
    ConnectionId,
    HandshakePacket,
    InitialPacket,
    OneRttPacket,
    PacketType,
    RetryPacket,
)
from repro.quic.frames import AckFrame, CryptoFrame, PaddingFrame


@pytest.fixture
def cids():
    return ConnectionId.generate("dst", 8), ConnectionId.generate("src", 8)


class TestConnectionId:
    def test_generate_length(self):
        assert len(ConnectionId.generate("seed", 8)) == 8
        assert len(ConnectionId.empty()) == 0

    def test_deterministic(self):
        assert ConnectionId.generate("seed", 8) == ConnectionId.generate("seed", 8)

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            ConnectionId(b"x" * 21)
        with pytest.raises(ValueError):
            ConnectionId.generate("seed", 21)


class TestPacketSizes:
    def test_encoded_length_matches_size_property(self, cids):
        dcid, scid = cids
        packet = InitialPacket(dcid, scid, 0, (CryptoFrame(0, bytes(300)),))
        assert len(packet.encode()) == packet.size

    def test_initial_header_includes_token_length(self, cids):
        dcid, scid = cids
        without = InitialPacket(dcid, scid, 0, (CryptoFrame(0, bytes(100)),))
        with_token = InitialPacket(dcid, scid, 0, (CryptoFrame(0, bytes(100)),), token=b"t" * 32)
        assert with_token.size >= without.size + 32

    def test_aead_tag_included(self, cids):
        dcid, scid = cids
        packet = HandshakePacket(dcid, scid, 0, (CryptoFrame(0, b""),))
        assert packet.size >= packet.payload_size + AEAD_TAG_SIZE

    def test_retry_has_no_payload_or_tag_expansion(self, cids):
        dcid, scid = cids
        retry = RetryPacket(dcid, scid, token=b"token-bytes")
        assert retry.packet_type is PacketType.RETRY
        assert retry.size == len(retry.encode())
        assert retry.is_ack_eliciting is False

    def test_one_rtt_short_header_is_smaller(self, cids):
        dcid, scid = cids
        long_header = HandshakePacket(dcid, scid, 0, (CryptoFrame(0, bytes(100)),))
        short_header = OneRttPacket(dcid, 0, (CryptoFrame(0, bytes(100)),))
        assert short_header.size < long_header.size

    def test_packet_number_length_grows(self, cids):
        dcid, scid = cids
        small = InitialPacket(dcid, scid, 1, (CryptoFrame(0, b""),))
        large = InitialPacket(dcid, scid, 70000, (CryptoFrame(0, b""),))
        assert large.size > small.size


class TestPadding:
    def test_with_padding_to_reaches_exact_target(self, cids):
        dcid, scid = cids
        packet = InitialPacket(dcid, scid, 0, (CryptoFrame(0, bytes(200)),))
        padded = packet.with_padding_to(MIN_CLIENT_INITIAL_SIZE)
        assert padded.size == MIN_CLIENT_INITIAL_SIZE
        assert padded.padding_bytes > 0

    def test_with_padding_to_noop_when_already_large(self, cids):
        dcid, scid = cids
        packet = InitialPacket(dcid, scid, 0, (CryptoFrame(0, bytes(1300)),))
        assert packet.with_padding_to(1200) is packet

    def test_ack_eliciting_depends_on_frames(self, cids):
        dcid, scid = cids
        ack_only = InitialPacket(dcid, scid, 0, (AckFrame(), PaddingFrame(100)))
        with_crypto = InitialPacket(dcid, scid, 0, (CryptoFrame(0, bytes(10)),))
        assert ack_only.is_ack_eliciting is False
        assert with_crypto.is_ack_eliciting is True
