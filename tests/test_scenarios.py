"""Scenario engine: spec contract, baseline byte-identity, what-if campaigns.

The pins here complement ``tests/test_golden_report.py`` (which pins the
baseline artefact bytes): the identity scenario must render byte-identical
reports through every pipeline, each built-in what-if must run end-to-end
through the streaming path with its knob visibly applied, the reducer must
reject mixed-scenario merges, and ``compare_scenarios`` must emit the same
delta table whatever the worker count or shard size.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import build_report
from repro.quic.handshake import HandshakeClass
from repro.scanners import MeasurementCampaign
from repro.scanners.sharding import ShardTask, plan_shards, scan_shard
from repro.scanners.streaming import (
    CampaignReducer,
    ReductionSpec,
    provider_of_domain,
    summarize_shard,
)
from repro.scenarios import (
    BASELINE,
    BASELINE_FINGERPRINT,
    BUILTIN_SCENARIOS,
    ScenarioError,
    ScenarioSpec,
    compare_scenarios,
    load_scenario,
)
from repro.tls.cert_compression import CertificateCompressionAlgorithm
from repro.webpki.population import PopulationConfig, generate_population
from repro.x509.keys import KeyAlgorithm

SIZE = 400
SEED = 2022

WHAT_IFS = [name for name in BUILTIN_SCENARIOS if name != BASELINE.name]


def run_streamed(scenario: ScenarioSpec, size: int = SIZE, **kwargs):
    campaign = MeasurementCampaign(
        population_config=scenario.population_config(size=size, seed=SEED),
        stream=True,
        **kwargs,
    )
    return campaign.run()


@pytest.fixture(scope="module")
def baseline_results():
    return run_streamed(BASELINE)


class TestScenarioSpec:
    @pytest.mark.parametrize("name", sorted(BUILTIN_SCENARIOS))
    def test_json_round_trip(self, name):
        spec = BUILTIN_SCENARIOS[name]
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_from_file(self, tmp_path):
        path = tmp_path / "custom.json"
        spec = BUILTIN_SCENARIOS["universal-compression"]
        path.write_text(spec.to_json(), encoding="utf-8")
        assert ScenarioSpec.from_file(str(path)) == spec
        assert load_scenario(str(path)) == spec

    def test_fingerprints_are_distinct(self):
        fingerprints = {spec.fingerprint() for spec in BUILTIN_SCENARIOS.values()}
        assert len(fingerprints) == len(BUILTIN_SCENARIOS)

    def test_baseline_is_identity_and_what_ifs_are_not(self):
        assert BASELINE.is_identity
        assert BASELINE.fingerprint() == BASELINE_FINGERPRINT
        for name in WHAT_IFS:
            assert not BUILTIN_SCENARIOS[name].is_identity, name

    def test_unknown_scenario_name_is_a_readable_error(self):
        with pytest.raises(ScenarioError) as excinfo:
            load_scenario("definitely-not-a-scenario")
        message = str(excinfo.value)
        assert "definitely-not-a-scenario" in message
        assert "baseline-2022" in message  # lists the built-ins

    def test_malformed_specs_are_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_json(json.dumps({"name": "x", "bogus_knob": 1}))
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_json(json.dumps({"name": "x", "leaf_key_algorithm": "DSA-512"}))
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_json(
                json.dumps({"name": "x", "client_compression": ["gzip"]})
            )
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_json(
                json.dumps({"name": "x", "client_compression": "brotli"})  # not a list
            )
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="x", trim_chain_depth=0)
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="x", trim_chain_depth=2.0)  # floats break slicing
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_json(json.dumps({"name": "x", "trim_chain_depth": "2"}))
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="x", analysis_initial_size=900)
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_json(
                json.dumps({"name": "x", "analysis_initial_size": "1400"})
            )
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="x", population_overrides=(("redirect_fraction", "lots"),))
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="x", profile_overrides=(("mvfst-like", "no-such-profile"),))
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="x", population_overrides=(("seed", 7),))

    def test_unknown_population_knob_fails_on_derivation(self):
        spec = ScenarioSpec(name="x", population_overrides=(("no_such_fraction", 0.5),))
        with pytest.raises(ScenarioError):
            spec.population_config(size=100)

    def test_invalid_derived_population_config_is_a_scenario_error(self):
        """PopulationConfig sanity failures surface as readable ScenarioErrors."""
        spec = ScenarioSpec(name="x", population_overrides=(("servfail_fraction", 0.95),))
        with pytest.raises(ScenarioError, match="invalid population config"):
            spec.population_config(size=100)

    def test_duplicate_override_keys_are_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            ScenarioSpec(
                name="x",
                population_overrides=(
                    ("servfail_fraction", 0.1), ("servfail_fraction", 0.2),
                ),
            )

    def test_override_order_is_canonical(self):
        """A spec equals its JSON round-trip however the caller ordered pairs."""
        forward = ScenarioSpec(
            name="x",
            population_overrides=(
                ("servfail_fraction", 0.0), ("no_compression_fraction", 0.0),
            ),
        )
        backward = ScenarioSpec(
            name="x",
            population_overrides=(
                ("no_compression_fraction", 0.0), ("servfail_fraction", 0.0),
            ),
        )
        assert forward == backward
        assert ScenarioSpec.from_json(forward.to_json()) == forward

    def test_population_overrides_apply(self):
        spec = ScenarioSpec(
            name="no-failures", population_overrides=(("servfail_fraction", 0.0),)
        )
        config = spec.population_config(size=123, seed=7)
        assert config.size == 123 and config.seed == 7
        assert config.servfail_fraction == 0.0
        assert config.scenario == spec


class TestBaselineByteIdentity:
    def test_streamed_baseline_equals_plain_pipeline(self, baseline_results):
        plain = MeasurementCampaign(
            population_config=PopulationConfig(size=SIZE, seed=SEED), stream=True
        ).run()
        assert (
            build_report(baseline_results, include_sweep=False).text
            == build_report(plain, include_sweep=False).text
        )

    def test_eager_baseline_equals_plain_pipeline(self):
        scenario_population = generate_population(
            BASELINE.population_config(size=SIZE, seed=SEED)
        )
        plain_population = generate_population(PopulationConfig(size=SIZE, seed=SEED))
        with_scenario = MeasurementCampaign(population=scenario_population).run()
        plain = MeasurementCampaign(population=plain_population).run()
        assert (
            build_report(with_scenario, include_sweep=False).text
            == build_report(plain, include_sweep=False).text
        )


class TestWhatIfScenarios:
    @pytest.mark.parametrize("name", WHAT_IFS)
    def test_runs_end_to_end_and_stamps_the_report(self, name):
        scenario = BUILTIN_SCENARIOS[name]
        results = run_streamed(scenario, size=300)
        report = build_report(results, include_sweep=False)
        assert f"scenario: {name} [{scenario.fingerprint()[:12]}]" in report.text
        assert results.scan.deployment_count == 300

    def test_universal_compression_covers_every_server(self):
        results = run_streamed(BUILTIN_SCENARIOS["universal-compression"])
        brotli = CertificateCompressionAlgorithm.BROTLI
        assert results.scan.wild_count > 0
        assert results.scan.wild_support_counts[brotli] == results.scan.wild_count
        # The scanning client offers brotli, so compressed flights collapse
        # the Multi-RTT class (nothing this small stays above the budget).
        assert results.scan.class_counts.get(HandshakeClass.MULTI_RTT, 0) == 0

    def test_ecdsa_only_rewrites_every_leaf(self):
        population = generate_population(
            BUILTIN_SCENARIOS["ecdsa-only"].population_config(size=SIZE, seed=SEED)
        )
        algorithms = {
            deployment.delivered_chain.leaf.public_key.algorithm
            for deployment in population.deployments
            if deployment.delivered_chain is not None
        }
        assert algorithms == {KeyAlgorithm.ECDSA_P256}

    def test_trim_deeper_than_base_chain_caps_bloat_instead_of_erasing_it(self):
        """A trim depth above the base chain keeps (capped) bloat duplicates."""
        from repro.webpki.skeleton import ChainSpec

        bloated = ChainSpec(
            domain="bloated.example",
            ca_profile="Let's Encrypt R3 + cross-signed X1",
            key_algorithm=None,
            san_count=2,
            name_stem="bloated.example",
            validity_days=90,
            bloat_extras=(0,) * 20,
        )
        deep_trim = ScenarioSpec(name="deep-trim", trim_chain_depth=10)
        transformed = deep_trim._transform_chain_spec(bloated)
        assert transformed.bloat_extras == bloated.bloat_extras
        assert transformed.materialize().depth == 10

    def test_trimmed_chains_cap_delivered_depth(self):
        population = generate_population(
            BUILTIN_SCENARIOS["trimmed-chains"].population_config(size=SIZE, seed=SEED)
        )
        depths = {
            deployment.delivered_chain.depth
            for deployment in population.deployments
            if deployment.delivered_chain is not None
        }
        assert depths and max(depths) <= 2

    def test_large_initials_thread_into_the_scan(self, baseline_results):
        results = run_streamed(BUILTIN_SCENARIOS["large-initials"])
        assert results.analysis_initial_size == 1400
        assert baseline_results.analysis_initial_size == 1362

    def test_mvfst_patched_substitutes_the_profile(self):
        scenario = BUILTIN_SCENARIOS["mvfst-patched"]
        population = generate_population(scenario.population_config(size=4000, seed=SEED))
        behaviors = {
            deployment.server_behavior.name
            for deployment in population.deployments
            if deployment.server_behavior is not None
        }
        assert "mvfst-like" not in behaviors

    def test_scenario_population_shares_the_baseline_rng_stream(self):
        """Transforms rewrite chains/behaviour but never which domains exist."""
        baseline = generate_population(PopulationConfig(size=SIZE, seed=SEED))
        what_if = generate_population(
            BUILTIN_SCENARIOS["trimmed-chains"].population_config(size=SIZE, seed=SEED)
        )
        for ours, theirs in zip(baseline.deployments, what_if.deployments):
            assert ours.domain == theirs.domain
            assert ours.category is theirs.category
            assert ours.address == theirs.address
            assert ours.provider == theirs.provider

    def test_campaign_scenario_kwarg_matches_derived_config(self):
        """``MeasurementCampaign(scenario=...)`` equals passing a derived config."""
        scenario = BUILTIN_SCENARIOS["large-initials"]
        via_kwarg = MeasurementCampaign(
            population_config=PopulationConfig(size=300, seed=SEED),
            stream=True,
            scenario=scenario,
        ).run()
        via_config = run_streamed(scenario, size=300)
        assert (
            build_report(via_kwarg, include_sweep=False).text
            == build_report(via_config, include_sweep=False).text
        )

    def test_baseline_kwarg_accepts_a_plain_population(self):
        """scenario=None and the identity baseline denote the same pipeline."""
        population = generate_population(PopulationConfig(size=200, seed=SEED))
        campaign = MeasurementCampaign(population=population, scenario=BASELINE)
        assert campaign.scenario is BASELINE

    def test_campaign_rejects_population_from_another_scenario(self):
        population = generate_population(
            BUILTIN_SCENARIOS["trimmed-chains"].population_config(size=200, seed=SEED)
        )
        with pytest.raises(ValueError, match="different scenario"):
            MeasurementCampaign(
                population=population, scenario=BUILTIN_SCENARIOS["ecdsa-only"]
            )

    def test_streamed_equals_eager_for_a_what_if(self):
        """The streaming-reduction byte-identity contract holds per scenario."""
        scenario = BUILTIN_SCENARIOS["trimmed-chains"]
        streamed = run_streamed(scenario, size=300)
        eager = MeasurementCampaign(
            population=generate_population(scenario.population_config(size=300, seed=SEED))
        ).run()
        assert (
            build_report(streamed, include_sweep=False).text
            == build_report(eager, include_sweep=False).text
        )


class TestScenarioFingerprintGuard:
    def _summary(self, scenario: ScenarioSpec, shard_index: int = 0):
        config = scenario.population_config(size=128, seed=SEED)
        shard = plan_shards(config.size, 64)[shard_index]
        task = ShardTask(
            index=shard.index,
            population_config=config,
            start=shard.start,
            stop=shard.stop,
        )
        deployments = tuple(task.resolve_deployments())
        scan = scan_shard(task, deployments=deployments)
        return summarize_shard(task, deployments, scan, ReductionSpec())

    def test_summaries_carry_the_scenario_fingerprint(self):
        summary = self._summary(BUILTIN_SCENARIOS["trimmed-chains"])
        assert summary.scenario_fingerprint == BUILTIN_SCENARIOS["trimmed-chains"].fingerprint()
        assert self._summary(BASELINE).scenario_fingerprint == BASELINE_FINGERPRINT

    def test_mixed_scenario_merges_are_rejected(self):
        reducer = CampaignReducer()
        reducer.add(self._summary(BASELINE, shard_index=0))
        with pytest.raises(ValueError, match="mixed-scenario"):
            reducer.add(self._summary(BUILTIN_SCENARIOS["trimmed-chains"], shard_index=1))

    def test_same_scenario_merges_fine(self):
        reducer = CampaignReducer()
        reducer.add(self._summary(BUILTIN_SCENARIOS["trimmed-chains"], shard_index=0))
        reducer.add(self._summary(BUILTIN_SCENARIOS["trimmed-chains"], shard_index=1))
        scan = reducer.reduced_scan()
        assert scan.deployment_count == 128
        assert scan.scenario_fingerprint == BUILTIN_SCENARIOS["trimmed-chains"].fingerprint()

    def test_finalize_streaming_rejects_a_foreign_reduction(self):
        """The checkpoint/resume seam verifies the reduction's scenario."""
        scenario = BUILTIN_SCENARIOS["trimmed-chains"]
        reducer = CampaignReducer()
        reducer.add(self._summary(scenario, shard_index=0))
        reducer.add(self._summary(scenario, shard_index=1))
        scan = reducer.reduced_scan()
        baseline_campaign = MeasurementCampaign(
            population_config=PopulationConfig(size=128, seed=SEED), stream=True
        )
        with pytest.raises(ValueError, match="different scenario"):
            baseline_campaign.finalize_streaming(scan)
        matching_campaign = MeasurementCampaign(
            population_config=scenario.population_config(size=128, seed=SEED),
            stream=True,
        )
        results = matching_campaign.finalize_streaming(scan)
        assert results.scenario == scenario


class TestProviderLookup:
    def test_meta_service_domains_fall_back_to_meta(self):
        assert provider_of_domain("facebook.com", lambda domain: None) == "meta"
        assert provider_of_domain("unknown.example", lambda domain: None) is None


class TestCompareScenarios:
    NAMES = ("baseline-2022", "universal-compression")

    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_scenarios(self.NAMES, size=300, seed=SEED)

    def test_delta_table_is_deterministic_across_shardings(self, comparison):
        resharded = compare_scenarios(self.NAMES, size=300, seed=SEED, shard_size=64)
        assert comparison.render_text() == resharded.render_text()

    def test_table_structure(self, comparison):
        text = comparison.render_text()
        for name in self.NAMES:
            assert name in text
        for label in ("1-RTT share", "mean amp factor", "compression rescue"):
            assert label in text

    def test_universal_compression_moves_the_funnel(self, comparison):
        baseline, universal = comparison.outcomes
        assert baseline.scenario.name == "baseline-2022"
        assert universal.one_rtt_share >= baseline.one_rtt_share
        assert universal.exceeding_share <= baseline.exceeding_share

    def test_requires_at_least_one_scenario(self):
        with pytest.raises(ScenarioError):
            compare_scenarios([])
