#!/usr/bin/env python3
"""Scenario: how browser choices interact with a server's certificate chain.

For a handful of realistic deployments (Cloudflare-fronted, Let's Encrypt long
chain, Google-hosted, small ECDSA chain) this example shows, per browser
profile from the paper's Table 1:

* whether the first connection completes in one round trip,
* what the client-side Initial-size cache (§5 guidance) would use on the next
  connection, and
* what certificate compression would change.

Usage::

    python examples/browser_handshake_planning.py
"""

from __future__ import annotations

from repro.core import InitialSizeCache, predict_handshake, required_initial_size
from repro.core.limits import BROWSER_PROFILES
from repro.quic import BUILTIN_PROFILES, QuicClientConfig, simulate_handshake
from repro.tls.cert_compression import CertificateCompressionAlgorithm
from repro.x509.ca import default_hierarchy

DEPLOYMENTS = (
    ("cdn-fronted.example", "Cloudflare ECC CA-3", "cloudflare-like"),
    ("lets-encrypt-default.example", "Let's Encrypt R3 + cross-signed X1", "rfc-compliant"),
    ("cloud-hosted.example", "Google 1C3", "google-like"),
    ("lean-ecdsa.example", "Let's Encrypt E1 (short)", "rfc-compliant"),
)


def main() -> None:
    hierarchy = default_hierarchy()
    cache = InitialSizeCache(default_initial_size=1250)

    for domain, chain_profile, behavior in DEPLOYMENTS:
        chain = hierarchy.profiles[chain_profile].issue(domain)
        print(f"\n=== {domain} — {chain_profile} ({chain.total_size} B chain, {behavior}) ===")

        for key, browser in BROWSER_PROFILES.items():
            if not browser.supports_quic:
                print(f"  {browser.name:<16s} no QUIC support, stays on TCP+TLS")
                continue
            client = QuicClientConfig(
                initial_datagram_size=browser.initial_size,
                compression_algorithms=browser.compression_algorithms,
            )
            outcome = simulate_handshake(domain, chain, BUILTIN_PROFILES[behavior], client)
            trace = outcome.trace
            cache.record_handshake(domain, trace.server_bytes_total, outcome.handshake_class.value == "1-RTT")
            compressed = (
                f", with {trace.compression_negotiated.label}"
                if trace.compression_negotiated
                else ""
            )
            print(
                f"  {browser.name:<16s} Initial={browser.initial_size:>4d} B  ->  "
                f"{outcome.handshake_class.value:<13s} "
                f"({trace.round_trips} RTT, {trace.server_bytes_total} B from server{compressed})"
            )

        needed = required_initial_size(chain)
        needed_compressed = required_initial_size(chain, CertificateCompressionAlgorithm.BROTLI)
        prediction = predict_handshake(chain, 1250)
        print(f"  prediction for a 1250 B Initial: {prediction.predicted_class.value}")
        if needed is None:
            print("  no Initial size achieves 1-RTT without compression (chain too large)")
        else:
            print(f"  smallest 1-RTT Initial without compression: {needed} B")
        print(f"  smallest 1-RTT Initial with brotli compression: {needed_compressed} B")
        print(f"  next visit would use a cached Initial of {cache.initial_size_for(domain)} B")


if __name__ == "__main__":
    main()
