#!/usr/bin/env python3
"""Scenario: a web operator audits certificate-chain options for QUIC.

Given the CA chain profiles observed in the wild (the paper's Figure 7), the
audit reports for each option: delivered chain size, whether a browser-sized
Initial achieves 1-RTT, how much certificate compression helps, and flags
chain hygiene problems (superfluous roots, cross-signed duplicates).

Usage::

    python examples/operator_chain_audit.py [domain]
"""

from __future__ import annotations

import sys

from repro.core import predict_handshake, run_compression_study
from repro.core.limits import LARGER_COMMON_LIMIT
from repro.tls.cert_compression import CertificateCompressionAlgorithm
from repro.x509.ca import default_hierarchy


def main() -> None:
    domain = sys.argv[1] if len(sys.argv) > 1 else "shop.example"
    hierarchy = default_hierarchy()

    candidates = [
        "Let's Encrypt E1 (short)",
        "Let's Encrypt R3 (short)",
        "Let's Encrypt R3 + cross-signed X1",
        "Let's Encrypt R3 + root X1",
        "Cloudflare ECC CA-3",
        "Google 1C3",
        "Sectigo ECC DV",
        "Sectigo RSA DV / USERTRUST",
        "DigiCert TLS RSA 2020",
        "GoDaddy G2",
        "Amazon RSA 2048 M02 (long)",
    ]

    print(f"Certificate-chain audit for {domain} (client Initial = 1357 B, limit = {LARGER_COMMON_LIMIT} B)")
    print(f"{'chain option':<38s} {'size':>6s} {'plain':>10s} {'brotli':>10s}  hygiene")
    print("-" * 92)

    chains = []
    for label in candidates:
        chain = hierarchy.profiles[label].issue(domain)
        chains.append(chain)
        plain = predict_handshake(chain, 1357).predicted_class.value
        compressed = predict_handshake(
            chain, 1357, compression=CertificateCompressionAlgorithm.BROTLI
        ).predicted_class.value
        issues = []
        if chain.includes_trust_anchor():
            issues.append("ships root")
        if chain.includes_cross_signed():
            issues.append("cross-signed duplicate")
        print(
            f"{label:<38s} {chain.total_size:>5d}B {plain:>10s} {compressed:>10s}  "
            f"{', '.join(issues) if issues else '-'}"
        )

    study = run_compression_study(chains)
    print()
    print(
        f"Across these {study.chain_count} options, brotli removes a median "
        f"{study.median_compression_rate:.0%} of bytes and keeps "
        f"{study.share_below_limit_compressed:.0%} of chains below the amplification limit "
        f"(vs {study.share_below_limit_uncompressed:.0%} uncompressed)."
    )
    print("Recommendation: prefer short ECDSA chains; never ship roots or cross-signed duplicates.")


if __name__ == "__main__":
    main()
