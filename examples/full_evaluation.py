#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs a complete measurement campaign (including the Figure 3 Initial-size
sweep) over a synthetic population and prints the full evaluation report.
Pass an output path to also write the report to disk.

Usage::

    python examples/full_evaluation.py [population-size] [output.txt]
"""

from __future__ import annotations

import sys
import time

from repro.analysis.report import build_report
from repro.scanners import MeasurementCampaign
from repro.webpki import PopulationConfig, generate_population


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    output_path = sys.argv[2] if len(sys.argv) > 2 else None

    started = time.time()
    print(f"Generating population ({size} domains) and running the full campaign ...")
    population = generate_population(PopulationConfig(size=size, seed=2022))
    results = MeasurementCampaign(
        population=population, run_sweep=True, sweep_sample_size=400
    ).run()
    report = build_report(results)
    elapsed = time.time() - started

    print(report.text)
    print()
    print(f"Campaign and analysis finished in {elapsed:.1f} s.")
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(report.text + "\n")
        print(f"Report written to {output_path}")


if __name__ == "__main__":
    main()
