#!/usr/bin/env python3
"""Quickstart: generate a synthetic Web population, scan it, classify handshakes.

Runs the full measurement pipeline of the paper at a small scale (a few
thousand domains) and prints the headline numbers: the scan funnel, the
handshake class shares at a browser-like Initial size, and the certificate
chain size medians.

Usage::

    python examples/quickstart.py [population-size]
"""

from __future__ import annotations

import sys

from repro.analysis.figures import figure06, funnel
from repro.analysis.report import class_shares
from repro.scanners import MeasurementCampaign
from repro.webpki import PopulationConfig, generate_population


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    print(f"Generating a synthetic population of {size} domains ...")
    population = generate_population(PopulationConfig(size=size, seed=2022))

    print("Running the measurement campaign (HTTPS scan, QUIC scans, telescope) ...")
    campaign = MeasurementCampaign(population=population, run_sweep=False)
    results = campaign.run()

    print()
    print(funnel.compute(results.https_scan.funnel, len(results.quic_deployments())).render_text())

    print()
    print("Handshake classes at a 1362-byte client Initial (paper §4.1):")
    for handshake_class, share in sorted(
        class_shares(results).items(), key=lambda item: item[1], reverse=True
    ):
        print(f"  {handshake_class.value:<14s} {share:6.2%}")

    print()
    chains = figure06.compute(results.quic_deployments(), results.https_only_deployments())
    print(chains.render_text())

    print()
    print("Done.  See examples/full_evaluation.py for every figure and table.")


if __name__ == "__main__":
    main()
