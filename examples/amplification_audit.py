#!/usr/bin/env python3
"""Scenario: auditing QUIC amplification potential of a provider's prefix.

Reproduces the paper's §4.3 adversary-imitation experiment offline: a single
1252-byte Initial is sent to every host of the (simulated) Meta /24 without
ever acknowledging the response, before and after the responsible-disclosure
fix; spoofed-source handshakes are additionally observed at a network
telescope, like the paper's backscatter analysis.

Usage::

    python examples/amplification_audit.py
"""

from __future__ import annotations

from repro.analysis.figures import figure09, figure11, meta_prefix
from repro.netsim import IPv4Prefix, Telescope, UdpNetwork
from repro.scanners import BackscatterAnalyzer, ZmapScanner, simulate_spoofed_campaign
from repro.scanners.orchestrator import META_POP_PREFIX, TELESCOPE_PREFIX
from repro.webpki.population import build_meta_point_of_presence


def build_network(patched: bool) -> UdpNetwork:
    network = UdpNetwork()
    for host in build_meta_point_of_presence(patched=patched, prefix=META_POP_PREFIX):
        network.attach_host(host)
    return network


def main() -> None:
    print(f"Probing every host of {META_POP_PREFIX} with one unacknowledged 1252 B Initial ...")
    before = ZmapScanner(build_network(patched=False)).probe_prefix(META_POP_PREFIX)
    after = ZmapScanner(build_network(patched=True)).probe_prefix(META_POP_PREFIX)

    print()
    print(meta_prefix.compute(before).render_text())
    print()
    print(figure11.compute(before, after).render_text())

    print()
    print("Reflecting spoofed handshakes towards a telescope prefix ...")
    network = build_network(patched=False)
    telescope = Telescope("audit-telescope")
    network.attach_telescope(TELESCOPE_PREFIX, telescope)
    targets = [host.address for host in network.hosts_in_prefix(META_POP_PREFIX)]
    simulate_spoofed_campaign(network, targets, TELESCOPE_PREFIX, spoof_count_per_target=2)

    analyzer = BackscatterAnalyzer(telescope, lambda domain: "meta")
    print(figure09.compute(analyzer.analyze()).render_text())
    print()
    print(
        "A server that retransmits its handshake to unvalidated addresses without "
        "re-checking the 3x limit is usable as a DDoS amplifier; bounding resends "
        "(as after the disclosure) caps the factor near the size of one flight."
    )


if __name__ == "__main__":
    main()
