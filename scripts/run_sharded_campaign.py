#!/usr/bin/env python
"""Demo: the sharded multi-process campaign on a 20k-domain population.

Runs the same seeded campaign single-process and with N worker processes,
prints the wall times, and verifies that the two evaluation reports are
byte-identical — the determinism contract of ``repro.scanners.sharding``.

Usage:
    PYTHONPATH=src python scripts/run_sharded_campaign.py [--size 20000]
        [--seed 2022] [--workers N] [--shard-size 2048] [--sweep]

The default worker count is the machine's CPU count.  On a single-core host
the multi-process run is expected to be slower (the per-domain compute cannot
parallelise and the result transfer is added overhead); the point of this demo
there is the byte-identity, not the speedup.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.analysis.report import build_report
from repro.scanners.orchestrator import MeasurementCampaign
from repro.scanners.sharding import DEFAULT_SHARD_SIZE, plan_shards
from repro.webpki.population import PopulationConfig, generate_population


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE)
    parser.add_argument("--sweep", action="store_true", help="include the Figure 3 sweep")
    parser.add_argument(
        "--stream", action="store_true",
        help="also run the streaming reduction pipeline and verify its report "
             "is byte-identical to the eager runs",
    )
    args = parser.parse_args()

    print(f"generating population: size={args.size} seed={args.seed} ...")
    t0 = time.perf_counter()
    population = generate_population(PopulationConfig(size=args.size, seed=args.seed))
    print(f"  generated in {time.perf_counter() - t0:.2f}s "
          f"({len(plan_shards(args.size, args.shard_size))} scan shards of {args.shard_size})")

    reports = {}
    for workers in dict.fromkeys((1, args.workers)):
        t0 = time.perf_counter()
        results = MeasurementCampaign(
            population=population,
            run_sweep=args.sweep,
            workers=workers,
            shard_size=args.shard_size,
        ).run()
        elapsed = time.perf_counter() - t0
        reports[workers] = build_report(results, include_sweep=args.sweep).text
        cache = results.flight_cache
        print(f"  workers={workers}: campaign ran in {elapsed:.2f}s "
              f"(flight cache: {cache.hits} hits / {cache.misses} misses)")
        if workers == args.workers and workers != 1:
            identical = reports[1] == reports[workers]
            print(f"  reports byte-identical (1 vs {workers} workers): {identical}")
            if not identical:
                return 1

    if args.stream:
        import resource
        import sys

        t0 = time.perf_counter()
        streamed = MeasurementCampaign(
            population_config=PopulationConfig(size=args.size, seed=args.seed),
            run_sweep=args.sweep,
            workers=args.workers,
            shard_size=args.shard_size,
            stream=True,
        ).run()
        elapsed = time.perf_counter() - t0
        streamed_text = build_report(streamed, include_sweep=args.sweep).text
        # ru_maxrss is kilobytes on Linux but bytes on macOS.
        rss_divisor = 1024 * 1024 if sys.platform == "darwin" else 1024
        peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / rss_divisor
        identical = streamed_text == reports[1]
        print(f"  streamed ({args.workers} workers): campaign ran in {elapsed:.2f}s "
              f"(parent peak RSS {peak_mb:.0f} MB, includes the eager runs above)")
        print(f"  streamed report byte-identical to eager: {identical}")
        if not identical:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
