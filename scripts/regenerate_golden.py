#!/usr/bin/env python3
"""Regenerate the golden-report digests pinned by tests/test_golden_report.py.

One command:

    PYTHONPATH=src python scripts/regenerate_golden.py

Runs the fixed-seed reference campaign, exports every figure/table as CSV plus
the rendered text report, and writes the SHA-256 of each artefact to
``tests/golden/report_digests.json``.  The test regenerates the same artefacts
and fails on any byte drift — rerun this script (and review the diff!) only
when an intentional change to campaign semantics or rendering lands.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

GOLDEN_PATH = os.path.join(REPO_ROOT, "tests", "golden", "report_digests.json")

#: The reference campaign: small, fixed seed, sweep enabled so every section
#: (figure03 included) is pinned.
CAMPAIGN_PARAMS = {
    "size": 600,
    "seed": 2022,
    "sweep_sample_size": 60,
    "spoofed_targets_per_provider": 12,
}


def compute_golden_digests(params=None):
    """Run the reference campaign and hash every exported artefact."""
    from repro.analysis.export import export_evaluation
    from repro.scanners import MeasurementCampaign
    from repro.webpki.population import PopulationConfig, generate_population

    params = dict(params or CAMPAIGN_PARAMS)
    config = PopulationConfig(size=params["size"], seed=params["seed"])
    results = MeasurementCampaign(
        population=generate_population(config),
        run_sweep=True,
        sweep_sample_size=params["sweep_sample_size"],
        spoofed_targets_per_provider=params["spoofed_targets_per_provider"],
    ).run()
    digests = {}
    with tempfile.TemporaryDirectory() as directory:
        export_evaluation(results, directory)
        for name in sorted(os.listdir(directory)):
            with open(os.path.join(directory, name), "rb") as handle:
                digests[name] = hashlib.sha256(handle.read()).hexdigest()
    return digests


def main() -> int:
    from repro.core.ioutil import atomic_write_text

    digests = compute_golden_digests()
    payload = {"campaign": CAMPAIGN_PARAMS, "digests": digests}
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    # Atomic: a Ctrl-C here must not leave a truncated digest file that every
    # subsequent golden-report test run would trust.
    atomic_write_text(
        GOLDEN_PATH, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"{len(digests)} artefact digests written to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
