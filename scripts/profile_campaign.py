#!/usr/bin/env python
"""Profile the benchmark measurement campaign under cProfile.

Runs the same 2,500-domain campaign as ``benchmarks/conftest.py`` (sweep
enabled) plus the full report, and prints the top cumulative entries so perf
PRs can ship before/after evidence gathered the same way.

Usage::

    PYTHONPATH=src python scripts/profile_campaign.py [--size 2500] [--top 25]
                                                      [--sort cumulative|tottime]
                                                      [--skip-report]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=2500, help="population size")
    parser.add_argument("--seed", type=int, default=2022, help="population seed")
    parser.add_argument("--top", type=int, default=25, help="profile rows to print")
    parser.add_argument(
        "--sort", choices=("cumulative", "tottime"), default="cumulative"
    )
    parser.add_argument(
        "--skip-report", action="store_true", help="profile the campaign only"
    )
    args = parser.parse_args()

    from repro.analysis.report import build_report
    from repro.scanners.orchestrator import MeasurementCampaign
    from repro.webpki.population import PopulationConfig, generate_population

    t0 = time.perf_counter()
    population = generate_population(PopulationConfig(size=args.size, seed=args.seed))
    t1 = time.perf_counter()
    campaign = MeasurementCampaign(
        population=population,
        run_sweep=True,
        sweep_sample_size=250,
        spoofed_targets_per_provider=40,
    )

    profiler = cProfile.Profile()
    profiler.enable()
    results = campaign.run()
    t2 = time.perf_counter()
    if not args.skip_report:
        build_report(results)
    profiler.disable()
    t3 = time.perf_counter()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)

    print(f"population generation: {t1 - t0:6.2f} s  ({args.size} domains, seed {args.seed})")
    print(f"campaign (sweep on):   {t2 - t1:6.2f} s")
    if not args.skip_report:
        print(f"report:                {t3 - t2:6.2f} s")
    info = results.flight_cache
    if info is not None:
        print(
            f"flight-plan cache:     {info.hits} hits / {info.misses} misses "
            f"({info.hit_rate:.1%} hit rate, {info.currsize} entries)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
