#!/usr/bin/env python
"""Profile the benchmark measurement campaign.

Two modes:

* default — run the 2,500-domain campaign of ``benchmarks/conftest.py``
  (sweep enabled) plus the full report under ``cProfile`` and print the top
  cumulative entries, so perf PRs can ship before/after evidence gathered the
  same way.
* ``--phases`` — drive the streaming pipeline shard by shard with a stopwatch
  around each stage and print (or, with ``--json``, write to
  ``BENCH_campaign.json``) a per-phase wall-clock breakdown:
  generation / scan / reduce / report, plus the skeleton-pass cost of the
  sweep discovery pass.  This file seeds the repo's perf trajectory; CI
  uploads it as a per-PR artifact.

Usage::

    PYTHONPATH=src python scripts/profile_campaign.py [--size 2500] [--top 25]
                                                      [--sort cumulative|tottime]
                                                      [--skip-report]
    PYTHONPATH=src python scripts/profile_campaign.py --phases [--size 2500]
                                                      [--json [PATH]]
    PYTHONPATH=src python scripts/profile_campaign.py --phases \
        --scenario-grid what-ifs   # grid sweep vs N independent campaigns
"""

from __future__ import annotations

import argparse
import cProfile
import json
import platform
import pstats
import sys
import time


DEFAULT_JSON_PATH = "BENCH_campaign.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=2500, help="population size")
    parser.add_argument("--seed", type=int, default=2022, help="population seed")
    parser.add_argument("--top", type=int, default=25, help="profile rows to print")
    parser.add_argument(
        "--sort", choices=("cumulative", "tottime"), default="cumulative"
    )
    parser.add_argument(
        "--skip-report", action="store_true", help="profile the campaign only"
    )
    parser.add_argument(
        "--phases", action="store_true",
        help="per-stage wall-clock breakdown (generation / scan / reduce / report) "
             "instead of a cProfile run",
    )
    parser.add_argument(
        "--json", nargs="?", const=DEFAULT_JSON_PATH, default=None, metavar="PATH",
        help=f"with --phases: also write the breakdown as JSON "
             f"(default path: {DEFAULT_JSON_PATH})",
    )
    parser.add_argument(
        "--shard-size", type=int, default=None,
        help="with --phases: deployments per shard (default: 2048)",
    )
    parser.add_argument(
        "--checkpoint-dir", nargs="?", const="", default=None, metavar="DIR",
        help="with --phases: persist every shard summary while timing the "
             "writes as a separate 'checkpoint' phase (no DIR: a temporary "
             "directory, discarded afterwards)",
    )
    parser.add_argument(
        "--scan-backend", choices=("object", "columnar"), default="object",
        help="with --phases: shard-scan implementation to time (columnar "
             "fuses scan+summarise, so its whole kernel is timed as 'scan' "
             "and only the reducer fold as 'reduce')",
    )
    parser.add_argument(
        "--skeleton-cache", nargs="?", const="", default=None, metavar="DIR",
        help="with --phases: also time generation through the persistent "
             "skeleton store — one cold pass that populates the cache and a "
             "warm pass that replays it from disk (no DIR: a temporary "
             "directory, discarded afterwards); with --json the numbers land "
             "in a 'skeleton_cache' section",
    )
    parser.add_argument(
        "--scenario-grid", type=str, default=None, metavar="GRID",
        help="with --phases: also profile a cross-scenario grid sweep "
             "(built-in grid name, grid JSON file, or comma-separated "
             "scenario list) against N independent campaigns and report the "
             "per-phase amortization; with --json the numbers land in a "
             "'scenario_sweep' section",
    )
    return parser


def profile_grid_sweep(args: argparse.Namespace) -> dict:
    """Time an N-scenario grid sweep against N independent campaigns.

    The grid pass mirrors :func:`repro.scanners.streaming._scan_and_summarize_grid`
    with a stopwatch around each stage: *generation* is the once-per-shard
    skeleton pass plus every member's transform+materialisation (sharing one
    chain cache), *scan* and *reduce* run once per ``(shard, scenario)`` pair.
    The independent reference runs each member as its own streamed campaign,
    exactly what ``repro compare`` cost before grids existed.
    """
    import dataclasses

    from repro.analysis.report import build_report
    from repro.scanners.orchestrator import MeasurementCampaign
    from repro.scanners.sharding import DEFAULT_SHARD_SIZE, plan_shards, scan_shard
    from repro.scanners.streaming import (
        CampaignReducer,
        ReductionSpec,
        summarize_shard,
    )
    from repro.scenarios import load_grid
    from repro.webpki.population import PopulationConfig, deployments_for_range
    from repro.x509.ca import default_hierarchy

    grid = load_grid(args.scenario_grid)
    config = PopulationConfig(size=args.size, seed=args.seed)
    shard_size = args.shard_size or DEFAULT_SHARD_SIZE
    spec = ReductionSpec()
    columnar = args.scan_backend == "columnar"
    if columnar:
        from repro.scanners.columnar import summarize_shard_columnar
    hierarchy = default_hierarchy()
    member_configs = {
        scenario.name: scenario.population_config(base=config) for scenario in grid
    }

    # Independent reference: one full streamed campaign (report included)
    # per member, exactly the pre-grid cost of an N-scenario comparison.
    t0 = time.perf_counter()
    for scenario in grid:
        results = MeasurementCampaign(
            population_config=member_configs[scenario.name],
            stream=True,
            shard_size=shard_size,
            scan_backend=args.scan_backend,
        ).run()
        build_report(results, include_sweep=False)
    independent_total = time.perf_counter() - t0

    # Grid sweep with per-phase stopwatches.
    generation = scan_seconds = reduce_seconds = 0.0
    reducers = {
        scenario.name: CampaignReducer(spec=spec, run_sweep=False) for scenario in grid
    }
    total_start = time.perf_counter()
    shards = list(plan_shards(config.size, shard_size))
    for shard in shards:
        chain_cache: dict = {}
        groups: dict = {}
        for scenario in grid:
            base_config = dataclasses.replace(
                member_configs[scenario.name], scenario=None
            )
            groups.setdefault(base_config, []).append(scenario)
        for base_config, members in groups.items():
            t0 = time.perf_counter()
            skeletons = deployments_for_range(
                base_config, shard.start, shard.stop, skeleton=True
            )
            generation += time.perf_counter() - t0
            for scenario in members:
                member_task = _member_task(
                    shard, member_configs[scenario.name], scenario, args.scan_backend
                )
                t0 = time.perf_counter()
                deployments = tuple(
                    s.materialize(hierarchy, chain_cache=chain_cache)
                    for s in scenario.transform_skeletons(skeletons)
                )
                t1 = time.perf_counter()
                if columnar:
                    summary = summarize_shard_columnar(member_task, deployments, spec)
                else:
                    scan = scan_shard(member_task, deployments=deployments)
                    summary = summarize_shard(member_task, deployments, scan, spec)
                t2 = time.perf_counter()
                reducers[scenario.name].add(summary)
                t3 = time.perf_counter()
                generation += t1 - t0
                scan_seconds += t2 - t1
                reduce_seconds += t3 - t2

    report_seconds = 0.0
    for scenario in grid:
        t0 = time.perf_counter()
        reduced = reducers[scenario.name].reduced_scan()
        campaign = MeasurementCampaign(
            population_config=member_configs[scenario.name], stream=True
        )
        results = campaign.finalize_streaming(reduced)
        reduce_seconds += time.perf_counter() - t0
        t0 = time.perf_counter()
        build_report(results, include_sweep=False)
        report_seconds += time.perf_counter() - t0
    grid_total = time.perf_counter() - total_start

    ratio = grid_total / independent_total if independent_total else None
    sweep = {
        "grid": grid.name,
        "scenarios": len(grid),
        "shard_size": shard_size,
        "scan_backend": args.scan_backend,
        "phases": {
            "generation": round(generation, 4),
            "scan": round(scan_seconds, 4),
            "reduce": round(reduce_seconds, 4),
            "report": round(report_seconds, 4),
            "total": round(grid_total, 4),
        },
        "independent_total": round(independent_total, 4),
        "ratio": round(ratio, 3) if ratio is not None else None,
    }
    print(f"\nscenario sweep ({grid.name}: {len(grid)} scenarios, "
          f"{config.size} domains, {args.scan_backend} backend):")
    for name in ("generation", "scan", "reduce", "report", "total"):
        print(f"  {name:<11s} {sweep['phases'][name]:8.2f} s")
    print(f"  {len(grid)} independent campaigns: {independent_total:8.2f} s")
    print(f"  grid sweep / independent:  {ratio:.1%} of the wall time"
          if ratio is not None else "  (independent reference too fast to time)")
    return sweep


def _member_task(shard, member_config, scenario, scan_backend):
    from repro.scanners.sharding import DEFAULT_ANALYSIS_INITIAL_SIZE, ShardTask

    return ShardTask(
        index=shard.index,
        population_config=member_config,
        start=shard.start,
        stop=shard.stop,
        analysis_initial_size=(
            scenario.analysis_initial_size
            if scenario.analysis_initial_size is not None
            else DEFAULT_ANALYSIS_INITIAL_SIZE
        ),
        analysis_compression=scenario.client_compression,
        scan_backend=scan_backend,
    )


def profile_skeleton_cache(args: argparse.Namespace) -> dict:
    """Time generation through the skeleton store: one cold pass, warm replays.

    The cold pass populates a fresh cache while generating (RNG + issuance +
    encode + atomic write); each warm pass drops the in-process decoded-shard
    memo first (``reset_stores``), so it times the honest disk path: read,
    verify, decode, materialise.  Warm passes repeat a few times and report
    the minimum — the stable number a regression gate can pin — plus the
    hit/miss counters proving the passes did what their names claim.
    """
    import shutil
    import tempfile

    from repro.scanners import skeleton_store
    from repro.scanners.sharding import DEFAULT_SHARD_SIZE, ShardTask, plan_shards
    from repro.webpki.population import PopulationConfig

    config = PopulationConfig(size=args.size, seed=args.seed)
    shard_size = args.shard_size or DEFAULT_SHARD_SIZE

    directory = args.skeleton_cache
    tempdir = None
    if not directory:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-skel-")
        directory = tempdir.name
    else:
        # An already-warm directory would turn the "cold" pass into a warm
        # one; start from a clean slate so the two numbers mean what they say.
        shutil.rmtree(directory, ignore_errors=True)

    tasks = [
        ShardTask(
            index=shard.index,
            population_config=config,
            start=shard.start,
            stop=shard.stop,
            skeleton_cache_dir=directory,
        )
        for shard in plan_shards(config.size, shard_size)
    ]

    def generation_pass() -> float:
        t0 = time.perf_counter()
        for task in tasks:
            tuple(task.resolve_deployments())
        return time.perf_counter() - t0

    skeleton_store.reset_stores()
    skeleton_store.reset_cache_counters()
    cold_seconds = generation_pass()
    cold_counters = skeleton_store.cache_counters()

    warm_samples = []
    skeleton_store.reset_cache_counters()
    for _ in range(3):
        skeleton_store.reset_stores()
        warm_samples.append(generation_pass())
    warm_counters = skeleton_store.cache_counters()
    warm_seconds = min(warm_samples)

    store = skeleton_store.SkeletonStore(directory)
    stats = store.stats()
    if tempdir is not None:
        tempdir.cleanup()
    skeleton_store.reset_stores()

    ratio = warm_seconds / cold_seconds if cold_seconds else None
    section = {
        "cold_generation": round(cold_seconds, 4),
        "warm_generation": round(warm_seconds, 4),
        "warm_ratio": round(ratio, 4) if ratio is not None else None,
        "warm_samples": [round(sample, 4) for sample in warm_samples],
        "cold_counters": cold_counters,
        "warm_counters": warm_counters,
        "entries": stats["entries"],
        "bytes": stats["bytes"],
    }
    print(f"\nskeleton cache ({stats['entries']} generation shards, "
          f"{stats['bytes']} bytes on disk):")
    print(f"  cold generation (populates): {cold_seconds:8.2f} s "
          f"({cold_counters['hits']} hits / {cold_counters['misses']} misses)")
    print(f"  warm generation (replays):   {warm_seconds:8.2f} s "
          f"({warm_counters['hits']} hits / {warm_counters['misses']} misses)")
    if ratio is not None:
        print(f"  warm / cold:                 {ratio:8.1%}")
    return section


def run_phases(args: argparse.Namespace) -> int:
    """Time each streaming-pipeline stage separately over one campaign."""
    from repro.analysis.report import build_report
    from repro.scanners.orchestrator import MeasurementCampaign
    from repro.scanners.sharding import (
        DEFAULT_SHARD_SIZE,
        ShardTask,
        plan_shards,
        scan_shard,
    )
    from repro.scanners.streaming import (
        CampaignReducer,
        ReductionSpec,
        summarize_shard,
    )
    from repro.webpki.population import PopulationConfig

    config = PopulationConfig(size=args.size, seed=args.seed)
    shard_size = args.shard_size or DEFAULT_SHARD_SIZE
    # Defaults match `repro campaign --stream` (spoof cap 60), so the phase
    # breakdown decomposes exactly the campaign the CLI runs.
    spec = ReductionSpec()
    columnar = args.scan_backend == "columnar"
    if columnar:
        from repro.scanners.columnar import summarize_shard_columnar
    tasks = [
        ShardTask(
            index=shard.index,
            population_config=config,
            start=shard.start,
            stop=shard.stop,
            scan_backend=args.scan_backend,
        )
        for shard in plan_shards(config.size, shard_size)
    ]

    # Warm the memoized ranked list so the discovery and generation phases
    # are timed on equal footing (in a real sweep run both share one build).
    from repro.webpki.tranco import generate_tranco_list

    generate_tranco_list(config.size, seed=config.seed)

    store = tempdir = None
    if args.checkpoint_dir is not None:
        import tempfile

        from repro.scanners.checkpoint import CheckpointKey, CheckpointStore

        directory = args.checkpoint_dir
        if not directory:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            directory = tempdir.name
        store = CheckpointStore(directory)
        store.bind_campaign(config, shard_size)

    total_start = time.perf_counter()

    # Discovery pass (skeleton generation only) — what `--stream --sweep`
    # pays to count QUIC targets before the scan pass.
    t0 = time.perf_counter()
    quic_targets = 0
    for task in tasks:
        skeletons = task.resolve_skeletons()
        quic_targets += sum(1 for s in skeletons if s.supports_quic)
    discovery = time.perf_counter() - t0

    # Streaming stages, stopwatch around each: generation (shard
    # regeneration, chains included), scan (stages 1–4), reduce (summarise +
    # fold).  Identical results to `repro campaign --stream` by construction.
    generation = scan_seconds = reduce_seconds = checkpoint_seconds = 0.0
    reducer = CampaignReducer(spec=spec, run_sweep=False)
    for task in tasks:
        t0 = time.perf_counter()
        deployments = tuple(task.resolve_deployments())
        t1 = time.perf_counter()
        if columnar:
            # The kernel fuses scan+summarise, so it is all 'scan'; only the
            # reducer fold remains as 'reduce'.
            summary = scan = summarize_shard_columnar(task, deployments, spec)
        else:
            scan = scan_shard(task, deployments=deployments)
        t2 = time.perf_counter()
        if not columnar:
            summary = summarize_shard(task, deployments, scan, spec)
        reducer.add(summary)
        t3 = time.perf_counter()
        if store is not None:
            store.save(
                CheckpointKey.for_campaign(config, shard_size, task.index), summary
            )
            checkpoint_seconds += time.perf_counter() - t3
        generation += t1 - t0
        scan_seconds += t2 - t1
        reduce_seconds += t3 - t2

    t0 = time.perf_counter()
    reduced = reducer.reduced_scan()
    campaign = MeasurementCampaign(population_config=config, stream=True)
    results = campaign.finalize_streaming(reduced)
    reduce_seconds += time.perf_counter() - t0

    t0 = time.perf_counter()
    report = build_report(results, include_sweep=False)
    report_seconds = time.perf_counter() - t0
    total = time.perf_counter() - total_start

    phases = {
        "generation": round(generation, 4),
        "scan": round(scan_seconds, 4),
        "reduce": round(reduce_seconds, 4),
        "report": round(report_seconds, 4),
        "total": round(total, 4),
    }
    if store is not None:
        phases["checkpoint"] = round(checkpoint_seconds, 4)
    discovery_block = {
        "skeleton_pass": round(discovery, 4),
        "full_regeneration": round(generation, 4),
        "speedup": round(generation / discovery, 2) if discovery else None,
        "quic_targets": quic_targets,
    }

    print(f"campaign phases ({config.size} domains, seed {config.seed}, "
          f"shard size {shard_size}, streamed, no sweep, "
          f"{args.scan_backend} backend):")
    for name in ("generation", "scan", "reduce", "checkpoint", "report", "total"):
        if name in phases:
            print(f"  {name:<11s} {phases[name]:8.2f} s")
    if store is not None:
        share = checkpoint_seconds / total if total else 0.0
        print(f"checkpoint overhead: {share:.1%} of campaign wall time "
              f"({len(tasks)} shard summaries persisted)")
    print(f"discovery pass (skeletons only): {discovery:6.2f} s "
          f"({discovery_block['speedup']}x cheaper than regeneration, "
          f"{quic_targets} QUIC targets)")
    info = results.flight_cache
    if info is not None:
        print(
            f"flight-plan cache: {info.hits} hits / {info.misses} misses "
            f"({info.hit_rate:.1%} hit rate, {info.currsize} entries)"
        )

    skeleton_cache = None
    if args.skeleton_cache is not None:
        skeleton_cache = profile_skeleton_cache(args)

    sweep = None
    if args.scenario_grid:
        sweep = profile_grid_sweep(args)

    if args.json:
        payload = {
            "schema": "repro-campaign-phases/1",
            "config": {
                "size": config.size,
                "seed": config.seed,
                "shard_size": shard_size,
                "stream": True,
                "sweep": False,
                "checkpointing": store is not None,
                "scan_backend": args.scan_backend,
            },
            "phases": phases,
            "discovery_pass": discovery_block,
            "report_bytes": len(report.text),
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        if skeleton_cache is not None:
            payload["skeleton_cache"] = skeleton_cache
        if sweep is not None:
            payload["scenario_sweep"] = sweep
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"phase breakdown written to {args.json}")
    if tempdir is not None:
        tempdir.cleanup()
    return 0


def run_cprofile(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report
    from repro.scanners.orchestrator import MeasurementCampaign
    from repro.webpki.population import PopulationConfig, generate_population

    t0 = time.perf_counter()
    population = generate_population(PopulationConfig(size=args.size, seed=args.seed))
    t1 = time.perf_counter()
    campaign = MeasurementCampaign(
        population=population,
        run_sweep=True,
        sweep_sample_size=250,
        spoofed_targets_per_provider=40,
    )

    profiler = cProfile.Profile()
    profiler.enable()
    results = campaign.run()
    t2 = time.perf_counter()
    if not args.skip_report:
        build_report(results)
    profiler.disable()
    t3 = time.perf_counter()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)

    print(f"population generation: {t1 - t0:6.2f} s  ({args.size} domains, seed {args.seed})")
    print(f"campaign (sweep on):   {t2 - t1:6.2f} s")
    if not args.skip_report:
        print(f"report:                {t3 - t2:6.2f} s")
    info = results.flight_cache
    if info is not None:
        print(
            f"flight-plan cache:     {info.hits} hits / {info.misses} misses "
            f"({info.hit_rate:.1%} hit rate, {info.currsize} entries)"
        )
    return 0


def main() -> int:
    parser = build_parser()
    args = parser.parse_args()
    if args.json is not None and not args.phases:
        # Only the phase mode writes the JSON breakdown; silently running a
        # multi-second cProfile instead would leave a stale BENCH_campaign.json.
        parser.error("--json requires --phases")
    if args.scenario_grid is not None and not args.phases:
        parser.error("--scenario-grid requires --phases")
    if args.skeleton_cache is not None and not args.phases:
        parser.error("--skeleton-cache requires --phases")
    if args.phases:
        return run_phases(args)
    return run_cprofile(args)


if __name__ == "__main__":
    sys.exit(main())
