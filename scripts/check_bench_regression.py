#!/usr/bin/env python
"""Fail when the columnar scan+reduce wall clock regresses past a tolerance.

CI measures a fresh ``BENCH_campaign.json`` (``scripts/profile_campaign.py
--phases``) and hands it here together with the copy checked into the repo
root.  The gate compares the perf-tracked phases — ``scan`` and ``reduce``,
the fused columnar kernel plus the reducer fold — and exits non-zero when the
fresh measurement is slower than ``baseline * (1 + tolerance)``.

The default tolerance is deliberately wide (25%): the two files are usually
measured on *different machines* (a CI runner vs the machine that committed
the baseline), so the gate only catches real regressions — an accidentally
quadratic fold, a cache key that stopped deduplicating — not scheduler noise.
Generation, checkpoint and report phases are reported for context but not
gated: they are not what the columnar backend optimises.

When the fresh file carries a ``scenario_sweep`` section (measured with
``profile_campaign.py --phases --scenario-grid ...``), its amortisation
ratio — grid-sweep wall clock over N independent campaigns — is additionally
gated against the hard :data:`MAX_SWEEP_RATIO` ceiling.  The ratio is
within-run, so no cross-machine tolerance applies.

Likewise a ``skeleton_cache`` section (measured with ``--skeleton-cache``):
warm generation — replaying cached shards from disk — must stay under
:data:`MAX_WARM_GENERATION_RATIO` of the cold pass that populated the cache,
and the counters must show the warm pass was all hits.  Also within-run, so
machine speed cancels out.

Usage::

    python scripts/check_bench_regression.py FRESH.json --baseline BENCH_campaign.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Phases the columnar backend is accountable for.
GATED_PHASES = ("scan", "reduce")

#: Hard ceiling on scenario_sweep.ratio (grid wall / N-independent wall).
#: The ratio is a within-run comparison, so unlike raw seconds it is stable
#: across machines: a grid sweep that stops amortising generation shows up
#: here no matter how fast the runner is.
MAX_SWEEP_RATIO = 0.55

#: Hard ceiling on skeleton_cache.warm_ratio (warm generation / cold
#: generation).  Warm-start exists to skip generation entirely; a warm pass
#: creeping toward the cold cost means the decode path regressed (or the
#: cache quietly stopped hitting).  Within-run, machine-independent.
MAX_WARM_GENERATION_RATIO = 0.15


def load_payload(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark file {path!r}: {error}")
    return payload


def load_phases(path: str, payload: dict = None) -> dict:
    payload = payload if payload is not None else load_payload(path)
    phases = payload.get("phases")
    if not isinstance(phases, dict):
        raise SystemExit(f"{path!r} has no 'phases' object — not a --phases JSON?")
    missing = [name for name in GATED_PHASES if name not in phases]
    if missing:
        raise SystemExit(f"{path!r} is missing phase(s): {', '.join(missing)}")
    return phases


def check_sweep_ratio(fresh_payload: dict, path: str) -> int:
    """Gate the cross-scenario amortisation ratio, when measured.

    Only runs when the fresh JSON carries a ``scenario_sweep`` section
    (``profile_campaign.py --phases --scenario-grid ...``); returns the
    number of failures.
    """
    sweep = fresh_payload.get("scenario_sweep")
    if not isinstance(sweep, dict):
        return 0
    ratio = sweep.get("ratio")
    if not isinstance(ratio, (int, float)):
        raise SystemExit(f"{path!r} scenario_sweep has no numeric 'ratio'")
    print(
        f"{'sweep ratio':>12}: fresh {ratio:7.4f}    limit {MAX_SWEEP_RATIO:7.4f} "
        f"(grid '{sweep.get('grid')}', {sweep.get('scenarios')} scenarios)"
    )
    if ratio > MAX_SWEEP_RATIO:
        print(
            f"FAIL: grid sweep ran at {ratio:.1%} of N independent campaigns "
            f"(ceiling {MAX_SWEEP_RATIO:.0%}) — shard reuse stopped amortising",
            file=sys.stderr,
        )
        return 1
    print("OK: grid sweep amortisation within ceiling")
    return 0


def check_warm_generation(fresh_payload: dict, path: str) -> int:
    """Gate the skeleton-store warm/cold generation ratio, when measured.

    Only runs when the fresh JSON carries a ``skeleton_cache`` section
    (``profile_campaign.py --phases --skeleton-cache``); returns the number
    of failures.
    """
    section = fresh_payload.get("skeleton_cache")
    if not isinstance(section, dict):
        return 0
    ratio = section.get("warm_ratio")
    if not isinstance(ratio, (int, float)):
        raise SystemExit(f"{path!r} skeleton_cache has no numeric 'warm_ratio'")
    print(
        f"{'warm ratio':>12}: fresh {ratio:7.4f}    limit "
        f"{MAX_WARM_GENERATION_RATIO:7.4f} "
        f"(cold {section.get('cold_generation')}s, "
        f"warm {section.get('warm_generation')}s)"
    )
    failures = 0
    if ratio > MAX_WARM_GENERATION_RATIO:
        print(
            f"FAIL: warm generation ran at {ratio:.1%} of cold "
            f"(ceiling {MAX_WARM_GENERATION_RATIO:.0%}) — the skeleton store "
            f"stopped skipping generation",
            file=sys.stderr,
        )
        failures += 1
    warm_counters = section.get("warm_counters") or {}
    if warm_counters.get("misses", 0):
        print(
            f"FAIL: the warm pass recorded {warm_counters['misses']} cache "
            f"miss(es) — it regenerated shards it should have replayed",
            file=sys.stderr,
        )
        failures += 1
    if not failures:
        print("OK: warm-start generation within ceiling")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate the columnar scan+reduce wall clock against a baseline."
    )
    parser.add_argument("fresh", help="freshly measured --phases JSON")
    parser.add_argument(
        "--baseline",
        default="BENCH_campaign.json",
        help="checked-in baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    fresh_payload = load_payload(args.fresh)
    fresh = load_phases(args.fresh, fresh_payload)
    baseline = load_phases(args.baseline)

    fresh_gated = sum(fresh[name] for name in GATED_PHASES)
    baseline_gated = sum(baseline[name] for name in GATED_PHASES)
    limit = baseline_gated * (1.0 + args.tolerance)

    for name in sorted(set(fresh) | set(baseline)):
        flag = " (gated)" if name in GATED_PHASES else ""
        print(
            f"{name:>12}: fresh {fresh.get(name, float('nan')):7.4f}s   "
            f"baseline {baseline.get(name, float('nan')):7.4f}s{flag}"
        )
    print(
        f"{'scan+reduce':>12}: fresh {fresh_gated:.4f}s vs limit {limit:.4f}s "
        f"(baseline {baseline_gated:.4f}s + {args.tolerance:.0%})"
    )

    failures = check_sweep_ratio(fresh_payload, args.fresh)
    failures += check_warm_generation(fresh_payload, args.fresh)

    if fresh_gated > limit:
        print(
            f"FAIL: columnar scan+reduce regressed {fresh_gated / baseline_gated:.2f}x "
            f"over the checked-in baseline (tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
        return 1
    if failures:
        return 1
    print("OK: columnar scan+reduce within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
