"""Figure 4: amplification factor during the first RTT of complete handshakes.

The CDF is computed over handshakes that exceeded the anti-amplification
limit; the paper observes that factors remain relatively small, below ≈6×.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ...scanners.quicreach import HandshakeObservation
from ..cdf import EmpiricalCdf


@dataclass(frozen=True)
class FirstRttAmplificationFigure:
    """CDF of first-RTT amplification factors of limit-exceeding handshakes."""

    cdf: EmpiricalCdf
    service_count: int

    @property
    def median(self) -> float:
        return self.cdf.median

    @property
    def p99(self) -> float:
        return self.cdf.quantile(0.99)

    @property
    def maximum(self) -> float:
        return self.cdf.quantile(1.0) if not self.cdf.is_empty else 0.0

    def share_below(self, factor: float) -> float:
        return self.cdf.probability_at(factor)

    def render_text(self) -> str:
        return (
            f"Figure 4: first-RTT amplification factor over {self.service_count} "
            f"limit-exceeding services\n"
            f"  median={self.median:.2f}x  p99={self.p99:.2f}x  max={self.maximum:.2f}x  "
            f"share below 6x={self.share_below(6.0):.1%}"
        )


def compute(observations: Sequence[HandshakeObservation]) -> FirstRttAmplificationFigure:
    """Build the CDF from complete-handshake observations."""
    factors: List[float] = [
        o.amplification_factor
        for o in observations
        if o.reachable and o.exceeds_limit
    ]
    return FirstRttAmplificationFigure(
        cdf=EmpiricalCdf.from_values(factors), service_count=len(factors)
    )


def compute_from_counts(factor_counts) -> FirstRttAmplificationFigure:
    """Reduced-contract equivalent of :func:`compute`.

    ``factor_counts`` maps an amplification factor to how often limit-exceeding
    reachable handshakes produced it; the merged streaming accumulators carry
    the same multiset the eager path collects, so the CDF is identical.
    """
    return FirstRttAmplificationFigure(
        cdf=EmpiricalCdf.from_counts(factor_counts),
        service_count=sum(factor_counts.values()),
    )
