"""Per-figure and per-table reproduction modules.

Naming follows the paper: ``figure03`` reproduces Figure 3, ``table02``
Table 2, and so on.  Each module exposes a ``compute`` function returning a
result object with ``render_text()`` plus the raw series, so benchmarks and
reports share the same code path.
"""

from . import (
    figure02b,
    figure03,
    figure04,
    figure05,
    figure06,
    figure07,
    figure08,
    figure09,
    figure11,
    figure12,
    figure13,
    figure14,
    table01,
    table02,
    table03,
    compression,
    meta_prefix,
    funnel,
)

ALL_FIGURE_MODULES = {
    "figure02b": figure02b,
    "figure03": figure03,
    "figure04": figure04,
    "figure05": figure05,
    "figure06": figure06,
    "figure07": figure07,
    "figure08": figure08,
    "figure09": figure09,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "table01": table01,
    "table02": table02,
    "table03": table03,
    "compression": compression,
    "meta_prefix": meta_prefix,
    "funnel": funnel,
}

__all__ = ["ALL_FIGURE_MODULES"] + list(ALL_FIGURE_MODULES)
