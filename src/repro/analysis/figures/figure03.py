"""Figure 3: influence of the client Initial size on the QUIC handshake.

A stacked count of handshake classes (Amplification, Multi-RTT, RETRY, 1-RTT)
per client Initial size between 1200 and 1472 bytes.  The paper finds that
amplifying handshakes occur independently of the Initial size, that larger
Initials shift a small share from Multi-RTT to 1-RTT, and that reachability
drops slightly (≈1.2 %) for large Initials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...quic.handshake import HandshakeClass
from ...scanners.quicreach import SweepResult
from ..dataset import Column, Table

STACK_ORDER = (
    HandshakeClass.AMPLIFICATION,
    HandshakeClass.MULTI_RTT,
    HandshakeClass.RETRY,
    HandshakeClass.ONE_RTT,
)


@dataclass(frozen=True)
class InitialSizeSweepFigure:
    """Counts per Initial size, the data behind the stacked bars."""

    counts: Dict[int, Dict[HandshakeClass, int]]
    reachable: Dict[int, int]
    scanned: Dict[int, int]

    def initial_sizes(self) -> List[int]:
        return sorted(self.counts)

    def share(self, initial_size: int, handshake_class: HandshakeClass) -> float:
        reachable = self.reachable.get(initial_size, 0)
        if reachable == 0:
            return 0.0
        return self.counts[initial_size].get(handshake_class, 0) / reachable

    def reachability_drop(self) -> float:
        """Relative loss of reachable services between smallest and largest Initial."""
        sizes = self.initial_sizes()
        if len(sizes) < 2:
            return 0.0
        first, last = self.reachable.get(sizes[0], 0), self.reachable.get(sizes[-1], 0)
        if first == 0:
            return 0.0
        return 1.0 - last / first

    def as_table(self) -> Table:
        table = Table(
            [
                Column("initial_size"),
                Column("amplification"),
                Column("multi_rtt"),
                Column("retry"),
                Column("one_rtt"),
                Column("reachable"),
            ]
        )
        for size in self.initial_sizes():
            row = self.counts[size]
            table.add_row(
                size,
                row.get(HandshakeClass.AMPLIFICATION, 0),
                row.get(HandshakeClass.MULTI_RTT, 0),
                row.get(HandshakeClass.RETRY, 0),
                row.get(HandshakeClass.ONE_RTT, 0),
                self.reachable.get(size, 0),
            )
        return table

    def render_text(self) -> str:
        header = "Figure 3: handshake classes per client Initial size"
        return header + "\n" + self.as_table().render_text()


def compute(sweep: SweepResult) -> InitialSizeSweepFigure:
    """Aggregate a quicreach sweep into the Figure 3 series."""
    counts: Dict[int, Dict[HandshakeClass, int]] = {}
    reachable: Dict[int, int] = {}
    scanned: Dict[int, int] = {}
    for size in sweep.initial_sizes():
        observations = sweep.at_initial_size(size)
        scanned[size] = len(observations)
        reachable[size] = sum(1 for o in observations if o.reachable)
        by_class: Dict[HandshakeClass, int] = {}
        for observation in observations:
            if observation.reachable and observation.handshake_class is not None:
                by_class[observation.handshake_class] = by_class.get(observation.handshake_class, 0) + 1
        counts[size] = by_class
    return InitialSizeSweepFigure(counts=counts, reachable=reachable, scanned=scanned)
