"""Figure 11: per-host-octet amplification at the Meta PoP, before/after disclosure.

Mean amplification factor per host octet of the Meta /24, measured before the
responsible disclosure (August 2022) and after (October 2022).  The paper
shows a drop from up to ≈28× to a homogeneous ≈5× — still above the limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...scanners.zmap import ZmapProbeResult
from ..stats import mean


@dataclass(frozen=True)
class MetaPerHostAmplification:
    """Mean amplification per host octet for one measurement epoch."""

    epoch: str
    per_octet: Dict[int, float]
    domains: Dict[int, str]

    def octets(self) -> Tuple[int, ...]:
        return tuple(sorted(self.per_octet))

    @property
    def mean_amplification(self) -> float:
        return mean(self.per_octet.values())

    @property
    def max_amplification(self) -> float:
        return max(self.per_octet.values(), default=0.0)

    def share_above(self, factor: float = 3.0) -> float:
        if not self.per_octet:
            return 0.0
        return sum(1 for value in self.per_octet.values() if value > factor) / len(self.per_octet)


@dataclass(frozen=True)
class MetaDisclosureComparison:
    """Figure 11(a) versus Figure 11(b)."""

    before: MetaPerHostAmplification
    after: MetaPerHostAmplification

    @property
    def improvement_factor(self) -> float:
        if self.after.max_amplification == 0:
            return 0.0
        return self.before.max_amplification / self.after.max_amplification

    def render_text(self) -> str:
        return (
            "Figure 11: Meta per-host amplification before/after disclosure\n"
            f"  before: mean={self.before.mean_amplification:5.1f}x  "
            f"max={self.before.max_amplification:5.1f}x  hosts={len(self.before.per_octet)}\n"
            f"  after:  mean={self.after.mean_amplification:5.1f}x  "
            f"max={self.after.max_amplification:5.1f}x  hosts={len(self.after.per_octet)}\n"
            f"  max amplification improved by {self.improvement_factor:.1f}x; "
            f"still above 3x for {self.after.share_above(3.0):.0%} of hosts"
        )


def _per_epoch(results: Sequence[ZmapProbeResult], epoch: str) -> MetaPerHostAmplification:
    per_octet: Dict[int, float] = {}
    domains: Dict[int, str] = {}
    for result in results:
        if not result.responded or result.bytes_received <= 150:
            continue
        per_octet[result.host_octet] = result.amplification_factor
        if result.domain:
            domains[result.host_octet] = result.domain
    return MetaPerHostAmplification(epoch=epoch, per_octet=per_octet, domains=domains)


def compute(
    before: Sequence[ZmapProbeResult], after: Sequence[ZmapProbeResult]
) -> MetaDisclosureComparison:
    return MetaDisclosureComparison(
        before=_per_epoch(before, "August 2022 (before disclosure)"),
        after=_per_epoch(after, "October 2022 (after disclosure)"),
    )
