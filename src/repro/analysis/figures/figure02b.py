"""Figure 2(b): size distribution of X.509 certificate fields.

The paper shows CDFs of the Subject, Issuer, PublicKeyInfo, Extensions and
Signature field sizes over all collected certificates; extensions followed by
signature and public key are the most space-consuming fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ...x509.certificate import Certificate
from ...x509.field_sizes import measure_field_sizes
from ..cdf import EmpiricalCdf

FIELD_NAMES = ("Subject", "Issuer", "PublicKeyInfo", "Extensions", "Signature")


@dataclass(frozen=True)
class FieldSizeDistributions:
    """One CDF per certificate field."""

    cdfs: Dict[str, EmpiricalCdf]
    certificate_count: int

    def median(self, field: str) -> float:
        return self.cdfs[field].median

    def ordering_by_median(self) -> List[str]:
        """Fields ordered by descending median size (the paper's observation)."""
        return sorted(FIELD_NAMES, key=lambda field: self.median(field), reverse=True)

    def render_text(self) -> str:
        lines = [f"Figure 2(b): certificate field size CDFs over {self.certificate_count} certificates"]
        for field in FIELD_NAMES:
            cdf = self.cdfs[field]
            lines.append(
                f"  {field:<14s} median={cdf.median:7.0f} B  p90={cdf.quantile(0.9):7.0f} B  "
                f"max={cdf.quantile(1.0):7.0f} B"
            )
        lines.append("  largest fields by median: " + " > ".join(self.ordering_by_median()[:3]))
        return "\n".join(lines)


def compute(certificates: Iterable[Certificate]) -> FieldSizeDistributions:
    """Measure every certificate and build per-field CDFs."""
    per_field: Dict[str, List[float]] = {name: [] for name in FIELD_NAMES}
    count = 0
    for certificate in certificates:
        sizes = measure_field_sizes(certificate)
        per_field["Subject"].append(sizes.subject)
        per_field["Issuer"].append(sizes.issuer)
        per_field["PublicKeyInfo"].append(sizes.public_key_info)
        per_field["Extensions"].append(sizes.extensions)
        per_field["Signature"].append(sizes.signature)
        count += 1
    return FieldSizeDistributions(
        cdfs={name: EmpiricalCdf.from_values(values) for name, values in per_field.items()},
        certificate_count=count,
    )


def accumulate_field_sizes(
    certificates: Iterable[Certificate], counts: Dict[str, Dict[int, int]]
) -> int:
    """Fold certificates into per-field ``size -> multiplicity`` accumulators.

    The streaming reducer calls this in the worker; ``compute_from_counts``
    over the merged accumulators equals ``compute`` over the certificates.
    Returns the number of certificates folded in.
    """
    folded = 0
    for certificate in certificates:
        sizes = measure_field_sizes(certificate)
        for field, size in (
            ("Subject", sizes.subject),
            ("Issuer", sizes.issuer),
            ("PublicKeyInfo", sizes.public_key_info),
            ("Extensions", sizes.extensions),
            ("Signature", sizes.signature),
        ):
            field_counts = counts[field]
            field_counts[size] = field_counts.get(size, 0) + 1
        folded += 1
    return folded


def accumulate_row_counts(
    rows_with_multiplicity: Iterable, counts: Dict[str, Dict[int, int]]
) -> int:
    """Multiplicity-scaled fold over deduplicated field-size rows.

    ``rows_with_multiplicity`` yields ``(row, multiplicity)`` pairs where
    ``row`` is a :func:`~repro.x509.field_sizes.field_size_row` tuple (the
    first five entries follow :data:`FIELD_NAMES` order).  Folding one row
    scaled by ``m`` equals folding the certificate ``m`` times through
    :func:`accumulate_field_sizes` — the columnar backend's shape-dedup
    contract.  Returns the number of certificates represented.
    """
    folded = 0
    for row, multiplicity in rows_with_multiplicity:
        for field, size in zip(FIELD_NAMES, row):
            field_counts = counts[field]
            field_counts[size] = field_counts.get(size, 0) + multiplicity
        folded += multiplicity
    return folded


def compute_from_counts(
    counts: Dict[str, Dict[int, int]], certificate_count: int
) -> FieldSizeDistributions:
    """Reduced-contract equivalent of :func:`compute` (byte-identical output)."""
    return FieldSizeDistributions(
        cdfs={name: EmpiricalCdf.from_counts(counts[name]) for name in FIELD_NAMES},
        certificate_count=certificate_count,
    )


def certificates_from_results(results) -> List[Certificate]:
    """All certificates delivered by the population (leaves and CA certs)."""
    certificates: List[Certificate] = []
    for deployment in results.population.deployments:
        chain = deployment.delivered_chain
        if chain is not None:
            certificates.extend(chain.certificates)
    return certificates
