"""Figure 7: the top-10 parent certificate chains and their sizes.

Services are grouped by the *parent chain* they deliver (all certificates
above the leaf).  For each of the top-10 groups the figure shows the per-depth
certificate sizes, the median leaf size and the largest observed leaf, set
against the common amplification limits.  The paper highlights the strong
consolidation among QUIC services (top-10 chains cover 96.5 %) versus
HTTPS-only services (72 %).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.limits import COMMON_AMPLIFICATION_LIMITS
from ...webpki.deployment import DomainDeployment
from ..stats import median


@dataclass(frozen=True)
class ParentChainRow:
    """One row (one parent chain) of Figure 7."""

    parent_chain: Tuple[str, ...]
    share: float
    service_count: int
    parent_sizes_by_depth: Tuple[int, ...]
    median_leaf_size: int
    max_leaf_size: int

    @property
    def parent_chain_size(self) -> int:
        return sum(self.parent_sizes_by_depth)

    @property
    def typical_total_size(self) -> int:
        """Parent chain plus the median leaf (the paper's white + yellow boxes)."""
        return self.parent_chain_size + self.median_leaf_size

    def exceeds_limit(self, limit_bytes: int) -> bool:
        return self.typical_total_size > limit_bytes

    @property
    def label(self) -> str:
        return " / ".join(self.parent_chain)


@dataclass(frozen=True)
class TopParentChainsFigure:
    """Top-10 parent chains for one service group (7a: QUIC, 7b: HTTPS-only)."""

    group_label: str
    rows: Tuple[ParentChainRow, ...]
    total_services: int

    @property
    def top10_coverage(self) -> float:
        return sum(row.share for row in self.rows)

    def rows_exceeding(self, limit_bytes: int) -> int:
        return sum(1 for row in self.rows if row.exceeds_limit(limit_bytes))

    def render_text(self) -> str:
        lines = [
            f"Figure 7 ({self.group_label}): top-{len(self.rows)} parent chains over "
            f"{self.total_services} services (coverage {self.top10_coverage:.1%})"
        ]
        for index, row in enumerate(self.rows, start=1):
            limit_markers = "".join(
                "!" if row.exceeds_limit(limit) else "." for limit in COMMON_AMPLIFICATION_LIMITS
            )
            lines.append(
                f"  {index:>2d}. {row.share:6.2%}  parent={row.parent_chain_size:5d} B  "
                f"median leaf={row.median_leaf_size:5d} B  max leaf={row.max_leaf_size:5d} B "
                f"[{limit_markers}]  {row.label}"
            )
        return "\n".join(lines)


def compute(
    deployments: Sequence[DomainDeployment],
    group_label: str,
    top_n: int = 10,
) -> TopParentChainsFigure:
    """Group deployments by parent chain and build the top-N rows."""
    groups: Dict[Tuple[str, ...], List[DomainDeployment]] = defaultdict(list)
    total = 0
    for deployment in deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        if not chain.is_correctly_ordered():
            continue  # the paper excludes incorrectly ordered chains here
        groups[chain.parent_chain_key()].append(deployment)
        total += 1

    ranked = sorted(groups.items(), key=lambda item: len(item[1]), reverse=True)[:top_n]
    rows: List[ParentChainRow] = []
    for key, members in ranked:
        leaf_sizes = [d.delivered_chain.leaf_size for d in members]
        parent_sizes = members[0].delivered_chain.sizes_by_depth()[1:]
        rows.append(
            ParentChainRow(
                parent_chain=key,
                share=len(members) / total if total else 0.0,
                service_count=len(members),
                parent_sizes_by_depth=tuple(parent_sizes),
                median_leaf_size=int(median(leaf_sizes)),
                max_leaf_size=max(leaf_sizes),
            )
        )
    return TopParentChainsFigure(group_label=group_label, rows=tuple(rows), total_services=total)


@dataclass
class ParentChainStats:
    """Mergeable per-parent-chain aggregate for the streaming reduction.

    ``first_index`` is the global deployment index of the group's first member
    — merging keeps the minimum, so the merged ``parent_sizes_by_depth`` and
    the ranking's tie-break both follow the eager path's first-occurrence
    (deployment-order) semantics.
    """

    count: int
    leaf_size_counts: Dict[int, int]
    first_index: int
    parent_sizes: Tuple[int, ...]

    def merge(self, other: "ParentChainStats") -> None:
        self.count += other.count
        for size, multiplicity in other.leaf_size_counts.items():
            self.leaf_size_counts[size] = self.leaf_size_counts.get(size, 0) + multiplicity
        if other.first_index < self.first_index:
            self.first_index = other.first_index
            self.parent_sizes = other.parent_sizes


def accumulate_groups(
    deployments: Sequence[DomainDeployment],
    groups: Dict[Tuple[str, ...], ParentChainStats],
    index_offset: int,
) -> int:
    """Fold deployments into per-parent-chain stats; returns the group total.

    ``index_offset`` is the global index of ``deployments[0]`` so first-member
    bookkeeping stays consistent across shards.
    """
    total = 0
    for position, deployment in enumerate(deployments):
        chain = deployment.delivered_chain
        if chain is None or not chain.is_correctly_ordered():
            continue
        total += 1
        key = chain.parent_chain_key()
        stats = groups.get(key)
        if stats is None:
            groups[key] = ParentChainStats(
                count=1,
                leaf_size_counts={chain.leaf_size: 1},
                first_index=index_offset + position,
                parent_sizes=tuple(chain.sizes_by_depth()[1:]),
            )
        else:
            stats.count += 1
            stats.leaf_size_counts[chain.leaf_size] = (
                stats.leaf_size_counts.get(chain.leaf_size, 0) + 1
            )
    return total


def fold_group_member(
    groups: Dict[Tuple[str, ...], ParentChainStats],
    key: Tuple[str, ...],
    leaf_size: int,
    global_index: int,
    parent_sizes: Tuple[int, ...],
) -> None:
    """Fold one pre-resolved chain into its parent-chain group.

    The columnar backend computes ``key``/``parent_sizes`` once per distinct
    parent tuple and calls this per chain in deployment order, so
    ``first_index`` and the first-member ``parent_sizes`` keep exactly the
    semantics of :func:`accumulate_groups`.
    """
    stats = groups.get(key)
    if stats is None:
        groups[key] = ParentChainStats(
            count=1,
            leaf_size_counts={leaf_size: 1},
            first_index=global_index,
            parent_sizes=parent_sizes,
        )
    else:
        stats.count += 1
        stats.leaf_size_counts[leaf_size] = stats.leaf_size_counts.get(leaf_size, 0) + 1


def compute_from_groups(
    groups: Dict[Tuple[str, ...], ParentChainStats],
    group_label: str,
    total: int,
    top_n: int = 10,
) -> TopParentChainsFigure:
    """Reduced-contract equivalent of :func:`compute` (byte-identical output)."""
    ordered = sorted(groups.items(), key=lambda item: item[1].first_index)
    ranked = sorted(ordered, key=lambda item: item[1].count, reverse=True)[:top_n]
    rows: List[ParentChainRow] = []
    for key, stats in ranked:
        leaf_sizes = [
            size
            for size in sorted(stats.leaf_size_counts)
            for _ in range(stats.leaf_size_counts[size])
        ]
        rows.append(
            ParentChainRow(
                parent_chain=key,
                share=stats.count / total if total else 0.0,
                service_count=stats.count,
                parent_sizes_by_depth=stats.parent_sizes,
                median_leaf_size=int(median(leaf_sizes)),
                max_leaf_size=leaf_sizes[-1],
            )
        )
    return TopParentChainsFigure(group_label=group_label, rows=tuple(rows), total_services=total)
