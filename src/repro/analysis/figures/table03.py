"""Table 3: the anti-amplification limit across QUIC Internet drafts.

A static protocol-history table (Appendix C).  Reproduced from the limits
registry so reports and documentation cite a single source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.limits import AMPLIFICATION_LIMIT_HISTORY, DraftLimit
from ..dataset import Column, Table


@dataclass(frozen=True)
class AmplificationHistoryTable:
    rows: Tuple[DraftLimit, ...]

    @property
    def byte_limited_since(self) -> str:
        for row in self.rows:
            if row.byte_limited:
                return row.spec
        return "never"

    def as_table(self) -> Table:
        table = Table([Column("spec"), Column("date"), Column("rule")])
        for row in self.rows:
            table.add_row(row.spec, row.date, row.rule)
        return table

    def render_text(self) -> str:
        return self.as_table().render_text(
            "Table 3: evolution of QUIC amplification mitigation"
        )


def compute() -> AmplificationHistoryTable:
    return AmplificationHistoryTable(rows=AMPLIFICATION_LIMIT_HISTORY)
