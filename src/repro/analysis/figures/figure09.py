"""Figure 9: amplification factors of incomplete (spoofed) handshakes.

Per-hypergiant CDFs of amplification factors computed from telescope
backscatter: all bytes a server sent for one source connection ID divided by
an assumed 1362-byte client Initial.  The paper finds Cloudflare and Google
mostly below 10× while Meta reaches up to 45×.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ...scanners.backscatter import ProviderBackscatter
from ..cdf import EmpiricalCdf


@dataclass(frozen=True)
class BackscatterAmplificationFigure:
    """Per-provider amplification CDFs plus session-duration sanity checks."""

    cdfs: Dict[str, EmpiricalCdf]
    session_counts: Dict[str, int]
    median_durations: Dict[str, float]
    max_durations: Dict[str, float]

    def providers(self) -> Tuple[str, ...]:
        return tuple(sorted(self.cdfs))

    def median(self, provider: str) -> float:
        return self.cdfs[provider].median

    def maximum(self, provider: str) -> float:
        cdf = self.cdfs[provider]
        return cdf.quantile(1.0) if not cdf.is_empty else 0.0

    def share_exceeding(self, provider: str, factor: float = 3.0) -> float:
        return 1.0 - self.cdfs[provider].probability_at(factor)

    def render_text(self) -> str:
        lines = ["Figure 9: amplification factors for incomplete handshakes (backscatter)"]
        for provider in self.providers():
            lines.append(
                f"  {provider:<12s} sessions={self.session_counts[provider]:>5d}  "
                f"median={self.median(provider):5.1f}x  max={self.maximum(provider):5.1f}x  "
                f">3x: {self.share_exceeding(provider):.0%}  "
                f"median session={self.median_durations[provider]:.0f}s"
            )
        return "\n".join(lines)


def compute(backscatter: Dict[str, ProviderBackscatter]) -> BackscatterAmplificationFigure:
    cdfs = {
        provider: EmpiricalCdf.from_values(result.amplification_factors)
        for provider, result in backscatter.items()
    }
    return BackscatterAmplificationFigure(
        cdfs=cdfs,
        session_counts={p: r.session_count for p, r in backscatter.items()},
        median_durations={p: r.median_session_duration_s for p, r in backscatter.items()},
        max_durations={p: r.max_session_duration_s for p, r in backscatter.items()},
    )
