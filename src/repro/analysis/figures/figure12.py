"""Figure 12: QUIC and HTTPS-only deployment shares per Tranco rank group.

The paper splits the list into 100k rank groups and finds deployment rates
stable across popularity: ≈21 % QUIC plus ≈59 % additional HTTPS-only names
per group, with a small standard deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...webpki.deployment import DomainDeployment, ServiceCategory
from ..dataset import Column, Table


@dataclass(frozen=True)
class RankGroupShares:
    """QUIC / HTTPS-only share per rank group."""

    group_labels: Tuple[str, ...]
    quic_shares: Tuple[float, ...]
    https_only_shares: Tuple[float, ...]
    group_sizes: Tuple[int, ...]

    @property
    def mean_quic_share(self) -> float:
        return sum(self.quic_shares) / len(self.quic_shares) if self.quic_shares else 0.0

    @property
    def quic_share_stddev(self) -> float:
        if not self.quic_shares:
            return 0.0
        mean = self.mean_quic_share
        return math.sqrt(sum((s - mean) ** 2 for s in self.quic_shares) / len(self.quic_shares))

    def as_table(self) -> Table:
        table = Table(
            [
                Column("rank_group"),
                Column("quic_share", ".1%"),
                Column("https_only_share", ".1%"),
                Column("names"),
            ]
        )
        for label, quic, https_only, size in zip(
            self.group_labels, self.quic_shares, self.https_only_shares, self.group_sizes
        ):
            table.add_row(label, quic, https_only, size)
        return table

    def render_text(self) -> str:
        text = self.as_table().render_text("Figure 12: service popularity across rank groups")
        return text + (
            f"\n  mean QUIC share {self.mean_quic_share:.1%}, "
            f"stddev {self.quic_share_stddev * 100:.1f} percentage points"
        )


def compute(
    deployments: Sequence[DomainDeployment],
    group_count: int = 10,
) -> RankGroupShares:
    """Split the population into ``group_count`` equal rank groups."""
    if not deployments:
        return RankGroupShares((), (), (), ())
    max_rank = max(d.rank for d in deployments)
    group_size = max(1, math.ceil(max_rank / group_count))

    labels: List[str] = []
    quic_shares: List[float] = []
    https_shares: List[float] = []
    sizes: List[int] = []
    for group_index in range(group_count):
        start = group_index * group_size + 1
        end = (group_index + 1) * group_size + 1
        members = [d for d in deployments if start <= d.rank < end]
        if not members:
            continue
        labels.append(f"[{start}, {end})")
        sizes.append(len(members))
        quic_shares.append(
            sum(1 for d in members if d.category is ServiceCategory.QUIC) / len(members)
        )
        https_shares.append(
            sum(1 for d in members if d.category is ServiceCategory.HTTPS_ONLY) / len(members)
        )
    return RankGroupShares(
        group_labels=tuple(labels),
        quic_shares=tuple(quic_shares),
        https_only_shares=tuple(https_shares),
        group_sizes=tuple(sizes),
    )


#: Stable wire codes for :class:`ServiceCategory` in streaming reductions.
CATEGORY_CODES: Dict[ServiceCategory, int] = {
    category: index for index, category in enumerate(ServiceCategory)
}


def compute_from_category_runs(
    runs: Sequence[Tuple[int, bytes]],
    group_count: int = 10,
) -> RankGroupShares:
    """Reduced-contract equivalent of :func:`compute`.

    ``runs`` are rank-contiguous ``(start_rank, category_codes)`` byte strings
    (one per scan shard, in shard order), one code per deployment — the shape
    streaming workers ship instead of the deployments themselves.
    """
    if not runs or all(not codes for _, codes in runs):
        return RankGroupShares((), (), (), ())
    max_rank = max(start + len(codes) - 1 for start, codes in runs if codes)
    group_size = max(1, math.ceil(max_rank / group_count))
    quic_code = CATEGORY_CODES[ServiceCategory.QUIC]
    https_only_code = CATEGORY_CODES[ServiceCategory.HTTPS_ONLY]

    labels: List[str] = []
    quic_shares: List[float] = []
    https_shares: List[float] = []
    sizes: List[int] = []
    for group_index in range(group_count):
        start = group_index * group_size + 1
        end = (group_index + 1) * group_size + 1
        members = quic = https_only = 0
        for run_start, codes in runs:
            lo = max(start, run_start) - run_start
            hi = min(end, run_start + len(codes)) - run_start
            if hi <= lo:
                continue
            window = codes[lo:hi]
            members += len(window)
            quic += window.count(quic_code)
            https_only += window.count(https_only_code)
        if not members:
            continue
        labels.append(f"[{start}, {end})")
        sizes.append(members)
        quic_shares.append(quic / members)
        https_shares.append(https_only / members)
    return RankGroupShares(
        group_labels=tuple(labels),
        quic_shares=tuple(quic_shares),
        https_only_shares=tuple(https_shares),
        group_sizes=tuple(sizes),
    )
