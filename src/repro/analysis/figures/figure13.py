"""Figure 13: handshake classification per Tranco rank group.

For each 100k rank group, the share of QUIC services in each handshake class
(at the 1362-byte Initial).  The paper finds the shares mostly stable across
groups, with 1-RTT handshakes noticeably more common only in the top group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...quic.handshake import HandshakeClass
from ...scanners.quicreach import HandshakeObservation
from ..dataset import Column, Table

CLASS_ORDER = (
    HandshakeClass.AMPLIFICATION,
    HandshakeClass.MULTI_RTT,
    HandshakeClass.RETRY,
    HandshakeClass.ONE_RTT,
)


@dataclass(frozen=True)
class RankGroupHandshakeClasses:
    """Per-rank-group shares of each handshake class."""

    group_labels: Tuple[str, ...]
    shares: Dict[str, Dict[HandshakeClass, float]]
    group_counts: Dict[str, int]

    def share(self, group_label: str, handshake_class: HandshakeClass) -> float:
        return self.shares.get(group_label, {}).get(handshake_class, 0.0)

    def top_group_label(self) -> str:
        return self.group_labels[0] if self.group_labels else ""

    def one_rtt_share_top_vs_rest(self) -> Tuple[float, float]:
        """The paper's observation: 1-RTT is more common among the top 100k."""
        if not self.group_labels:
            return 0.0, 0.0
        top = self.share(self.group_labels[0], HandshakeClass.ONE_RTT)
        rest = [
            self.share(label, HandshakeClass.ONE_RTT) for label in self.group_labels[1:]
        ]
        return top, (sum(rest) / len(rest) if rest else 0.0)

    def as_table(self) -> Table:
        table = Table(
            [
                Column("rank_group"),
                Column("amplification", ".2%"),
                Column("multi_rtt", ".2%"),
                Column("retry", ".2%"),
                Column("one_rtt", ".2%"),
                Column("services"),
            ]
        )
        for label in self.group_labels:
            table.add_row(
                label,
                self.share(label, HandshakeClass.AMPLIFICATION),
                self.share(label, HandshakeClass.MULTI_RTT),
                self.share(label, HandshakeClass.RETRY),
                self.share(label, HandshakeClass.ONE_RTT),
                self.group_counts.get(label, 0),
            )
        return table

    def render_text(self) -> str:
        return self.as_table().render_text("Figure 13: handshake classification per rank group")


def compute(
    observations: Sequence[HandshakeObservation],
    group_count: int = 10,
) -> RankGroupHandshakeClasses:
    reachable = [o for o in observations if o.reachable and o.handshake_class is not None]
    if not reachable:
        return RankGroupHandshakeClasses((), {}, {})
    max_rank = max(o.rank for o in reachable)
    group_size = max(1, math.ceil(max_rank / group_count))

    labels: List[str] = []
    shares: Dict[str, Dict[HandshakeClass, float]] = {}
    counts: Dict[str, int] = {}
    for group_index in range(group_count):
        start = group_index * group_size + 1
        end = (group_index + 1) * group_size + 1
        members = [o for o in reachable if start <= o.rank < end]
        if not members:
            continue
        label = f"[{start}, {end})"
        labels.append(label)
        counts[label] = len(members)
        shares[label] = {
            handshake_class: sum(1 for o in members if o.handshake_class is handshake_class)
            / len(members)
            for handshake_class in CLASS_ORDER
        }
    return RankGroupHandshakeClasses(
        group_labels=tuple(labels), shares=shares, group_counts=counts
    )


#: Stable wire codes for the four reachable handshake classes.
CLASS_CODES: Dict[HandshakeClass, int] = {
    handshake_class: index for index, handshake_class in enumerate(CLASS_ORDER)
}


def compute_from_series(
    ranks: Sequence[int],
    class_codes: bytes,
    group_count: int = 10,
) -> RankGroupHandshakeClasses:
    """Reduced-contract equivalent of :func:`compute`.

    ``ranks`` (ascending — observations are collected in rank order) and
    ``class_codes`` are the parallel compact series of the reachable,
    classified handshake observations.
    """
    from bisect import bisect_left

    if not ranks:
        return RankGroupHandshakeClasses((), {}, {})
    max_rank = max(ranks)
    group_size = max(1, math.ceil(max_rank / group_count))

    labels: List[str] = []
    shares: Dict[str, Dict[HandshakeClass, float]] = {}
    counts: Dict[str, int] = {}
    for group_index in range(group_count):
        start = group_index * group_size + 1
        end = (group_index + 1) * group_size + 1
        lo = bisect_left(ranks, start)
        hi = bisect_left(ranks, end)
        if lo == hi:
            continue
        label = f"[{start}, {end})"
        window = class_codes[lo:hi]
        labels.append(label)
        counts[label] = hi - lo
        shares[label] = {
            handshake_class: window.count(CLASS_CODES[handshake_class]) / (hi - lo)
            for handshake_class in CLASS_ORDER
        }
    return RankGroupHandshakeClasses(
        group_labels=tuple(labels), shares=shares, group_counts=counts
    )
