"""Figure 8: mean certificate field sizes by certificate type.

Certificates of QUIC domains are split into leaf / non-leaf and into chains of
at most 4000 bytes versus larger chains; for each of the four groups the mean
size of every field is reported.  The paper's takeaway: for large chains the
public-key and signature sections of *non-leaf* certificates dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...x509.certificate import Certificate
from ...x509.field_sizes import (
    CertificateFieldSizes,
    mean_field_sizes,
    mean_from_sums,
    measure_field_sizes,
)
from ...webpki.deployment import DomainDeployment

#: The chain-size threshold the paper uses to separate "large" chains.
CHAIN_SIZE_THRESHOLD = 4000

GROUPS = (
    ("<=4000, Non-leaf", False, False),
    ("<=4000, Leaf", True, False),
    (">4000, Non-leaf", False, True),
    (">4000, Leaf", True, True),
)


@dataclass(frozen=True)
class FieldSizesByCertType:
    """Mean field sizes for each (leaf?, large-chain?) group."""

    means: Dict[str, CertificateFieldSizes]
    counts: Dict[str, int]
    threshold: int = CHAIN_SIZE_THRESHOLD

    def group(self, label: str) -> CertificateFieldSizes:
        return self.means[label]

    @property
    def large_chain_nonleaf_heaviest(self) -> bool:
        """The paper's claim: for large chains, the public-key and signature
        sections of *non-leaf* certificates carry the biggest load."""
        def key_and_signature(label: str) -> int:
            sizes = self.means[label]
            return sizes.public_key_info + sizes.signature

        heaviest = key_and_signature(">4000, Non-leaf")
        return all(
            heaviest >= key_and_signature(label)
            for label, _, _ in GROUPS
            if label != ">4000, Non-leaf"
        )

    def render_text(self) -> str:
        lines = ["Figure 8: mean certificate field sizes by certificate type (QUIC domains)"]
        for label, _, _ in GROUPS:
            sizes = self.means[label]
            lines.append(
                f"  {label:<18s} n={self.counts[label]:>6d}  subject={sizes.subject:4d}  "
                f"issuer={sizes.issuer:4d}  spki={sizes.public_key_info:4d}  "
                f"ext={sizes.extensions:4d}  sig={sizes.signature:4d}  total={sizes.total:5d}"
            )
        return "\n".join(lines)


def compute(quic_deployments: Sequence[DomainDeployment]) -> FieldSizesByCertType:
    """Split certificates into the four groups and average their field sizes."""
    buckets: Dict[str, List[Certificate]] = {label: [] for label, _, _ in GROUPS}
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        is_large = chain.total_size > CHAIN_SIZE_THRESHOLD
        for index, certificate in enumerate(chain):
            is_leaf = index == 0
            for label, wants_leaf, wants_large in GROUPS:
                if wants_leaf == is_leaf and wants_large == is_large:
                    buckets[label].append(certificate)
                    break
    return FieldSizesByCertType(
        means={label: mean_field_sizes(certs) for label, certs in buckets.items()},
        counts={label: len(certs) for label, certs in buckets.items()},
    )


FIELD_SUM_KEYS = (
    "subject", "issuer", "public_key_info", "extensions", "signature", "other", "total",
)


def accumulate_field_sums(
    quic_deployments: Sequence[DomainDeployment],
    sums: Dict[str, Dict[str, int]],
    counts: Dict[str, int],
) -> None:
    """Fold QUIC deployments into per-group integer field-size sums."""
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        is_large = chain.total_size > CHAIN_SIZE_THRESHOLD
        for index, certificate in enumerate(chain):
            is_leaf = index == 0
            for label, wants_leaf, wants_large in GROUPS:
                if wants_leaf == is_leaf and wants_large == is_large:
                    sizes = measure_field_sizes(certificate)
                    group_sums = sums[label]
                    for key in FIELD_SUM_KEYS:
                        group_sums[key] += getattr(sizes, key)
                    counts[label] += 1
                    break


def accumulate_row_sums(
    label: str,
    row: Tuple[int, ...],
    multiplicity: int,
    sums: Dict[str, Dict[str, int]],
    counts: Dict[str, int],
) -> None:
    """Fold one deduplicated field-size row into a group, scaled by multiplicity.

    ``row`` is a :func:`~repro.x509.field_sizes.field_size_row` tuple (same
    order as :data:`FIELD_SUM_KEYS`); adding ``value * multiplicity`` to the
    integer sums equals ``multiplicity`` passes of
    :func:`accumulate_field_sums` over the same certificate.
    """
    group_sums = sums[label]
    for key, value in zip(FIELD_SUM_KEYS, row):
        group_sums[key] += value * multiplicity
    counts[label] += multiplicity


def empty_field_sums() -> Tuple[Dict[str, Dict[str, int]], Dict[str, int]]:
    """Fresh zeroed accumulators for :func:`accumulate_field_sums`."""
    return (
        {label: {key: 0 for key in FIELD_SUM_KEYS} for label, _, _ in GROUPS},
        {label: 0 for label, _, _ in GROUPS},
    )


def compute_from_sums(
    sums: Dict[str, Dict[str, int]], counts: Dict[str, int]
) -> FieldSizesByCertType:
    """Reduced-contract equivalent of :func:`compute` (byte-identical output)."""
    return FieldSizesByCertType(
        means={label: mean_from_sums(sums[label], counts[label]) for label, _, _ in GROUPS},
        counts=dict(counts),
    )
