"""Table 1: browser Initial sizes and TLS certificate-compression support.

Combines the static browser profiles with the measured compression-support
shares and mean compression rates from the compression scanner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ...core.limits import BROWSER_PROFILES, BrowserProfile
from ...scanners.compression_scanner import CompressionObservation, CompressionScanner
from ...tls.cert_compression import CertificateCompressionAlgorithm
from ..dataset import Column, Table


@dataclass(frozen=True)
class BrowserCompressionTable:
    """The reproduced Table 1."""

    browsers: Dict[str, BrowserProfile]
    support_shares: Dict[CertificateCompressionAlgorithm, float]
    mean_rates: Dict[CertificateCompressionAlgorithm, Optional[float]]
    all_three_share: float
    scanned_services: int

    def as_table(self) -> Table:
        table = Table(
            [
                Column("browser"),
                Column("version"),
                Column("initial_size"),
                Column("algorithm"),
                Column("mean_rate"),
                Column("service_support"),
            ]
        )
        algorithm_of_browser = {
            "firefox": None,
            "chromium": CertificateCompressionAlgorithm.BROTLI,
            "safari": CertificateCompressionAlgorithm.ZLIB,
        }
        for key, profile in self.browsers.items():
            algorithm = algorithm_of_browser.get(key)
            rate = self.mean_rates.get(algorithm) if algorithm else None
            support = self.support_shares.get(algorithm) if algorithm else None
            table.add_row(
                profile.name,
                profile.version,
                profile.initial_size if profile.initial_size else "no QUIC",
                algorithm.label if algorithm else "-",
                f"{rate:.0%}" if rate is not None else "-",
                f"{support:.0%}" if support is not None else "-",
            )
        return table

    def render_text(self) -> str:
        text = self.as_table().render_text(
            "Table 1: browser Initial sizes and certificate-compression support"
        )
        return (
            text
            + f"\n  services supporting all three algorithms: {self.all_three_share:.2%} "
            f"(of {self.scanned_services})"
        )


def compute(observations: Sequence[CompressionObservation]) -> BrowserCompressionTable:
    support_shares = {
        algorithm: CompressionScanner.support_share(observations, algorithm)
        for algorithm in CertificateCompressionAlgorithm
    }
    mean_rates = {
        algorithm: CompressionScanner.mean_compression_rate(observations, algorithm)
        for algorithm in CertificateCompressionAlgorithm
    }
    all_three = (
        sum(1 for o in observations if o.supports_all_three) / len(observations)
        if observations
        else 0.0
    )
    return BrowserCompressionTable(
        browsers=dict(BROWSER_PROFILES),
        support_shares=support_shares,
        mean_rates=mean_rates,
        all_three_share=all_three,
        scanned_services=len(observations),
    )


def compute_from_reduction(
    support_counts: Dict[CertificateCompressionAlgorithm, int],
    rates: Dict[CertificateCompressionAlgorithm, Sequence[float]],
    all_three_count: int,
    scanned_services: int,
) -> BrowserCompressionTable:
    """Reduced-contract equivalent of :func:`compute`.

    ``rates`` holds each algorithm's measured compression rates in observation
    (= shard concatenation) order, so the mean is the same left-to-right float
    sum the eager path computes.
    """
    support_shares = {
        algorithm: (support_counts.get(algorithm, 0) / scanned_services if scanned_services else 0.0)
        for algorithm in CertificateCompressionAlgorithm
    }
    mean_rates: Dict[CertificateCompressionAlgorithm, Optional[float]] = {}
    for algorithm in CertificateCompressionAlgorithm:
        algorithm_rates = list(rates.get(algorithm, ()))
        mean_rates[algorithm] = (
            sum(algorithm_rates) / len(algorithm_rates) if algorithm_rates else None
        )
    return BrowserCompressionTable(
        browsers=dict(BROWSER_PROFILES),
        support_shares=support_shares,
        mean_rates=mean_rates,
        all_three_share=all_three_count / scanned_services if scanned_services else 0.0,
        scanned_services=scanned_services,
    )
