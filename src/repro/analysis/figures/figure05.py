"""Figure 5: payload exchanged during multi-RTT handshakes.

For every multi-RTT handshake, the received traffic is split into TLS payload
and remaining QUIC bytes (headers, padding, AEAD overhead) and plotted against
the 3× limit.  The paper finds that in 87 % of multi-RTT handshakes the TLS
bytes alone already exceed the limit, and that superfluous QUIC padding can
contribute thousands of bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ...quic.handshake import HandshakeClass
from ...scanners.quicreach import HandshakeObservation
from ..stats import share


@dataclass(frozen=True)
class MultiRttPayloadFigure:
    """Ranked series of (TLS bytes, total bytes, limit) for multi-RTT handshakes."""

    #: Sorted ascending by total received bytes, mirroring the paper's x-axis.
    entries: Tuple[Tuple[int, int, int], ...]  # (tls_bytes, total_bytes, limit_bytes)
    share_tls_alone_exceeds: float
    max_quic_overhead: int

    @property
    def handshake_count(self) -> int:
        return len(self.entries)

    def render_text(self) -> str:
        lines = [
            f"Figure 5: payload split of {self.handshake_count} multi-RTT handshakes",
            f"  TLS bytes alone exceed the 3x limit in {self.share_tls_alone_exceeds:.1%} of cases",
            f"  largest remaining-QUIC-bytes contribution: {self.max_quic_overhead} bytes",
        ]
        if self.entries:
            mid = self.entries[len(self.entries) // 2]
            lines.append(
                f"  median handshake: TLS={mid[0]} B, total={mid[1]} B, limit={mid[2]} B"
            )
        return "\n".join(lines)


def compute(observations: Sequence[HandshakeObservation]) -> MultiRttPayloadFigure:
    """Aggregate multi-RTT observations into the Figure 5 series."""
    multi_rtt = [
        o
        for o in observations
        if o.reachable and o.handshake_class is HandshakeClass.MULTI_RTT
    ]
    multi_rtt.sort(key=lambda o: o.total_bytes)
    entries = tuple(
        (o.tls_payload_bytes, o.total_bytes, 3 * o.initial_size) for o in multi_rtt
    )
    exceeds = share(multi_rtt, lambda o: o.tls_payload_bytes > 3 * o.initial_size)
    max_overhead = max((o.quic_overhead_bytes for o in multi_rtt), default=0)
    return MultiRttPayloadFigure(
        entries=entries,
        share_tls_alone_exceeds=exceeds,
        max_quic_overhead=max_overhead,
    )


def compute_from_rows(
    rows: Sequence[Tuple[int, int, int]],
    exceeds_count: int,
    max_overhead: int,
) -> MultiRttPayloadFigure:
    """Reduced-contract equivalent of :func:`compute`.

    ``rows`` are the per-multi-RTT-handshake ``(tls_bytes, total_bytes,
    limit_bytes)`` triples in observation (= shard concatenation) order; the
    stable sort by total bytes therefore breaks ties exactly like the eager
    path sorting the observations themselves.
    """
    entries = tuple(sorted(rows, key=lambda row: row[1]))
    exceeds = exceeds_count / len(rows) if rows else 0.0
    return MultiRttPayloadFigure(
        entries=entries,
        share_tls_alone_exceeds=exceeds,
        max_quic_overhead=max_overhead,
    )
