"""§4.2 "Compression helps": the synthetic certificate-compression experiment.

Combines the synthetic study (compress every collected chain) with the
in-the-wild observations from the compression scanner, mirroring the paper's
comparison of a ≈65 % median synthetic rate with a ≈73 % mean rate measured
against real deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ...core.compression_study import (
    CompressionStudyResult,
    run_compression_study,
    study_from_reduction,
)
from ...core.limits import LARGER_COMMON_LIMIT
from ...scanners.compression_scanner import CompressionObservation, CompressionScanner
from ...tls.cert_compression import CertificateCompressionAlgorithm
from ...webpki.deployment import DomainDeployment


@dataclass(frozen=True)
class CompressionExperiment:
    """Synthetic study plus wild measurements."""

    synthetic: CompressionStudyResult
    wild_mean_rate: Optional[float]
    wild_support_share: float
    limit_bytes: int

    @property
    def median_synthetic_rate(self) -> float:
        return self.synthetic.median_compression_rate

    @property
    def share_below_limit_compressed(self) -> float:
        return self.synthetic.share_below_limit_compressed

    def render_text(self) -> str:
        wild = f"{self.wild_mean_rate:.0%}" if self.wild_mean_rate is not None else "n/a"
        return (
            "Compression experiment (§4.2)\n"
            f"  synthetic median rate: {self.median_synthetic_rate:.0%} over "
            f"{self.synthetic.chain_count} chains\n"
            f"  chains below {self.limit_bytes} B uncompressed: "
            f"{self.synthetic.share_below_limit_uncompressed:.1%}\n"
            f"  chains below {self.limit_bytes} B compressed:   "
            f"{self.synthetic.share_below_limit_compressed:.1%}\n"
            f"  mean rate measured in the wild (brotli): {wild}\n"
            f"  services supporting brotli: {self.wild_support_share:.1%}"
        )


def compute(
    deployments: Sequence[DomainDeployment],
    observations: Sequence[CompressionObservation],
    algorithm: CertificateCompressionAlgorithm = CertificateCompressionAlgorithm.BROTLI,
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> CompressionExperiment:
    chains = [d.delivered_chain for d in deployments if d.delivered_chain is not None]
    synthetic = run_compression_study(chains, algorithm, limit_bytes)
    wild_rate = CompressionScanner.mean_compression_rate(observations, algorithm)
    support = CompressionScanner.support_share(observations, algorithm)
    return CompressionExperiment(
        synthetic=synthetic,
        wild_mean_rate=wild_rate,
        wild_support_share=support,
        limit_bytes=limit_bytes,
    )


def compute_from_reduction(
    synthetic_rates: Sequence[float],
    synthetic_below_limit_uncompressed: int,
    synthetic_below_limit_compressed: int,
    synthetic_chain_count: int,
    wild_rates: Sequence[float],
    wild_support_count: int,
    scanned_services: int,
    algorithm: CertificateCompressionAlgorithm = CertificateCompressionAlgorithm.BROTLI,
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> CompressionExperiment:
    """Reduced-contract equivalent of :func:`compute` (byte-identical output)."""
    synthetic = study_from_reduction(
        algorithm,
        synthetic_rates,
        synthetic_below_limit_uncompressed,
        synthetic_below_limit_compressed,
        synthetic_chain_count,
        limit_bytes,
    )
    ordered_wild = list(wild_rates)
    wild_rate = sum(ordered_wild) / len(ordered_wild) if ordered_wild else None
    support = wild_support_count / scanned_services if scanned_services else 0.0
    return CompressionExperiment(
        synthetic=synthetic,
        wild_mean_rate=wild_rate,
        wild_support_share=support,
        limit_bytes=limit_bytes,
    )
