"""Figure 6: certificate chain size distributions by QUIC support.

CDFs of delivered-chain sizes for QUIC services versus HTTPS-only services.
The paper reports medians of 2329 bytes (QUIC) and 4022 bytes (HTTPS-only), a
long tail between 18 kB and 38 kB, and 35 % of all chains exceeding the larger
common amplification limit of 3×1357 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ...core.limits import LARGER_COMMON_LIMIT
from ...webpki.deployment import DomainDeployment
from ..cdf import EmpiricalCdf


@dataclass(frozen=True)
class ChainSizeDistributions:
    """The two CDFs plus the headline shares."""

    quic_cdf: EmpiricalCdf
    https_only_cdf: EmpiricalCdf
    limit_bytes: int

    @property
    def quic_median(self) -> float:
        return self.quic_cdf.median

    @property
    def https_only_median(self) -> float:
        return self.https_only_cdf.median

    @property
    def share_exceeding_limit(self) -> float:
        """Share of *all* chains above the larger common amplification limit."""
        total = len(self.quic_cdf) + len(self.https_only_cdf)
        if total == 0:
            return 0.0
        exceeding = (
            len(self.quic_cdf) * (1 - self.quic_cdf.probability_at(self.limit_bytes))
            + len(self.https_only_cdf) * (1 - self.https_only_cdf.probability_at(self.limit_bytes))
        )
        return exceeding / total

    @property
    def quic_maximum(self) -> float:
        return self.quic_cdf.quantile(1.0) if not self.quic_cdf.is_empty else 0.0

    @property
    def https_only_maximum(self) -> float:
        return self.https_only_cdf.quantile(1.0) if not self.https_only_cdf.is_empty else 0.0

    def render_text(self) -> str:
        return (
            "Figure 6: certificate chain sizes by QUIC support\n"
            f"  QUIC services      (n={len(self.quic_cdf)}): median={self.quic_median:,.0f} B, "
            f"max={self.quic_maximum:,.0f} B\n"
            f"  HTTPS-only services(n={len(self.https_only_cdf)}): median={self.https_only_median:,.0f} B, "
            f"max={self.https_only_maximum:,.0f} B\n"
            f"  share of all chains above {self.limit_bytes} B: {self.share_exceeding_limit:.1%}"
        )


def compute(
    quic_deployments: Sequence[DomainDeployment],
    https_only_deployments: Sequence[DomainDeployment],
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> ChainSizeDistributions:
    quic_sizes: List[int] = [
        d.delivered_chain.total_size for d in quic_deployments if d.delivered_chain is not None
    ]
    https_sizes: List[int] = [
        d.https_chain.total_size for d in https_only_deployments if d.https_chain is not None
    ]
    return ChainSizeDistributions(
        quic_cdf=EmpiricalCdf.from_values(quic_sizes),
        https_only_cdf=EmpiricalCdf.from_values(https_sizes),
        limit_bytes=limit_bytes,
    )


def compute_from_counts(
    quic_size_counts,
    https_only_size_counts,
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> ChainSizeDistributions:
    """Reduced-contract equivalent of :func:`compute` over size accumulators."""
    return ChainSizeDistributions(
        quic_cdf=EmpiricalCdf.from_counts(quic_size_counts),
        https_only_cdf=EmpiricalCdf.from_counts(https_only_size_counts),
        limit_bytes=limit_bytes,
    )
