"""§4.3 active scan of the Meta point of presence: the three response groups.

A single unacknowledged Initial is sent to every host of the /24; responses
fall into three groups: (1) no QUIC service, (2) ≈one flight (>5× the probe),
(3) a retransmission storm (>20×, the paper observes ≈28×).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...scanners.zmap import ZmapProbeResult
from ..stats import mean


@dataclass(frozen=True)
class MetaResponseGroups:
    """Counts and mean amplification per response group."""

    group_counts: Dict[int, int]
    group_mean_amplification: Dict[int, float]
    group_domains: Dict[int, Tuple[str, ...]]
    probed_addresses: int

    def count(self, group: int) -> int:
        return self.group_counts.get(group, 0)

    def mean_amplification(self, group: int) -> float:
        return self.group_mean_amplification.get(group, 0.0)

    def render_text(self) -> str:
        lines = [f"Meta /24 active scan: {self.probed_addresses} addresses probed"]
        descriptions = {
            1: "no QUIC/HTTP3 service (or <=150 B)",
            2: "single bounded response",
            3: "retransmission storm",
        }
        for group in (1, 2, 3):
            domains = ", ".join(sorted(set(self.group_domains.get(group, ())))[:4])
            lines.append(
                f"  group {group}: {self.count(group):>4d} hosts  "
                f"mean amplification {self.mean_amplification(group):5.1f}x  "
                f"({descriptions[group]}) {('[' + domains + ']') if domains else ''}"
            )
        return "\n".join(lines)


def compute(results: Sequence[ZmapProbeResult]) -> MetaResponseGroups:
    counts: Dict[int, int] = {}
    amplifications: Dict[int, List[float]] = {}
    domains: Dict[int, List[str]] = {}
    for result in results:
        group = result.response_group()
        counts[group] = counts.get(group, 0) + 1
        amplifications.setdefault(group, []).append(result.amplification_factor)
        if result.domain:
            domains.setdefault(group, []).append(result.domain)
    return MetaResponseGroups(
        group_counts=counts,
        group_mean_amplification={g: mean(v) for g, v in amplifications.items()},
        group_domains={g: tuple(v) for g, v in domains.items()},
        probed_addresses=len(results),
    )
