"""Figure 14 (Appendix E): cruise-liner certificates among QUIC services.

Scatter of leaf certificate size against the byte share of subject alternative
names.  The paper finds SANs below 10 % of the bytes for most leaves, the top
1 % of leaves by SAN share at ≥28.9 %, and only ≈0.1 % of leaves that combine
a high SAN share with a size above a common amplification limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ...core.limits import LARGER_COMMON_LIMIT
from ...webpki.deployment import DomainDeployment
from ...x509.field_sizes import san_byte_share
from ..stats import percentile, share


@dataclass(frozen=True)
class CruiseLinerFigure:
    """Per-leaf (size, SAN byte share) points plus the headline shares."""

    points: Tuple[Tuple[int, float], ...]  # (leaf size, SAN byte share)
    top1pct_san_share_threshold: float
    share_high_san_and_over_limit: float
    limit_bytes: int

    @property
    def leaf_count(self) -> int:
        return len(self.points)

    @property
    def share_san_below_10pct(self) -> float:
        return share(self.points, lambda p: p[1] < 0.10)

    def render_text(self) -> str:
        return (
            f"Figure 14: SAN byte share of {self.leaf_count} QUIC leaf certificates\n"
            f"  leaves with SANs below 10% of bytes: {self.share_san_below_10pct:.1%}\n"
            f"  top-1% SAN-share threshold: {self.top1pct_san_share_threshold:.1%}\n"
            f"  cruise liners (high SAN share AND above {self.limit_bytes} B): "
            f"{self.share_high_san_and_over_limit:.2%}"
        )


def compute(
    quic_deployments: Sequence[DomainDeployment],
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> CruiseLinerFigure:
    points: List[Tuple[int, float]] = []
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        leaf = chain.leaf
        points.append((leaf.size, san_byte_share(leaf)))
    if not points:
        return CruiseLinerFigure((), 0.0, 0.0, limit_bytes)
    san_shares = [p[1] for p in points]
    threshold = percentile(san_shares, 0.99)
    high_and_large = share(
        points, lambda p: p[1] >= threshold and p[0] > limit_bytes
    )
    return CruiseLinerFigure(
        points=tuple(points),
        top1pct_san_share_threshold=threshold,
        share_high_san_and_over_limit=high_and_large,
        limit_bytes=limit_bytes,
    )


def compute_from_points(
    leaf_sizes: Sequence[int],
    san_shares: Sequence[float],
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> CruiseLinerFigure:
    """Reduced-contract equivalent of :func:`compute` over the compact series.

    ``leaf_sizes`` / ``san_shares`` are parallel, in deployment order — the
    same order the eager path collects its points in.
    """
    points = tuple(zip(leaf_sizes, san_shares))
    if not points:
        return CruiseLinerFigure((), 0.0, 0.0, limit_bytes)
    threshold = percentile(san_shares, 0.99)
    high_and_large = share(
        points, lambda p: p[1] >= threshold and p[0] > limit_bytes
    )
    return CruiseLinerFigure(
        points=points,
        top1pct_san_share_threshold=threshold,
        share_high_san_and_over_limit=high_and_large,
        limit_bytes=limit_bytes,
    )
