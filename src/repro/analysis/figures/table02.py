"""Table 2: crypto algorithms and key lengths in use.

Relative shares of RSA-2048/4096 and ECDSA-256/384 keys, split into leaf and
non-leaf certificates and into QUIC versus HTTPS-only services.  The paper
finds that HTTPS-only services depend heavily on RSA while QUIC leaves are
predominantly ECDSA P-256.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...webpki.deployment import DomainDeployment
from ...x509.keys import KeyAlgorithm
from ..dataset import Column, Table

KEY_COLUMNS = (
    KeyAlgorithm.RSA_2048,
    KeyAlgorithm.RSA_4096,
    KeyAlgorithm.ECDSA_P256,
    KeyAlgorithm.ECDSA_P384,
)


@dataclass(frozen=True)
class CryptoAlgorithmShares:
    """Shares per (service group, certificate type, key algorithm)."""

    shares: Dict[Tuple[str, str, KeyAlgorithm], float]
    counts: Dict[Tuple[str, str], int]

    def share(self, service_group: str, cert_type: str, algorithm: KeyAlgorithm) -> float:
        return self.shares.get((service_group, cert_type, algorithm), 0.0)

    def ecdsa_share(self, service_group: str, cert_type: str) -> float:
        return self.share(service_group, cert_type, KeyAlgorithm.ECDSA_P256) + self.share(
            service_group, cert_type, KeyAlgorithm.ECDSA_P384
        )

    def rsa_share(self, service_group: str, cert_type: str) -> float:
        return self.share(service_group, cert_type, KeyAlgorithm.RSA_2048) + self.share(
            service_group, cert_type, KeyAlgorithm.RSA_4096
        )

    def as_table(self) -> Table:
        table = Table(
            [
                Column("service"),
                Column("certificate"),
                Column("rsa_2048", ".1%"),
                Column("rsa_4096", ".1%"),
                Column("ecdsa_256", ".1%"),
                Column("ecdsa_384", ".1%"),
            ]
        )
        for service_group in ("QUIC", "HTTPS-only"):
            for cert_type in ("Non-leaf", "Leaf"):
                table.add_row(
                    service_group,
                    cert_type,
                    self.share(service_group, cert_type, KeyAlgorithm.RSA_2048),
                    self.share(service_group, cert_type, KeyAlgorithm.RSA_4096),
                    self.share(service_group, cert_type, KeyAlgorithm.ECDSA_P256),
                    self.share(service_group, cert_type, KeyAlgorithm.ECDSA_P384),
                )
        return table

    def render_text(self) -> str:
        return self.as_table().render_text("Table 2: crypto algorithms and key lengths in use")


def compute(
    quic_deployments: Sequence[DomainDeployment],
    https_only_deployments: Sequence[DomainDeployment],
) -> CryptoAlgorithmShares:
    counters: Dict[Tuple[str, str, KeyAlgorithm], int] = {}
    totals: Dict[Tuple[str, str], int] = {}

    def account(service_group: str, deployments: Sequence[DomainDeployment]) -> None:
        for deployment in deployments:
            chain = deployment.delivered_chain
            if chain is None:
                continue
            for index, certificate in enumerate(chain):
                cert_type = "Leaf" if index == 0 else "Non-leaf"
                key = (service_group, cert_type)
                totals[key] = totals.get(key, 0) + 1
                algo_key = (service_group, cert_type, certificate.key_algorithm)
                counters[algo_key] = counters.get(algo_key, 0) + 1

    account("QUIC", quic_deployments)
    account("HTTPS-only", https_only_deployments)

    shares: Dict[Tuple[str, str, KeyAlgorithm], float] = {}
    for (service_group, cert_type, algorithm), count in counters.items():
        total = totals[(service_group, cert_type)]
        shares[(service_group, cert_type, algorithm)] = count / total if total else 0.0
    return CryptoAlgorithmShares(shares=shares, counts=totals)


def accumulate_key_algorithms(
    service_group: str,
    deployments: Sequence[DomainDeployment],
    counters: Dict[Tuple[str, str, KeyAlgorithm], int],
    totals: Dict[Tuple[str, str], int],
) -> None:
    """Fold one service group's deployments into the Table 2 counters."""
    for deployment in deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        for index, certificate in enumerate(chain):
            cert_type = "Leaf" if index == 0 else "Non-leaf"
            key = (service_group, cert_type)
            totals[key] = totals.get(key, 0) + 1
            algo_key = (service_group, cert_type, certificate.key_algorithm)
            counters[algo_key] = counters.get(algo_key, 0) + 1


def accumulate_algorithm_counts(
    service_group: str,
    cert_type: str,
    algorithm_counts: Dict[KeyAlgorithm, int],
    chain_multiplicity: int,
    counters: Dict[Tuple[str, str, KeyAlgorithm], int],
    totals: Dict[Tuple[str, str], int],
) -> None:
    """Fold deduplicated per-algorithm counts, scaled by chain multiplicity.

    ``algorithm_counts`` maps each key algorithm to its occurrence count
    within one distinct certificate tuple (e.g. a shared parent chain);
    ``chain_multiplicity`` is how many delivered chains carry that tuple.
    Equivalent to ``chain_multiplicity`` passes of
    :func:`accumulate_key_algorithms` over the same certificates.
    """
    if not chain_multiplicity or not algorithm_counts:
        return
    key = (service_group, cert_type)
    certificates = 0
    for algorithm, count in algorithm_counts.items():
        scaled = count * chain_multiplicity
        algo_key = (service_group, cert_type, algorithm)
        counters[algo_key] = counters.get(algo_key, 0) + scaled
        certificates += scaled
    totals[key] = totals.get(key, 0) + certificates


def compute_from_counters(
    counters: Dict[Tuple[str, str, KeyAlgorithm], int],
    totals: Dict[Tuple[str, str], int],
) -> CryptoAlgorithmShares:
    """Reduced-contract equivalent of :func:`compute` (byte-identical output)."""
    shares: Dict[Tuple[str, str, KeyAlgorithm], float] = {}
    for (service_group, cert_type, algorithm), count in counters.items():
        total = totals[(service_group, cert_type)]
        shares[(service_group, cert_type, algorithm)] = count / total if total else 0.0
    return CryptoAlgorithmShares(shares=shares, counts=dict(totals))
