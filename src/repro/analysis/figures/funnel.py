"""The §3.1/§3.2 measurement funnel.

From the full name list down to resolved names, names with A records, names
with certificates and QUIC-reachable services — the sanity numbers that frame
every other result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...scanners.https_scanner import ScanFunnel
from ..dataset import Column, Table


@dataclass(frozen=True)
class MeasurementFunnel:
    """The funnel counts plus derived shares."""

    funnel: ScanFunnel
    quic_services: int

    @property
    def resolved_share(self) -> float:
        if self.funnel.names_total == 0:
            return 0.0
        return self.funnel.dns_noerror / self.funnel.names_total

    @property
    def a_record_share(self) -> float:
        if self.funnel.names_total == 0:
            return 0.0
        return self.funnel.with_a_record / self.funnel.names_total

    @property
    def certificate_share(self) -> float:
        if self.funnel.names_total == 0:
            return 0.0
        return self.funnel.names_with_certificates / self.funnel.names_total

    @property
    def quic_share(self) -> float:
        if self.funnel.names_total == 0:
            return 0.0
        return self.quic_services / self.funnel.names_total

    def as_table(self) -> Table:
        table = Table([Column("step"), Column("count"), Column("share", ".1%")])
        total = self.funnel.names_total
        table.add_row("names scanned", total, 1.0)
        table.add_row("resolved (NOERROR)", self.funnel.dns_noerror, self.resolved_share)
        table.add_row("SERVFAIL", self.funnel.dns_servfail, self.funnel.dns_servfail / total if total else 0)
        table.add_row("NXDOMAIN", self.funnel.dns_nxdomain, self.funnel.dns_nxdomain / total if total else 0)
        table.add_row("with A record", self.funnel.with_a_record, self.a_record_share)
        table.add_row("with certificate", self.funnel.names_with_certificates, self.certificate_share)
        table.add_row("QUIC services", self.quic_services, self.quic_share)
        return table

    def render_text(self) -> str:
        return self.as_table().render_text("Measurement funnel (§3.1/§3.2)")


def compute(funnel: ScanFunnel, quic_services: int) -> MeasurementFunnel:
    return MeasurementFunnel(funnel=funnel, quic_services=quic_services)
