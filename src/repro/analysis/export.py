"""Export of the reproduced evaluation as files.

The paper's artifact writes every figure to ``code/plots/``; this module is the
equivalent for the reproduction: it renders each computed experiment both as a
text report and as CSV data series, so results can be versioned, diffed and
plotted with any external tool.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

from ..core.ioutil import atomic_write_text
from ..scanners.orchestrator import CampaignResults
from .dataset import Column, Table
from .report import AnyCampaignResults, EvaluationReport, build_report


@dataclass(frozen=True)
class ExportedFiles:
    """Paths written by :func:`export_evaluation`."""

    directory: str
    report_path: str
    csv_paths: Dict[str, str]

    @property
    def file_count(self) -> int:
        return 1 + len(self.csv_paths)


def _cdf_table(cdf, value_label: str) -> Table:
    table = Table([Column(value_label), Column("cumulative_probability", ".4f")])
    for value, probability in cdf.points(max_points=500):
        table.add_row(value, probability)
    return table


def _section_tables(name: str, section) -> Dict[str, Table]:
    """Turn one computed section into named CSV tables."""
    tables: Dict[str, Table] = {}
    if hasattr(section, "as_table"):
        tables[name] = section.as_table()
        return tables
    if name == "figure02b":
        for field, cdf in section.cdfs.items():
            tables[f"{name}_{field.lower()}"] = _cdf_table(cdf, "field_size_bytes")
    elif name == "figure04":
        tables[name] = _cdf_table(section.cdf, "amplification_factor")
    elif name == "figure06":
        tables[f"{name}_quic"] = _cdf_table(section.quic_cdf, "chain_size_bytes")
        tables[f"{name}_https_only"] = _cdf_table(section.https_only_cdf, "chain_size_bytes")
    elif name == "figure05":
        table = Table([Column("rank"), Column("tls_bytes"), Column("total_bytes"), Column("limit_bytes")])
        for rank, (tls, total, limit) in enumerate(section.entries, start=1):
            table.add_row(rank, tls, total, limit)
        tables[name] = table
    elif name in ("figure07a", "figure07b"):
        table = Table(
            [Column("share", ".4f"), Column("parent_chain_bytes"), Column("median_leaf_bytes"),
             Column("max_leaf_bytes"), Column("parent_chain")]
        )
        for row in section.rows:
            table.add_row(row.share, row.parent_chain_size, row.median_leaf_size,
                          row.max_leaf_size, row.label)
        tables[name] = table
    elif name == "figure09":
        for provider in section.providers():
            tables[f"{name}_{provider}"] = _cdf_table(section.cdfs[provider], "amplification_factor")
    elif name == "figure11":
        table = Table([Column("host_octet"), Column("before_factor", ".2f"), Column("after_factor", ".2f")])
        for octet in section.before.octets():
            table.add_row(octet, section.before.per_octet.get(octet, 0.0),
                          section.after.per_octet.get(octet, 0.0))
        tables[name] = table
    elif name == "figure14":
        table = Table([Column("leaf_size_bytes"), Column("san_byte_share", ".4f")])
        for size, share in section.points:
            table.add_row(size, share)
        tables[name] = table
    elif name == "figure08":
        table = Table(
            [Column("group"), Column("subject"), Column("issuer"), Column("public_key_info"),
             Column("extensions"), Column("signature"), Column("other"), Column("total")]
        )
        for label, sizes in section.means.items():
            table.add_row(label, sizes.subject, sizes.issuer, sizes.public_key_info,
                          sizes.extensions, sizes.signature, sizes.other, sizes.total)
        tables[name] = table
    elif name == "meta_prefix":
        table = Table([Column("group"), Column("hosts"), Column("mean_amplification", ".2f")])
        for group in (1, 2, 3):
            table.add_row(group, section.count(group), section.mean_amplification(group))
        tables[name] = table
    elif name == "compression":
        table = Table([Column("metric"), Column("value", ".4f")])
        table.add_row("median_synthetic_rate", section.median_synthetic_rate)
        table.add_row("share_below_limit_uncompressed", section.synthetic.share_below_limit_uncompressed)
        table.add_row("share_below_limit_compressed", section.share_below_limit_compressed)
        table.add_row("wild_mean_rate", section.wild_mean_rate or 0.0)
        table.add_row("wild_support_share", section.wild_support_share)
        tables[name] = table
    return tables


def export_evaluation(
    results: AnyCampaignResults,
    directory: str,
    report: EvaluationReport | None = None,
) -> ExportedFiles:
    """Write the full evaluation (text report + per-figure CSVs) to ``directory``.

    ``results`` may be an eager :class:`CampaignResults` or a streamed
    :class:`~repro.scanners.streaming.ReducedCampaignResults`; exported bytes
    are identical either way.
    """
    os.makedirs(directory, exist_ok=True)
    report = report or build_report(results)

    # Atomic writes throughout: an interrupted (or fault-injected) export can
    # never leave a truncated report or CSV behind — readers see the previous
    # complete artifact or the new one, nothing in between.
    report_path = os.path.join(directory, "evaluation.txt")
    atomic_write_text(report_path, report.text + "\n")

    csv_paths: Dict[str, str] = {}
    for name, section in report.sections.items():
        for table_name, table in _section_tables(name, section).items():
            path = os.path.join(directory, f"{table_name}.csv")
            atomic_write_text(path, table.to_csv() + "\n")
            csv_paths[table_name] = path
    return ExportedFiles(directory=directory, report_path=report_path, csv_paths=csv_paths)
