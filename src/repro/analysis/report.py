"""Full-evaluation report generation.

``build_report`` runs every figure/table module against one campaign's results
and returns a single text report (also used to generate EXPERIMENTS.md), so
"regenerate the paper's evaluation" is one function call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..quic.handshake import HandshakeClass
from ..scanners.orchestrator import CampaignResults
from .figures import (
    compression,
    figure02b,
    figure03,
    figure04,
    figure05,
    figure06,
    figure07,
    figure08,
    figure09,
    figure11,
    figure12,
    figure13,
    figure14,
    funnel,
    meta_prefix,
    table01,
    table02,
    table03,
)


@dataclass
class EvaluationReport:
    """All computed figure/table results plus a rendered text form."""

    sections: Dict[str, object]
    text: str

    def __getitem__(self, key: str):
        return self.sections[key]

    def keys(self):
        return self.sections.keys()


def class_shares(results: CampaignResults) -> Dict[HandshakeClass, float]:
    """Convenience: handshake class shares at the default Initial size."""
    reachable = results.reachable_handshakes()
    if not reachable:
        return {}
    shares: Dict[HandshakeClass, float] = {}
    for handshake_class in HandshakeClass:
        if handshake_class is HandshakeClass.UNREACHABLE:
            continue
        shares[handshake_class] = sum(
            1 for o in reachable if o.handshake_class is handshake_class
        ) / len(reachable)
    return shares


def build_report(results: CampaignResults, include_sweep: bool = True) -> EvaluationReport:
    """Compute every experiment of the evaluation and render a text report."""
    quic = results.quic_deployments()
    https_only = results.https_only_deployments()
    observations = results.handshakes

    sections: Dict[str, object] = {}
    sections["funnel"] = funnel.compute(results.https_scan.funnel, len(quic))
    sections["figure02b"] = figure02b.compute(figure02b.certificates_from_results(results))
    if include_sweep and results.sweep is not None:
        sections["figure03"] = figure03.compute(results.sweep)
    sections["table01"] = table01.compute(results.compression)
    sections["figure04"] = figure04.compute(observations)
    sections["figure05"] = figure05.compute(observations)
    sections["figure06"] = figure06.compute(quic, https_only)
    sections["figure07a"] = figure07.compute(quic, "QUIC services")
    sections["figure07b"] = figure07.compute(https_only, "HTTPS-only services")
    sections["figure08"] = figure08.compute(quic)
    sections["table02"] = table02.compute(quic, https_only)
    sections["compression"] = compression.compute(quic, results.compression)
    sections["figure09"] = figure09.compute(results.backscatter)
    sections["meta_prefix"] = meta_prefix.compute(results.meta_probe_before)
    sections["figure11"] = figure11.compute(results.meta_probe_before, results.meta_probe_after)
    sections["figure12"] = figure12.compute(list(results.population.deployments))
    sections["figure13"] = figure13.compute(observations)
    sections["figure14"] = figure14.compute(quic)
    sections["table03"] = table03.compute()

    parts: List[str] = ["QUIC / TLS certificate interplay — reproduced evaluation", "=" * 60]
    for name, section in sections.items():
        render = getattr(section, "render_text", None)
        if render is None:
            continue
        parts.append("")
        parts.append(f"## {name}")
        parts.append(render())
    return EvaluationReport(sections=sections, text="\n".join(parts))
