"""Full-evaluation report generation.

``build_report`` runs every figure/table module against one campaign's results
and returns a single text report (also used to generate EXPERIMENTS.md), so
"regenerate the paper's evaluation" is one function call.

It accepts either an eager :class:`~repro.scanners.orchestrator.CampaignResults`
or a streamed :class:`~repro.scanners.streaming.ReducedCampaignResults`; the
two render byte-identical reports (pinned by
``tests/test_streaming_reduction.py``), so the streaming pipeline is a drop-in
for every report/export consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..quic.handshake import HandshakeClass
from ..scanners.orchestrator import CampaignResults
from ..scanners.streaming import ReducedCampaignResults
from ..tls.cert_compression import CertificateCompressionAlgorithm
from .figures import (
    compression,
    figure02b,
    figure03,
    figure04,
    figure05,
    figure06,
    figure07,
    figure08,
    figure09,
    figure11,
    figure12,
    figure13,
    figure14,
    funnel,
    meta_prefix,
    table01,
    table02,
    table03,
)


@dataclass
class EvaluationReport:
    """All computed figure/table results plus a rendered text form."""

    sections: Dict[str, object]
    text: str

    def __getitem__(self, key: str):
        return self.sections[key]

    def keys(self):
        return self.sections.keys()


AnyCampaignResults = Union[CampaignResults, ReducedCampaignResults]


def class_shares(results: AnyCampaignResults) -> Dict[HandshakeClass, float]:
    """Convenience: handshake class shares at the default Initial size."""
    if isinstance(results, ReducedCampaignResults):
        reachable_count = results.scan.reachable_count
        if not reachable_count:
            return {}
        return {
            handshake_class: results.scan.class_counts.get(handshake_class, 0)
            / reachable_count
            for handshake_class in HandshakeClass
            if handshake_class is not HandshakeClass.UNREACHABLE
        }
    reachable = results.reachable_handshakes()
    if not reachable:
        return {}
    shares: Dict[HandshakeClass, float] = {}
    for handshake_class in HandshakeClass:
        if handshake_class is HandshakeClass.UNREACHABLE:
            continue
        shares[handshake_class] = sum(
            1 for o in reachable if o.handshake_class is handshake_class
        ) / len(reachable)
    return shares


def _eager_sections(results: CampaignResults, include_sweep: bool) -> Dict[str, object]:
    quic = results.quic_deployments()
    https_only = results.https_only_deployments()
    observations = results.handshakes

    sections: Dict[str, object] = {}
    sections["funnel"] = funnel.compute(results.https_scan.funnel, len(quic))
    sections["figure02b"] = figure02b.compute(figure02b.certificates_from_results(results))
    if include_sweep and results.sweep is not None:
        sections["figure03"] = figure03.compute(results.sweep)
    sections["table01"] = table01.compute(results.compression)
    sections["figure04"] = figure04.compute(observations)
    sections["figure05"] = figure05.compute(observations)
    sections["figure06"] = figure06.compute(quic, https_only)
    sections["figure07a"] = figure07.compute(quic, "QUIC services")
    sections["figure07b"] = figure07.compute(https_only, "HTTPS-only services")
    sections["figure08"] = figure08.compute(quic)
    sections["table02"] = table02.compute(quic, https_only)
    sections["compression"] = compression.compute(quic, results.compression)
    sections["figure09"] = figure09.compute(results.backscatter)
    sections["meta_prefix"] = meta_prefix.compute(results.meta_probe_before)
    sections["figure11"] = figure11.compute(results.meta_probe_before, results.meta_probe_after)
    sections["figure12"] = figure12.compute(list(results.population.deployments))
    sections["figure13"] = figure13.compute(observations)
    sections["figure14"] = figure14.compute(quic)
    sections["table03"] = table03.compute()
    return sections


def _reduced_sections(
    results: ReducedCampaignResults, include_sweep: bool
) -> Dict[str, object]:
    """The same sections, computed from the streaming reduction contract.

    Section names, order and rendered bytes match :func:`_eager_sections`
    exactly; every figure module's ``compute_from_*`` companion reproduces its
    eager ``compute``.
    """
    scan = results.scan
    brotli = CertificateCompressionAlgorithm.BROTLI

    sections: Dict[str, object] = {}
    sections["funnel"] = funnel.compute(scan.funnel, scan.quic_count)
    sections["figure02b"] = figure02b.compute_from_counts(
        scan.field_size_counts, scan.certificate_count
    )
    if include_sweep and scan.sweep is not None:
        sections["figure03"] = figure03.compute(scan.sweep)
    sections["table01"] = table01.compute_from_reduction(
        scan.wild_support_counts, scan.wild_rates, scan.wild_all_three, scan.wild_count
    )
    sections["figure04"] = figure04.compute_from_counts(scan.amp_factor_counts)
    sections["figure05"] = figure05.compute_from_rows(
        scan.fig5_rows, scan.fig5_exceeds, scan.fig5_overhead_max
    )
    sections["figure06"] = figure06.compute_from_counts(
        scan.quic_chain_size_counts, scan.https_chain_size_counts
    )
    sections["figure07a"] = figure07.compute_from_groups(
        scan.parent_chain_groups["QUIC"], "QUIC services", scan.parent_chain_totals["QUIC"]
    )
    sections["figure07b"] = figure07.compute_from_groups(
        scan.parent_chain_groups["HTTPS-only"],
        "HTTPS-only services",
        scan.parent_chain_totals["HTTPS-only"],
    )
    sections["figure08"] = figure08.compute_from_sums(scan.field_sums, scan.field_counts)
    sections["table02"] = table02.compute_from_counters(
        scan.key_alg_counters, scan.key_alg_totals
    )
    sections["compression"] = compression.compute_from_reduction(
        scan.synth_rates,
        scan.synth_below_uncompressed,
        scan.synth_below_compressed,
        scan.synth_count,
        scan.wild_rates[brotli],
        scan.wild_support_counts.get(brotli, 0),
        scan.wild_count,
    )
    sections["figure09"] = figure09.compute(results.backscatter)
    sections["meta_prefix"] = meta_prefix.compute(results.meta_probe_before)
    sections["figure11"] = figure11.compute(results.meta_probe_before, results.meta_probe_after)
    sections["figure12"] = figure12.compute_from_category_runs(scan.category_runs)
    sections["figure13"] = figure13.compute_from_series(scan.fig13_ranks, scan.fig13_classes)
    sections["figure14"] = figure14.compute_from_points(
        scan.fig14_leaf_sizes, scan.fig14_san_shares
    )
    sections["table03"] = table03.compute()
    return sections


def build_report(results: AnyCampaignResults, include_sweep: bool = True) -> EvaluationReport:
    """Compute every experiment of the evaluation and render a text report."""
    if isinstance(results, ReducedCampaignResults):
        sections = _reduced_sections(results, include_sweep)
    else:
        sections = _eager_sections(results, include_sweep)

    parts: List[str] = ["QUIC / TLS certificate interplay — reproduced evaluation", "=" * 60]
    # Scenario stamp: any non-identity what-if scenario announces itself in the
    # header.  The identity baseline renders the legacy header so the golden
    # artefact digests stay byte-for-byte pinned.
    scenario = getattr(results, "scenario", None)
    if scenario is not None and not scenario.is_identity:
        parts.append(f"scenario: {scenario.name} [{scenario.fingerprint()[:12]}]")
        if scenario.description:
            parts.append(f"  {scenario.description}")
    for name, section in sections.items():
        render = getattr(section, "render_text", None)
        if render is None:
            continue
        parts.append("")
        parts.append(f"## {name}")
        parts.append(render())
    return EvaluationReport(sections=sections, text="\n".join(parts))
