"""Empirical cumulative distribution functions (most paper figures are CDFs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical CDF over a sample of values."""

    values: Tuple[float, ...]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "EmpiricalCdf":
        return cls(tuple(sorted(float(v) for v in values)))

    @classmethod
    def from_counts(cls, counts: Mapping[float, int]) -> "EmpiricalCdf":
        """Build the CDF from a ``value -> multiplicity`` accumulator.

        Equals ``from_values`` over the expanded multiset, but repeated values
        share one float object each, so million-sample CDFs merged from
        streaming count accumulators cost one pointer per sample instead of
        one boxed float per sample.
        """
        values: List[float] = []
        for value in sorted(float(v) for v in counts):
            values.extend([value] * counts[value])
        return cls(tuple(values))

    def __post_init__(self) -> None:
        if list(self.values) != sorted(self.values):
            object.__setattr__(self, "values", tuple(sorted(self.values)))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def is_empty(self) -> bool:
        return not self.values

    # -- evaluation -------------------------------------------------------------

    def probability_at(self, x: float) -> float:
        """P(X <= x)."""
        if self.is_empty:
            return 0.0
        # binary search for rightmost value <= x
        lo, hi = 0, len(self.values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.values[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self.values)

    def quantile(self, q: float) -> float:
        """Smallest x with P(X <= x) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.is_empty:
            return 0.0
        index = min(max(int(q * len(self.values) + 0.999999) - 1, 0), len(self.values) - 1)
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    # -- plotting helpers --------------------------------------------------------

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(x, P(X <= x)) pairs, downsampled for rendering."""
        if self.is_empty:
            return []
        step = max(1, len(self.values) // max_points)
        points = []
        for index in range(0, len(self.values), step):
            points.append((self.values[index], (index + 1) / len(self.values)))
        if points[-1][1] != 1.0:
            points.append((self.values[-1], 1.0))
        return points

    def render_text(self, label: str = "value", width: int = 50, rows: int = 12) -> str:
        """A coarse ASCII rendering of the CDF for terminal reports."""
        if self.is_empty:
            return f"(empty CDF of {label})"
        lines = [f"CDF of {label} (n={len(self.values)})"]
        for row in range(rows, 0, -1):
            q = row / rows
            x = self.quantile(q)
            bar = "#" * int(width * q)
            lines.append(f"{q:5.2f} | {bar:<{width}} {x:,.0f}")
        return "\n".join(lines)
