"""Empirical cumulative distribution functions (most paper figures are CDFs).

:class:`EmpiricalCdf` is count-backed: it stores the sorted *unique* values
plus their cumulative multiplicities instead of one entry per sample.  Chain
sizes, field sizes and amplification factors repeat heavily across millions of
domains, so the streaming reducer's ``value -> multiplicity`` accumulators
(:meth:`EmpiricalCdf.from_counts`) flow into report rendering without ever
materialising a million-element value tuple — quantiles, probabilities and
plot points are answered from the cumulative counts directly, byte-identically
to the expanded form.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate, repeat
from typing import Iterable, List, Mapping, Tuple


class EmpiricalCdf:
    """An empirical CDF over a sample of values (count-backed storage)."""

    __slots__ = ("unique_values", "cumulative_counts", "_values")

    def __init__(self, values: Iterable[float] = ()) -> None:
        ordered = sorted(float(v) for v in values)
        unique: List[float] = []
        cumulative: List[int] = []
        for index, value in enumerate(ordered):
            if not unique or value != unique[-1]:
                unique.append(value)
                cumulative.append(index + 1)
            else:
                cumulative[-1] = index + 1
        self.unique_values: Tuple[float, ...] = tuple(unique)
        self.cumulative_counts: Tuple[int, ...] = tuple(cumulative)
        # Count-backed storage only: the expanded sample is rebuilt lazily by
        # the ``values`` property for the rare caller that wants the multiset.
        self._values = None

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "EmpiricalCdf":
        return cls(values)

    @classmethod
    def from_counts(cls, counts: Mapping[float, int]) -> "EmpiricalCdf":
        """Build the CDF straight from a ``value -> multiplicity`` accumulator.

        Equals ``from_values`` over the expanded multiset, but the multiset is
        never expanded: streaming count-accumulators become a CDF in
        O(distinct values), and giant-campaign reports render without the
        value-tuple materialisation.
        """
        cdf = cls.__new__(cls)
        normalised: dict = {}
        for value, count in counts.items():
            if count < 0:
                # A negative multiplicity is upstream corruption (e.g. an
                # under-subtracting reducer) — surface it, don't render it.
                raise ValueError(f"negative multiplicity {count} for value {value!r}")
            if count == 0:
                # Zero-multiplicity entries expand to nothing; keeping them
                # would leave a CDF that reports non-empty with no samples.
                continue
            value = float(value)
            normalised[value] = normalised.get(value, 0) + count
        unique = tuple(sorted(normalised))
        cdf.unique_values = unique
        cdf.cumulative_counts = tuple(
            accumulate(normalised[value] for value in unique)
        )
        cdf._values = None
        return cdf

    # -- sample-level view -------------------------------------------------------

    @property
    def values(self) -> Tuple[float, ...]:
        """The full sorted sample, expanded lazily (compatibility accessor).

        Count-backed consumers never call this; it exists for callers that
        want the raw multiset and is materialised at most once per instance.
        """
        if self._values is None:
            expanded: List[float] = []
            previous = 0
            for value, cumulative in zip(self.unique_values, self.cumulative_counts):
                expanded.extend(repeat(value, cumulative - previous))
                previous = cumulative
            self._values = tuple(expanded)
        return self._values

    def value_at(self, index: int) -> float:
        """The ``index``-th (0-based) element of the sorted sample."""
        return self.unique_values[bisect_right(self.cumulative_counts, index)]

    def __len__(self) -> int:
        return self.cumulative_counts[-1] if self.cumulative_counts else 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EmpiricalCdf):
            return NotImplemented
        return (
            self.unique_values == other.unique_values
            and self.cumulative_counts == other.cumulative_counts
        )

    def __hash__(self) -> int:
        return hash((self.unique_values, self.cumulative_counts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EmpiricalCdf(n={len(self)}, distinct={len(self.unique_values)})"
        )

    @property
    def is_empty(self) -> bool:
        return not self.unique_values

    # -- evaluation -------------------------------------------------------------

    def probability_at(self, x: float) -> float:
        """P(X <= x)."""
        if self.is_empty:
            return 0.0
        position = bisect_right(self.unique_values, x)
        below = self.cumulative_counts[position - 1] if position else 0
        return below / len(self)

    def quantile(self, q: float) -> float:
        """Smallest x with P(X <= x) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.is_empty:
            return 0.0
        total = len(self)
        index = min(max(int(q * total + 0.999999) - 1, 0), total - 1)
        return self.value_at(index)

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    # -- plotting helpers --------------------------------------------------------

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(x, P(X <= x)) pairs, downsampled for rendering."""
        if self.is_empty:
            return []
        total = len(self)
        step = max(1, total // max_points)
        points = []
        for index in range(0, total, step):
            points.append((self.value_at(index), (index + 1) / total))
        if points[-1][1] != 1.0:
            points.append((self.unique_values[-1], 1.0))
        return points

    def render_text(self, label: str = "value", width: int = 50, rows: int = 12) -> str:
        """A coarse ASCII rendering of the CDF for terminal reports."""
        if self.is_empty:
            return f"(empty CDF of {label})"
        lines = [f"CDF of {label} (n={len(self)})"]
        for row in range(rows, 0, -1):
            q = row / rows
            x = self.quantile(q)
            bar = "#" * int(width * q)
            lines.append(f"{q:5.2f} | {bar:<{width}} {x:,.0f}")
        return "\n".join(lines)
