"""Analysis layer: datasets, CDFs, statistics and per-figure reproductions.

Every table and figure of the paper's evaluation has a module under
:mod:`repro.analysis.figures` exposing a ``compute(results)`` function that
takes a :class:`repro.scanners.orchestrator.CampaignResults` (or the relevant
slice of it) and returns a structured result with a ``render_text()`` method,
so the whole evaluation can be regenerated as text tables / data series.
"""

from .cdf import EmpiricalCdf
from .dataset import Table, Column
from .stats import median, mean, percentile, share

__all__ = ["EmpiricalCdf", "Table", "Column", "median", "mean", "percentile", "share"]
