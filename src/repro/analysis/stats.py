"""Small statistics helpers shared by the figure modules."""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input."""
    collected = list(values)
    if not collected:
        return 0.0
    return sum(collected) / len(collected)


def median(values: Iterable[float]) -> float:
    """Median; 0.0 for an empty input."""
    return percentile(values, 0.5)


def percentile(values: Iterable[float], fraction: float) -> float:
    """Nearest-rank percentile with linear index rounding.

    The fractional rank ``fraction * (len - 1)`` is rounded with Python's
    built-in ``round`` — **banker's rounding**, half-to-even: a rank of 0.5
    picks index 0, a rank of 1.5 picks index 2.  This is deliberate and
    load-bearing: every golden report digest was produced under half-to-even,
    so switching to half-up rounding (e.g. ``math.floor(x + 0.5)``) would
    silently shift percentile picks on even-length inputs and break
    byte-identity.  Pinned by ``tests/test_stats.py``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered: List[float] = sorted(float(v) for v in values)
    if not ordered:
        return 0.0
    index = min(int(round(fraction * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[index]


def share(items: Sequence[T], predicate: Callable[[T], bool]) -> float:
    """Fraction of ``items`` satisfying ``predicate``; 0.0 for an empty input."""
    if not items:
        return 0.0
    return sum(1 for item in items if predicate(item)) / len(items)
