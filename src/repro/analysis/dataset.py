"""A tiny column-oriented table used to shape figure/table outputs.

The paper's artifact uses pandas DataFrames; this project avoids the
dependency and keeps the same spirit with an explicit, typed table that can
render itself as fixed-width text or CSV for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Column:
    """A named column with an optional format specification."""

    name: str
    format_spec: str = ""

    def format(self, value: Any) -> str:
        if self.format_spec and isinstance(value, (int, float)):
            return format(value, self.format_spec)
        return str(value)


class Table:
    """An ordered collection of rows with named columns."""

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError("column names must be unique")
        self._columns: Tuple[Column, ...] = tuple(columns)
        self._rows: List[Tuple[Any, ...]] = []

    # -- building ----------------------------------------------------------------

    def add_row(self, *values: Any, **named: Any) -> None:
        if named:
            if values:
                raise ValueError("pass either positional or named values, not both")
            values = tuple(named[c.name] for c in self._columns)
        if len(values) != len(self._columns):
            raise ValueError(
                f"expected {len(self._columns)} values, got {len(values)}"
            )
        self._rows.append(tuple(values))

    # -- access ------------------------------------------------------------------

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for row in self._rows:
            yield dict(zip(self.column_names, row))

    def rows(self) -> List[Dict[str, Any]]:
        return list(iter(self))

    def column(self, name: str) -> List[Any]:
        index = self.column_names.index(name)
        return [row[index] for row in self._rows]

    # -- rendering ----------------------------------------------------------------

    def render_text(self, title: str = "") -> str:
        header = [c.name for c in self._columns]
        formatted_rows = [
            [c.format(value) for c, value in zip(self._columns, row)] for row in self._rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in formatted_rows)) if formatted_rows else len(header[i])
            for i in range(len(header))
        ]
        lines = []
        if title:
            lines.append(title)
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for row in formatted_rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def to_csv(self) -> str:
        def escape(value: Any) -> str:
            text = str(value)
            if any(ch in text for ch in (",", '"', "\n")):
                return '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(escape(name) for name in self.column_names)]
        for row in self._rows:
            lines.append(",".join(escape(value) for value in row))
        return "\n".join(lines)
