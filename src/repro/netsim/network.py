"""A simulated UDP fabric hosting QUIC services.

The fabric maps IPv4 addresses to QUIC service hosts and delivers client
datagrams to them.  It supports source-address spoofing: when a spoofed source
falls into a prefix monitored by a :class:`~repro.netsim.telescope.Telescope`,
the server's response datagrams are recorded there as backscatter — the same
observation channel the paper used (§3.2, "incomplete handshakes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..quic.client import QuicClientConfig, build_client_initial_datagram
from ..quic.handshake import UnvalidatedProbeResult, simulate_unvalidated_probe
from ..quic.profiles import ServerBehaviorProfile
from ..quic.server import FlightPlanCache, QuicServer
from ..tls.handshake_messages import ClientHello
from ..x509.chain import CertificateChain
from .address import IPv4Address, IPv4Prefix
from .telescope import BackscatterPacket, Telescope


@dataclass
class QuicServiceHost:
    """A QUIC service bound to an IP address.

    ``encapsulation_overhead`` models load-balancer tunnelling: the extra
    header bytes added when forwarding a datagram to a backend.  When a client
    Initial plus the overhead no longer fits the path MTU, the datagram is
    dropped and the service appears unreachable — the effect the paper sees
    for large Initials at top-ranked domains (§4.1).
    """

    address: IPv4Address
    domain: str
    chain: CertificateChain
    profile: ServerBehaviorProfile
    encapsulation_overhead: int = 0
    path_mtu: int = 1500
    udp_ip_header_bytes: int = 28
    #: Flight-plan cache the host's server uses; ``None`` means the
    #: process-wide shared cache.  Deterministic runners (the sharded
    #: campaign) inject their own so cache counters don't depend on what else
    #: the process has simulated.
    flight_cache: Optional[FlightPlanCache] = None

    def max_acceptable_initial(self) -> int:
        return self.path_mtu - self.udp_ip_header_bytes - self.encapsulation_overhead

    def accepts_initial(self, initial_size: int) -> bool:
        return initial_size <= self.max_acceptable_initial()

    def server(self) -> QuicServer:
        return QuicServer(self.domain, self.chain, self.profile, flight_cache=self.flight_cache)


@dataclass(frozen=True)
class DeliveryResult:
    """Outcome of sending one client Initial into the fabric."""

    responded: bool
    bytes_returned: int = 0
    used_retry: bool = False


class UdpNetwork:
    """Registry of QUIC service hosts plus telescopes observing dark space."""

    def __init__(self, flight_cache: Optional[FlightPlanCache] = None) -> None:
        self._hosts: Dict[int, QuicServiceHost] = {}
        self._hosts_by_domain: Dict[str, QuicServiceHost] = {}
        self._telescopes: List[Tuple[IPv4Prefix, Telescope]] = []
        self._flight_cache = flight_cache

    # -- topology --------------------------------------------------------------

    def attach_host(self, host: QuicServiceHost) -> None:
        if host.flight_cache is None and self._flight_cache is not None:
            host.flight_cache = self._flight_cache
        self._hosts[host.address.value] = host
        self._hosts_by_domain[host.domain.lower()] = host

    def attach_telescope(self, prefix: IPv4Prefix, telescope: Telescope) -> None:
        self._telescopes.append((prefix, telescope))

    def host_at(self, address: IPv4Address) -> Optional[QuicServiceHost]:
        return self._hosts.get(address.value)

    def host_for_domain(self, domain: str) -> Optional[QuicServiceHost]:
        return self._hosts_by_domain.get(domain.lower())

    def hosts_in_prefix(self, prefix: IPv4Prefix) -> List[QuicServiceHost]:
        return [host for host in self._hosts.values() if prefix.contains(host.address)]

    def __len__(self) -> int:
        return len(self._hosts)

    # -- traffic ---------------------------------------------------------------

    def probe_unvalidated(
        self,
        destination: IPv4Address,
        client: Optional[QuicClientConfig] = None,
        spoofed_source: Optional[IPv4Address] = None,
        timestamp: float = 0.0,
    ) -> DeliveryResult:
        """Send one client Initial and never acknowledge the response.

        When ``spoofed_source`` lies inside a telescope prefix, the server's
        response bytes are recorded there as backscatter.
        """
        host = self.host_at(destination)
        client = client or QuicClientConfig(initial_datagram_size=1252)
        if host is None:
            return DeliveryResult(responded=False)
        if not host.accepts_initial(client.initial_datagram_size):
            return DeliveryResult(responded=False)
        client_hello = ClientHello(
            server_name=host.domain, compression_algorithms=client.compression_algorithms
        )
        initial = build_client_initial_datagram(host.domain, client)
        _, schedule = host.server().unvalidated_transmission_schedule(
            client_hello, client_initial_size=initial.size
        )
        total_bytes = sum(size for _, size in schedule)
        used_retry = host.profile.retry_policy.value == "always"
        self._record_backscatter(host, spoofed_source, schedule, timestamp)
        return DeliveryResult(responded=True, bytes_returned=total_bytes, used_retry=used_retry)

    def _record_backscatter(
        self,
        host: QuicServiceHost,
        spoofed_source: Optional[IPv4Address],
        schedule: List[Tuple[float, int]],
        timestamp: float,
    ) -> None:
        if spoofed_source is None or not schedule:
            return
        for prefix, telescope in self._telescopes:
            if not prefix.contains(spoofed_source):
                continue
            for offset, size in schedule:
                telescope.observe(
                    BackscatterPacket(
                        server_address=host.address,
                        victim_address=spoofed_source,
                        domain=host.domain,
                        source_connection_id=f"scid:server:{host.domain}:{spoofed_source}",
                        size=size,
                        timestamp=timestamp + offset,
                    )
                )
