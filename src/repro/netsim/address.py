"""IPv4 addresses and prefixes for the simulated Internet."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 32:
            raise ValueError(f"not a valid IPv4 address value: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def octets(self) -> tuple[int, int, int, int]:
        return (
            (self.value >> 24) & 0xFF,
            (self.value >> 16) & 0xFF,
            (self.value >> 8) & 0xFF,
            self.value & 0xFF,
        )

    @property
    def host_octet(self) -> int:
        """The last octet; the paper's Figure 11 x-axis."""
        return self.value & 0xFF

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


@dataclass(frozen=True)
class IPv4Prefix:
    """A CIDR prefix, e.g. ``157.240.0.0/24``."""

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"invalid prefix length: {self.length}")
        if self.network.value & (self.host_mask()) != 0:
            raise ValueError("network address has host bits set")

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        network_text, _, length_text = text.partition("/")
        return cls(IPv4Address.parse(network_text), int(length_text or "32"))

    def host_mask(self) -> int:
        return (1 << (32 - self.length)) - 1

    def netmask(self) -> int:
        return ((1 << 32) - 1) ^ self.host_mask()

    def contains(self, address: IPv4Address) -> bool:
        return (address.value & self.netmask()) == self.network.value

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    def address_at(self, offset: int) -> IPv4Address:
        if not 0 <= offset < self.num_addresses:
            raise ValueError(f"offset {offset} outside /{self.length} prefix")
        return IPv4Address(self.network.value + offset)

    def iter_hosts(self) -> Iterator[IPv4Address]:
        """Iterate all addresses in the prefix (including network/broadcast)."""
        for offset in range(self.num_addresses):
            yield IPv4Address(self.network.value + offset)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"
