"""Simulated HTTP/HTTPS origins with redirects and certificate delivery.

The HTTPS certificate collection step of the paper (§3.1) connects to ports 80
and 443, follows HTTP 3xx redirects and HTML ``<meta http-equiv>`` refreshes,
and records the TLS certificate chain of every secure hop.  The origin model
here supports exactly those behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from ..x509.chain import CertificateChain


class RedirectKind(Enum):
    """How an origin points clients elsewhere."""

    NONE = "none"
    HTTP_301 = "301"
    HTTP_302 = "302"
    HTML_META_REFRESH = "meta-refresh"


@dataclass(frozen=True)
class HttpResponse:
    """A minimal HTTP response as seen by the certificate scanner."""

    status: int
    location: Optional[str] = None
    body_contains_meta_refresh: Optional[str] = None
    tls_chain: Optional[CertificateChain] = None
    port: int = 443

    @property
    def is_redirect(self) -> bool:
        return 300 <= self.status < 400 and self.location is not None

    @property
    def redirect_target(self) -> Optional[str]:
        if self.is_redirect:
            return self.location
        return self.body_contains_meta_refresh

    @property
    def is_secure(self) -> bool:
        return self.tls_chain is not None


@dataclass
class HttpOrigin:
    """One web origin: plaintext port 80 behaviour plus TLS port 443 behaviour."""

    domain: str
    https_chain: Optional[CertificateChain] = None
    port80_open: bool = True
    port443_open: bool = True
    redirect_kind: RedirectKind = RedirectKind.NONE
    redirect_target: Optional[str] = None

    def request(self, port: int) -> Optional[HttpResponse]:
        """Issue a request to this origin on ``port``; None models no listener."""
        if port == 80:
            if not self.port80_open:
                return None
            if self.redirect_kind in (RedirectKind.HTTP_301, RedirectKind.HTTP_302) and self.redirect_target:
                status = 301 if self.redirect_kind is RedirectKind.HTTP_301 else 302
                return HttpResponse(status=status, location=self.redirect_target, port=80)
            if self.redirect_kind is RedirectKind.HTML_META_REFRESH and self.redirect_target:
                return HttpResponse(status=200, body_contains_meta_refresh=self.redirect_target, port=80)
            # Default port-80 behaviour of HTTPS sites: redirect to https.
            if self.https_chain is not None:
                return HttpResponse(status=301, location=f"https://{self.domain}/", port=80)
            return HttpResponse(status=200, port=80)
        if port == 443:
            if not self.port443_open or self.https_chain is None:
                return None
            if (
                self.redirect_kind in (RedirectKind.HTTP_301, RedirectKind.HTTP_302)
                and self.redirect_target
            ):
                status = 301 if self.redirect_kind is RedirectKind.HTTP_301 else 302
                return HttpResponse(
                    status=status,
                    location=self.redirect_target,
                    tls_chain=self.https_chain,
                    port=443,
                )
            return HttpResponse(status=200, tls_chain=self.https_chain, port=443)
        raise ValueError(f"origin only serves ports 80 and 443, not {port}")


def target_domain(url_or_domain: str) -> str:
    """Extract the domain from a redirect target (absolute URL or bare name)."""
    text = url_or_domain.strip()
    for prefix in ("https://", "http://"):
        if text.lower().startswith(prefix):
            text = text[len(prefix):]
            break
    return text.split("/", 1)[0].lower()
