"""Simulated network substrate.

The paper's measurements run against the public Internet: DNS resolution via
8.8.8.8, HTTP(S) origins with redirects, QUIC services on UDP/443, a network
telescope observing backscatter from spoofed handshakes.  This package
provides offline equivalents with the same interfaces the scanners need:

* :mod:`repro.netsim.address` — IPv4 addresses and prefixes,
* :mod:`repro.netsim.dns` — a resolver with the failure modes of §3.1
  (SERVFAIL, NXDOMAIN, timeout, REFUSED),
* :mod:`repro.netsim.http` — HTTP/HTTPS origins with 3xx and meta-refresh
  redirects that deliver TLS certificate chains,
* :mod:`repro.netsim.network` — a UDP fabric that hosts QUIC services and
  supports source-address spoofing,
* :mod:`repro.netsim.telescope` — a passive telescope collecting backscatter.
"""

from .address import IPv4Address, IPv4Prefix
from .dns import DnsRcode, DnsResult, SimulatedResolver
from .http import HttpResponse, HttpOrigin, RedirectKind
from .network import UdpNetwork, QuicServiceHost, DeliveryResult
from .telescope import Telescope, BackscatterPacket

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "DnsRcode",
    "DnsResult",
    "SimulatedResolver",
    "HttpResponse",
    "HttpOrigin",
    "RedirectKind",
    "UdpNetwork",
    "QuicServiceHost",
    "DeliveryResult",
    "Telescope",
    "BackscatterPacket",
]
