"""Simulated DNS resolution with the failure modes the paper reports.

§3.1 of the paper: out of 1M Tranco names, 976k could be queried successfully,
13k returned SERVFAIL, 9k NXDOMAIN, the rest timed out or were REFUSED; 866k
names returned an A record.  The resolver here reproduces that funnel when
driven by a :class:`repro.webpki.population.InternetPopulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from .address import IPv4Address


class DnsRcode(Enum):
    """Resolution outcomes, matching the paper's terminology."""

    NOERROR = "NOERROR"
    SERVFAIL = "SERVFAIL"
    NXDOMAIN = "NXDOMAIN"
    REFUSED = "REFUSED"
    TIMEOUT = "TIMEOUT"  # not a real rcode; models the 10 s client timeout

    @property
    def is_success(self) -> bool:
        return self is DnsRcode.NOERROR


@dataclass(frozen=True)
class DnsResult:
    """Outcome of resolving one name."""

    name: str
    rcode: DnsRcode
    address: Optional[IPv4Address] = None

    @property
    def has_address(self) -> bool:
        return self.rcode.is_success and self.address is not None


class SimulatedResolver:
    """A stub resolver backed by a static zone (name → result)."""

    def __init__(self, zone: Optional[Dict[str, DnsResult]] = None) -> None:
        self._zone: Dict[str, DnsResult] = dict(zone or {})
        self.queries_issued = 0

    def add_record(self, name: str, address: IPv4Address) -> None:
        self._zone[name.lower()] = DnsResult(name.lower(), DnsRcode.NOERROR, address)

    def add_failure(self, name: str, rcode: DnsRcode) -> None:
        if rcode is DnsRcode.NOERROR:
            raise ValueError("use add_record for successful resolutions")
        self._zone[name.lower()] = DnsResult(name.lower(), rcode, None)

    def add_no_address(self, name: str) -> None:
        """Name resolves (NOERROR) but has no A record (e.g. only MX/TXT)."""
        self._zone[name.lower()] = DnsResult(name.lower(), DnsRcode.NOERROR, None)

    def resolve(self, name: str) -> DnsResult:
        """Resolve a name; unknown names behave as NXDOMAIN."""
        self.queries_issued += 1
        result = self._zone.get(name.lower())
        if result is None:
            return DnsResult(name.lower(), DnsRcode.NXDOMAIN, None)
        return result

    def __len__(self) -> int:
        return len(self._zone)
