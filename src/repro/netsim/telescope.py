"""Network telescope collecting QUIC backscatter.

A telescope announces otherwise-unused address space and records packets
arriving there.  Because nothing in that space ever sends traffic, every
arriving QUIC packet is a response to a *spoofed* request — which is exactly
how the paper observes server behaviour towards unvalidated clients (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .address import IPv4Address


@dataclass(frozen=True)
class BackscatterPacket:
    """One server-to-victim datagram observed at the telescope."""

    server_address: IPv4Address
    victim_address: IPv4Address
    domain: str
    source_connection_id: str
    size: int
    timestamp: float


@dataclass(frozen=True)
class BackscatterSession:
    """All backscatter sharing one source connection ID (one spoofed handshake)."""

    source_connection_id: str
    domain: str
    server_address: IPv4Address
    total_bytes: int
    packet_count: int
    first_seen: float
    last_seen: float

    @property
    def duration_seconds(self) -> float:
        return self.last_seen - self.first_seen

    def amplification_factor(self, assumed_initial_size: int = 1362) -> float:
        """Amplification relative to an assumed client Initial (paper Figure 9)."""
        return self.total_bytes / assumed_initial_size


class Telescope:
    """Accumulates backscatter packets and aggregates them into sessions."""

    def __init__(self, name: str = "telescope") -> None:
        self.name = name
        self._packets: List[BackscatterPacket] = []

    def observe(self, packet: BackscatterPacket) -> None:
        self._packets.append(packet)

    @property
    def packets(self) -> Tuple[BackscatterPacket, ...]:
        return tuple(self._packets)

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def total_bytes(self) -> int:
        return sum(packet.size for packet in self._packets)

    def sessions(self) -> List[BackscatterSession]:
        """Group observed packets by source connection ID."""
        grouped: Dict[str, List[BackscatterPacket]] = {}
        for packet in self._packets:
            grouped.setdefault(packet.source_connection_id, []).append(packet)
        sessions = []
        for scid, packets in grouped.items():
            sessions.append(
                BackscatterSession(
                    source_connection_id=scid,
                    domain=packets[0].domain,
                    server_address=packets[0].server_address,
                    total_bytes=sum(p.size for p in packets),
                    packet_count=len(packets),
                    first_seen=min(p.timestamp for p in packets),
                    last_seen=max(p.timestamp for p in packets),
                )
            )
        return sessions

    def clear(self) -> None:
        self._packets.clear()
