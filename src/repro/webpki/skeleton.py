"""Two-phase population generation: deployment skeletons and chain specs.

Phase 1 (the *skeleton pass*, :func:`repro.webpki.population._generate_shard_skeletons`)
consumes a shard's RNG stream exactly like full generation — every draw, in the
same order — but records the certificate-issuance parameters it draws in a
:class:`ChainSpec` instead of acting on them.  Phase 2
(:meth:`DeploymentSkeleton.materialize`) turns a skeleton into the eager
:class:`~repro.webpki.deployment.DomainDeployment` by issuing the recorded
chains through the template fast path of :mod:`repro.x509.issuance`.

The phases compose to exactly the eager generator — materialisation consumes
no randomness, so ``skeletons → materialize`` and one-phase generation cannot
drift apart (``tests/test_population_skeleton.py`` pins both the RNG-stream
and the field-for-field contract).  Consumers that never open certificate
chains — the sweep discovery pass of :mod:`repro.scanners.streaming`, category
counts, resolver construction — stop after phase 1 and skip issuance entirely,
which is ~20× cheaper than full generation.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..netsim.address import IPv4Address
from ..netsim.dns import DnsRcode
from ..quic.profiles import BUILTIN_PROFILES, ServerBehaviorProfile
from ..x509.ca import WebPkiHierarchy, default_hierarchy
from ..x509.certificate import Certificate
from ..x509.chain import CertificateChain
from ..x509.issuance import issue_leaf_fast, leaf_template
from ..x509.keys import KeyAlgorithm
from .deployment import DomainDeployment, ServiceCategory


# ---------------------------------------------------------------------------
# The bloated-chain extras pool (paper Figure 6 tail)
# ---------------------------------------------------------------------------

_BLOAT_POOL: Optional[Tuple[Certificate, ...]] = None


def bloat_pool() -> Tuple[Certificate, ...]:
    """CA certificates a misconfigured server may redundantly ship.

    Intermediates first, then roots, in hierarchy insertion order — the same
    deterministic pool (and order) the one-phase generator always drew from,
    cached process-wide because the hierarchy itself is a process singleton.
    """
    global _BLOAT_POOL
    if _BLOAT_POOL is None:
        hierarchy = default_hierarchy()
        _BLOAT_POOL = tuple(
            ca.certificate
            for ca in list(hierarchy.intermediates.values()) + list(hierarchy.roots.values())
        )
    return _BLOAT_POOL


def draw_bloat_extras(rng: random.Random) -> Tuple[int, ...]:
    """Draw the duplicated-certificate indices of one bloated chain.

    Consumes exactly the draws the eager ``_bloat_chain`` made — one
    ``randint`` for the copy count, one ``choice`` over an equal-length
    sequence per copy — but records pool *indices* instead of building the
    chain, so the skeleton pass stays issuance-free.
    """
    pool_indices = range(len(bloat_pool()))
    copies = rng.randint(12, 26)
    return tuple(rng.choice(pool_indices) for _ in range(copies))


# ---------------------------------------------------------------------------
# Chain specs (recorded issuance parameters)
# ---------------------------------------------------------------------------

#: Subdomain prefixes of the deterministic SAN-name pattern.
_SAN_PREFIXES = ("api", "cdn", "mail", "img", "static", "shop", "m", "blog", "dev",
                 "stage", "app", "edge", "media", "assets", "video", "login", "docs")


def san_names_for(stem: str, count: int) -> List[str]:
    """The deterministic SAN-name list for ``stem`` (pure; no randomness).

    Names are a function of ``(stem, count)`` alone, so the skeleton pass only
    records the two scalars and this expansion runs at materialisation time.
    """
    names = [stem, f"www.{stem}"]
    index = 0
    while len(names) < count:
        prefix = _SAN_PREFIXES[index % len(_SAN_PREFIXES)]
        suffix = "" if index < len(_SAN_PREFIXES) else str(index // len(_SAN_PREFIXES))
        names.append(f"{prefix}{suffix}.{stem}")
        index += 1
    return names[:max(count, 1)]


@dataclass(frozen=True)
class ChainSpec:
    """Everything needed to issue one delivered chain, recorded not acted on.

    A pure value: materialising it consumes no randomness and two equal specs
    materialise byte-identical chains, so specs can be carried across process
    boundaries or re-materialised at will.
    """

    domain: str
    ca_profile: str
    #: Leaf key override from the archetype; ``None`` uses the profile default.
    key_algorithm: Optional[KeyAlgorithm]
    #: SAN names are deterministic in ``(name_stem, san_count)`` — recorded as
    #: the two scalars and expanded by :func:`san_names_for` on materialise.
    san_count: int
    name_stem: str
    validity_days: int
    #: Indices into :func:`bloat_pool` appended after the delivered chain
    #: (empty for the overwhelmingly common non-bloated case).
    bloat_extras: Tuple[int, ...] = ()
    #: Deliver at most this many certificates (leaf first); scenario knob for
    #: the trimmed-chain counterfactual.  ``None`` delivers the chain as
    #: issued.  Applied after ``bloat_extras``, so it also caps bloat.
    trim_to: Optional[int] = None

    def __hash__(self) -> int:
        # Specs key every chain cache, so each one is hashed many times per
        # campaign (cache fill, cache lookup, annex encode/decode); memoise
        # the field-tuple hash the frozen dataclass would otherwise recompute.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(
                (
                    self.domain,
                    self.ca_profile,
                    self.key_algorithm,
                    self.san_count,
                    self.name_stem,
                    self.validity_days,
                    self.bloat_extras,
                    self.trim_to,
                )
            )
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self) -> dict:
        # String hashes are salted per process; never ship the memo.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def san_names(self) -> List[str]:
        """The expanded SAN-name list (first name is always the domain)."""
        names = san_names_for(self.name_stem, self.san_count)
        names[0] = self.domain
        return names

    def materialize(self, hierarchy: Optional[WebPkiHierarchy] = None) -> CertificateChain:
        """Issue the recorded chain (via the per-profile issuance fast path)."""
        hierarchy = hierarchy or default_hierarchy()
        profile = hierarchy.profiles[self.ca_profile]
        leaf = issue_leaf_fast(
            leaf_template(profile.issuer, self.key_algorithm or profile.leaf_key_algorithm),
            self.domain,
            self.san_names(),
            self.validity_days,
        )
        return self.assemble(leaf, hierarchy)

    def assemble(
        self, leaf: Certificate, hierarchy: Optional[WebPkiHierarchy] = None
    ) -> CertificateChain:
        """Wrap an already-issued ``leaf`` in this spec's delivered chain.

        The non-leaf tail of :meth:`materialize` — delivered parent chain,
        bloat-pool appends, trim — factored out so a caller holding a
        reconstituted leaf (the skeleton store's issued-leaf annex) rebuilds
        the exact chain without re-running issuance.  Every non-leaf
        certificate is a hierarchy or bloat-pool singleton, so the chain is
        fully determined by the spec plus the leaf.
        """
        hierarchy = hierarchy or default_hierarchy()
        profile = hierarchy.profiles[self.ca_profile]
        chain = CertificateChain((leaf,) + profile.delivered_chain)
        if self.bloat_extras:
            pool = bloat_pool()
            chain = CertificateChain(
                chain.certificates + tuple(pool[index] for index in self.bloat_extras)
            )
        if self.trim_to is not None and len(chain.certificates) > self.trim_to:
            chain = CertificateChain(chain.certificates[: self.trim_to])
        return chain


# ---------------------------------------------------------------------------
# Deployment skeletons
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeploymentSkeleton:
    """A :class:`DomainDeployment` minus the materialised certificate chains.

    Carries every cheap field verbatim plus the recorded :class:`ChainSpec` of
    each chain the deployment delivers.  Count-only consumers (category
    counts, the sweep discovery pass) and the resolver builder read skeletons
    directly; everything else calls :meth:`materialize`.
    """

    domain: str
    rank: int
    category: ServiceCategory
    dns_rcode: DnsRcode
    address: Optional[IPv4Address] = None
    server_behavior: Optional[ServerBehaviorProfile] = None
    provider: Optional[str] = None
    archetype: Optional[str] = None
    ca_profile: Optional[str] = None
    encapsulation_overhead: int = 0
    redirect_to: Optional[str] = None
    https_spec: Optional[ChainSpec] = None
    #: Rotated QUIC chain spec; ``None`` with ``quic_shares_https`` means the
    #: QUIC service delivers the HTTPS chain *object* (identity preserved).
    quic_spec: Optional[ChainSpec] = None
    quic_shares_https: bool = False

    # -- the cheap convenience mirror of DomainDeployment ----------------------

    @property
    def resolves(self) -> bool:
        return self.dns_rcode is DnsRcode.NOERROR and self.address is not None

    @property
    def supports_quic(self) -> bool:
        return self.category is ServiceCategory.QUIC

    # -- phase 2 ---------------------------------------------------------------

    def materialize(
        self,
        hierarchy: Optional[WebPkiHierarchy] = None,
        chain_cache: Optional[Dict[ChainSpec, CertificateChain]] = None,
    ) -> DomainDeployment:
        """Issue the recorded chains and assemble the eager deployment.

        ``chain_cache`` (a ``ChainSpec → CertificateChain`` dict the caller
        owns) skips issuance for specs already materialised — sound because a
        :class:`ChainSpec` is a pure value: equal specs materialise
        byte-identical chains.  The multi-scenario shard visit uses one cache
        across every scenario of a visit, so a chain untouched by N transforms
        is issued once, not N times.
        """
        hierarchy = hierarchy or default_hierarchy()

        def issue(spec: Optional[ChainSpec]) -> Optional[CertificateChain]:
            if spec is None:
                return None
            if chain_cache is None:
                return spec.materialize(hierarchy)
            chain = chain_cache.get(spec)
            if chain is None and spec.trim_to is not None:
                # A trimmed spec differs from its untrimmed base only in the
                # final slice, so a cached base chain (the common case when a
                # trim scenario rides a warmed cache or a multi-scenario
                # visit) is sliced instead of re-issued — byte-identical
                # because trimming reuses the same certificate objects.
                full = chain_cache.get(replace(spec, trim_to=None))
                if full is not None:
                    if len(full.certificates) > spec.trim_to:
                        full = CertificateChain(full.certificates[: spec.trim_to])
                    chain = chain_cache[spec] = full
            if chain is None:
                chain = chain_cache[spec] = spec.materialize(hierarchy)
            return chain

        https_chain = issue(self.https_spec)
        if self.quic_shares_https:
            quic_chain = https_chain
        else:
            quic_chain = issue(self.quic_spec)
        return DomainDeployment(
            domain=self.domain,
            rank=self.rank,
            category=self.category,
            dns_rcode=self.dns_rcode,
            address=self.address,
            https_chain=https_chain,
            quic_chain=quic_chain,
            server_behavior=self.server_behavior,
            provider=self.provider,
            archetype=self.archetype,
            ca_profile=self.ca_profile,
            encapsulation_overhead=self.encapsulation_overhead,
            redirect_to=self.redirect_to,
        )


def category_counts(skeletons) -> Dict[ServiceCategory, int]:
    """Category histogram of an iterable of skeletons (or deployments)."""
    counts: Dict[ServiceCategory, int] = {category: 0 for category in ServiceCategory}
    for skeleton in skeletons:
        counts[skeleton.category] += 1
    return counts


# ---------------------------------------------------------------------------
# Deterministic shard codec (the skeleton-store wire format)
# ---------------------------------------------------------------------------
#
# The persistent skeleton store (repro.scanners.skeleton_store) needs a
# serialization that is (a) deterministic — equal shards encode byte-identical,
# so content-addressed files are reproducible across hosts and Python builds,
# unlike pickle — and (b) fast to decode, because decode time is the warm
# path's generation phase.  The layout is columnar, mirroring the columnar
# scan core: one struct-packed array per field, decoded with a handful of
# C-level ``struct.unpack_from`` calls and a single constructor loop, plus a
# per-shard string table so each domain/provider/profile label is stored once.
#
# Enum and builtin-profile columns store indices into the fixed orderings
# below.  Any change to those orderings, the field set, or the column layout
# is an incompatible format change: bump the store's format tag
# (``repro-skel/1``) so stale files quarantine instead of misparse.

class SkeletonCodecError(ValueError):
    """Shard bytes failed deterministic decoding (foreign or malformed payload)."""


_CATEGORIES = tuple(ServiceCategory)
_RCODES = tuple(DnsRcode)
_KEY_ALGORITHMS = tuple(KeyAlgorithm)
_CATEGORY_INDEX = {category: i for i, category in enumerate(_CATEGORIES)}
_RCODE_INDEX = {rcode: i for i, rcode in enumerate(_RCODES)}
_KEY_INDEX = {algorithm: i for i, algorithm in enumerate(_KEY_ALGORITHMS)}

#: Builtin server-behavior profiles in name order — the only behaviors a
#: *baseline* skeleton can carry (scenario transforms run after decode).
_BEHAVIORS = tuple(BUILTIN_PROFILES[name] for name in sorted(BUILTIN_PROFILES))
_BEHAVIOR_INDEX = {profile: i for i, profile in enumerate(_BEHAVIORS)}

#: u16 string-table sentinel for "no string" (optional fields).
_NO_REF = 0xFFFF


def _u8(value: int, what: str) -> int:
    if not 0 <= value <= 0xFF:
        raise SkeletonCodecError(f"{what} {value} does not fit the u8 column")
    return value


def _u16(value: int, what: str) -> int:
    if not 0 <= value <= 0xFFFF:
        raise SkeletonCodecError(f"{what} {value} does not fit the u16 column")
    return value


def encode_skeleton_shard(shard) -> bytes:
    """Encode a :class:`~repro.webpki.population.SkeletonShard` deterministically."""
    skeletons = shard.skeletons
    n = len(skeletons)
    strings: Dict[str, int] = {}

    def ref(text: Optional[str]) -> int:
        if text is None:
            return _NO_REF
        index = strings.get(text)
        if index is None:
            index = len(strings)
            if index >= _NO_REF:
                raise SkeletonCodecError("shard string table overflows u16 refs")
            strings[text] = index
        return index

    flags = bytearray(n)
    categories = bytearray(n)
    rcodes = bytearray(n)
    behaviors = bytearray(n)
    encapsulations = bytearray(n)
    ranks: List[int] = []
    addresses: List[int] = []
    domains: List[int] = []
    providers: List[int] = []
    archetypes: List[int] = []
    ca_profiles: List[int] = []
    redirects: List[int] = []
    spec_domains: List[int] = []
    spec_cas: List[int] = []
    spec_keys = bytearray()
    spec_sans: List[int] = []
    spec_stems: List[int] = []
    spec_validities: List[int] = []
    spec_trims = bytearray()
    spec_bloats = bytearray()
    bloat_blob = bytearray()

    def push_spec(spec: ChainSpec) -> None:
        spec_domains.append(ref(spec.domain))
        spec_cas.append(ref(spec.ca_profile))
        spec_keys.append(
            0 if spec.key_algorithm is None else _KEY_INDEX[spec.key_algorithm] + 1
        )
        spec_sans.append(_u16(spec.san_count, "san_count"))
        spec_stems.append(ref(spec.name_stem))
        spec_validities.append(_u16(spec.validity_days, "validity_days"))
        if spec.trim_to is None:
            spec_trims.append(0)
        elif spec.trim_to <= 0:
            raise SkeletonCodecError(f"trim_to {spec.trim_to} is not encodable")
        else:
            spec_trims.append(_u8(spec.trim_to, "trim_to"))
        spec_bloats.append(_u8(len(spec.bloat_extras), "bloat extras count"))
        for index in spec.bloat_extras:
            bloat_blob.append(_u8(index, "bloat pool index"))

    for i, skeleton in enumerate(skeletons):
        flag = 0
        if skeleton.address is not None:
            flag |= 1
        if skeleton.https_spec is not None:
            flag |= 2
        if skeleton.quic_spec is not None:
            flag |= 4
        if skeleton.quic_shares_https:
            flag |= 8
        flags[i] = flag
        categories[i] = _CATEGORY_INDEX[skeleton.category]
        rcodes[i] = _RCODE_INDEX[skeleton.dns_rcode]
        if skeleton.server_behavior is None:
            behaviors[i] = 0
        else:
            behavior = _BEHAVIOR_INDEX.get(skeleton.server_behavior)
            if behavior is None:
                raise SkeletonCodecError(
                    f"server behavior {skeleton.server_behavior.name!r} is not a "
                    "builtin profile; only baseline shards are encodable"
                )
            behaviors[i] = behavior + 1
        encapsulations[i] = _u8(
            skeleton.encapsulation_overhead, "encapsulation_overhead"
        )
        if not 0 <= skeleton.rank <= 0xFFFFFFFF:
            raise SkeletonCodecError(f"rank {skeleton.rank} does not fit u32")
        ranks.append(skeleton.rank)
        addresses.append(0 if skeleton.address is None else skeleton.address.value)
        domains.append(ref(skeleton.domain))
        providers.append(ref(skeleton.provider))
        archetypes.append(ref(skeleton.archetype))
        ca_profiles.append(ref(skeleton.ca_profile))
        redirects.append(ref(skeleton.redirect_to))
        if skeleton.https_spec is not None:
            push_spec(skeleton.https_spec)
        if skeleton.quic_spec is not None:
            push_spec(skeleton.quic_spec)

    m = len(spec_domains)
    out = bytearray()
    out += struct.pack("<QQII", shard.index, shard.start_rank, n, m)
    out += struct.pack("<I", len(strings))
    for text in strings:  # insertion order == ref order
        raw = text.encode("utf-8")
        out += struct.pack("<H", _u16(len(raw), "string length"))
        out += raw
    out += struct.pack(f"<{n}I", *ranks)
    out += flags + categories + rcodes + behaviors + encapsulations
    out += struct.pack(f"<{n}I", *addresses)
    for column in (domains, providers, archetypes, ca_profiles, redirects):
        out += struct.pack(f"<{n}H", *column)
    out += struct.pack(f"<{m}H", *spec_domains)
    out += struct.pack(f"<{m}H", *spec_cas)
    out += spec_keys
    out += struct.pack(f"<{m}H", *spec_sans)
    out += struct.pack(f"<{m}H", *spec_stems)
    out += struct.pack(f"<{m}H", *spec_validities)
    out += spec_trims + spec_bloats + bloat_blob
    return bytes(out)


def decode_skeleton_shard(data: bytes):
    """Decode :func:`encode_skeleton_shard` bytes back into a ``SkeletonShard``.

    Raises :class:`SkeletonCodecError` on any structural defect.  Bit-level
    corruption is already excluded by the store's self-verifying header; this
    guards against foreign or stale-layout payloads.
    """
    try:
        return _decode_skeleton_shard(data)
    except SkeletonCodecError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError, ValueError) as error:
        raise SkeletonCodecError(f"skeleton shard payload is malformed: {error}") from error


def _decode_skeleton_shard(data: bytes):
    from .population import SkeletonShard

    index, start_rank, n, m = struct.unpack_from("<QQII", data, 0)
    pos = 24
    (n_strings,) = struct.unpack_from("<I", data, pos)
    pos += 4
    if n_strings >= _NO_REF:
        raise SkeletonCodecError("shard string table overflows u16 refs")
    table: List[str] = []
    for _ in range(n_strings):
        (length,) = struct.unpack_from("<H", data, pos)
        pos += 2
        end = pos + length
        if end > len(data):
            raise SkeletonCodecError("shard string table is truncated")
        table.append(data[pos:end].decode("utf-8"))
        pos = end

    ranks = struct.unpack_from(f"<{n}I", data, pos)
    pos += 4 * n
    flags = data[pos : pos + n]
    pos += n
    categories = data[pos : pos + n]
    pos += n
    rcodes = data[pos : pos + n]
    pos += n
    behaviors = data[pos : pos + n]
    pos += n
    encapsulations = data[pos : pos + n]
    pos += n
    if len(encapsulations) != n:
        raise SkeletonCodecError("shard byte columns are truncated")
    addresses = struct.unpack_from(f"<{n}I", data, pos)
    pos += 4 * n
    string_columns = []
    for _ in range(5):
        string_columns.append(struct.unpack_from(f"<{n}H", data, pos))
        pos += 2 * n
    domains, providers, archetypes, ca_profiles, redirects = string_columns
    spec_domains = struct.unpack_from(f"<{m}H", data, pos)
    pos += 2 * m
    spec_cas = struct.unpack_from(f"<{m}H", data, pos)
    pos += 2 * m
    spec_keys = data[pos : pos + m]
    pos += m
    spec_sans = struct.unpack_from(f"<{m}H", data, pos)
    pos += 2 * m
    spec_stems = struct.unpack_from(f"<{m}H", data, pos)
    pos += 2 * m
    spec_validities = struct.unpack_from(f"<{m}H", data, pos)
    pos += 2 * m
    spec_trims = data[pos : pos + m]
    pos += m
    spec_bloats = data[pos : pos + m]
    pos += m
    if len(spec_bloats) != m:
        raise SkeletonCodecError("shard spec columns are truncated")
    bloat_total = sum(spec_bloats)
    bloat_blob = data[pos : pos + bloat_total]
    pos += bloat_total
    if pos != len(data):
        raise SkeletonCodecError(
            f"shard payload has {len(data) - pos} unexpected trailing bytes"
        )

    sp = 0  # spec cursor
    bp = 0  # bloat-blob cursor
    # Construction bypasses the frozen-dataclass __init__ (decode is the warm
    # path's generation phase; ~1.8k objects per shard) — field sets below
    # must stay in lockstep with the ChainSpec / DeploymentSkeleton fields.
    # The two spec blocks are deliberately inlined copies of each other: this
    # loop is hot enough that a per-spec closure call shows up.
    spec_new = ChainSpec.__new__
    skeleton_new = DeploymentSkeleton.__new__
    address_new = IPv4Address.__new__
    no_ref = _NO_REF

    skeletons: List[DeploymentSkeleton] = []
    append = skeletons.append
    for rank, flag, category, rcode, behavior, encapsulation, address_value, d_ref, p_ref, a_ref, c_ref, r_ref in zip(
        ranks,
        flags,
        categories,
        rcodes,
        behaviors,
        encapsulations,
        addresses,
        domains,
        providers,
        archetypes,
        ca_profiles,
        redirects,
    ):
        if flag & 1:
            address = address_new(IPv4Address)
            address.__dict__.update({"value": address_value})
        else:
            address = None
        if flag & 2:
            count = spec_bloats[sp]
            if count:
                extras = tuple(bloat_blob[bp : bp + count])
                bp += count
            else:
                extras = ()
            key = spec_keys[sp]
            https_spec = spec_new(ChainSpec)
            https_spec.__dict__.update(
                {
                    "domain": table[spec_domains[sp]],
                    "ca_profile": table[spec_cas[sp]],
                    "key_algorithm": None if key == 0 else _KEY_ALGORITHMS[key - 1],
                    "san_count": spec_sans[sp],
                    "name_stem": table[spec_stems[sp]],
                    "validity_days": spec_validities[sp],
                    "bloat_extras": extras,
                    "trim_to": spec_trims[sp] or None,
                }
            )
            sp += 1
        else:
            https_spec = None
        if flag & 4:
            count = spec_bloats[sp]
            if count:
                extras = tuple(bloat_blob[bp : bp + count])
                bp += count
            else:
                extras = ()
            key = spec_keys[sp]
            quic_spec = spec_new(ChainSpec)
            quic_spec.__dict__.update(
                {
                    "domain": table[spec_domains[sp]],
                    "ca_profile": table[spec_cas[sp]],
                    "key_algorithm": None if key == 0 else _KEY_ALGORITHMS[key - 1],
                    "san_count": spec_sans[sp],
                    "name_stem": table[spec_stems[sp]],
                    "validity_days": spec_validities[sp],
                    "bloat_extras": extras,
                    "trim_to": spec_trims[sp] or None,
                }
            )
            sp += 1
        else:
            quic_spec = None
        skeleton = skeleton_new(DeploymentSkeleton)
        skeleton.__dict__.update(
            {
                "domain": table[d_ref],
                "rank": rank,
                "category": _CATEGORIES[category],
                "dns_rcode": _RCODES[rcode],
                "address": address,
                "server_behavior": None if behavior == 0 else _BEHAVIORS[behavior - 1],
                "provider": None if p_ref == no_ref else table[p_ref],
                "archetype": None if a_ref == no_ref else table[a_ref],
                "ca_profile": None if c_ref == no_ref else table[c_ref],
                "encapsulation_overhead": encapsulation,
                "redirect_to": None if r_ref == no_ref else table[r_ref],
                "https_spec": https_spec,
                "quic_spec": quic_spec,
                "quic_shares_https": bool(flag & 8),
            }
        )
        append(skeleton)
    if sp != m:
        raise SkeletonCodecError(f"shard names {m} chain specs but uses {sp}")
    return SkeletonShard(index=index, start_rank=start_rank, skeletons=tuple(skeletons))
