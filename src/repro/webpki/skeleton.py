"""Two-phase population generation: deployment skeletons and chain specs.

Phase 1 (the *skeleton pass*, :func:`repro.webpki.population._generate_shard_skeletons`)
consumes a shard's RNG stream exactly like full generation — every draw, in the
same order — but records the certificate-issuance parameters it draws in a
:class:`ChainSpec` instead of acting on them.  Phase 2
(:meth:`DeploymentSkeleton.materialize`) turns a skeleton into the eager
:class:`~repro.webpki.deployment.DomainDeployment` by issuing the recorded
chains through the template fast path of :mod:`repro.x509.issuance`.

The phases compose to exactly the eager generator — materialisation consumes
no randomness, so ``skeletons → materialize`` and one-phase generation cannot
drift apart (``tests/test_population_skeleton.py`` pins both the RNG-stream
and the field-for-field contract).  Consumers that never open certificate
chains — the sweep discovery pass of :mod:`repro.scanners.streaming`, category
counts, resolver construction — stop after phase 1 and skip issuance entirely,
which is ~20× cheaper than full generation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netsim.address import IPv4Address
from ..netsim.dns import DnsRcode
from ..quic.profiles import ServerBehaviorProfile
from ..x509.ca import WebPkiHierarchy, default_hierarchy
from ..x509.certificate import Certificate
from ..x509.chain import CertificateChain
from ..x509.keys import KeyAlgorithm
from .deployment import DomainDeployment, ServiceCategory


# ---------------------------------------------------------------------------
# The bloated-chain extras pool (paper Figure 6 tail)
# ---------------------------------------------------------------------------

_BLOAT_POOL: Optional[Tuple[Certificate, ...]] = None


def bloat_pool() -> Tuple[Certificate, ...]:
    """CA certificates a misconfigured server may redundantly ship.

    Intermediates first, then roots, in hierarchy insertion order — the same
    deterministic pool (and order) the one-phase generator always drew from,
    cached process-wide because the hierarchy itself is a process singleton.
    """
    global _BLOAT_POOL
    if _BLOAT_POOL is None:
        hierarchy = default_hierarchy()
        _BLOAT_POOL = tuple(
            ca.certificate
            for ca in list(hierarchy.intermediates.values()) + list(hierarchy.roots.values())
        )
    return _BLOAT_POOL


def draw_bloat_extras(rng: random.Random) -> Tuple[int, ...]:
    """Draw the duplicated-certificate indices of one bloated chain.

    Consumes exactly the draws the eager ``_bloat_chain`` made — one
    ``randint`` for the copy count, one ``choice`` over an equal-length
    sequence per copy — but records pool *indices* instead of building the
    chain, so the skeleton pass stays issuance-free.
    """
    pool_indices = range(len(bloat_pool()))
    copies = rng.randint(12, 26)
    return tuple(rng.choice(pool_indices) for _ in range(copies))


# ---------------------------------------------------------------------------
# Chain specs (recorded issuance parameters)
# ---------------------------------------------------------------------------

#: Subdomain prefixes of the deterministic SAN-name pattern.
_SAN_PREFIXES = ("api", "cdn", "mail", "img", "static", "shop", "m", "blog", "dev",
                 "stage", "app", "edge", "media", "assets", "video", "login", "docs")


def san_names_for(stem: str, count: int) -> List[str]:
    """The deterministic SAN-name list for ``stem`` (pure; no randomness).

    Names are a function of ``(stem, count)`` alone, so the skeleton pass only
    records the two scalars and this expansion runs at materialisation time.
    """
    names = [stem, f"www.{stem}"]
    index = 0
    while len(names) < count:
        prefix = _SAN_PREFIXES[index % len(_SAN_PREFIXES)]
        suffix = "" if index < len(_SAN_PREFIXES) else str(index // len(_SAN_PREFIXES))
        names.append(f"{prefix}{suffix}.{stem}")
        index += 1
    return names[:max(count, 1)]


@dataclass(frozen=True, slots=True)
class ChainSpec:
    """Everything needed to issue one delivered chain, recorded not acted on.

    A pure value: materialising it consumes no randomness and two equal specs
    materialise byte-identical chains, so specs can be carried across process
    boundaries or re-materialised at will.
    """

    domain: str
    ca_profile: str
    #: Leaf key override from the archetype; ``None`` uses the profile default.
    key_algorithm: Optional[KeyAlgorithm]
    #: SAN names are deterministic in ``(name_stem, san_count)`` — recorded as
    #: the two scalars and expanded by :func:`san_names_for` on materialise.
    san_count: int
    name_stem: str
    validity_days: int
    #: Indices into :func:`bloat_pool` appended after the delivered chain
    #: (empty for the overwhelmingly common non-bloated case).
    bloat_extras: Tuple[int, ...] = ()
    #: Deliver at most this many certificates (leaf first); scenario knob for
    #: the trimmed-chain counterfactual.  ``None`` delivers the chain as
    #: issued.  Applied after ``bloat_extras``, so it also caps bloat.
    trim_to: Optional[int] = None

    def san_names(self) -> List[str]:
        """The expanded SAN-name list (first name is always the domain)."""
        names = san_names_for(self.name_stem, self.san_count)
        names[0] = self.domain
        return names

    def materialize(self, hierarchy: Optional[WebPkiHierarchy] = None) -> CertificateChain:
        """Issue the recorded chain (via the per-profile issuance fast path)."""
        hierarchy = hierarchy or default_hierarchy()
        profile = hierarchy.profiles[self.ca_profile]
        chain = profile.issue(
            self.domain,
            san_names=self.san_names(),
            validity_days=self.validity_days,
            key_algorithm=self.key_algorithm,
        )
        if self.bloat_extras:
            pool = bloat_pool()
            chain = CertificateChain(
                chain.certificates + tuple(pool[index] for index in self.bloat_extras)
            )
        if self.trim_to is not None and len(chain.certificates) > self.trim_to:
            chain = CertificateChain(chain.certificates[: self.trim_to])
        return chain


# ---------------------------------------------------------------------------
# Deployment skeletons
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class DeploymentSkeleton:
    """A :class:`DomainDeployment` minus the materialised certificate chains.

    Carries every cheap field verbatim plus the recorded :class:`ChainSpec` of
    each chain the deployment delivers.  Count-only consumers (category
    counts, the sweep discovery pass) and the resolver builder read skeletons
    directly; everything else calls :meth:`materialize`.
    """

    domain: str
    rank: int
    category: ServiceCategory
    dns_rcode: DnsRcode
    address: Optional[IPv4Address] = None
    server_behavior: Optional[ServerBehaviorProfile] = None
    provider: Optional[str] = None
    archetype: Optional[str] = None
    ca_profile: Optional[str] = None
    encapsulation_overhead: int = 0
    redirect_to: Optional[str] = None
    https_spec: Optional[ChainSpec] = None
    #: Rotated QUIC chain spec; ``None`` with ``quic_shares_https`` means the
    #: QUIC service delivers the HTTPS chain *object* (identity preserved).
    quic_spec: Optional[ChainSpec] = None
    quic_shares_https: bool = False

    # -- the cheap convenience mirror of DomainDeployment ----------------------

    @property
    def resolves(self) -> bool:
        return self.dns_rcode is DnsRcode.NOERROR and self.address is not None

    @property
    def supports_quic(self) -> bool:
        return self.category is ServiceCategory.QUIC

    # -- phase 2 ---------------------------------------------------------------

    def materialize(
        self,
        hierarchy: Optional[WebPkiHierarchy] = None,
        chain_cache: Optional[Dict[ChainSpec, CertificateChain]] = None,
    ) -> DomainDeployment:
        """Issue the recorded chains and assemble the eager deployment.

        ``chain_cache`` (a ``ChainSpec → CertificateChain`` dict the caller
        owns) skips issuance for specs already materialised — sound because a
        :class:`ChainSpec` is a pure value: equal specs materialise
        byte-identical chains.  The multi-scenario shard visit uses one cache
        across every scenario of a visit, so a chain untouched by N transforms
        is issued once, not N times.
        """
        hierarchy = hierarchy or default_hierarchy()

        def issue(spec: Optional[ChainSpec]) -> Optional[CertificateChain]:
            if spec is None:
                return None
            if chain_cache is None:
                return spec.materialize(hierarchy)
            chain = chain_cache.get(spec)
            if chain is None:
                chain = chain_cache[spec] = spec.materialize(hierarchy)
            return chain

        https_chain = issue(self.https_spec)
        if self.quic_shares_https:
            quic_chain = https_chain
        else:
            quic_chain = issue(self.quic_spec)
        return DomainDeployment(
            domain=self.domain,
            rank=self.rank,
            category=self.category,
            dns_rcode=self.dns_rcode,
            address=self.address,
            https_chain=https_chain,
            quic_chain=quic_chain,
            server_behavior=self.server_behavior,
            provider=self.provider,
            archetype=self.archetype,
            ca_profile=self.ca_profile,
            encapsulation_overhead=self.encapsulation_overhead,
            redirect_to=self.redirect_to,
        )


def category_counts(skeletons) -> Dict[ServiceCategory, int]:
    """Category histogram of an iterable of skeletons (or deployments)."""
    counts: Dict[ServiceCategory, int] = {category: 0 for category in ServiceCategory}
    for skeleton in skeletons:
        counts[skeleton.category] += 1
    return counts
