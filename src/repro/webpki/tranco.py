"""Tranco-like ranked domain list generation.

The paper seeds its scans with the Tranco 1M list of September 10, 2022.  The
list itself cannot be downloaded offline, and the literal names do not matter
for any result — only the rank structure (for the Appendix D rank-group
analyses) and name-length diversity (certificate subject/SAN sizes) do.  This
module deterministically generates a ranked list with realistic name shapes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple

_SYLLABLES = (
    "an", "ber", "cor", "dex", "el", "fin", "gra", "hub", "in", "jor", "kan", "lum",
    "mar", "net", "or", "pix", "qua", "ria", "sol", "tek", "ul", "ver", "wav", "xen",
    "yon", "zet", "blue", "swift", "cloud", "data", "shop", "media", "news", "play",
    "soft", "trade", "travel", "health", "bank", "mail", "photo", "video", "game",
    "music", "book", "food", "auto", "home", "sport", "tech",
)

_TLDS_WEIGHTED = (
    ("com", 48), ("org", 9), ("net", 8), ("de", 4), ("ru", 4), ("io", 3), ("co", 3),
    ("uk", 3), ("jp", 2), ("fr", 2), ("br", 2), ("in", 2), ("it", 2), ("nl", 1),
    ("pl", 1), ("es", 1), ("ca", 1), ("au", 1), ("info", 1), ("edu", 1), ("gov", 1),
)


@dataclass(frozen=True)
class TrancoList:
    """A ranked list of domain names; rank 1 is the most popular."""

    domains: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.domains)

    def __iter__(self) -> Iterator[str]:
        return iter(self.domains)

    def rank_of(self, domain: str) -> int:
        """1-based rank of a domain (linear scan; intended for tests)."""
        return self.domains.index(domain) + 1

    def domain_at(self, rank: int) -> str:
        return self.domains[rank - 1]

    def rank_groups(self, group_size: int = 100_000) -> List[Tuple[Tuple[int, int], Tuple[str, ...]]]:
        """Split the list into contiguous rank groups (paper Appendix D)."""
        groups = []
        for start in range(0, len(self.domains), group_size):
            chunk = self.domains[start : start + group_size]
            groups.append(((start + 1, start + len(chunk)), tuple(chunk)))
        return groups

    def top(self, count: int) -> Tuple[str, ...]:
        return self.domains[:count]


def _random_label(rng: random.Random) -> str:
    syllable_count = rng.choices((1, 2, 3, 4), weights=(10, 55, 30, 5))[0]
    label = "".join(rng.choice(_SYLLABLES) for _ in range(syllable_count))
    if rng.random() < 0.08:
        label += str(rng.randint(1, 999))
    if rng.random() < 0.05:
        label = label[: max(3, len(label) // 2)] + "-" + label[len(label) // 2 :]
    return label


def _random_tld(rng: random.Random) -> str:
    tlds, weights = zip(*_TLDS_WEIGHTED)
    return rng.choices(tlds, weights=weights)[0]


def generate_tranco_list(size: int, seed: int = 2022) -> TrancoList:
    """Generate ``size`` unique ranked domain names deterministically.

    Memoized process-wide (the list is immutable and a pure function of its
    arguments): shard regeneration — `generate_shard`, the discovery pass, the
    per-worker `deployments_for_range` — asks for the same ranked list over
    and over, and a 1M-name list takes seconds to build.  The thin wrapper
    normalises positional and keyword ``seed`` calls onto one cache entry.
    """
    return _generate_tranco_list(size, seed)


@lru_cache(maxsize=4)
def _generate_tranco_list(size: int, seed: int) -> TrancoList:
    if size <= 0:
        raise ValueError("the list size must be positive")
    rng = random.Random(f"tranco:{seed}")
    seen = set()
    domains: List[str] = []
    while len(domains) < size:
        name = f"{_random_label(rng)}.{_random_tld(rng)}"
        if name in seen:
            name = f"{_random_label(rng)}-{len(domains)}.{_random_tld(rng)}"
        if name in seen:
            continue
        seen.add(name)
        domains.append(name)
    return TrancoList(tuple(domains))
