"""Generation of the synthetic Internet population.

``generate_population`` turns a ranked domain list into per-domain
deployments whose aggregate statistics match the paper's measurements (see
DESIGN.md §5 for the calibration targets), and can materialise the simulated
network (DNS zone, HTTP origins, QUIC hosts, telescope) the scanners run
against.

Generation is *sharded*: the ranked list is cut into rank-contiguous shards of
:data:`GENERATION_SHARD_SIZE` domains, and every shard is generated from its
own RNG derived from ``(seed, shard_index)``.  Shard ``i`` therefore depends
on nothing but the config and ``i`` — shards can be generated in any order, in
parallel worker processes, or streamed one at a time
(:func:`iter_population_shards`) without ever materialising the full
deployment list, and the result is always identical to the eager
:func:`generate_population` path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenarios -> population)
    from ..scenarios.spec import ScenarioSpec

from ..netsim.address import IPv4Address, IPv4Prefix
from ..netsim.dns import DnsRcode, SimulatedResolver
from ..netsim.http import HttpOrigin, RedirectKind
from ..netsim.network import QuicServiceHost, UdpNetwork
from ..quic.profiles import (
    MVFST_LIKE,
    MVFST_PATCHED,
    RFC_COMPLIANT_NO_COMPRESSION,
    ServerBehaviorProfile,
)
from ..x509.ca import default_hierarchy
from ..x509.keys import KeyAlgorithm
from .deployment import DomainDeployment, ServiceCategory
from .skeleton import (
    ChainSpec,
    DeploymentSkeleton,
    category_counts,
    draw_bloat_extras,
    san_names_for,
)
from .providers import (
    HTTPS_ONLY_ARCHETYPES,
    PROVIDERS,
    QUIC_ARCHETYPES,
    DeploymentArchetype,
    choose_https_only_archetype,
    choose_quic_archetype,
    sample_san_count,
)
from .tranco import TrancoList, generate_tranco_list


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the synthetic population.

    The default ``size`` keeps full experiment runs in the seconds range;
    every share-based result is scale-free, so raising the size towards the
    paper's 1M only sharpens the tails.
    """

    size: int = 20_000
    seed: int = 2022
    # DNS funnel (§3.1): fractions of all names.
    servfail_fraction: float = 0.013
    nxdomain_fraction: float = 0.009
    timeout_fraction: float = 0.010
    refused_fraction: float = 0.002
    no_a_record_fraction: float = 0.110
    # Service mix among resolved names with an A record (Appendix D).
    quic_fraction_of_resolved: float = 0.242
    https_only_fraction_of_resolved: float = 0.681
    # Deployment details.
    redirect_fraction: float = 0.15
    different_quic_cert_fraction: float = 0.033
    top_rank_one_rtt_boost: float = 0.02
    #: Share of generic QUIC deployments built on a TLS library without
    #: RFC 8879 support (brings overall brotli support to ≈96 %, Table 1).
    no_compression_fraction: float = 0.04
    #: What-if scenario this population is generated under (see
    #: :mod:`repro.scenarios`).  ``None`` (and any identity scenario) is the
    #: 2022 baseline.  The scenario's skeleton transform runs *after* a
    #: shard's RNG stream is consumed, so the per-shard RNG contract — and
    #: therefore which domains, DNS outcomes, archetypes and addresses a seed
    #: denotes — is scenario-independent.
    scenario: Optional["ScenarioSpec"] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("population size must be positive")
        failure_total = (
            self.servfail_fraction
            + self.nxdomain_fraction
            + self.timeout_fraction
            + self.refused_fraction
            + self.no_a_record_fraction
        )
        if failure_total >= 1.0:
            raise ValueError("DNS failure fractions must sum to less than 1")
        if self.quic_fraction_of_resolved + self.https_only_fraction_of_resolved > 1.0:
            raise ValueError("service fractions of resolved names must sum to at most 1")


@dataclass
class InternetPopulation:
    """The generated population plus lookup helpers."""

    config: PopulationConfig
    tranco: TrancoList
    deployments: List[DomainDeployment]
    _by_domain: Dict[str, DomainDeployment] = field(default_factory=dict)
    _by_category: Dict[ServiceCategory, Tuple[DomainDeployment, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_domain:
            self._by_domain = {d.domain: d for d in self.deployments}
        if not self._by_category:
            # Precomputed once so the figure modules' repeated category lookups
            # stop scanning the full deployment list.
            buckets: Dict[ServiceCategory, List[DomainDeployment]] = {
                category: [] for category in ServiceCategory
            }
            for deployment in self.deployments:
                buckets[deployment.category].append(deployment)
            self._by_category = {
                category: tuple(members) for category, members in buckets.items()
            }

    # -- lookups ---------------------------------------------------------------

    def deployment(self, domain: str) -> Optional[DomainDeployment]:
        return self._by_domain.get(domain.lower())

    def __len__(self) -> int:
        return len(self.deployments)

    def by_category(self, category: ServiceCategory) -> List[DomainDeployment]:
        return list(self._by_category.get(category, ()))

    def quic_services(self) -> List[DomainDeployment]:
        return self.by_category(ServiceCategory.QUIC)

    def https_only_services(self) -> List[DomainDeployment]:
        return self.by_category(ServiceCategory.HTTPS_ONLY)

    def category_counts(self) -> Dict[ServiceCategory, int]:
        return {
            category: len(self._by_category.get(category, ()))
            for category in ServiceCategory
        }

    # -- materialising the simulated network -----------------------------------

    def build_resolver(self) -> SimulatedResolver:
        return build_resolver_for(self.deployments)

    def build_origins(self) -> Dict[str, HttpOrigin]:
        return build_origins_for(self.deployments)

    def build_network(self) -> UdpNetwork:
        return build_network_for(self.deployments)


# ---------------------------------------------------------------------------
# Materialising the simulated network for any deployment subset
# ---------------------------------------------------------------------------
#
# Module-level so per-shard workers can build a resolver/origins/network for
# just their slice of the population.  Deployments are self-contained (the
# only cross-domain reference, ``redirect_to``, always points at
# ``www.<domain>`` of the same deployment), so building for a subset yields
# exactly the sub-fabric the subset's scanners need.

def build_resolver_for(deployments: Iterable[DomainDeployment]) -> SimulatedResolver:
    """Build the DNS view of ``deployments``.

    Also accepts phase-1 :class:`~repro.webpki.skeleton.DeploymentSkeleton`
    iterables: resolution never looks at certificate chains, so resolver
    construction does not require materialisation.
    """
    resolver = SimulatedResolver()
    for deployment in deployments:
        if deployment.dns_rcode is not DnsRcode.NOERROR:
            resolver.add_failure(deployment.domain, deployment.dns_rcode)
        elif deployment.address is None:
            resolver.add_no_address(deployment.domain)
        else:
            resolver.add_record(deployment.domain, deployment.address)
            # Redirect targets (www.<domain>) resolve to the same address.
            if deployment.redirect_to:
                resolver.add_record(deployment.redirect_to, deployment.address)
    return resolver


def build_origins_for(deployments: Iterable[DomainDeployment]) -> Dict[str, HttpOrigin]:
    origins: Dict[str, HttpOrigin] = {}
    for deployment in deployments:
        if not deployment.resolves:
            continue
        chain = deployment.https_chain
        redirect_kind = RedirectKind.NONE
        redirect_target = None
        if deployment.redirect_to and chain is not None:
            redirect_kind = RedirectKind.HTTP_301
            redirect_target = f"https://{deployment.redirect_to}/"
            origins[deployment.redirect_to] = HttpOrigin(
                domain=deployment.redirect_to, https_chain=chain
            )
        origins[deployment.domain] = HttpOrigin(
            domain=deployment.domain,
            https_chain=chain,
            redirect_kind=redirect_kind,
            redirect_target=redirect_target,
        )
    return origins


def build_network_for(deployments: Iterable[DomainDeployment], flight_cache=None) -> UdpNetwork:
    network = UdpNetwork(flight_cache=flight_cache)
    for deployment in deployments:
        if not deployment.supports_quic or deployment.address is None:
            continue
        network.attach_host(
            QuicServiceHost(
                address=deployment.address,
                domain=deployment.domain,
                chain=deployment.quic_chain,
                profile=deployment.server_behavior,
                encapsulation_overhead=deployment.encapsulation_overhead,
            )
        )
    return network


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

#: Number of consecutive ranks generated per shard.  This is a *generation*
#: constant, not a tuning knob: the RNG of shard ``i`` is derived from
#: ``(seed, i)`` and the shard covers ranks ``[i * SIZE + 1, (i+1) * SIZE]``,
#: so changing it changes which population a seed denotes.  Scan-time sharding
#: (``repro.scanners.sharding``) chunks the generated deployments however it
#: likes and is unaffected.
GENERATION_SHARD_SIZE = 1024


@dataclass(frozen=True)
class PopulationShard:
    """One rank-contiguous slice of the generated population."""

    index: int
    start_rank: int
    deployments: Tuple[DomainDeployment, ...]

    @property
    def end_rank(self) -> int:
        """Rank of the last deployment (inclusive)."""
        return self.start_rank + len(self.deployments) - 1

    def __len__(self) -> int:
        return len(self.deployments)


@dataclass(frozen=True)
class SkeletonShard:
    """One rank-contiguous slice of the population in skeleton (phase 1) form.

    The near-free counterpart of :class:`PopulationShard`: the same RNG stream
    was consumed, but no certificate chain has been issued yet.  Count-only
    consumers read :meth:`category_counts`; everything else calls
    :meth:`materialize` to obtain the byte-identical full shard.
    """

    index: int
    start_rank: int
    skeletons: Tuple[DeploymentSkeleton, ...]

    @property
    def end_rank(self) -> int:
        """Rank of the last skeleton (inclusive)."""
        return self.start_rank + len(self.skeletons) - 1

    def __len__(self) -> int:
        return len(self.skeletons)

    def category_counts(self) -> Dict[ServiceCategory, int]:
        return category_counts(self.skeletons)

    def materialize(self, hierarchy=None) -> PopulationShard:
        """Phase 2: issue every recorded chain and return the full shard."""
        hierarchy = hierarchy or default_hierarchy()
        # The Meta PoP chains are population data too: issue them with the
        # rest of the certificates (memoized process-wide) so the finalize
        # stage, which probes the PoP on every campaign, never pays issuance
        # mid-reduction.
        _meta_pop_chain_rows()
        return PopulationShard(
            index=self.index,
            start_rank=self.start_rank,
            deployments=tuple(
                skeleton.materialize(hierarchy) for skeleton in self.skeletons
            ),
        )


def _dns_outcome(rng: random.Random, config: PopulationConfig) -> Tuple[DnsRcode, bool]:
    """Return (rcode, has_a_record)."""
    roll = rng.random()
    threshold = config.servfail_fraction
    if roll < threshold:
        return DnsRcode.SERVFAIL, False
    threshold += config.nxdomain_fraction
    if roll < threshold:
        return DnsRcode.NXDOMAIN, False
    threshold += config.timeout_fraction
    if roll < threshold:
        return DnsRcode.TIMEOUT, False
    threshold += config.refused_fraction
    if roll < threshold:
        return DnsRcode.REFUSED, False
    threshold += config.no_a_record_fraction
    if roll < threshold:
        return DnsRcode.NOERROR, False
    return DnsRcode.NOERROR, True


def _san_names(rng: random.Random, domain: str, count: int) -> List[str]:
    # Deterministic in (domain, count); ``rng`` kept for signature stability.
    return san_names_for(domain, count)


def _draw_chain_spec(
    rng: random.Random,
    domain: str,
    archetype: DeploymentArchetype,
    ca_profile_label: str,
    serial_suffix: str = "",
) -> ChainSpec:
    """Draw one chain's issuance parameters and record them as a spec.

    This is the *only* place chain randomness is consumed — the rare bloated
    chains (18–38 kB, the Figure 6 tail: misconfigured servers shipping
    duplicated intermediates and roots) included, whose duplicated-certificate
    picks are recorded as pool indices by :func:`draw_bloat_extras`.  The
    skeleton pass and full generation share this draw site, so their RNG
    streams are identical by construction.
    """
    san_count = sample_san_count(rng, archetype)
    validity_days = rng.choice((90, 90, 90, 365, 397))
    bloat_extras: Tuple[int, ...] = ()
    if rng.random() < archetype.bloated_chain_probability:
        bloat_extras = draw_bloat_extras(rng)
    return ChainSpec(
        domain=domain,
        ca_profile=ca_profile_label,
        key_algorithm=archetype.leaf_key_algorithm,
        san_count=san_count,
        name_stem=domain if not serial_suffix else f"{serial_suffix}.{domain}",
        validity_days=validity_days,
        bloat_extras=bloat_extras,
    )


def _generate_shard_skeletons(
    config: PopulationConfig,
    domains: Sequence[str],
    shard_index: int,
    start_rank: int,
) -> List[DeploymentSkeleton]:
    """Phase 1: generate one shard's deployment skeletons (no chain issuance).

    Everything random about the shard comes from ``(config.seed,
    shard_index)``; the address allocator interleaves the per-provider host
    indices of all shards (``local * shard_count + shard_index``) so shards
    allocate globally unique, densely packed indices without coordinating.
    Chain issuance parameters are drawn (preserving the RNG stream) but only
    *recorded*; materialising them is phase 2 (:class:`DeploymentSkeleton`).
    """
    rng = random.Random(f"population:{config.seed}:shard:{shard_index}")
    skeletons: List[DeploymentSkeleton] = []
    provider_host_counters: Dict[str, int] = {}
    # Interleave stride: the total number of generation shards of this
    # population.  Indices l*stride+i are globally unique (i < stride) and stay
    # as dense as a single global counter, so even small provider prefixes
    # (the Meta /24) only wrap when the provider genuinely runs out of space.
    address_stride = max(1, -(-config.size // GENERATION_SHARD_SIZE))

    # Rank thresholds scale with the population so a 20k population behaves
    # like a proportionally scaled-down Tranco 1M list: the paper's "top 1k",
    # "top 10k" and "top 100k" effects apply to the same *fractions* here.
    top_1k_equivalent = max(1, config.size // 1000)
    top_10k_equivalent = max(1, config.size // 100)
    top_100k_equivalent = max(1, config.size // 10)

    for offset, domain in enumerate(domains):
        rank = start_rank + offset
        rcode, has_a = _dns_outcome(rng, config)
        if not has_a:
            skeletons.append(
                DeploymentSkeleton(
                    domain=domain, rank=rank, category=ServiceCategory.UNRESOLVED, dns_rcode=rcode
                )
            )
            continue

        roll = rng.random()
        if roll < config.quic_fraction_of_resolved:
            category = ServiceCategory.QUIC
        elif roll < config.quic_fraction_of_resolved + config.https_only_fraction_of_resolved:
            category = ServiceCategory.HTTPS_ONLY
        else:
            category = ServiceCategory.INSECURE

        if category is ServiceCategory.INSECURE:
            address = _allocate_address(
                provider_host_counters, "https-only-hosting", shard_index, address_stride
            )
            skeletons.append(
                DeploymentSkeleton(
                    domain=domain,
                    rank=rank,
                    category=category,
                    dns_rcode=DnsRcode.NOERROR,
                    address=address,
                    provider="https-only-hosting",
                )
            )
            continue

        if category is ServiceCategory.QUIC:
            archetype = choose_quic_archetype(rng)
            # The paper observes slightly more 1-RTT deployments among the most
            # popular names (Figure 13); model it as a small boost of
            # short-chain deployments in the top rank group.
            if rank <= top_100k_equivalent and rng.random() < config.top_rank_one_rtt_boost:
                archetype = next(a for a in QUIC_ARCHETYPES if a.name == "lets-encrypt-e1-short")
        else:
            archetype = choose_https_only_archetype(rng)

        provider = PROVIDERS[archetype.provider]
        ca_profile_label = archetype.ca_profile
        if archetype.ca_profile_pool:
            ca_profile_label = rng.choice(archetype.ca_profile_pool)
        https_spec = _draw_chain_spec(rng, domain, archetype, ca_profile_label)

        quic_spec: Optional[ChainSpec] = None
        quic_shares_https = False
        behavior: Optional[ServerBehaviorProfile] = None
        encapsulation_overhead = 0
        if category is ServiceCategory.QUIC:
            if rng.random() < config.different_quic_cert_fraction:
                quic_spec = _draw_chain_spec(
                    rng, domain, archetype, ca_profile_label, serial_suffix="rotated"
                )
            else:
                quic_shares_https = True
            behavior = provider.behavior
            if (
                behavior.name == "rfc-compliant"
                and rng.random() < config.no_compression_fraction
            ):
                behavior = RFC_COMPLIANT_NO_COMPRESSION
            tunnel_probability = archetype.tunnel_probability
            if rank <= top_1k_equivalent:
                tunnel_probability = max(tunnel_probability, 0.25)
            elif rank <= top_10k_equivalent:
                tunnel_probability = max(tunnel_probability, 0.12)
            if rng.random() < tunnel_probability:
                encapsulation_overhead = rng.choice((28, 36, 48, 60))

        address = _allocate_address(provider_host_counters, provider.name, shard_index, address_stride)
        redirect_to = None
        if rng.random() < config.redirect_fraction:
            redirect_to = f"www.{domain}"

        skeletons.append(
            DeploymentSkeleton(
                domain=domain,
                rank=rank,
                category=category,
                dns_rcode=DnsRcode.NOERROR,
                address=address,
                server_behavior=behavior,
                provider=provider.name,
                archetype=archetype.name,
                ca_profile=ca_profile_label,
                encapsulation_overhead=encapsulation_overhead,
                redirect_to=redirect_to,
                https_spec=https_spec,
                quic_spec=quic_spec,
                quic_shares_https=quic_shares_https,
            )
        )

    # Phase 1.5: the scenario transform.  Runs after the shard's RNG stream is
    # fully consumed and draws no randomness itself, so every scenario sees
    # the same underlying population and only the recorded chain specs /
    # behaviour profiles differ.  Identity scenarios skip the rewrite.
    scenario = config.scenario
    if scenario is not None and not scenario.is_identity:
        skeletons = scenario.transform_skeletons(skeletons)

    return skeletons


def generate_shard(
    config: PopulationConfig, shard_index: int, skeleton: bool = False
) -> "PopulationShard | SkeletonShard":
    """Generate a single shard, independent of every other shard.

    Workers use this to rebuild exactly the slice of the population they are
    responsible for without receiving (or generating) the rest.  With
    ``skeleton=True`` only phase 1 runs — same RNG stream, no chain issuance —
    and a :class:`SkeletonShard` is returned (``.materialize()`` yields the
    byte-identical full shard).
    """
    start = shard_index * GENERATION_SHARD_SIZE
    if not 0 <= start < config.size:
        raise ValueError(f"shard index {shard_index} out of range for size {config.size}")
    tranco = generate_tranco_list(config.size, seed=config.seed)
    domains = tranco.domains[start : start + GENERATION_SHARD_SIZE]
    skeletons = _generate_shard_skeletons(config, domains, shard_index, start + 1)
    shard = SkeletonShard(index=shard_index, start_rank=start + 1, skeletons=tuple(skeletons))
    if skeleton:
        return shard
    return shard.materialize(default_hierarchy())


def iter_population_shards(
    config: Optional[PopulationConfig] = None,
    tranco: Optional[TrancoList] = None,
    skeleton: bool = False,
) -> "Iterator[PopulationShard | SkeletonShard]":
    """Stream the population shard by shard, in rank order.

    Only one shard's deployments (certificate chains included) are alive at a
    time unless the caller keeps them, so 100k+ domain populations can be
    consumed without holding the full deployment list in memory.  The
    concatenation of all shards is exactly :func:`generate_population`'s
    deployment list.  With ``skeleton=True`` the stream yields
    :class:`SkeletonShard` phase-1 shards instead — no chain issuance, ~20×
    cheaper — for count-only consumers like the sweep discovery pass.
    """
    config = config or PopulationConfig()
    tranco = tranco or generate_tranco_list(config.size, seed=config.seed)
    hierarchy = default_hierarchy()
    for shard_index, start in enumerate(range(0, config.size, GENERATION_SHARD_SIZE)):
        domains = tranco.domains[start : start + GENERATION_SHARD_SIZE]
        skeletons = _generate_shard_skeletons(config, domains, shard_index, start + 1)
        shard = SkeletonShard(
            index=shard_index, start_rank=start + 1, skeletons=tuple(skeletons)
        )
        yield shard if skeleton else shard.materialize(hierarchy)


def deployments_for_range(
    config: PopulationConfig,
    start: int,
    stop: int,
    tranco: Optional[TrancoList] = None,
    skeleton: bool = False,
) -> "List[DomainDeployment] | List[DeploymentSkeleton]":
    """Regenerate the deployments at list indices ``[start, stop)``.

    Works for any range, aligned to generation shards or not: the covering
    shards are regenerated from their ``(seed, shard_index)`` RNGs and sliced.
    Scan-time workers use this to rebuild exactly their slice of a generated
    population from ``(config, start, stop)`` instead of receiving the
    deployments (with all their certificate chains) over IPC.

    Two-phase generation makes unaligned ranges cheaper than they used to be:
    the covering shards only run the skeleton pass, and chains are
    materialised for the ``[start, stop)`` slice alone — never for the parts
    of a covering shard that fall outside the range.  ``skeleton=True`` skips
    materialisation entirely and returns the phase-1 skeletons.
    """
    if not 0 <= start <= stop <= config.size:
        raise ValueError(f"range [{start}, {stop}) out of bounds for size {config.size}")
    tranco = tranco or generate_tranco_list(config.size, seed=config.seed)
    hierarchy = default_hierarchy()
    skeletons: List[DeploymentSkeleton] = []
    first_shard = start // GENERATION_SHARD_SIZE
    last_shard = max(first_shard, (stop - 1) // GENERATION_SHARD_SIZE) if stop > start else first_shard
    for shard_index in range(first_shard, last_shard + 1):
        shard_start = shard_index * GENERATION_SHARD_SIZE
        domains = tranco.domains[shard_start : shard_start + GENERATION_SHARD_SIZE]
        shard = _generate_shard_skeletons(
            config, domains, shard_index, shard_start + 1
        )
        skeletons.extend(
            shard[max(start - shard_start, 0) : max(stop - shard_start, 0)]
        )
    if skeleton:
        return skeletons
    return [s.materialize(hierarchy) for s in skeletons]


def generate_population(config: Optional[PopulationConfig] = None) -> InternetPopulation:
    """Generate the full synthetic population deterministically (eager path)."""
    config = config or PopulationConfig()
    tranco = generate_tranco_list(config.size, seed=config.seed)
    deployments: List[DomainDeployment] = []
    for shard in iter_population_shards(config, tranco=tranco):
        deployments.extend(shard.deployments)
    population = InternetPopulation(config=config, tranco=tranco, deployments=deployments)
    # Mark the instance as faithfully regenerable from its config: the sharded
    # scan runner may then ship (config, range) to workers instead of the
    # deployments themselves.  Hand-assembled populations lack the mark and
    # always travel by value.
    population._shard_regenerable = True
    return population


def _allocate_address(
    counters: Dict[str, int], provider_name: str, shard_index: int, stride: int
) -> IPv4Address:
    provider = PROVIDERS[provider_name]
    local_index = counters.get(provider_name, 0)
    counters[provider_name] = local_index + 1
    index = local_index * stride + shard_index
    prefix = provider.prefix_for(index // 200)
    offset = index % min(prefix.num_addresses, 65_536)
    return prefix.address_at(offset)


# ---------------------------------------------------------------------------
# The Meta point of presence (§4.3, Figure 11)
# ---------------------------------------------------------------------------

#: Host octets present in the Meta /24 in the paper's Figure 11.
META_POP_HOST_OCTETS: Tuple[int, ...] = tuple(range(1, 44)) + tuple(range(49, 61)) + (63,) + tuple(
    range(128, 133)
) + tuple(range(158, 165)) + (167, 168, 169, 172, 174, 182, 183)

#: Octets that serve Instagram/WhatsApp — the high-amplification group (3).
META_HIGH_AMPLIFICATION_OCTETS = frozenset(range(49, 61)) | {63} | set(range(158, 165))

#: Octets with no QUIC/HTTP3 service at all — group (1) in the paper.
META_NO_SERVICE_OCTETS = frozenset({40, 41, 42, 43, 128, 129, 130, 131, 132})


def meta_domain_for_octet(octet: int) -> str:
    if octet in META_HIGH_AMPLIFICATION_OCTETS:
        return "instagram.com" if octet % 2 == 0 else "whatsapp.net"
    return "facebook.com" if octet % 3 else "fbcdn.net"


#: Memoized (octet, domain, chain) rows of the Meta /24 — the chains are
#: seed-derived and immutable, so the one expensive part of rebuilding the PoP
#: (issuing ~70 wide-SAN leaves) is paid once per process.  Host objects are
#: still constructed fresh per call: ``UdpNetwork.attach_host`` mutates the
#: host's flight-cache binding, so instances must not be shared.
_META_POP_CHAIN_ROWS: Optional[List[Tuple[int, str, CertificateChain]]] = None


def _meta_pop_chain_rows() -> List[Tuple[int, str, CertificateChain]]:
    global _META_POP_CHAIN_ROWS
    if _META_POP_CHAIN_ROWS is None:
        hierarchy = default_hierarchy()
        meta_profile = hierarchy.profiles["DigiCert SHA2 + root (Meta)"]
        rng = random.Random("meta-pop")
        rows: List[Tuple[int, str, CertificateChain]] = []
        for octet in META_POP_HOST_OCTETS:
            if octet in META_NO_SERVICE_OCTETS:
                continue
            domain = meta_domain_for_octet(octet)
            san_count = rng.randint(45, 90)
            chain = meta_profile.issue(
                domain,
                san_names=_san_names(rng, domain, san_count),
                key_algorithm=KeyAlgorithm.ECDSA_P256,
            )
            rows.append((octet, domain, chain))
        _META_POP_CHAIN_ROWS = rows
    return _META_POP_CHAIN_ROWS


def build_meta_point_of_presence(
    patched: bool = False,
    prefix: IPv4Prefix = IPv4Prefix.parse("157.240.20.0/24"),
) -> List[QuicServiceHost]:
    """Build the Meta /24 point of presence scanned in §4.3.

    Before the disclosure (``patched=False``) the Instagram/WhatsApp hosts
    retransmit their whole flight several times (amplification ≈28×) while the
    facebook.com hosts send it once (≈5×).  After the disclosure all hosts
    behave homogeneously with a single flight (mean ≈5×).
    """
    hosts: List[QuicServiceHost] = []
    for octet, domain, chain in _meta_pop_chain_rows():
        if patched:
            profile = MVFST_PATCHED
        elif octet in META_HIGH_AMPLIFICATION_OCTETS:
            profile = MVFST_LIKE
        else:
            profile = MVFST_PATCHED  # single flight, still above the limit
        hosts.append(
            QuicServiceHost(
                address=prefix.address_at(octet),
                domain=domain,
                chain=chain,
                profile=profile,
            )
        )
    return hosts
