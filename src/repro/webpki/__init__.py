"""Synthetic Web/PKI population.

This package generates the "Internet" the scanners measure: a ranked domain
list (Tranco equivalent), hosting providers with their QUIC behaviour, the CA
chains they deploy, and the per-domain deployments (DNS outcome, HTTPS and
QUIC support, certificate chain, load-balancer encapsulation).

All knobs are calibrated to the distributions reported in the paper so the
reproduced figures have the same shape; see DESIGN.md §2 and §5 for the
calibration targets and the substitution rationale.
"""

from .tranco import TrancoList, generate_tranco_list
from .providers import (
    HostingProvider,
    DeploymentArchetype,
    PROVIDERS,
    QUIC_ARCHETYPES,
    HTTPS_ONLY_ARCHETYPES,
    sample_san_count,
)
from .deployment import DomainDeployment, ServiceCategory
from .skeleton import ChainSpec, DeploymentSkeleton
from .population import (
    GENERATION_SHARD_SIZE,
    InternetPopulation,
    PopulationConfig,
    PopulationShard,
    SkeletonShard,
    deployments_for_range,
    generate_population,
    generate_shard,
    iter_population_shards,
)

__all__ = [
    "TrancoList",
    "generate_tranco_list",
    "HostingProvider",
    "DeploymentArchetype",
    "PROVIDERS",
    "QUIC_ARCHETYPES",
    "HTTPS_ONLY_ARCHETYPES",
    "sample_san_count",
    "DomainDeployment",
    "ServiceCategory",
    "ChainSpec",
    "DeploymentSkeleton",
    "GENERATION_SHARD_SIZE",
    "InternetPopulation",
    "PopulationConfig",
    "PopulationShard",
    "SkeletonShard",
    "deployments_for_range",
    "generate_population",
    "generate_shard",
    "iter_population_shards",
]
