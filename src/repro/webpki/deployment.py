"""Per-domain deployment description.

A :class:`DomainDeployment` is the ground truth the simulated Internet holds
for one domain: how DNS answers, which address serves it, whether it speaks
HTTPS and/or QUIC, the certificate chain it delivers, and how its QUIC stack
behaves.  The scanners never look at this object directly for their results —
they measure through the DNS/HTTP/QUIC layers — but tests do, to verify that
measurements recover the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..netsim.address import IPv4Address
from ..netsim.dns import DnsRcode
from ..quic.profiles import ServerBehaviorProfile
from ..x509.chain import CertificateChain


class ServiceCategory(Enum):
    """Coarse category a domain ends up in after the scans."""

    QUIC = "quic"                     # reachable via HTTPS and QUIC
    HTTPS_ONLY = "https-only"         # TLS certificate, no QUIC service
    INSECURE = "insecure"             # resolves, but no TLS on port 443
    UNRESOLVED = "unresolved"         # DNS failure or no A record

    @property
    def has_certificate(self) -> bool:
        return self in (ServiceCategory.QUIC, ServiceCategory.HTTPS_ONLY)


@dataclass(frozen=True)
class DomainDeployment:
    """Everything that defines one domain's behaviour in the simulation."""

    domain: str
    rank: int
    category: ServiceCategory
    dns_rcode: DnsRcode
    address: Optional[IPv4Address] = None
    https_chain: Optional[CertificateChain] = None
    quic_chain: Optional[CertificateChain] = None
    server_behavior: Optional[ServerBehaviorProfile] = None
    provider: Optional[str] = None
    archetype: Optional[str] = None
    ca_profile: Optional[str] = None
    #: Extra bytes added by load-balancer encapsulation on the path to the
    #: QUIC backend (0 when the service is not tunnelled).
    encapsulation_overhead: int = 0
    #: Domain this one redirects to (HTTP 3xx / meta refresh), if any.
    redirect_to: Optional[str] = None

    # -- convenience -----------------------------------------------------------

    @property
    def resolves(self) -> bool:
        return self.dns_rcode is DnsRcode.NOERROR and self.address is not None

    @property
    def supports_https(self) -> bool:
        return self.https_chain is not None

    @property
    def supports_quic(self) -> bool:
        return self.category is ServiceCategory.QUIC and self.quic_chain is not None

    @property
    def delivered_chain(self) -> Optional[CertificateChain]:
        """The chain a client sees (QUIC chain when present, else HTTPS)."""
        return self.quic_chain or self.https_chain

    @property
    def rank_group(self) -> int:
        """0-based 100k rank-group index (paper Appendix D)."""
        return (self.rank - 1) // 100_000

    def rank_group_label(self, group_size: int = 100_000) -> str:
        group = (self.rank - 1) // group_size
        start = group * group_size + 1
        end = (group + 1) * group_size + 1
        return f"[{start}, {end})"
