"""Hosting providers and deployment archetypes.

A *deployment archetype* bundles everything that determines how a domain
behaves in the measurements: which provider serves it, which CA chain profile
it deploys, which QUIC server behaviour the provider's stack exhibits, how
many subject alternative names its leaf carries, and how likely the service
sits behind an encapsulating load balancer.

The archetype weights are the paper's observed shares (Figure 7a/7b for chain
popularity, §4.1 for behaviour shares); the population generator samples from
them, so every downstream figure inherits the calibration from one place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..netsim.address import IPv4Prefix
from ..x509.ca import regional_profile_labels
from ..quic.profiles import (
    BUILTIN_PROFILES,
    CLOUDFLARE_LIKE,
    GOOGLE_LIKE,
    MVFST_LIKE,
    MVFST_PATCHED,
    RETRY_ALWAYS,
    RFC_COMPLIANT,
    ServerBehaviorProfile,
)
from ..x509.keys import KeyAlgorithm


@dataclass(frozen=True)
class HostingProvider:
    """A hosting organisation with address space and a QUIC stack behaviour."""

    name: str
    behavior: ServerBehaviorProfile
    prefixes: Tuple[IPv4Prefix, ...]
    is_hypergiant: bool = False

    def prefix_for(self, index: int) -> IPv4Prefix:
        return self.prefixes[index % len(self.prefixes)]


PROVIDERS: Dict[str, HostingProvider] = {
    "cloudflare": HostingProvider(
        name="cloudflare",
        behavior=CLOUDFLARE_LIKE,
        prefixes=(IPv4Prefix.parse("104.16.0.0/16"), IPv4Prefix.parse("172.67.0.0/16")),
        is_hypergiant=True,
    ),
    "google": HostingProvider(
        name="google",
        behavior=GOOGLE_LIKE,
        prefixes=(IPv4Prefix.parse("142.250.0.0/16"), IPv4Prefix.parse("172.217.0.0/16")),
        is_hypergiant=True,
    ),
    "meta": HostingProvider(
        name="meta",
        behavior=MVFST_LIKE,
        prefixes=(IPv4Prefix.parse("157.240.20.0/24"),),
        is_hypergiant=True,
    ),
    "generic-quic-hosting": HostingProvider(
        name="generic-quic-hosting",
        behavior=RFC_COMPLIANT,
        prefixes=(IPv4Prefix.parse("185.0.0.0/12"), IPv4Prefix.parse("51.0.0.0/10")),
    ),
    "retry-fronted": HostingProvider(
        name="retry-fronted",
        behavior=RETRY_ALWAYS,
        prefixes=(IPv4Prefix.parse("203.0.112.0/22"),),
    ),
    "https-only-hosting": HostingProvider(
        name="https-only-hosting",
        behavior=RFC_COMPLIANT,  # irrelevant: these services never answer QUIC
        prefixes=(IPv4Prefix.parse("93.0.0.0/10"), IPv4Prefix.parse("23.0.0.0/12")),
    ),
}


@dataclass(frozen=True)
class DeploymentArchetype:
    """One way a domain can be deployed, with its sampling weight."""

    name: str
    weight: float
    provider: str
    ca_profile: str
    #: When set, the CA profile is drawn uniformly from this pool per domain
    #: instead of using ``ca_profile`` (used for the long tail of regional CAs).
    ca_profile_pool: Tuple[str, ...] = ()
    #: Force a leaf key algorithm, or None to use the CA profile's default.
    leaf_key_algorithm: Optional[KeyAlgorithm] = None
    #: (minimum, mode, maximum) of the SAN-count triangular distribution.
    san_count_range: Tuple[int, int, int] = (1, 2, 6)
    #: Probability that the service sits behind an encapsulating load balancer.
    tunnel_probability: float = 0.0
    #: Encapsulation overhead in bytes when tunnelled (GRE/IPinIP ≈ 24–48).
    tunnel_overhead: int = 28
    #: Probability of a deployment quirk that ships a huge, bloated chain
    #: (duplicated intermediates / root / hundreds of SANs).
    bloated_chain_probability: float = 0.0


def sample_san_count(rng: random.Random, archetype: DeploymentArchetype) -> int:
    """Sample how many DNS SANs the leaf certificate carries.

    Most leaves carry a handful of names; a heavy tail produces the
    "cruise-liner" certificates of the paper's Appendix E.
    """
    low, mode, high = archetype.san_count_range
    count = int(round(rng.triangular(low, high, mode)))
    roll = rng.random()
    if roll < 0.001:
        count = rng.randint(200, 450)
    elif roll < 0.01:
        count = rng.randint(50, 200)
    elif roll < 0.05:
        count = rng.randint(10, 50)
    return max(1, count)


# ---------------------------------------------------------------------------
# QUIC service archetypes — weights follow Figure 7(a) and §4.1
# ---------------------------------------------------------------------------

QUIC_ARCHETYPES: Tuple[DeploymentArchetype, ...] = (
    DeploymentArchetype(
        name="cloudflare-ecdsa",
        weight=61.54,
        provider="cloudflare",
        ca_profile="Cloudflare ECC CA-3",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(2, 3, 4),
        tunnel_probability=0.02,
    ),
    DeploymentArchetype(
        name="lets-encrypt-long-rsa",
        weight=16.80,
        provider="generic-quic-hosting",
        ca_profile="Let's Encrypt R3 + cross-signed X1",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 8),
        tunnel_probability=0.01,
    ),
    DeploymentArchetype(
        name="lets-encrypt-long-ecdsa",
        weight=10.31,
        provider="generic-quic-hosting",
        ca_profile="Let's Encrypt R3 + root X1",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(1, 3, 10),
        tunnel_probability=0.01,
    ),
    DeploymentArchetype(
        name="google-1c3",
        weight=1.89,
        provider="google",
        ca_profile="Google 1C3",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(1, 3, 12),
        tunnel_probability=0.30,
    ),
    DeploymentArchetype(
        name="google-1d4",
        weight=1.53,
        provider="google",
        ca_profile="Google 1D4",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(1, 2, 8),
        tunnel_probability=0.30,
    ),
    DeploymentArchetype(
        name="google-1p5",
        weight=1.27,
        provider="google",
        ca_profile="Google 1P5",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 8),
        tunnel_probability=0.30,
    ),
    DeploymentArchetype(
        name="sectigo-ecc",
        weight=1.03,
        provider="generic-quic-hosting",
        ca_profile="Sectigo ECC DV",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(1, 2, 6),
    ),
    DeploymentArchetype(
        name="cpanel-comodo",
        weight=0.92,
        provider="generic-quic-hosting",
        ca_profile="cPanel / Comodo",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(2, 4, 12),
    ),
    DeploymentArchetype(
        name="lets-encrypt-e1-short",
        weight=0.83,
        provider="generic-quic-hosting",
        ca_profile="Let's Encrypt E1 (short)",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(1, 2, 4),
    ),
    DeploymentArchetype(
        name="globalsign-atlas",
        weight=0.37,
        provider="generic-quic-hosting",
        ca_profile="GlobalSign Atlas R3 DV",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 6),
    ),
    # Long tail beyond the top-10 parent chains (≈3.5 % of QUIC services).
    DeploymentArchetype(
        name="quic-tail-sectigo-rsa",
        weight=1.40,
        provider="generic-quic-hosting",
        ca_profile="Sectigo RSA DV / USERTRUST",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 3, 10),
    ),
    DeploymentArchetype(
        name="quic-tail-digicert",
        weight=0.30,
        provider="generic-quic-hosting",
        ca_profile="DigiCert TLS RSA 2020",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 4, 16),
        bloated_chain_probability=0.01,
    ),
    DeploymentArchetype(
        name="quic-tail-amazon-long",
        weight=1.09,
        provider="generic-quic-hosting",
        ca_profile="Amazon RSA 2048 M02 (long)",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 3, 10),
    ),
    # Borderline chains whose first flight fits only for the largest client
    # Initials — these produce the Multi-RTT → 1-RTT shift across the sweep.
    DeploymentArchetype(
        name="quic-tail-godaddy",
        weight=0.50,
        provider="generic-quic-hosting",
        ca_profile="GoDaddy G2",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 6),
    ),
    DeploymentArchetype(
        name="meta-mvfst",
        weight=0.15,
        provider="meta",
        ca_profile="DigiCert SHA2 + root (Meta)",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(20, 40, 80),
    ),
    DeploymentArchetype(
        name="retry-always-fronted",
        weight=0.07,
        provider="retry-fronted",
        ca_profile="Let's Encrypt R3 (short)",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 4),
    ),
)


# ---------------------------------------------------------------------------
# HTTPS-only service archetypes — weights follow Figure 7(b)
# ---------------------------------------------------------------------------

HTTPS_ONLY_ARCHETYPES: Tuple[DeploymentArchetype, ...] = (
    DeploymentArchetype(
        name="https-lets-encrypt-long",
        weight=41.42,
        provider="https-only-hosting",
        ca_profile="Let's Encrypt R3 + cross-signed X1",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 4, 24),
    ),
    DeploymentArchetype(
        name="https-sectigo-usertrust",
        weight=6.33,
        provider="https-only-hosting",
        ca_profile="Sectigo RSA DV / USERTRUST",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 3, 10),
    ),
    DeploymentArchetype(
        name="https-cpanel-comodo",
        weight=5.03,
        provider="https-only-hosting",
        ca_profile="cPanel / Comodo",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(2, 4, 12),
    ),
    DeploymentArchetype(
        name="https-amazon-long",
        weight=4.55,
        provider="https-only-hosting",
        ca_profile="Amazon RSA 2048 M02 (long)",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 4, 20),
    ),
    DeploymentArchetype(
        name="https-digicert-sha2",
        weight=4.24,
        provider="https-only-hosting",
        ca_profile="DigiCert SHA2",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 4, 20),
        bloated_chain_probability=0.02,
    ),
    DeploymentArchetype(
        name="https-digicert-tls-rsa",
        weight=4.03,
        provider="https-only-hosting",
        ca_profile="DigiCert TLS RSA 2020",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 4, 20),
    ),
    DeploymentArchetype(
        name="https-godaddy",
        weight=1.76,
        provider="https-only-hosting",
        ca_profile="GoDaddy G2",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 8),
    ),
    DeploymentArchetype(
        name="https-lets-encrypt-short",
        weight=1.60,
        provider="https-only-hosting",
        ca_profile="Let's Encrypt R3 (short)",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 6),
    ),
    DeploymentArchetype(
        name="https-cloudflare-no-quic",
        weight=1.55,
        provider="https-only-hosting",
        ca_profile="Cloudflare ECC CA-3",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(2, 3, 4),
    ),
    DeploymentArchetype(
        name="https-starfield",
        weight=1.40,
        provider="https-only-hosting",
        ca_profile="Starfield G2 + root",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 8),
    ),
    # The remaining ≈28 % of HTTPS-only services use a long tail of chains;
    # most of it is spread over many small regional CAs so that the top-10
    # parent chains only cover ≈72 % of HTTPS-only services (Figure 7b).
    DeploymentArchetype(
        name="https-tail-regional",
        weight=21.00,
        provider="https-only-hosting",
        ca_profile="Regional DV #1",
        ca_profile_pool=tuple(regional_profile_labels()),
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 3, 16),
        bloated_chain_probability=0.005,
    ),
    DeploymentArchetype(
        name="https-tail-lets-encrypt-rsa",
        weight=2.50,
        provider="https-only-hosting",
        ca_profile="Let's Encrypt R3 (short)",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 3, 16),
        bloated_chain_probability=0.005,
    ),
    DeploymentArchetype(
        name="https-tail-amazon-short",
        weight=2.00,
        provider="https-only-hosting",
        ca_profile="Amazon RSA 2048 M02 (short)",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 3, 16),
    ),
    DeploymentArchetype(
        name="https-tail-globalsign",
        weight=1.50,
        provider="https-only-hosting",
        ca_profile="GlobalSign Atlas R3 DV",
        leaf_key_algorithm=KeyAlgorithm.RSA_2048,
        san_count_range=(1, 2, 10),
    ),
    DeploymentArchetype(
        name="https-tail-ecdsa",
        weight=1.09,
        provider="https-only-hosting",
        ca_profile="Let's Encrypt E1 (short)",
        leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
        san_count_range=(1, 2, 6),
    ),
)


# Cumulative weights, precomputed once: ``choices(cum_weights=...)`` consumes
# the same single ``random()`` draw — and selects the same archetype — as
# ``choices(weights=...)`` over the same weights, but skips the per-call
# accumulation; the generator samples an archetype per resolved domain.
def _cumulative(archetypes: Sequence[DeploymentArchetype]) -> Tuple[float, ...]:
    total = 0.0
    out = []
    for archetype in archetypes:
        total += archetype.weight
        out.append(total)
    return tuple(out)


_QUIC_CUM_WEIGHTS = _cumulative(QUIC_ARCHETYPES)
_HTTPS_ONLY_CUM_WEIGHTS = _cumulative(HTTPS_ONLY_ARCHETYPES)


def choose_quic_archetype(rng: random.Random) -> DeploymentArchetype:
    return rng.choices(QUIC_ARCHETYPES, cum_weights=_QUIC_CUM_WEIGHTS)[0]


def choose_https_only_archetype(rng: random.Random) -> DeploymentArchetype:
    return rng.choices(HTTPS_ONLY_ARCHETYPES, cum_weights=_HTTPS_ONLY_CUM_WEIGHTS)[0]
