"""Reproduction of "On the Interplay between TLS Certificates and QUIC Performance".

The package is organised bottom-up:

* substrates: :mod:`repro.asn1`, :mod:`repro.x509`, :mod:`repro.tls`,
  :mod:`repro.quic`, :mod:`repro.netsim`, :mod:`repro.webpki`,
* measurement: :mod:`repro.scanners`,
* analysis: :mod:`repro.analysis` (one module per paper figure/table),
* the paper's contribution as an API: :mod:`repro.core`.

Quickstart::

    from repro.webpki import generate_population, PopulationConfig
    from repro.scanners import MeasurementCampaign
    from repro.analysis.report import build_report

    population = generate_population(PopulationConfig(size=5000))
    results = MeasurementCampaign(population=population, run_sweep=True).run()
    print(build_report(results).text)
"""

from .core import (
    ANTI_AMPLIFICATION_FACTOR,
    HandshakeClass,
    InitialSizeCache,
    amplification_factor,
    amplification_limit,
    classify_flight,
    predict_handshake,
    required_initial_size,
    run_compression_study,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ANTI_AMPLIFICATION_FACTOR",
    "HandshakeClass",
    "InitialSizeCache",
    "amplification_factor",
    "amplification_limit",
    "classify_flight",
    "predict_handshake",
    "required_initial_size",
    "run_compression_study",
]
