"""Columnar scan backend: whole-shard arithmetic instead of per-domain objects.

``scan_shard`` builds a resolver, an origin map, a UDP fabric and thousands of
frozen QUIC/TLS wire objects per shard, only to reduce them to the counters and
compact rows of a :class:`~repro.scanners.streaming.ShardSummary` moments
later.  This module fuses the two steps: it lowers a shard's deployments into
flat columns (chain payload lengths, DEFLATE lengths, CertificateVerify sizes,
behaviour profiles, Initial sizes) and computes the wire-size arithmetic,
handshake classification and amplification-ratio math as batch passes over
those columns, emitting the ``ShardSummary`` directly.

The backend contract (see docs/ARCHITECTURE.md, "Columnar scan core"):

* **Byte-identical output.**  ``summarize_shard_columnar(task, deployments,
  spec)`` returns exactly the summary ``summarize_shard(task, deployments,
  scan_shard(task), spec)`` returns — same counters, same float-summation
  order, same flight-plan cache counters (replayed against a real
  :class:`~repro.quic.server.FlightPlanCache` with sentinel entries).  The
  object path stays the differential reference
  (``tests/test_columnar_scan.py``).
* **Constants come from the real objects.**  TLS message sizes are read off
  freshly built :mod:`~repro.tls.handshake_messages` instances at import time,
  so the kernel cannot drift from the wire model silently; only the *per
  domain* arithmetic is mirrored by hand (and pinned per formula by
  ``tests/test_properties.py``).
* **One DEFLATE per chain.**  The object path compresses a chain once per
  negotiated flight plus once per supported algorithm in the compression scan
  plus once in the synthetic reduction; the kernel runs zlib once per distinct
  chain and scales the calibrated per-algorithm factors off that measurement
  (the same split :func:`~repro.tls.cert_compression.compressed_size_for_deflate`
  exposes).

Backend selection is threaded through ``ShardTask.scan_backend``; use
``--scan-backend {object,columnar}`` on the CLI or the ``REPRO_SCAN_BACKEND``
environment knob (streaming runs only — the eager pipeline keeps its
full-observation internals unless a caller opts in explicitly).
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.figures import figure02b, figure07, figure08, figure12, figure13, table02
from ..netsim.dns import DnsRcode
from ..netsim.http import target_domain
from ..quic.anti_amplification import ANTI_AMPLIFICATION_FACTOR
from ..quic.frames import AckFrame
from ..quic.handshake import HandshakeClass
from ..quic.packet import AEAD_TAG_SIZE, MIN_CLIENT_INITIAL_SIZE
from ..quic.profiles import CoalescenceMode, RetryPolicy, ServerBehaviorProfile
from ..quic.server import FlightPlanCache
from ..quic.varint import varint_size
from ..tls.cert_compression import (
    CertificateCompressionAlgorithm,
    chain_deflate_size,
    chain_payload_size,
    compressed_size_for_deflate,
)
from ..tls.handshake_messages import (
    CertificateVerify,
    EncryptedExtensions,
    Finished,
    ServerHello,
)
from ..webpki.deployment import DomainDeployment, ServiceCategory
from ..x509.certificate import Certificate
from ..x509.chain import (
    CertificateChain,
    certificates_correctly_ordered,
    chain_fingerprint,
    parent_chain_labels,
)
from ..x509.field_sizes import field_size_row, san_byte_share
from ..x509.keys import KeyAlgorithm
from .compression_scanner import ALL_ALGORITHMS
from .https_scanner import ScanFunnel
from .quicreach import HandshakeObservation
from .sharding import ShardTask
from .streaming import ReductionSpec, ShardSummary, take_per_provider

# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------

#: The two shard-scan implementations.  ``object`` is the reference pipeline
#: (stages 1–4 over real resolver/origin/fabric objects); ``columnar`` is the
#: fused arithmetic kernel of this module.
SCAN_BACKENDS: Tuple[str, ...] = ("object", "columnar")

#: Environment knob consulted by streaming runs when no explicit backend is
#: passed.  An empty value counts as unset.
SCAN_BACKEND_ENV = "REPRO_SCAN_BACKEND"


def resolve_scan_backend(explicit: Optional[str] = None) -> str:
    """Resolve the scan backend: explicit argument > environment > ``object``."""
    backend = explicit
    source = "scan backend"
    if backend is None:
        backend = os.environ.get(SCAN_BACKEND_ENV) or None
        source = SCAN_BACKEND_ENV
    if backend is None:
        return "object"
    if backend not in SCAN_BACKENDS:
        choices = ", ".join(SCAN_BACKENDS)
        raise ValueError(f"unknown {source} {backend!r} (choose from: {choices})")
    return backend


# ---------------------------------------------------------------------------
# Wire-model constants, read off the real objects at import time
# ---------------------------------------------------------------------------

_SERVER_HELLO_SIZE = ServerHello().size
_ENCRYPTED_EXTENSIONS_SIZE = EncryptedExtensions().size
_FINISHED_SIZE = Finished().size
#: CertificateVerify size per server key algorithm (the signature length
#: follows the leaf's algorithm).
_CERT_VERIFY_SIZE: Dict[KeyAlgorithm, int] = {
    algorithm: CertificateVerify(algorithm).size for algorithm in KeyAlgorithm
}
_ACK_FRAME_SIZE = AckFrame(0).size
#: CRYPTO frame wrapping the ServerHello at stream offset 0.
_SH_FRAME_SIZE = (
    1 + varint_size(0) + varint_size(_SERVER_HELLO_SIZE) + _SERVER_HELLO_SIZE
)

#: Packet size = base + packet-number field + payload + length-field varint;
#: the base folds the long header (23 bytes with 8-byte connection IDs) plus
#: the AEAD tag, and for Initials the empty retry-token length varint.
_INITIAL_BASE = 23 + 1 + AEAD_TAG_SIZE
_HANDSHAKE_BASE = 23 + AEAD_TAG_SIZE
#: Retry packets carry no length/packet-number fields: header + token + tag.
_RETRY_BASE = 23 + AEAD_TAG_SIZE
_RETRY_TOKEN_PREFIX_LEN = len(b"retry-token:")


def _pn_len(packet_number: int) -> int:
    if packet_number < 1 << 8:
        return 1
    if packet_number < 1 << 16:
        return 2
    if packet_number < 1 << 24:
        return 3
    return 4


def _packet_size(base: int, payload: int, pn_len: int) -> int:
    return base + pn_len + payload + varint_size(payload + pn_len + AEAD_TAG_SIZE)


def _padded_packet_size(
    base: int, payload: int, pn_len: int, target: int
) -> Tuple[int, int]:
    """Mirror ``QuicPacket.with_padding_to``: (padded size, padding bytes added).

    Growing the payload can grow the length-field varint, overshooting the
    target; the packet model then trims the padding run by the overshoot when
    possible.
    """
    size = _packet_size(base, payload, pn_len)
    deficit = target - size
    if deficit <= 0:
        return size, 0
    candidate = _packet_size(base, payload + deficit, pn_len)
    overshoot = candidate - target
    pad = deficit
    if overshoot > 0 and deficit - overshoot > 0:
        pad = deficit - overshoot
    return _packet_size(base, payload + pad, pn_len), pad


# ---------------------------------------------------------------------------
# First-flight arithmetic (mirrors QuicServer._build_packets/_build_datagrams/
# _pad_datagram/_apply_amplification_limit)
# ---------------------------------------------------------------------------

#: (profile id, certificate message size, CertificateVerify size) ->
#: (datagram rows ``(size, ack_eliciting, padding_bytes)``, total bytes).
#: Process-wide: flights depend only on these three inputs, and the handful of
#: (profile, chain-size-class) combinations repeats across every shard.
#: Profiles are keyed by ``id`` — they are the immortal module singletons of
#: :mod:`repro.quic.profiles`, so identity is stable for the process lifetime
#: and the key skips the dataclass hash (which re-hashes every enum field).
_FLIGHT_ROWS: Dict[tuple, Tuple[Tuple[Tuple[int, bool, int], ...], int]] = {}

#: (profile id, certificate size, verify size, Initial size) ->
#: (first-RTT bytes, deferred bytes) for an unvalidated client.
_FLIGHT_SPLITS: Dict[tuple, Tuple[int, int]] = {}


def _flight_rows(
    profile: ServerBehaviorProfile, certificate_size: int, verify_size: int
) -> Tuple[Tuple[Tuple[int, bool, int], ...], int]:
    key = (id(profile), certificate_size, verify_size)
    cached = _FLIGHT_ROWS.get(key)
    if cached is not None:
        return cached

    # Initial-level packets: (payload, packet number, ack-eliciting).
    if profile.coalescence is CoalescenceMode.SPLIT_INITIAL_ACK:
        initials = [(_ACK_FRAME_SIZE, 0, False), (_SH_FRAME_SIZE, 1, True)]
    else:
        initials = [(_ACK_FRAME_SIZE + _SH_FRAME_SIZE, 0, True)]

    # Handshake-level CRYPTO stream, chunked like _build_packets.
    stream_len = (
        _ENCRYPTED_EXTENSIONS_SIZE + certificate_size + verify_size + _FINISHED_SIZE
    )
    per_packet_overhead = 40 + AEAD_TAG_SIZE
    full_chunk = profile.mtu - per_packet_overhead
    chunks: List[int] = []
    if profile.coalescence is CoalescenceMode.FULL:
        last_payload, last_pn, _ = initials[-1]
        last_initial_size = _packet_size(_INITIAL_BASE, last_payload, _pn_len(last_pn))
        space_next_to_initial = profile.mtu - last_initial_size - per_packet_overhead
        if space_next_to_initial > 64:
            first = min(space_next_to_initial, stream_len)
            if first:
                chunks.append(first)
            stream_len -= first
    while stream_len > 0:
        take = min(full_chunk, stream_len)
        chunks.append(take)
        stream_len -= take
    if not chunks:
        chunks.append(0)

    # Packets: (is_initial, size, ack-eliciting, payload, pn_len).
    packets: List[Tuple[bool, int, bool, int, int]] = []
    for payload, packet_number, eliciting in initials:
        pn_len = _pn_len(packet_number)
        packets.append(
            (True, _packet_size(_INITIAL_BASE, payload, pn_len), eliciting, payload, pn_len)
        )
    offset = 0
    for index, chunk in enumerate(chunks):
        frame = 1 + varint_size(offset) + varint_size(chunk) + chunk
        pn_len = _pn_len(index)
        packets.append(
            (False, _packet_size(_HANDSHAKE_BASE, frame, pn_len), True, frame, pn_len)
        )
        offset += chunk

    # Datagrams: greedy MTU coalescing (FULL) or one packet per datagram.
    if profile.coalescence is CoalescenceMode.FULL:
        datagrams: List[List[Tuple[bool, int, bool, int, int]]] = []
        current: List[Tuple[bool, int, bool, int, int]] = []
        current_size = 0
        for packet in packets:
            if current and current_size + packet[1] > profile.mtu:
                datagrams.append(current)
                current, current_size = [], 0
            current.append(packet)
            current_size += packet[1]
        if current:
            datagrams.append(current)
    else:
        datagrams = [[packet] for packet in packets]

    # Datagram-level Initial padding (RFC 9000 §14.1 / pad_all profiles).
    rows: List[Tuple[int, bool, int]] = []
    total = 0
    for datagram in datagrams:
        size = sum(packet[1] for packet in datagram)
        eliciting = any(packet[2] for packet in datagram)
        contains_initial = any(packet[0] for packet in datagram)
        padding = 0
        if (
            contains_initial
            and size < MIN_CLIENT_INITIAL_SIZE
            and (eliciting or profile.pad_all_initial_datagrams)
        ):
            deficit = MIN_CLIENT_INITIAL_SIZE - size
            is_initial, last_size, _, payload, pn_len = datagram[-1]
            base = _INITIAL_BASE if is_initial else _HANDSHAKE_BASE
            new_size, padding = _padded_packet_size(
                base, payload, pn_len, last_size + deficit
            )
            size += new_size - last_size
        rows.append((size, eliciting, padding))
        total += size

    result = (tuple(rows), total)
    _FLIGHT_ROWS[key] = result
    return result


def _first_rtt_split(
    profile: ServerBehaviorProfile,
    certificate_size: int,
    verify_size: int,
    initial_size: int,
) -> Tuple[int, int]:
    """First-RTT/deferred byte split under the profile's own accounting."""
    key = (id(profile), certificate_size, verify_size, initial_size)
    cached = _FLIGHT_SPLITS.get(key)
    if cached is not None:
        return cached
    rows, _ = _flight_rows(profile, certificate_size, verify_size)
    limit = ANTI_AMPLIFICATION_FACTOR * initial_size
    ignore = not profile.enforce_amplification_limit
    exclude = not profile.count_padding_against_limit
    sent = unaccounted = first = deferred = 0
    blocked = False
    for size, eliciting, padding in rows:
        if blocked:
            deferred += size
            continue
        padding_only = padding > 0 and not eliciting
        allowed = ignore or sent - unaccounted + size <= limit
        if allowed or (exclude and padding_only):
            sent += size
            if exclude and padding_only:
                unaccounted += size
            first += size
        else:
            blocked = True
            deferred += size
    result = (first, deferred)
    _FLIGHT_SPLITS[key] = result
    return result


# ---------------------------------------------------------------------------
# Per-chain columns
# ---------------------------------------------------------------------------

class _ChainColumns:
    """The numbers the kernel needs from one certificate chain.

    Payload and DEFLATE lengths live as memos *on the chain instance*
    (:func:`~repro.tls.cert_compression.chain_payload_size` /
    :func:`~repro.tls.cert_compression.chain_deflate_size`), so the handshake
    path and the ground-truth folds share one measurement per chain —
    ``deflate_len`` stays lazy: only chains that actually negotiate or
    measure compression pay the zlib pass, and exactly once.
    """

    __slots__ = ("chain", "payload_len", "verify_size")

    def __init__(self, chain: CertificateChain) -> None:
        self.chain = chain
        self.payload_len = chain_payload_size(chain)
        self.verify_size = _CERT_VERIFY_SIZE[chain.leaf.key_algorithm]

    @property
    def deflate_len(self) -> int:
        return chain_deflate_size(self.chain)


def _certificate_message_size(
    columns: _ChainColumns,
    profile: ServerBehaviorProfile,
    offer: Tuple[CertificateCompressionAlgorithm, ...],
) -> int:
    """Wire size of the (possibly compressed) Certificate message.

    Uncompressed: 4-byte handshake header + 1-byte request context + payload.
    Compressed (RFC 8879): header + 2-byte algorithm + 3-byte uncompressed
    length + compressed payload.
    """
    negotiated = None
    if offer:
        for algorithm in offer:
            if algorithm in profile.compression_algorithms:
                negotiated = algorithm
                break
    if negotiated is None:
        return 5 + columns.payload_len
    return 9 + compressed_size_for_deflate(negotiated, columns.deflate_len)


def _flight_cache_entry():
    """Sentinel stored in the replayed flight-plan cache (any non-None value)."""
    return True


def _measure(
    domain: str,
    profile: ServerBehaviorProfile,
    columns: _ChainColumns,
    offer: Tuple[CertificateCompressionAlgorithm, ...],
    initial_size: int,
    cache: FlightPlanCache,
) -> Tuple[HandshakeClass, int, int, int, int, int]:
    """One handshake's observables: (class, first-RTT, total, TLS, overhead, RTTs).

    Replays the object path's flight-plan cache key sequence against ``cache``
    so the per-shard cache counters stay byte-identical.
    """
    certificate_size = _certificate_message_size(columns, profile, offer)
    tls_total = (
        _SERVER_HELLO_SIZE
        + _ENCRYPTED_EXTENSIONS_SIZE
        + certificate_size
        + columns.verify_size
        + _FINISHED_SIZE
    )
    # Keyed by identity, not content: within one kernel call chain instances
    # are stable and no two distinct instances encode the same bytes (every
    # leaf embeds its domain), and behaviour profiles are the module
    # singletons of repro.quic.profiles (pairwise unequal), so the hit/miss
    # sequence — the part the differential suite pins — matches the object
    # path's fingerprint-keyed cache without hashing chains or profiles.
    key = (domain, id(profile), id(columns.chain), offer)
    cache.get_or_build(key, _flight_cache_entry)
    if profile.retry_policy is RetryPolicy.ALWAYS:
        # The client echoes the token and the server responds again (second
        # cache visit); a validated address releases the whole flight at once.
        cache.get_or_build(key, _flight_cache_entry)
        token_len = _RETRY_TOKEN_PREFIX_LEN + len(domain.encode("ascii")[:32])
        retry_size = _RETRY_BASE + token_len
        _, flight_total = _flight_rows(profile, certificate_size, columns.verify_size)
        first = total = retry_size + flight_total
        return (
            HandshakeClass.RETRY,
            first,
            total,
            tls_total,
            max(total - tls_total, 0),
            2,
        )
    first, deferred = _first_rtt_split(
        profile, certificate_size, columns.verify_size, initial_size
    )
    total = first + deferred
    if deferred:
        handshake_class, round_trips = HandshakeClass.MULTI_RTT, 2
    elif first > ANTI_AMPLIFICATION_FACTOR * initial_size:
        handshake_class, round_trips = HandshakeClass.AMPLIFICATION, 1
    else:
        handshake_class, round_trips = HandshakeClass.ONE_RTT, 1
    return (
        handshake_class,
        first,
        total,
        tls_total,
        max(total - tls_total, 0),
        round_trips,
    )


def _accepts_initial(deployment: DomainDeployment, initial_size: int) -> bool:
    """Mirror QuicServiceHost.accepts_initial (path MTU 1500, UDP/IP 28)."""
    return initial_size <= 1500 - 28 - deployment.encapsulation_overhead


# ---------------------------------------------------------------------------
# Shape-deduplicated ground-truth folds
# ---------------------------------------------------------------------------

class _ParentFold:
    """Leaf-independent facts of one distinct non-leaf certificate tuple.

    Every chain in a shard is pairwise distinct (each leaf embeds its domain
    name), but the certificates *above* the leaf are a handful of shared CA
    hierarchy instances.  This record computes everything the ground-truth
    figure folds need from that shared suffix — field-size rows, Figure 7
    labels / internal ordering / per-depth sizes, key-algorithm counts — once,
    and the kernel scales it by how many delivered chains carry the tuple
    (the shape-dedup contract, see docs/ARCHITECTURE.md).
    """

    __slots__ = (
        "parent_sizes", "parent_total", "parents_ordered", "link_subject",
        "pc_key", "row_counts", "alg_counts",
        "delivered", "quic_small", "quic_large", "https_count",
    )

    def __init__(self, parents: Tuple[Certificate, ...]) -> None:
        self.parent_sizes = tuple(cert.size for cert in parents)
        self.parent_total = sum(self.parent_sizes)
        # The leaf -> first-parent link is per chain; everything internal to
        # the parent tuple is shared.
        self.parents_ordered = certificates_correctly_ordered(parents)
        self.link_subject = parents[0].subject.encode() if parents else None
        labels = parent_chain_labels(parents)
        self.pc_key: Optional[Tuple[str, ...]] = tuple(labels) if labels else None
        row_counts: Dict[tuple, int] = {}
        alg_counts: Dict[KeyAlgorithm, int] = {}
        for cert in parents:
            row = field_size_row(cert)
            row_counts[row] = row_counts.get(row, 0) + 1
            algorithm = cert.key_algorithm
            alg_counts[algorithm] = alg_counts.get(algorithm, 0) + 1
        self.row_counts = row_counts
        self.alg_counts = alg_counts
        # Multiplicities, filled in by the category passes.
        self.delivered = 0    # delivered chains carrying this tuple (Fig. 2b)
        self.quic_small = 0   # QUIC chains of total size <= threshold (Fig. 8)
        self.quic_large = 0   # QUIC chains above the threshold
        self.https_count = 0  # HTTPS-only delivered chains (Table 2)


# ---------------------------------------------------------------------------
# The fused shard scan
# ---------------------------------------------------------------------------

def summarize_shard_columnar(
    task: ShardTask,
    deployments: Sequence[DomainDeployment],
    spec: ReductionSpec,
) -> ShardSummary:
    """Scan and reduce one shard in a single pass, no intermediate objects.

    Byte-identical to ``summarize_shard(task, deployments,
    scan_shard(task, deployments=deployments), spec)``; the differential
    suite pins the equality per figure artefact.
    """
    cache = FlightPlanCache()
    quic_deployments = [d for d in deployments if d.category is ServiceCategory.QUIC]
    https_only = [d for d in deployments if d.category is ServiceCategory.HTTPS_ONLY]

    # Stage 1 — the DNS/origin fabric as two dicts (build_resolver_for /
    # build_origins_for + HttpsScanner's lowercasing, last-wins like the real
    # dict construction order).  One pass fills both dicts plus the QUIC host
    # table: each dict sees its entries in the same deployment order the
    # staged builders produce, so last-wins resolution is unchanged.
    dns_zone: Dict[str, Tuple[DnsRcode, bool]] = {}
    # lower-cased name -> (origin domain, https chain, explicit redirect hop).
    origins: Dict[str, Tuple[str, Optional[CertificateChain], Optional[str]]] = {}
    hosts: Dict[str, DomainDeployment] = {}
    lowered_domains: List[str] = []
    category_codes = bytearray()
    category_code_by_id = {
        id(category): code for category, code in figure12.CATEGORY_CODES.items()
    }
    for deployment in deployments:
        lowered = deployment.domain.lower()
        lowered_domains.append(lowered)
        category_codes.append(category_code_by_id[id(deployment.category)])
        if deployment.supports_quic and deployment.address is not None:
            hosts[lowered] = deployment
        if deployment.dns_rcode is not DnsRcode.NOERROR:
            dns_zone[lowered] = (deployment.dns_rcode, False)
            continue
        if deployment.address is None:
            dns_zone[lowered] = (DnsRcode.NOERROR, False)
            continue
        dns_zone[lowered] = (DnsRcode.NOERROR, True)
        redirect = deployment.redirect_to
        if redirect:
            dns_zone[redirect.lower()] = (DnsRcode.NOERROR, True)
        chain = deployment.https_chain
        if redirect and chain is not None:
            origins[redirect.lower()] = (redirect, chain, None)
            origins[lowered] = (
                deployment.domain,
                chain,
                target_domain(f"https://{redirect}/"),
            )
        else:
            origins[lowered] = (deployment.domain, chain, None)
        if deployment.supports_quic:
            hosts[lowered] = deployment

    # The funnel walk of HttpsScanner.scan/_scan_one.
    funnel = ScanFunnel(names_total=len(deployments))
    https_fingerprints: set = set()
    chains_by_requested: Dict[str, CertificateChain] = {}
    for requested in lowered_domains:
        rcode, has_address = dns_zone.get(requested, (DnsRcode.NXDOMAIN, False))
        if rcode is DnsRcode.NOERROR:
            funnel.dns_noerror += 1
        elif rcode is DnsRcode.SERVFAIL:
            funnel.dns_servfail += 1
        elif rcode is DnsRcode.NXDOMAIN:
            funnel.dns_nxdomain += 1
        elif rcode is DnsRcode.TIMEOUT:
            funnel.dns_timeout += 1
        elif rcode is DnsRcode.REFUSED:
            funnel.dns_refused += 1
        if not has_address:
            continue
        funnel.with_a_record += 1
        origin = origins.get(requested)
        if origin is None:
            # No origin at the requested name: the walk below would break on
            # its first hop with nothing collected and no open ports.
            continue
        origin_domain, chain, redirect_next = origin
        if (
            chain is not None
            and redirect_next is None
            and origin_domain.lower() == requested
        ):
            # The dominant shape — a plain HTTPS site serving the requested
            # name directly.  The general walk would take exactly one hop and
            # land here; folding it inline skips the per-name walk state.
            https_fingerprints.add(chain_fingerprint(chain))
            chains_by_requested[requested] = chain
            funnel.names_with_certificates += 1
            funnel.port_80_open += 1
            funnel.port_443_open += 1
            continue
        collected = False
        visited: set = set()
        current = requested
        via_redirect = False
        for _ in range(6):  # max_redirects (5) + 1
            if current in visited:
                break
            visited.add(current)
            origin = origins.get(current)
            if origin is None:
                break
            origin_domain, chain, redirect_next = origin
            if chain is not None:
                collected = True
                https_fingerprints.add(chain_fingerprint(chain))
                if requested not in chains_by_requested or not via_redirect:
                    chains_by_requested[requested] = chain
            next_target = None
            if chain is not None and redirect_next:
                # HTTPS 301 with an explicit Location (no same-host check in
                # the scanner's HTTPS branch; the shared exit below catches it).
                next_target = redirect_next
            elif chain is not None:
                # Port-80 default of HTTPS sites: 301 to https://<origin>/.
                candidate = origin_domain.lower()
                if candidate != current:
                    next_target = candidate
            if not next_target or next_target == current:
                break
            current = next_target
            via_redirect = True
        if collected:
            funnel.names_with_certificates += 1
        origin = origins.get(requested)
        if origin is not None:
            funnel.port_80_open += 1
            if origin[1] is not None:
                funnel.port_443_open += 1
    funnel_counts = funnel.as_dict()
    funnel_counts.pop("unique_certificate_chains")
    chain_digests = frozenset(
        bytes.fromhex(fingerprint) for fingerprint in https_fingerprints
    )

    # Stage 2 fabric — hosts by lower-cased domain (build_network_for),
    # filled by the stage-1 pass above.
    targets = [(d.domain, d.rank, d.provider) for d in quic_deployments]

    columns_by_chain: Dict[int, _ChainColumns] = {}

    def columns_for(chain: CertificateChain) -> _ChainColumns:
        columns = columns_by_chain.get(id(chain))
        if columns is None:
            columns = _ChainColumns(chain)
            columns_by_chain[id(chain)] = columns
        return columns

    # Stages 2, 3 and 4 — handshake classification, QUIC-vs-HTTPS certificate
    # comparison, and compression support / wild rates — fused into one pass
    # over the QUIC targets: each target resolves its host exactly once, and
    # only stage 2's ``_measure`` touches the flight-plan cache, so the
    # per-target fold order keeps the cache counter sequence byte-identical
    # to the staged object path.
    analysis_offer = tuple(task.analysis_compression)
    analysis_size = task.analysis_initial_size
    analysis_limit = ANTI_AMPLIFICATION_FACTOR * analysis_size
    reachable = 0
    class_counts: Dict[HandshakeClass, int] = {}
    amp_factor_counts: Dict[float, int] = {}
    fig13_ranks = array("q")
    fig13_classes = bytearray()
    fig5_tls = array("q")
    fig5_total = array("q")
    fig5_limit = array("q")
    fig5_exceeds = 0
    fig5_overhead_max = 0
    quic_certificate_count = comparison_total = comparison_identical = 0
    supported_by_profile: Dict[int, Tuple] = {}
    wild_count = wild_all_three = 0
    wild_rates: Dict[CertificateCompressionAlgorithm, array] = {
        algorithm: array("d") for algorithm in ALL_ALGORITHMS
    }
    for domain, rank, _provider in targets:
        lowered = domain.lower()
        host = hosts.get(lowered)
        if host is None:
            continue
        quic_chain = host.quic_chain
        profile = host.server_behavior

        # Stage 2 fold — handshake classification at the analysis Initial size.
        if _accepts_initial(host, analysis_size):
            handshake_class, first, total, tls_total, overhead, _round_trips = _measure(
                domain,
                profile,
                columns_for(quic_chain),
                analysis_offer,
                analysis_size,
                cache,
            )
            reachable += 1
            class_counts[handshake_class] = class_counts.get(handshake_class, 0) + 1
            fig13_ranks.append(rank)
            fig13_classes.append(figure13.CLASS_CODES[handshake_class])
            if first > analysis_limit:
                factor = first / analysis_size
                amp_factor_counts[factor] = amp_factor_counts.get(factor, 0) + 1
            if handshake_class is HandshakeClass.MULTI_RTT:
                fig5_tls.append(tls_total)
                fig5_total.append(total)
                fig5_limit.append(analysis_limit)
                if tls_total > analysis_limit:
                    fig5_exceeds += 1
                if overhead > fig5_overhead_max:
                    fig5_overhead_max = overhead

        # Stage 3 fold — certificates over QUIC vs HTTPS.
        quic_certificate_count += 1
        https_chain = chains_by_requested.get(lowered)
        if https_chain is not None:
            comparison_total += 1
            if https_chain is quic_chain or chain_fingerprint(
                https_chain
            ) == chain_fingerprint(quic_chain):
                comparison_identical += 1

        # Stage 4 fold — compression support and wild rates.  Each profile's
        # supported algorithms are resolved to their rate arrays once (keyed
        # by identity: profiles are the repro.quic.profiles singletons); the
        # per-algorithm support counts fall out as the array lengths.
        supported_rows = supported_by_profile.get(id(profile))
        if supported_rows is None:
            supported_rows = tuple(
                (algorithm, wild_rates[algorithm])
                for algorithm in ALL_ALGORITHMS
                if algorithm in profile.compression_algorithms
            )
            supported_by_profile[id(profile)] = supported_rows
        wild_count += 1
        if len(supported_rows) == 3:
            wild_all_three += 1
        if supported_rows:
            columns = columns_for(quic_chain)
            uncompressed = columns.payload_len
            deflate_len = columns.deflate_len
            for algorithm, rates in supported_rows:
                compressed = compressed_size_for_deflate(algorithm, deflate_len)
                rates.append(1.0 - compressed / uncompressed)

    # Stage 2b — the sampled Initial-size sweep (kept as real observations;
    # the sample is small and the reducer re-interleaves them size-major).
    sweep_targets = task.sweep_targets
    if task.run_sweep and task.sweep_local_selection is not None:
        offset, stride = task.sweep_local_selection
        sweep_targets = tuple(
            target
            for position, target in enumerate(targets)
            if (offset + position) % stride == 0
        )
    sweep_observations: Tuple[HandshakeObservation, ...] = ()
    if task.run_sweep and sweep_targets:
        collected_sweep: List[HandshakeObservation] = []
        for initial_size in task.sweep_initial_sizes:
            for domain, rank, provider in sweep_targets:
                host = hosts.get(domain.lower())
                if host is None or not _accepts_initial(host, initial_size):
                    collected_sweep.append(
                        HandshakeObservation(
                            domain=domain, rank=rank, provider=provider,
                            initial_size=initial_size, reachable=False,
                        )
                    )
                    continue
                handshake_class, first, total, tls_total, overhead, round_trips = _measure(
                    domain,
                    host.server_behavior,
                    columns_for(host.quic_chain),
                    (),  # the sweep scans without an RFC 8879 offer
                    initial_size,
                    cache,
                )
                collected_sweep.append(
                    HandshakeObservation(
                        domain=domain,
                        rank=rank,
                        provider=provider,
                        initial_size=initial_size,
                        reachable=True,
                        handshake_class=handshake_class,
                        first_rtt_bytes=first,
                        total_bytes=total,
                        tls_payload_bytes=tls_total,
                        quic_overhead_bytes=overhead,
                        round_trips=round_trips,
                        chain_size=host.quic_chain.total_size,
                    )
                )
        sweep_observations = tuple(collected_sweep)

    # Ground-truth (population) reductions, deduplicated per chain shape.
    # Full chains never repeat (every leaf names its domain), so the dedup
    # lever is the shared non-leaf suffix: one `_ParentFold` per distinct
    # parent certificate tuple carries every leaf-independent fact, the two
    # category passes below fold only the per-leaf contributions in
    # deployment order (order-critical series stay in order), and the flush
    # after the passes scales each fold by its multiplicity.  Keying by
    # certificate ids is sound for the duration of the call — `deployments`
    # keeps every certificate alive.  Equality with the object path's
    # per-certificate folds is pinned per artefact by the differential and
    # property suites (tests/test_columnar_scan.py, tests/test_properties.py).
    parent_folds: Dict[object, _ParentFold] = {}

    def parent_fold_for(chain: CertificateChain) -> _ParentFold:
        parents = chain.certificates[1:]
        # A bare id for the dominant one-parent shape (an int key can never
        # equal a tuple key, so the two forms coexist in one dict).
        key = id(parents[0]) if len(parents) == 1 else tuple(map(id, parents))
        fold = parent_folds.get(key)
        if fold is None:
            fold = _ParentFold(parents)
            parent_folds[key] = fold
        return fold

    field_size_counts: Dict[str, Dict[int, int]] = {
        name: {} for name in figure02b.FIELD_NAMES
    }
    subject_counts = field_size_counts["Subject"]
    issuer_counts = field_size_counts["Issuer"]
    spki_counts = field_size_counts["PublicKeyInfo"]
    ext_counts = field_size_counts["Extensions"]
    sig_counts = field_size_counts["Signature"]
    certificate_count = 0

    quic_chain_size_counts: Dict[int, int] = {}
    https_chain_size_counts: Dict[int, int] = {}
    parent_chain_groups: Dict[str, Dict[Tuple[str, ...], figure07.ParentChainStats]] = {
        "QUIC": {},
        "HTTPS-only": {},
    }
    quic_groups = parent_chain_groups["QUIC"]
    https_groups = parent_chain_groups["HTTPS-only"]
    quic_group_total = https_group_total = 0
    field_sums, field_counts = figure08.empty_field_sums()
    chain_size_threshold = figure08.CHAIN_SIZE_THRESHOLD
    small_leaf_acc = [0] * 7
    large_leaf_acc = [0] * 7
    small_leaf_n = large_leaf_n = 0
    key_alg_counters: Dict[Tuple[str, str, object], int] = {}
    key_alg_totals: Dict[Tuple[str, str], int] = {}
    quic_leaf_algs: Dict[KeyAlgorithm, int] = {}
    https_leaf_algs: Dict[KeyAlgorithm, int] = {}
    synth_rates = array("d")
    synth_below_uncompressed = synth_below_compressed = synth_count = 0
    fig14_leaf_sizes = array("q")
    fig14_san_shares = array("d")
    synth_algorithm = spec.compression_algorithm
    synth_limit = spec.limit_bytes
    base_offset = task.start

    for position, deployment in enumerate(quic_deployments):
        chain = deployment.delivered_chain
        if chain is None:
            continue
        fold = parent_fold_for(chain)
        leaf = chain.certificates[0]
        row = field_size_row(leaf)
        # Figure 2(b): the unique leaf now, the shared parents in the flush.
        subject_counts[row[0]] = subject_counts.get(row[0], 0) + 1
        issuer_counts[row[1]] = issuer_counts.get(row[1], 0) + 1
        spki_counts[row[2]] = spki_counts.get(row[2], 0) + 1
        ext_counts[row[3]] = ext_counts.get(row[3], 0) + 1
        sig_counts[row[4]] = sig_counts.get(row[4], 0) + 1
        certificate_count += 1
        fold.delivered += 1
        leaf_size = row[6]
        total_size = fold.parent_total + leaf_size
        quic_chain_size_counts[total_size] = (
            quic_chain_size_counts.get(total_size, 0) + 1
        )
        # Figure 8 / Table 2, leaf halves (parents are scaled in the flush).
        if total_size > chain_size_threshold:
            fold.quic_large += 1
            acc = large_leaf_acc
            large_leaf_n += 1
        else:
            fold.quic_small += 1
            acc = small_leaf_acc
            small_leaf_n += 1
        acc[0] += row[0]
        acc[1] += row[1]
        acc[2] += row[2]
        acc[3] += row[3]
        acc[4] += row[4]
        acc[5] += row[5]
        acc[6] += row[6]
        algorithm = leaf.key_algorithm
        quic_leaf_algs[algorithm] = quic_leaf_algs.get(algorithm, 0) + 1
        # Figure 7: shared parent verdict plus the per-chain leaf link.
        if fold.parents_ordered and (
            fold.link_subject is None or leaf.issuer.encode() == fold.link_subject
        ):
            quic_group_total += 1
            group_key = (
                fold.pc_key
                if fold.pc_key is not None
                else (leaf.issuer.common_name or "unknown",)
            )
            figure07.fold_group_member(
                quic_groups, group_key, leaf_size, base_offset + position,
                fold.parent_sizes,
            )
        # Synthetic compression: ratio and both limit checks only need the
        # payload and DEFLATE lengths (one zlib pass per chain, memoized).
        uncompressed = chain_payload_size(chain)
        compressed = compressed_size_for_deflate(
            synth_algorithm, chain_deflate_size(chain)
        )
        synth_rates.append(
            0.0 if uncompressed == 0 else 1.0 - compressed / uncompressed
        )
        synth_count += 1
        if uncompressed <= synth_limit:
            synth_below_uncompressed += 1
        if compressed <= synth_limit:
            synth_below_compressed += 1
        fig14_leaf_sizes.append(leaf_size)
        fig14_san_shares.append(san_byte_share(leaf))

    for position, deployment in enumerate(https_only):
        chain = deployment.delivered_chain
        total_size = None
        if chain is not None:
            fold = parent_fold_for(chain)
            leaf = chain.certificates[0]
            row = field_size_row(leaf)
            subject_counts[row[0]] = subject_counts.get(row[0], 0) + 1
            issuer_counts[row[1]] = issuer_counts.get(row[1], 0) + 1
            spki_counts[row[2]] = spki_counts.get(row[2], 0) + 1
            ext_counts[row[3]] = ext_counts.get(row[3], 0) + 1
            sig_counts[row[4]] = sig_counts.get(row[4], 0) + 1
            certificate_count += 1
            fold.delivered += 1
            fold.https_count += 1
            leaf_size = row[6]
            total_size = fold.parent_total + leaf_size
            algorithm = leaf.key_algorithm
            https_leaf_algs[algorithm] = https_leaf_algs.get(algorithm, 0) + 1
            if fold.parents_ordered and (
                fold.link_subject is None
                or leaf.issuer.encode() == fold.link_subject
            ):
                https_group_total += 1
                group_key = (
                    fold.pc_key
                    if fold.pc_key is not None
                    else (leaf.issuer.common_name or "unknown",)
                )
                figure07.fold_group_member(
                    https_groups, group_key, leaf_size, base_offset + position,
                    fold.parent_sizes,
                )
        https_chain = deployment.https_chain
        if https_chain is not None:
            size = total_size if https_chain is chain else https_chain.total_size
            https_chain_size_counts[size] = https_chain_size_counts.get(size, 0) + 1

    # Deployments outside the two analysed categories normally deliver no
    # chain; when a hand-built population does, Figure 2(b) still counts it.
    for deployment in deployments:
        category = deployment.category
        if category is ServiceCategory.QUIC or category is ServiceCategory.HTTPS_ONLY:
            continue
        chain = deployment.delivered_chain
        if chain is None:
            continue
        fold = parent_fold_for(chain)
        row = field_size_row(chain.certificates[0])
        subject_counts[row[0]] = subject_counts.get(row[0], 0) + 1
        issuer_counts[row[1]] = issuer_counts.get(row[1], 0) + 1
        spki_counts[row[2]] = spki_counts.get(row[2], 0) + 1
        ext_counts[row[3]] = ext_counts.get(row[3], 0) + 1
        sig_counts[row[4]] = sig_counts.get(row[4], 0) + 1
        certificate_count += 1
        fold.delivered += 1

    # The flush: every leaf-independent contribution, scaled by multiplicity.
    for fold in parent_folds.values():
        if fold.delivered:
            certificate_count += figure02b.accumulate_row_counts(
                (
                    (row, count * fold.delivered)
                    for row, count in fold.row_counts.items()
                ),
                field_size_counts,
            )
        if fold.quic_small:
            for row, count in fold.row_counts.items():
                figure08.accumulate_row_sums(
                    "<=4000, Non-leaf", row, count * fold.quic_small,
                    field_sums, field_counts,
                )
        if fold.quic_large:
            for row, count in fold.row_counts.items():
                figure08.accumulate_row_sums(
                    ">4000, Non-leaf", row, count * fold.quic_large,
                    field_sums, field_counts,
                )
        quic_chains = fold.quic_small + fold.quic_large
        if quic_chains:
            table02.accumulate_algorithm_counts(
                "QUIC", "Non-leaf", fold.alg_counts, quic_chains,
                key_alg_counters, key_alg_totals,
            )
        if fold.https_count:
            table02.accumulate_algorithm_counts(
                "HTTPS-only", "Non-leaf", fold.alg_counts, fold.https_count,
                key_alg_counters, key_alg_totals,
            )
    for label, acc, leaves in (
        ("<=4000, Leaf", small_leaf_acc, small_leaf_n),
        (">4000, Leaf", large_leaf_acc, large_leaf_n),
    ):
        if leaves:
            group_sums = field_sums[label]
            for key, value in zip(figure08.FIELD_SUM_KEYS, acc):
                group_sums[key] += value
            field_counts[label] += leaves
    table02.accumulate_algorithm_counts(
        "QUIC", "Leaf", quic_leaf_algs, 1, key_alg_counters, key_alg_totals
    )
    table02.accumulate_algorithm_counts(
        "HTTPS-only", "Leaf", https_leaf_algs, 1, key_alg_counters, key_alg_totals
    )

    parent_chain_totals = {
        "QUIC": quic_group_total,
        "HTTPS-only": https_group_total,
    }

    spoof_candidates = take_per_provider(
        quic_deployments, spec.spoof_limit_per_provider, spec.spoof_providers
    )

    return ShardSummary(
        index=task.index,
        scenario_fingerprint=task.scenario_fingerprint(),
        deployment_count=len(deployments),
        quic_count=len(quic_deployments),
        https_only_count=len(https_only),
        funnel_counts=funnel_counts,
        chain_digests=chain_digests,
        handshake_total=len(targets),
        reachable_count=reachable,
        class_counts=class_counts,
        amp_factor_counts=amp_factor_counts,
        fig13_ranks=fig13_ranks,
        fig13_classes=bytes(fig13_classes),
        fig5_tls=fig5_tls,
        fig5_total=fig5_total,
        fig5_limit=fig5_limit,
        fig5_exceeds=fig5_exceeds,
        fig5_overhead_max=fig5_overhead_max,
        sweep_observations=sweep_observations,
        quic_certificate_count=quic_certificate_count,
        comparison_total=comparison_total,
        comparison_identical=comparison_identical,
        wild_count=wild_count,
        wild_all_three=wild_all_three,
        wild_support_counts={
            algorithm: len(rates) for algorithm, rates in wild_rates.items()
        },
        wild_rates=wild_rates,
        start_rank=deployments[0].rank if deployments else task.start + 1,
        category_codes=bytes(category_codes),
        field_size_counts=field_size_counts,
        certificate_count=certificate_count,
        quic_chain_size_counts=quic_chain_size_counts,
        https_chain_size_counts=https_chain_size_counts,
        parent_chain_groups=parent_chain_groups,
        parent_chain_totals=parent_chain_totals,
        field_sums=field_sums,
        field_counts=field_counts,
        key_alg_counters=key_alg_counters,
        key_alg_totals=key_alg_totals,
        synth_rates=synth_rates,
        synth_below_uncompressed=synth_below_uncompressed,
        synth_below_compressed=synth_below_compressed,
        synth_count=synth_count,
        fig14_leaf_sizes=fig14_leaf_sizes,
        fig14_san_shares=fig14_san_shares,
        spoof_candidates=tuple(spoof_candidates),
        flight_cache=cache.cache_info(),
    )
