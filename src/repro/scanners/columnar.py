"""Columnar scan backend: whole-shard arithmetic instead of per-domain objects.

``scan_shard`` builds a resolver, an origin map, a UDP fabric and thousands of
frozen QUIC/TLS wire objects per shard, only to reduce them to the counters and
compact rows of a :class:`~repro.scanners.streaming.ShardSummary` moments
later.  This module fuses the two steps: it lowers a shard's deployments into
flat columns (chain payload lengths, DEFLATE lengths, CertificateVerify sizes,
behaviour profiles, Initial sizes) and computes the wire-size arithmetic,
handshake classification and amplification-ratio math as batch passes over
those columns, emitting the ``ShardSummary`` directly.

The backend contract (see docs/ARCHITECTURE.md, "Columnar scan core"):

* **Byte-identical output.**  ``summarize_shard_columnar(task, deployments,
  spec)`` returns exactly the summary ``summarize_shard(task, deployments,
  scan_shard(task), spec)`` returns — same counters, same float-summation
  order, same flight-plan cache counters (replayed against a real
  :class:`~repro.quic.server.FlightPlanCache` with sentinel entries).  The
  object path stays the differential reference
  (``tests/test_columnar_scan.py``).
* **Constants come from the real objects.**  TLS message sizes are read off
  freshly built :mod:`~repro.tls.handshake_messages` instances at import time,
  so the kernel cannot drift from the wire model silently; only the *per
  domain* arithmetic is mirrored by hand (and pinned per formula by
  ``tests/test_properties.py``).
* **One DEFLATE per chain.**  The object path compresses a chain once per
  negotiated flight plus once per supported algorithm in the compression scan
  plus once in the synthetic reduction; the kernel runs zlib once per distinct
  chain and scales the calibrated per-algorithm factors off that measurement
  (the same split :func:`~repro.tls.cert_compression.compressed_size_for_deflate`
  exposes).

Backend selection is threaded through ``ShardTask.scan_backend``; use
``--scan-backend {object,columnar}`` on the CLI or the ``REPRO_SCAN_BACKEND``
environment knob (streaming runs only — the eager pipeline keeps its
full-observation internals unless a caller opts in explicitly).
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.figures import figure02b, figure07, figure08, figure12, figure13, table02
from ..netsim.dns import DnsRcode
from ..netsim.http import target_domain
from ..quic.anti_amplification import ANTI_AMPLIFICATION_FACTOR
from ..quic.frames import AckFrame
from ..quic.handshake import HandshakeClass
from ..quic.packet import AEAD_TAG_SIZE, MIN_CLIENT_INITIAL_SIZE
from ..quic.profiles import CoalescenceMode, RetryPolicy, ServerBehaviorProfile
from ..quic.server import FlightPlanCache
from ..quic.varint import varint_size
from ..tls.cert_compression import (
    CertificateCompressionAlgorithm,
    chain_payload,
    compressed_size_for_deflate,
    deflate_size,
)
from ..tls.handshake_messages import (
    CertificateVerify,
    EncryptedExtensions,
    Finished,
    ServerHello,
)
from ..webpki.deployment import DomainDeployment, ServiceCategory
from ..x509.chain import CertificateChain, chain_fingerprint
from ..x509.field_sizes import san_byte_share
from ..x509.keys import KeyAlgorithm
from .compression_scanner import ALL_ALGORITHMS
from .https_scanner import ScanFunnel
from .quicreach import HandshakeObservation
from .sharding import ShardTask
from .streaming import ReductionSpec, ShardSummary, take_per_provider

# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------

#: The two shard-scan implementations.  ``object`` is the reference pipeline
#: (stages 1–4 over real resolver/origin/fabric objects); ``columnar`` is the
#: fused arithmetic kernel of this module.
SCAN_BACKENDS: Tuple[str, ...] = ("object", "columnar")

#: Environment knob consulted by streaming runs when no explicit backend is
#: passed.  An empty value counts as unset.
SCAN_BACKEND_ENV = "REPRO_SCAN_BACKEND"


def resolve_scan_backend(explicit: Optional[str] = None) -> str:
    """Resolve the scan backend: explicit argument > environment > ``object``."""
    backend = explicit
    source = "scan backend"
    if backend is None:
        backend = os.environ.get(SCAN_BACKEND_ENV) or None
        source = SCAN_BACKEND_ENV
    if backend is None:
        return "object"
    if backend not in SCAN_BACKENDS:
        choices = ", ".join(SCAN_BACKENDS)
        raise ValueError(f"unknown {source} {backend!r} (choose from: {choices})")
    return backend


# ---------------------------------------------------------------------------
# Wire-model constants, read off the real objects at import time
# ---------------------------------------------------------------------------

_SERVER_HELLO_SIZE = ServerHello().size
_ENCRYPTED_EXTENSIONS_SIZE = EncryptedExtensions().size
_FINISHED_SIZE = Finished().size
#: CertificateVerify size per server key algorithm (the signature length
#: follows the leaf's algorithm).
_CERT_VERIFY_SIZE: Dict[KeyAlgorithm, int] = {
    algorithm: CertificateVerify(algorithm).size for algorithm in KeyAlgorithm
}
_ACK_FRAME_SIZE = AckFrame(0).size
#: CRYPTO frame wrapping the ServerHello at stream offset 0.
_SH_FRAME_SIZE = (
    1 + varint_size(0) + varint_size(_SERVER_HELLO_SIZE) + _SERVER_HELLO_SIZE
)

#: Packet size = base + packet-number field + payload + length-field varint;
#: the base folds the long header (23 bytes with 8-byte connection IDs) plus
#: the AEAD tag, and for Initials the empty retry-token length varint.
_INITIAL_BASE = 23 + 1 + AEAD_TAG_SIZE
_HANDSHAKE_BASE = 23 + AEAD_TAG_SIZE
#: Retry packets carry no length/packet-number fields: header + token + tag.
_RETRY_BASE = 23 + AEAD_TAG_SIZE
_RETRY_TOKEN_PREFIX_LEN = len(b"retry-token:")


def _pn_len(packet_number: int) -> int:
    if packet_number < 1 << 8:
        return 1
    if packet_number < 1 << 16:
        return 2
    if packet_number < 1 << 24:
        return 3
    return 4


def _packet_size(base: int, payload: int, pn_len: int) -> int:
    return base + pn_len + payload + varint_size(payload + pn_len + AEAD_TAG_SIZE)


def _padded_packet_size(
    base: int, payload: int, pn_len: int, target: int
) -> Tuple[int, int]:
    """Mirror ``QuicPacket.with_padding_to``: (padded size, padding bytes added).

    Growing the payload can grow the length-field varint, overshooting the
    target; the packet model then trims the padding run by the overshoot when
    possible.
    """
    size = _packet_size(base, payload, pn_len)
    deficit = target - size
    if deficit <= 0:
        return size, 0
    candidate = _packet_size(base, payload + deficit, pn_len)
    overshoot = candidate - target
    pad = deficit
    if overshoot > 0 and deficit - overshoot > 0:
        pad = deficit - overshoot
    return _packet_size(base, payload + pad, pn_len), pad


# ---------------------------------------------------------------------------
# First-flight arithmetic (mirrors QuicServer._build_packets/_build_datagrams/
# _pad_datagram/_apply_amplification_limit)
# ---------------------------------------------------------------------------

#: (profile, certificate message size, CertificateVerify size) ->
#: (datagram rows ``(size, ack_eliciting, padding_bytes)``, total bytes).
#: Process-wide: flights depend only on these three inputs, and the handful of
#: (profile, chain-size-class) combinations repeats across every shard.
_FLIGHT_ROWS: Dict[tuple, Tuple[Tuple[Tuple[int, bool, int], ...], int]] = {}

#: (profile, certificate size, verify size, Initial size) ->
#: (first-RTT bytes, deferred bytes) for an unvalidated client.
_FLIGHT_SPLITS: Dict[tuple, Tuple[int, int]] = {}


def _flight_rows(
    profile: ServerBehaviorProfile, certificate_size: int, verify_size: int
) -> Tuple[Tuple[Tuple[int, bool, int], ...], int]:
    key = (profile, certificate_size, verify_size)
    cached = _FLIGHT_ROWS.get(key)
    if cached is not None:
        return cached

    # Initial-level packets: (payload, packet number, ack-eliciting).
    if profile.coalescence is CoalescenceMode.SPLIT_INITIAL_ACK:
        initials = [(_ACK_FRAME_SIZE, 0, False), (_SH_FRAME_SIZE, 1, True)]
    else:
        initials = [(_ACK_FRAME_SIZE + _SH_FRAME_SIZE, 0, True)]

    # Handshake-level CRYPTO stream, chunked like _build_packets.
    stream_len = (
        _ENCRYPTED_EXTENSIONS_SIZE + certificate_size + verify_size + _FINISHED_SIZE
    )
    per_packet_overhead = 40 + AEAD_TAG_SIZE
    full_chunk = profile.mtu - per_packet_overhead
    chunks: List[int] = []
    if profile.coalescence is CoalescenceMode.FULL:
        last_payload, last_pn, _ = initials[-1]
        last_initial_size = _packet_size(_INITIAL_BASE, last_payload, _pn_len(last_pn))
        space_next_to_initial = profile.mtu - last_initial_size - per_packet_overhead
        if space_next_to_initial > 64:
            first = min(space_next_to_initial, stream_len)
            if first:
                chunks.append(first)
            stream_len -= first
    while stream_len > 0:
        take = min(full_chunk, stream_len)
        chunks.append(take)
        stream_len -= take
    if not chunks:
        chunks.append(0)

    # Packets: (is_initial, size, ack-eliciting, payload, pn_len).
    packets: List[Tuple[bool, int, bool, int, int]] = []
    for payload, packet_number, eliciting in initials:
        pn_len = _pn_len(packet_number)
        packets.append(
            (True, _packet_size(_INITIAL_BASE, payload, pn_len), eliciting, payload, pn_len)
        )
    offset = 0
    for index, chunk in enumerate(chunks):
        frame = 1 + varint_size(offset) + varint_size(chunk) + chunk
        pn_len = _pn_len(index)
        packets.append(
            (False, _packet_size(_HANDSHAKE_BASE, frame, pn_len), True, frame, pn_len)
        )
        offset += chunk

    # Datagrams: greedy MTU coalescing (FULL) or one packet per datagram.
    if profile.coalescence is CoalescenceMode.FULL:
        datagrams: List[List[Tuple[bool, int, bool, int, int]]] = []
        current: List[Tuple[bool, int, bool, int, int]] = []
        current_size = 0
        for packet in packets:
            if current and current_size + packet[1] > profile.mtu:
                datagrams.append(current)
                current, current_size = [], 0
            current.append(packet)
            current_size += packet[1]
        if current:
            datagrams.append(current)
    else:
        datagrams = [[packet] for packet in packets]

    # Datagram-level Initial padding (RFC 9000 §14.1 / pad_all profiles).
    rows: List[Tuple[int, bool, int]] = []
    total = 0
    for datagram in datagrams:
        size = sum(packet[1] for packet in datagram)
        eliciting = any(packet[2] for packet in datagram)
        contains_initial = any(packet[0] for packet in datagram)
        padding = 0
        if (
            contains_initial
            and size < MIN_CLIENT_INITIAL_SIZE
            and (eliciting or profile.pad_all_initial_datagrams)
        ):
            deficit = MIN_CLIENT_INITIAL_SIZE - size
            is_initial, last_size, _, payload, pn_len = datagram[-1]
            base = _INITIAL_BASE if is_initial else _HANDSHAKE_BASE
            new_size, padding = _padded_packet_size(
                base, payload, pn_len, last_size + deficit
            )
            size += new_size - last_size
        rows.append((size, eliciting, padding))
        total += size

    result = (tuple(rows), total)
    _FLIGHT_ROWS[key] = result
    return result


def _first_rtt_split(
    profile: ServerBehaviorProfile,
    certificate_size: int,
    verify_size: int,
    initial_size: int,
) -> Tuple[int, int]:
    """First-RTT/deferred byte split under the profile's own accounting."""
    key = (profile, certificate_size, verify_size, initial_size)
    cached = _FLIGHT_SPLITS.get(key)
    if cached is not None:
        return cached
    rows, _ = _flight_rows(profile, certificate_size, verify_size)
    limit = ANTI_AMPLIFICATION_FACTOR * initial_size
    ignore = not profile.enforce_amplification_limit
    exclude = not profile.count_padding_against_limit
    sent = unaccounted = first = deferred = 0
    blocked = False
    for size, eliciting, padding in rows:
        if blocked:
            deferred += size
            continue
        padding_only = padding > 0 and not eliciting
        allowed = ignore or sent - unaccounted + size <= limit
        if allowed or (exclude and padding_only):
            sent += size
            if exclude and padding_only:
                unaccounted += size
            first += size
        else:
            blocked = True
            deferred += size
    result = (first, deferred)
    _FLIGHT_SPLITS[key] = result
    return result


# ---------------------------------------------------------------------------
# Per-chain columns
# ---------------------------------------------------------------------------

class _ChainColumns:
    """The numbers the kernel needs from one certificate chain.

    ``deflate_len`` is computed lazily (only chains that actually negotiate or
    measure compression pay the zlib pass) and exactly once per chain.
    """

    __slots__ = ("chain", "payload_len", "fingerprint", "verify_size", "_deflate_len")

    def __init__(self, chain: CertificateChain) -> None:
        self.chain = chain
        der_total = 0
        count = 0
        for certificate in chain.certificates:
            der_total += len(certificate.der)
            count += 1
        # chain_payload: 3-byte list prefix + per certificate a 3-byte length,
        # the DER bytes and a 2-byte empty extensions field.
        self.payload_len = 3 + der_total + 5 * count
        self.fingerprint = chain_fingerprint(chain)
        self.verify_size = _CERT_VERIFY_SIZE[chain.leaf.key_algorithm]
        self._deflate_len: Optional[int] = None

    @property
    def deflate_len(self) -> int:
        if self._deflate_len is None:
            self._deflate_len = deflate_size(
                chain_payload(certificate.der for certificate in self.chain.certificates)
            )
        return self._deflate_len


def _certificate_message_size(
    columns: _ChainColumns,
    profile: ServerBehaviorProfile,
    offer: Tuple[CertificateCompressionAlgorithm, ...],
) -> int:
    """Wire size of the (possibly compressed) Certificate message.

    Uncompressed: 4-byte handshake header + 1-byte request context + payload.
    Compressed (RFC 8879): header + 2-byte algorithm + 3-byte uncompressed
    length + compressed payload.
    """
    negotiated = None
    if offer:
        for algorithm in offer:
            if algorithm in profile.compression_algorithms:
                negotiated = algorithm
                break
    if negotiated is None:
        return 5 + columns.payload_len
    return 9 + compressed_size_for_deflate(negotiated, columns.deflate_len)


def _flight_cache_entry():
    """Sentinel stored in the replayed flight-plan cache (any non-None value)."""
    return True


def _measure(
    domain: str,
    profile: ServerBehaviorProfile,
    columns: _ChainColumns,
    offer: Tuple[CertificateCompressionAlgorithm, ...],
    initial_size: int,
    cache: FlightPlanCache,
) -> Tuple[HandshakeClass, int, int, int, int, int]:
    """One handshake's observables: (class, first-RTT, total, TLS, overhead, RTTs).

    Replays the object path's flight-plan cache key sequence against ``cache``
    so the per-shard cache counters stay byte-identical.
    """
    certificate_size = _certificate_message_size(columns, profile, offer)
    tls_total = (
        _SERVER_HELLO_SIZE
        + _ENCRYPTED_EXTENSIONS_SIZE
        + certificate_size
        + columns.verify_size
        + _FINISHED_SIZE
    )
    key = (domain, profile, columns.fingerprint, offer)
    cache.get_or_build(key, _flight_cache_entry)
    if profile.retry_policy is RetryPolicy.ALWAYS:
        # The client echoes the token and the server responds again (second
        # cache visit); a validated address releases the whole flight at once.
        cache.get_or_build(key, _flight_cache_entry)
        token_len = _RETRY_TOKEN_PREFIX_LEN + len(domain.encode("ascii")[:32])
        retry_size = _RETRY_BASE + token_len
        _, flight_total = _flight_rows(profile, certificate_size, columns.verify_size)
        first = total = retry_size + flight_total
        return (
            HandshakeClass.RETRY,
            first,
            total,
            tls_total,
            max(total - tls_total, 0),
            2,
        )
    first, deferred = _first_rtt_split(
        profile, certificate_size, columns.verify_size, initial_size
    )
    total = first + deferred
    if deferred:
        handshake_class, round_trips = HandshakeClass.MULTI_RTT, 2
    elif first > ANTI_AMPLIFICATION_FACTOR * initial_size:
        handshake_class, round_trips = HandshakeClass.AMPLIFICATION, 1
    else:
        handshake_class, round_trips = HandshakeClass.ONE_RTT, 1
    return (
        handshake_class,
        first,
        total,
        tls_total,
        max(total - tls_total, 0),
        round_trips,
    )


def _accepts_initial(deployment: DomainDeployment, initial_size: int) -> bool:
    """Mirror QuicServiceHost.accepts_initial (path MTU 1500, UDP/IP 28)."""
    return initial_size <= 1500 - 28 - deployment.encapsulation_overhead


# ---------------------------------------------------------------------------
# The fused shard scan
# ---------------------------------------------------------------------------

def summarize_shard_columnar(
    task: ShardTask,
    deployments: Sequence[DomainDeployment],
    spec: ReductionSpec,
) -> ShardSummary:
    """Scan and reduce one shard in a single pass, no intermediate objects.

    Byte-identical to ``summarize_shard(task, deployments,
    scan_shard(task, deployments=deployments), spec)``; the differential
    suite pins the equality per figure artefact.
    """
    cache = FlightPlanCache()
    quic_deployments = [d for d in deployments if d.category is ServiceCategory.QUIC]
    https_only = [d for d in deployments if d.category is ServiceCategory.HTTPS_ONLY]

    # Stage 1 — the DNS/origin fabric as two dicts (build_resolver_for /
    # build_origins_for + HttpsScanner's lowercasing, last-wins like the real
    # dict construction order).
    dns_zone: Dict[str, Tuple[DnsRcode, bool]] = {}
    for deployment in deployments:
        if deployment.dns_rcode is not DnsRcode.NOERROR:
            dns_zone[deployment.domain.lower()] = (deployment.dns_rcode, False)
        elif deployment.address is None:
            dns_zone[deployment.domain.lower()] = (DnsRcode.NOERROR, False)
        else:
            dns_zone[deployment.domain.lower()] = (DnsRcode.NOERROR, True)
            if deployment.redirect_to:
                dns_zone[deployment.redirect_to.lower()] = (DnsRcode.NOERROR, True)

    # lower-cased name -> (origin domain, https chain, explicit redirect hop).
    origins: Dict[str, Tuple[str, Optional[CertificateChain], Optional[str]]] = {}
    for deployment in deployments:
        if not deployment.resolves:
            continue
        chain = deployment.https_chain
        if deployment.redirect_to and chain is not None:
            origins[deployment.redirect_to.lower()] = (deployment.redirect_to, chain, None)
            origins[deployment.domain.lower()] = (
                deployment.domain,
                chain,
                target_domain(f"https://{deployment.redirect_to}/"),
            )
        else:
            origins[deployment.domain.lower()] = (deployment.domain, chain, None)

    # The funnel walk of HttpsScanner.scan/_scan_one.
    funnel = ScanFunnel(names_total=len(deployments))
    https_fingerprints: set = set()
    chains_by_requested: Dict[str, CertificateChain] = {}
    for deployment in deployments:
        requested = deployment.domain.lower()
        rcode, has_address = dns_zone.get(requested, (DnsRcode.NXDOMAIN, False))
        if rcode is DnsRcode.NOERROR:
            funnel.dns_noerror += 1
        elif rcode is DnsRcode.SERVFAIL:
            funnel.dns_servfail += 1
        elif rcode is DnsRcode.NXDOMAIN:
            funnel.dns_nxdomain += 1
        elif rcode is DnsRcode.TIMEOUT:
            funnel.dns_timeout += 1
        elif rcode is DnsRcode.REFUSED:
            funnel.dns_refused += 1
        if not has_address:
            continue
        funnel.with_a_record += 1
        collected = False
        visited: set = set()
        current = requested
        via_redirect = False
        for _ in range(6):  # max_redirects (5) + 1
            if current in visited:
                break
            visited.add(current)
            origin = origins.get(current)
            if origin is None:
                break
            origin_domain, chain, redirect_next = origin
            if chain is not None:
                collected = True
                https_fingerprints.add(chain_fingerprint(chain))
                if requested not in chains_by_requested or not via_redirect:
                    chains_by_requested[requested] = chain
            next_target = None
            if chain is not None and redirect_next:
                # HTTPS 301 with an explicit Location (no same-host check in
                # the scanner's HTTPS branch; the shared exit below catches it).
                next_target = redirect_next
            elif chain is not None:
                # Port-80 default of HTTPS sites: 301 to https://<origin>/.
                candidate = origin_domain.lower()
                if candidate != current:
                    next_target = candidate
            if not next_target or next_target == current:
                break
            current = next_target
            via_redirect = True
        if collected:
            funnel.names_with_certificates += 1
        origin = origins.get(requested)
        if origin is not None:
            funnel.port_80_open += 1
            if origin[1] is not None:
                funnel.port_443_open += 1
    funnel_counts = funnel.as_dict()
    funnel_counts.pop("unique_certificate_chains")
    chain_digests = frozenset(
        bytes.fromhex(fingerprint) for fingerprint in https_fingerprints
    )

    # Stage 2 fabric — hosts by lower-cased domain (build_network_for).
    targets = [(d.domain, d.rank, d.provider) for d in quic_deployments]
    hosts: Dict[str, DomainDeployment] = {}
    for deployment in deployments:
        if deployment.supports_quic and deployment.address is not None:
            hosts[deployment.domain.lower()] = deployment

    columns_by_chain: Dict[int, _ChainColumns] = {}

    def columns_for(chain: CertificateChain) -> _ChainColumns:
        columns = columns_by_chain.get(id(chain))
        if columns is None:
            columns = _ChainColumns(chain)
            columns_by_chain[id(chain)] = columns
        return columns

    # Stage 2 — handshake classification, folded straight into the summary
    # series (no HandshakeObservation objects for the analysis pass).
    analysis_offer = tuple(task.analysis_compression)
    analysis_size = task.analysis_initial_size
    analysis_limit = ANTI_AMPLIFICATION_FACTOR * analysis_size
    reachable = 0
    class_counts: Dict[HandshakeClass, int] = {}
    amp_factor_counts: Dict[float, int] = {}
    fig13_ranks = array("q")
    fig13_classes = bytearray()
    fig5_tls = array("q")
    fig5_total = array("q")
    fig5_limit = array("q")
    fig5_exceeds = 0
    fig5_overhead_max = 0
    for domain, rank, _provider in targets:
        host = hosts.get(domain.lower())
        if host is None or not _accepts_initial(host, analysis_size):
            continue
        handshake_class, first, total, tls_total, overhead, _round_trips = _measure(
            domain,
            host.server_behavior,
            columns_for(host.quic_chain),
            analysis_offer,
            analysis_size,
            cache,
        )
        reachable += 1
        class_counts[handshake_class] = class_counts.get(handshake_class, 0) + 1
        fig13_ranks.append(rank)
        fig13_classes.append(figure13.CLASS_CODES[handshake_class])
        if first > analysis_limit:
            factor = first / analysis_size
            amp_factor_counts[factor] = amp_factor_counts.get(factor, 0) + 1
        if handshake_class is HandshakeClass.MULTI_RTT:
            fig5_tls.append(tls_total)
            fig5_total.append(total)
            fig5_limit.append(analysis_limit)
            if tls_total > analysis_limit:
                fig5_exceeds += 1
            if overhead > fig5_overhead_max:
                fig5_overhead_max = overhead

    # Stage 2b — the sampled Initial-size sweep (kept as real observations;
    # the sample is small and the reducer re-interleaves them size-major).
    sweep_targets = task.sweep_targets
    if task.run_sweep and task.sweep_local_selection is not None:
        offset, stride = task.sweep_local_selection
        sweep_targets = tuple(
            target
            for position, target in enumerate(targets)
            if (offset + position) % stride == 0
        )
    sweep_observations: Tuple[HandshakeObservation, ...] = ()
    if task.run_sweep and sweep_targets:
        collected_sweep: List[HandshakeObservation] = []
        for initial_size in task.sweep_initial_sizes:
            for domain, rank, provider in sweep_targets:
                host = hosts.get(domain.lower())
                if host is None or not _accepts_initial(host, initial_size):
                    collected_sweep.append(
                        HandshakeObservation(
                            domain=domain, rank=rank, provider=provider,
                            initial_size=initial_size, reachable=False,
                        )
                    )
                    continue
                handshake_class, first, total, tls_total, overhead, round_trips = _measure(
                    domain,
                    host.server_behavior,
                    columns_for(host.quic_chain),
                    (),  # the sweep scans without an RFC 8879 offer
                    initial_size,
                    cache,
                )
                collected_sweep.append(
                    HandshakeObservation(
                        domain=domain,
                        rank=rank,
                        provider=provider,
                        initial_size=initial_size,
                        reachable=True,
                        handshake_class=handshake_class,
                        first_rtt_bytes=first,
                        total_bytes=total,
                        tls_payload_bytes=tls_total,
                        quic_overhead_bytes=overhead,
                        round_trips=round_trips,
                        chain_size=host.quic_chain.total_size,
                    )
                )
        sweep_observations = tuple(collected_sweep)

    # Stage 3 — certificates over QUIC vs HTTPS.
    quic_certificate_count = comparison_total = comparison_identical = 0
    for domain, _rank, _provider in targets:
        host = hosts.get(domain.lower())
        if host is None:
            continue
        quic_certificate_count += 1
        https_chain = chains_by_requested.get(domain.lower())
        if https_chain is None:
            continue
        comparison_total += 1
        if chain_fingerprint(https_chain) == columns_for(host.quic_chain).fingerprint:
            comparison_identical += 1

    # Stage 4 — compression support and wild rates.
    supported_by_profile: Dict[ServerBehaviorProfile, Tuple] = {}
    wild_count = wild_all_three = 0
    wild_support_counts: Dict[CertificateCompressionAlgorithm, int] = {
        algorithm: 0 for algorithm in ALL_ALGORITHMS
    }
    wild_rates: Dict[CertificateCompressionAlgorithm, array] = {
        algorithm: array("d") for algorithm in ALL_ALGORITHMS
    }
    for domain, _rank, _provider in targets:
        host = hosts.get(domain.lower())
        if host is None:
            continue
        profile = host.server_behavior
        supported = supported_by_profile.get(profile)
        if supported is None:
            supported = tuple(
                algorithm
                for algorithm in ALL_ALGORITHMS
                if algorithm in profile.compression_algorithms
            )
            supported_by_profile[profile] = supported
        wild_count += 1
        if len(supported) == 3:
            wild_all_three += 1
        if supported:
            columns = columns_for(host.quic_chain)
            uncompressed = columns.payload_len
            deflate_len = columns.deflate_len
            for algorithm in ALL_ALGORITHMS:
                if algorithm in supported:
                    wild_support_counts[algorithm] += 1
                    compressed = compressed_size_for_deflate(algorithm, deflate_len)
                    wild_rates[algorithm].append(1.0 - compressed / uncompressed)

    # Ground-truth (population) reductions — identical batch helpers to
    # summarize_shard, so the two cannot drift apart.
    field_size_counts: Dict[str, Dict[int, int]] = {
        name: {} for name in figure02b.FIELD_NAMES
    }
    certificate_count = figure02b.accumulate_field_sizes(
        (
            certificate
            for deployment in deployments
            if deployment.delivered_chain is not None
            for certificate in deployment.delivered_chain.certificates
        ),
        field_size_counts,
    )

    quic_chain_size_counts: Dict[int, int] = {}
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is not None:
            size = chain.total_size
            quic_chain_size_counts[size] = quic_chain_size_counts.get(size, 0) + 1
    https_chain_size_counts: Dict[int, int] = {}
    for deployment in https_only:
        chain = deployment.https_chain
        if chain is not None:
            size = chain.total_size
            https_chain_size_counts[size] = https_chain_size_counts.get(size, 0) + 1

    parent_chain_groups: Dict[str, Dict[Tuple[str, ...], figure07.ParentChainStats]] = {
        "QUIC": {},
        "HTTPS-only": {},
    }
    parent_chain_totals = {
        "QUIC": figure07.accumulate_groups(
            quic_deployments, parent_chain_groups["QUIC"], task.start
        ),
        "HTTPS-only": figure07.accumulate_groups(
            https_only, parent_chain_groups["HTTPS-only"], task.start
        ),
    }

    field_sums, field_counts = figure08.empty_field_sums()
    figure08.accumulate_field_sums(quic_deployments, field_sums, field_counts)

    key_alg_counters: Dict[Tuple[str, str, object], int] = {}
    key_alg_totals: Dict[Tuple[str, str], int] = {}
    table02.accumulate_key_algorithms("QUIC", quic_deployments, key_alg_counters, key_alg_totals)
    table02.accumulate_key_algorithms("HTTPS-only", https_only, key_alg_counters, key_alg_totals)

    # Synthetic compression over the delivered chains, arithmetically: the
    # ratio and both limit checks only need the payload and DEFLATE lengths.
    synth_rates = array("d")
    synth_below_uncompressed = synth_below_compressed = synth_count = 0
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        columns = columns_for(chain)
        uncompressed = columns.payload_len
        compressed = compressed_size_for_deflate(
            spec.compression_algorithm, columns.deflate_len
        )
        synth_rates.append(
            0.0 if uncompressed == 0 else 1.0 - compressed / uncompressed
        )
        synth_count += 1
        if uncompressed <= spec.limit_bytes:
            synth_below_uncompressed += 1
        if compressed <= spec.limit_bytes:
            synth_below_compressed += 1

    fig14_leaf_sizes = array("q")
    fig14_san_shares = array("d")
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        leaf = chain.leaf
        fig14_leaf_sizes.append(leaf.size)
        fig14_san_shares.append(san_byte_share(leaf))

    spoof_candidates = take_per_provider(
        quic_deployments, spec.spoof_limit_per_provider, spec.spoof_providers
    )

    return ShardSummary(
        index=task.index,
        scenario_fingerprint=task.scenario_fingerprint(),
        deployment_count=len(deployments),
        quic_count=len(quic_deployments),
        https_only_count=len(https_only),
        funnel_counts=funnel_counts,
        chain_digests=chain_digests,
        handshake_total=len(targets),
        reachable_count=reachable,
        class_counts=class_counts,
        amp_factor_counts=amp_factor_counts,
        fig13_ranks=fig13_ranks,
        fig13_classes=bytes(fig13_classes),
        fig5_tls=fig5_tls,
        fig5_total=fig5_total,
        fig5_limit=fig5_limit,
        fig5_exceeds=fig5_exceeds,
        fig5_overhead_max=fig5_overhead_max,
        sweep_observations=sweep_observations,
        quic_certificate_count=quic_certificate_count,
        comparison_total=comparison_total,
        comparison_identical=comparison_identical,
        wild_count=wild_count,
        wild_all_three=wild_all_three,
        wild_support_counts=wild_support_counts,
        wild_rates=wild_rates,
        start_rank=deployments[0].rank if deployments else task.start + 1,
        category_codes=bytes(
            figure12.CATEGORY_CODES[deployment.category] for deployment in deployments
        ),
        field_size_counts=field_size_counts,
        certificate_count=certificate_count,
        quic_chain_size_counts=quic_chain_size_counts,
        https_chain_size_counts=https_chain_size_counts,
        parent_chain_groups=parent_chain_groups,
        parent_chain_totals=parent_chain_totals,
        field_sums=field_sums,
        field_counts=field_counts,
        key_alg_counters=key_alg_counters,
        key_alg_totals=key_alg_totals,
        synth_rates=synth_rates,
        synth_below_uncompressed=synth_below_uncompressed,
        synth_below_compressed=synth_below_compressed,
        synth_count=synth_count,
        fig14_leaf_sizes=fig14_leaf_sizes,
        fig14_san_shares=fig14_san_shares,
        spoof_candidates=tuple(spoof_candidates),
        flight_cache=cache.cache_info(),
    )
