"""Telescope backscatter analysis (§3.2 "incomplete handshakes", §4.3, Figure 9).

Two pieces live here:

* :func:`simulate_spoofed_campaign` drives the simulated network the way the
  Internet drives the real one: spoofed-source Initials hit hypergiant QUIC
  servers, and the responses land in the telescope's dark address space.
* :class:`BackscatterAnalyzer` groups the telescope's packets by source
  connection ID and hypergiant, computes per-session amplification factors and
  session durations, exactly as the paper does with UCSD telescope data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..netsim.address import IPv4Address, IPv4Prefix
from ..netsim.network import UdpNetwork
from ..netsim.telescope import BackscatterSession, Telescope
from ..quic.client import QuicClientConfig

#: Assumed client Initial size when normalising backscatter into amplification
#: factors (the paper uses 1362 bytes, §4.3).
ASSUMED_INITIAL_SIZE = 1362


@dataclass(frozen=True)
class ProviderBackscatter:
    """Aggregated backscatter for one content provider."""

    provider: str
    session_count: int
    amplification_factors: Tuple[float, ...]
    median_session_duration_s: float
    max_session_duration_s: float

    @property
    def median_amplification(self) -> float:
        if not self.amplification_factors:
            return 0.0
        ordered = sorted(self.amplification_factors)
        return ordered[len(ordered) // 2]

    @property
    def max_amplification(self) -> float:
        return max(self.amplification_factors, default=0.0)

    def share_exceeding(self, factor: float = 3.0) -> float:
        if not self.amplification_factors:
            return 0.0
        return sum(1 for f in self.amplification_factors if f > factor) / len(
            self.amplification_factors
        )


class BackscatterAnalyzer:
    """Groups telescope sessions by provider and computes amplification factors."""

    def __init__(
        self,
        telescope: Telescope,
        provider_of_domain,
        assumed_initial_size: int = ASSUMED_INITIAL_SIZE,
    ) -> None:
        """``provider_of_domain`` maps a domain to its provider name."""
        self._telescope = telescope
        self._provider_of_domain = provider_of_domain
        self._assumed_initial_size = assumed_initial_size

    def sessions_by_provider(self) -> Dict[str, List[BackscatterSession]]:
        grouped: Dict[str, List[BackscatterSession]] = {}
        for session in self._telescope.sessions():
            provider = self._provider_of_domain(session.domain) or "unknown"
            grouped.setdefault(provider, []).append(session)
        return grouped

    def analyze(self) -> Dict[str, ProviderBackscatter]:
        results: Dict[str, ProviderBackscatter] = {}
        for provider, sessions in self.sessions_by_provider().items():
            factors = tuple(
                session.amplification_factor(self._assumed_initial_size) for session in sessions
            )
            durations = sorted(session.duration_seconds for session in sessions)
            median_duration = durations[len(durations) // 2] if durations else 0.0
            results[provider] = ProviderBackscatter(
                provider=provider,
                session_count=len(sessions),
                amplification_factors=factors,
                median_session_duration_s=median_duration,
                max_session_duration_s=durations[-1] if durations else 0.0,
            )
        return results


def simulate_spoofed_campaign(
    network: UdpNetwork,
    targets: Sequence[IPv4Address],
    telescope_prefix: IPv4Prefix,
    spoof_count_per_target: int = 1,
    seed: int = 7,
    initial_size: int = 1252,
) -> int:
    """Send spoofed-source Initials at ``targets``; responses land in the telescope.

    Returns the number of probes that elicited a response.  The spoofed source
    addresses are drawn from the telescope prefix, which is how the telescope
    gets to observe the server behaviour without ever sending a packet.
    """
    rng = random.Random(f"spoof:{seed}")
    client = QuicClientConfig(initial_datagram_size=initial_size)
    responded = 0
    timestamp = 0.0
    for target in targets:
        for _ in range(spoof_count_per_target):
            offset = rng.randrange(telescope_prefix.num_addresses)
            victim = telescope_prefix.address_at(offset)
            delivery = network.probe_unvalidated(
                target, client=client, spoofed_source=victim, timestamp=timestamp
            )
            if delivery.responded:
                responded += 1
            timestamp += rng.uniform(0.5, 5.0)
    return responded
