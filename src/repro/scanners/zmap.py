"""Single-Initial prefix prober (ZMap equivalent, §3.2 / §4.3).

The paper's adversary-imitation scan sends one 1252-byte Initial to every host
of a hypergiant /24 prefix and never acknowledges the response, then measures
how many bytes come back.  The three response groups of §4.3 (no service /
≈7 kB / ≈35 kB) and Figure 11's per-host-octet factors come from this scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..netsim.address import IPv4Address, IPv4Prefix
from ..netsim.network import UdpNetwork
from ..quic.client import QuicClientConfig


@dataclass(frozen=True)
class ZmapProbeResult:
    """Outcome of probing one address."""

    address: IPv4Address
    responded: bool
    bytes_received: int
    probe_size: int
    domain: Optional[str] = None

    @property
    def host_octet(self) -> int:
        return self.address.host_octet

    @property
    def amplification_factor(self) -> float:
        if self.probe_size == 0:
            return 0.0
        return self.bytes_received / self.probe_size

    def response_group(self, no_service_threshold: int = 150) -> int:
        """The paper's three response groups for the Meta /24 (§4.3).

        1. no response or fewer than ``no_service_threshold`` bytes,
        2. a bounded response (single flight, factor >5×),
        3. a large response (retransmission storm, factor >20×).
        """
        if not self.responded or self.bytes_received <= no_service_threshold:
            return 1
        if self.amplification_factor > 20:
            return 3
        return 2


class ZmapScanner:
    """Probes every host of a prefix with a single unacknowledged Initial."""

    def __init__(self, network: UdpNetwork, probe_size: int = 1252) -> None:
        self._network = network
        self.probe_size = probe_size

    def probe_address(self, address: IPv4Address) -> ZmapProbeResult:
        client = QuicClientConfig(initial_datagram_size=self.probe_size)
        host = self._network.host_at(address)
        delivery = self._network.probe_unvalidated(address, client=client)
        return ZmapProbeResult(
            address=address,
            responded=delivery.responded,
            bytes_received=delivery.bytes_returned,
            probe_size=self.probe_size,
            domain=host.domain if host else None,
        )

    def probe_prefix(self, prefix: IPv4Prefix) -> List[ZmapProbeResult]:
        """Probe all addresses of a prefix (like ``zmap -p 443/udp <prefix>``)."""
        return [self.probe_address(address) for address in prefix.iter_hosts()]

    def responding_hosts(self, results: Sequence[ZmapProbeResult]) -> List[ZmapProbeResult]:
        return [result for result in results if result.responded]
