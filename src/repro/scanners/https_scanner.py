"""HTTPS certificate collection (paper §3.1, toolchain steps 1–2).

For every name in the input list the scanner resolves the name, attempts HTTP
connections on ports 80 and 443, follows HTTP(S) redirects and HTML meta
refreshes, and records the TLS certificate chain of every secure hop along the
redirect path.  The output contains both the per-name scan results and the
aggregate funnel the paper reports (resolved / A records / certificates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..netsim.dns import DnsRcode, SimulatedResolver
from ..netsim.http import HttpOrigin, target_domain
from ..x509.chain import CertificateChain, chain_fingerprint


@dataclass(frozen=True)
class CertificateRecord:
    """A certificate chain collected for one (possibly redirected-to) name."""

    requested_domain: str
    served_domain: str
    rank: int
    chain: CertificateChain
    via_redirect: bool = False

    @property
    def chain_size(self) -> int:
        return self.chain.total_size

    @property
    def fingerprint(self) -> str:
        return chain_fingerprint(self.chain)


@dataclass
class ScanFunnel:
    """Aggregate counters matching the funnel in §3.1."""

    names_total: int = 0
    dns_noerror: int = 0
    dns_servfail: int = 0
    dns_nxdomain: int = 0
    dns_timeout: int = 0
    dns_refused: int = 0
    with_a_record: int = 0
    port_80_open: int = 0
    port_443_open: int = 0
    names_with_certificates: int = 0
    unique_certificate_chains: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class HttpsScanResult:
    """Everything the HTTPS scan produced."""

    funnel: ScanFunnel
    records: Tuple[CertificateRecord, ...]

    def records_for(self, domain: str) -> Tuple[CertificateRecord, ...]:
        wanted = domain.lower()
        return tuple(r for r in self.records if r.requested_domain == wanted)

    def chains_by_requested_domain(self) -> Dict[str, CertificateChain]:
        """First (non-redirect preferred) chain per requested name."""
        chains: Dict[str, CertificateChain] = {}
        for record in self.records:
            if record.requested_domain not in chains or not record.via_redirect:
                chains[record.requested_domain] = record.chain
        return chains


class HttpsScanner:
    """Implements the certificate collection pipeline over the simulated net."""

    def __init__(
        self,
        resolver: SimulatedResolver,
        origins: Dict[str, HttpOrigin],
        max_redirects: int = 5,
    ) -> None:
        self._resolver = resolver
        self._origins = {name.lower(): origin for name, origin in origins.items()}
        self._max_redirects = max_redirects

    # -- public API ------------------------------------------------------------

    def scan(self, names: Sequence[Tuple[str, int]]) -> HttpsScanResult:
        """Scan ``names`` (pairs of domain and rank) and collect certificates."""
        funnel = ScanFunnel(names_total=len(names))
        records: List[CertificateRecord] = []
        fingerprints: Set[str] = set()

        for domain, rank in names:
            result = self._resolver.resolve(domain)
            self._count_dns(funnel, result.rcode)
            if not result.has_address:
                continue
            funnel.with_a_record += 1
            collected = self._scan_one(domain, rank)
            if collected:
                funnel.names_with_certificates += 1
            for record in collected:
                records.append(record)
                fingerprints.add(record.fingerprint)
            if self._origin_for(domain) is not None:
                origin = self._origin_for(domain)
                if origin.request(80) is not None:
                    funnel.port_80_open += 1
                if origin.request(443) is not None:
                    funnel.port_443_open += 1

        funnel.unique_certificate_chains = len(fingerprints)
        return HttpsScanResult(funnel=funnel, records=tuple(records))

    # -- internals --------------------------------------------------------------

    def _origin_for(self, domain: str) -> Optional[HttpOrigin]:
        return self._origins.get(domain.lower())

    def _count_dns(self, funnel: ScanFunnel, rcode: DnsRcode) -> None:
        if rcode is DnsRcode.NOERROR:
            funnel.dns_noerror += 1
        elif rcode is DnsRcode.SERVFAIL:
            funnel.dns_servfail += 1
        elif rcode is DnsRcode.NXDOMAIN:
            funnel.dns_nxdomain += 1
        elif rcode is DnsRcode.TIMEOUT:
            funnel.dns_timeout += 1
        elif rcode is DnsRcode.REFUSED:
            funnel.dns_refused += 1

    def _scan_one(self, domain: str, rank: int) -> List[CertificateRecord]:
        """Fetch the certificate for one name, following redirects."""
        records: List[CertificateRecord] = []
        visited: Set[str] = set()
        current = domain.lower()
        via_redirect = False

        for _ in range(self._max_redirects + 1):
            if current in visited:
                break
            visited.add(current)
            origin = self._origin_for(current)
            if origin is None:
                break

            https_response = origin.request(443)
            if https_response is not None and https_response.tls_chain is not None:
                records.append(
                    CertificateRecord(
                        requested_domain=domain.lower(),
                        served_domain=current,
                        rank=rank,
                        chain=https_response.tls_chain,
                        via_redirect=via_redirect,
                    )
                )

            # Determine where to go next: HTTPS redirect first, then port 80.
            next_target: Optional[str] = None
            if https_response is not None and https_response.redirect_target:
                next_target = target_domain(https_response.redirect_target)
            else:
                http_response = origin.request(80)
                if http_response is not None and http_response.redirect_target:
                    candidate = target_domain(http_response.redirect_target)
                    if candidate != current:
                        next_target = candidate
            if not next_target or next_target == current:
                break
            current = next_target
            via_redirect = True
        return records
