"""Certificate-compression support scanner (quiche-with-compression equivalent).

The paper extends Cloudflare's quiche client with the three RFC 8879
algorithms and rescans all QUIC services to learn (i) which algorithms each
service supports and (ii) the compression rate achieved in the wild
(Table 1, §4.2 "Compression helps").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.network import UdpNetwork
from ..tls.cert_compression import (
    CertificateCompressionAlgorithm,
    CompressionResult,
    compress_certificate_chain,
)

ALL_ALGORITHMS: Tuple[CertificateCompressionAlgorithm, ...] = (
    CertificateCompressionAlgorithm.ZLIB,
    CertificateCompressionAlgorithm.BROTLI,
    CertificateCompressionAlgorithm.ZSTD,
)


@dataclass(frozen=True)
class CompressionObservation:
    """Per-service compression capabilities and measured rates."""

    domain: str
    supported_algorithms: Tuple[CertificateCompressionAlgorithm, ...]
    uncompressed_chain_size: int
    compressed_sizes: Dict[CertificateCompressionAlgorithm, int]

    @property
    def supports_any(self) -> bool:
        return bool(self.supported_algorithms)

    @property
    def supports_all_three(self) -> bool:
        return set(self.supported_algorithms) == set(ALL_ALGORITHMS)

    def supports(self, algorithm: CertificateCompressionAlgorithm) -> bool:
        return algorithm in self.supported_algorithms

    def compression_rate(self, algorithm: CertificateCompressionAlgorithm) -> Optional[float]:
        """Fraction of bytes removed by ``algorithm`` (None if unsupported)."""
        compressed = self.compressed_sizes.get(algorithm)
        if compressed is None or self.uncompressed_chain_size == 0:
            return None
        return 1.0 - compressed / self.uncompressed_chain_size

    def fits_limit(self, algorithm: CertificateCompressionAlgorithm, limit_bytes: int) -> Optional[bool]:
        compressed = self.compressed_sizes.get(algorithm)
        if compressed is None:
            return None
        return compressed <= limit_bytes


class CompressionScanner:
    """Negotiates RFC 8879 with every QUIC service and records the outcome."""

    def __init__(self, network: UdpNetwork) -> None:
        self._network = network

    def scan(self, domain: str) -> Optional[CompressionObservation]:
        host = self._network.host_for_domain(domain)
        if host is None:
            return None
        supported = tuple(
            algorithm for algorithm in ALL_ALGORITHMS if host.profile.supports_compression(algorithm)
        )
        der_chain = [cert.der for cert in host.chain]
        compressed: Dict[CertificateCompressionAlgorithm, int] = {}
        uncompressed_size = 0
        for algorithm in supported:
            result: CompressionResult = compress_certificate_chain(der_chain, algorithm)
            compressed[algorithm] = result.compressed_size
            uncompressed_size = result.uncompressed_size
        if not supported:
            uncompressed_size = sum(len(der) for der in der_chain)
        return CompressionObservation(
            domain=domain.lower(),
            supported_algorithms=supported,
            uncompressed_chain_size=uncompressed_size,
            compressed_sizes=compressed,
        )

    def scan_many(self, domains: Sequence[str]) -> List[CompressionObservation]:
        observations = []
        for domain in domains:
            observation = self.scan(domain)
            if observation is not None:
                observations.append(observation)
        return observations

    @staticmethod
    def support_share(
        observations: Sequence[CompressionObservation],
        algorithm: CertificateCompressionAlgorithm,
    ) -> float:
        """Share of scanned services supporting ``algorithm`` (Table 1, last column)."""
        if not observations:
            return 0.0
        return sum(1 for o in observations if o.supports(algorithm)) / len(observations)

    @staticmethod
    def mean_compression_rate(
        observations: Sequence[CompressionObservation],
        algorithm: CertificateCompressionAlgorithm,
    ) -> Optional[float]:
        rates = [
            rate
            for rate in (o.compression_rate(algorithm) for o in observations)
            if rate is not None
        ]
        if not rates:
            return None
        return sum(rates) / len(rates)
