"""QUIC handshake classification scanner (quicreach equivalent, §3.2).

For each target the scanner performs a complete QUIC handshake through the
simulated network and classifies it into the paper's four groups.  The
:class:`InitialSizeSweep` repeats the scan for every Initial size between 1200
and 1472 bytes in steps of 10, the sweep behind Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..netsim.network import QuicServiceHost, UdpNetwork
from ..quic.client import QuicClientConfig
from ..quic.handshake import HandshakeClass, HandshakeOutcome, simulate_handshake
from ..quic.server import FlightPlanCache
from ..tls.cert_compression import CertificateCompressionAlgorithm

#: The Initial sizes of the paper's sweep: 1200..1472 in steps of 10 (the last
#: step is capped by the MTU of 1472 bytes).
SWEEP_INITIAL_SIZES: Tuple[int, ...] = tuple(range(1200, 1472, 10)) + (1472,)

#: The Initial size used for the in-depth analyses (close to Firefox's 1357).
DEFAULT_ANALYSIS_INITIAL_SIZE = 1362


@dataclass(frozen=True)
class HandshakeObservation:
    """One handshake attempt against one service at one Initial size."""

    domain: str
    rank: int
    provider: Optional[str]
    initial_size: int
    reachable: bool
    handshake_class: Optional[HandshakeClass] = None
    first_rtt_bytes: int = 0
    total_bytes: int = 0
    tls_payload_bytes: int = 0
    quic_overhead_bytes: int = 0
    round_trips: int = 0
    chain_size: int = 0

    @property
    def amplification_factor(self) -> float:
        if self.initial_size == 0:
            return 0.0
        return self.first_rtt_bytes / self.initial_size

    @property
    def exceeds_limit(self) -> bool:
        return self.first_rtt_bytes > 3 * self.initial_size


@dataclass(frozen=True)
class SweepResult:
    """All observations of an Initial-size sweep."""

    observations: Tuple[HandshakeObservation, ...]

    def at_initial_size(self, initial_size: int) -> Tuple[HandshakeObservation, ...]:
        return tuple(o for o in self.observations if o.initial_size == initial_size)

    def class_counts(self, initial_size: int) -> Dict[HandshakeClass, int]:
        counts: Dict[HandshakeClass, int] = {cls: 0 for cls in HandshakeClass}
        for observation in self.at_initial_size(initial_size):
            if observation.reachable and observation.handshake_class is not None:
                counts[observation.handshake_class] += 1
        counts.pop(HandshakeClass.UNREACHABLE, None)
        return counts

    def reachable_count(self, initial_size: int) -> int:
        return sum(1 for o in self.at_initial_size(initial_size) if o.reachable)

    def initial_sizes(self) -> Tuple[int, ...]:
        return tuple(sorted({o.initial_size for o in self.observations}))


class QuicReach:
    """The handshake classification scanner."""

    def __init__(
        self,
        network: UdpNetwork,
        pause_between_scans_s: float = 1800.0,
        flight_cache: Optional[FlightPlanCache] = None,
    ) -> None:
        """``pause_between_scans_s`` documents the paper's 30-minute pacing; it
        is not simulated as wall-clock time but kept for fidelity of reports.
        ``flight_cache`` replaces the process-wide flight-plan cache (sharded
        campaign workers warm one per shard)."""
        self._network = network
        self.pause_between_scans_s = pause_between_scans_s
        self._flight_cache = flight_cache

    def scan_domain(
        self,
        domain: str,
        rank: int = 0,
        provider: Optional[str] = None,
        initial_size: int = DEFAULT_ANALYSIS_INITIAL_SIZE,
        compression: Sequence[CertificateCompressionAlgorithm] = (),
    ) -> HandshakeObservation:
        """Attempt one complete handshake with the given client Initial size."""
        host = self._network.host_for_domain(domain)
        if host is None:
            return HandshakeObservation(
                domain=domain, rank=rank, provider=provider,
                initial_size=initial_size, reachable=False,
            )
        client = QuicClientConfig(
            initial_datagram_size=initial_size,
            compression_algorithms=tuple(compression),
        )
        if not host.accepts_initial(initial_size):
            # Encapsulation overhead pushed the datagram over the path MTU; the
            # service does not answer (the reachability drop of §4.1).
            return HandshakeObservation(
                domain=domain, rank=rank, provider=provider,
                initial_size=initial_size, reachable=False,
            )
        outcome: HandshakeOutcome = simulate_handshake(
            domain, host.chain, host.profile, client, flight_cache=self._flight_cache
        )
        trace = outcome.trace
        return HandshakeObservation(
            domain=domain,
            rank=rank,
            provider=provider,
            initial_size=initial_size,
            reachable=True,
            handshake_class=outcome.handshake_class,
            first_rtt_bytes=trace.server_bytes_first_rtt,
            total_bytes=trace.server_bytes_total,
            tls_payload_bytes=trace.tls_payload_bytes,
            quic_overhead_bytes=trace.quic_overhead_bytes,
            round_trips=trace.round_trips,
            chain_size=host.chain.total_size,
        )

    def scan_many(
        self,
        targets: Sequence[Tuple[str, int, Optional[str]]],
        initial_size: int = DEFAULT_ANALYSIS_INITIAL_SIZE,
        compression: Sequence[CertificateCompressionAlgorithm] = (),
    ) -> List[HandshakeObservation]:
        """Scan a list of (domain, rank, provider) targets at one Initial size.

        ``compression`` is the client's RFC 8879 offer (empty, like the
        paper's scanner, unless a scenario turns it on).
        """
        return [
            self.scan_domain(domain, rank, provider, initial_size, compression=compression)
            for domain, rank, provider in targets
        ]


class InitialSizeSweep:
    """The Figure 3 sweep: every target at every Initial size."""

    def __init__(self, scanner: QuicReach, initial_sizes: Sequence[int] = SWEEP_INITIAL_SIZES) -> None:
        self._scanner = scanner
        self._initial_sizes = tuple(initial_sizes)

    @property
    def initial_sizes(self) -> Tuple[int, ...]:
        return self._initial_sizes

    def run(self, targets: Sequence[Tuple[str, int, Optional[str]]]) -> SweepResult:
        observations: List[HandshakeObservation] = []
        for initial_size in self._initial_sizes:
            observations.extend(self._scanner.scan_many(targets, initial_size))
        return SweepResult(observations=tuple(observations))
