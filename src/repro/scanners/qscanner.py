"""Certificate collection over QUIC (QScanner equivalent, §3.2).

quicreach classifies handshakes but does not expose the certificates; the
paper rescans with QScanner to fetch the TLS chains served over QUIC and
compares them to the chains served over HTTPS for the same names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.network import UdpNetwork
from ..x509.chain import CertificateChain, chain_fingerprint


@dataclass(frozen=True)
class QuicCertificateRecord:
    """The chain a QUIC service delivered."""

    domain: str
    chain: CertificateChain

    @property
    def chain_size(self) -> int:
        return self.chain.total_size

    @property
    def fingerprint(self) -> str:
        return chain_fingerprint(self.chain)


@dataclass(frozen=True)
class CertificateComparison:
    """Comparison of the chains served over QUIC and over HTTPS (§3.2)."""

    total_compared: int
    identical: int
    different: int

    @property
    def identical_share(self) -> float:
        if self.total_compared == 0:
            return 0.0
        return self.identical / self.total_compared

    @property
    def different_share(self) -> float:
        if self.total_compared == 0:
            return 0.0
        return self.different / self.total_compared


class QScanner:
    """Fetches certificate chains over QUIC from the simulated network."""

    def __init__(self, network: UdpNetwork) -> None:
        self._network = network

    def fetch(self, domain: str) -> Optional[QuicCertificateRecord]:
        host = self._network.host_for_domain(domain)
        if host is None:
            return None
        return QuicCertificateRecord(domain=domain.lower(), chain=host.chain)

    def fetch_many(self, domains: Sequence[str]) -> List[QuicCertificateRecord]:
        records = []
        for domain in domains:
            record = self.fetch(domain)
            if record is not None:
                records.append(record)
        return records

    def compare_with_https(
        self,
        quic_records: Sequence[QuicCertificateRecord],
        https_chains: Dict[str, CertificateChain],
    ) -> CertificateComparison:
        """How often QUIC and HTTPS serve the same chain for the same name."""
        total = identical = 0
        for record in quic_records:
            https_chain = https_chains.get(record.domain)
            if https_chain is None:
                continue
            total += 1
            if chain_fingerprint(https_chain) == record.fingerprint:
                identical += 1
        return CertificateComparison(
            total_compared=total, identical=identical, different=total - identical
        )
