"""Persistent skeleton-shard store: warm-start campaigns skip generation.

After the columnar kernel (PR 8) and cross-scenario shard reuse (PR 9),
*generation* is the dominant phase of a campaign.  But the phase-1 skeleton
pass is a pure function of a tiny fingerprint: the per-shard RNG stream is
seeded from ``(seed, shard_index)`` alone, and every scenario is a pure
post-RNG transform (standing invariant since PR 5).  Work whose output is
fully determined by a fingerprint need never be redone — so this module
persists the **baseline** (pre-scenario-transform) :class:`SkeletonShard` of
each generation shard on first use and replays it from disk ever after.

Deliberately *scenario-independent*, unlike checkpoints: one cached skeleton
shard serves every scenario, grid, scan backend, worker count and scan shard
size over the same population, because

* shards are stored at generation granularity
  (:data:`~repro.webpki.population.GENERATION_SHARD_SIZE`), the unit the RNG
  stream is actually keyed on — scan shards of any size slice the covering
  generation shards exactly like
  :func:`~repro.webpki.population.deployments_for_range`;
* the cached skeletons are the baseline: scenario transforms are applied
  *after* load, exactly where the grid dispatch path applies them.

The store reuses the checkpoint store's proven durability shape
(:mod:`repro.core.ioutil` carries the shared parser):

* **Content-addressed filenames** embedding a digest of
  ``(seed, size, shard_size, population-config fingerprint, shard_index)``
  (:class:`SkeletonKey`), so one directory can hold shards of several
  populations — a grid whose members carry ``population_overrides`` warms
  one entry per distinct generation config — without ever confusing them.
* **Atomic, self-verifying files**: ``repro-skel/1 <len> <sha256>`` header,
  tmp-file + ``os.replace`` writes, deterministic payload codec
  (:func:`~repro.webpki.skeleton.encode_skeleton_shard`).  A torn, corrupt,
  foreign or stale-format file fails verification, is quarantined (kept as
  evidence, never trusted) and its shard is simply regenerated — the cache
  is an optimisation, never a source of truth.
* **Directory binding**: ``skeletons.json`` records ``(seed, size,
  generation shard size)``; warming a directory for a different population
  is rejected with an actionable error instead of quietly interleaving.

Because the payload codec is deterministic and python-version independent
(no pickle), the files double as the interchange format the ROADMAP's
multi-host dispatcher ships to remote workers: a host that has the shard
bytes never regenerates, no matter who generated them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.ioutil import (
    SelfVerifyingFormatError,
    atomic_write_bytes,
    atomic_write_text,
    decode_self_verifying,
    encode_self_verifying,
    quarantine_file,
)
from ..webpki.population import (
    GENERATION_SHARD_SIZE,
    PopulationConfig,
    SkeletonShard,
    generate_tranco_list,
)
from ..webpki.skeleton import (
    ChainSpec,
    SkeletonCodecError,
    decode_skeleton_shard,
    encode_skeleton_shard,
)
from ..x509.ca import WebPkiHierarchy, default_hierarchy
from ..x509.chain import CertificateChain
from ..x509.issuance import leaf_from_record, leaf_record, leaf_template

#: Skeleton file format tag; bump on any incompatible layout change so old
#: files are quarantined (and regenerated) instead of misparsed.
SKELETON_FORMAT = b"repro-skel/1"

#: Name of the per-directory population metadata file.
STORE_METADATA_FILENAME = "skeletons.json"

#: Subdirectory failed-verification skeleton files are moved into.
QUARANTINE_DIRNAME = "quarantine"

#: Filename suffix of skeleton shard files.
SKELETON_SUFFIX = ".skel"

#: Decoded-shard memo capacity per store.  Scan shards rarely straddle more
#: than two generation shards at a time, so a small window is enough to make
#: sequential range reads decode each file once.
MEMO_CAPACITY = 8


class SkeletonStoreError(RuntimeError):
    """A skeleton cache directory cannot be used for this population."""


#: Process-wide hit/miss counters (all stores), read by the profiler and
#: tests.  Generation is deterministic, so a "hit" is exactly "generation
#: skipped" — the number the warm-start optimisation exists to maximise.
_CACHE_COUNTERS = {"hits": 0, "misses": 0}


def cache_counters() -> Dict[str, int]:
    """Process-wide ``{"hits": n, "misses": n}`` across all stores."""
    return dict(_CACHE_COUNTERS)


def reset_cache_counters() -> None:
    _CACHE_COUNTERS["hits"] = 0
    _CACHE_COUNTERS["misses"] = 0


#: Per-process store registry: every :class:`ShardTask` naming the same cache
#: directory shares one :class:`SkeletonStore` (and so one decoded-shard
#: memo) — scan shards smaller than the generation shard size straddle
#: generation shards, and without the shared memo each would re-decode its
#: neighbours' files.
_STORES: Dict[str, "SkeletonStore"] = {}


def store_for(directory: str) -> "SkeletonStore":
    """The process-wide :class:`SkeletonStore` of ``directory``."""
    store = _STORES.get(directory)
    if store is None:
        store = _STORES[directory] = SkeletonStore(directory)
    return store


def reset_stores() -> None:
    """Drop per-process stores and their decoded-shard memos.

    Benchmarks call this between passes so a "warm" measurement reads disk,
    not memory; tests use it to isolate directories reused across cases.
    """
    _STORES.clear()


def population_fingerprint(config: PopulationConfig) -> str:
    """Fingerprint of every generation-affecting knob of ``config``.

    Covers all :class:`PopulationConfig` fields *except* ``scenario``:
    scenarios are post-RNG transforms and must not fragment the cache, while
    ``population_overrides`` (which rewrite fraction fields *before*
    generation and therefore change the RNG outcomes) land in the fields this
    hash covers and get their own entries.  Stable across processes and
    hosts — the canonical form is a sorted JSON object of field reprs.
    """
    knobs = {
        field.name: repr(getattr(config, field.name))
        for field in dataclasses.fields(config)
        if field.name != "scenario"
    }
    canonical = json.dumps(knobs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SkeletonKey:
    """The content address of one cached generation shard."""

    seed: int
    size: int
    #: Size of the stored shard — always :data:`GENERATION_SHARD_SIZE`, the
    #: granularity the RNG stream is keyed on.  Part of the address so a
    #: future re-sharding of generation invalidates rather than misreads.
    shard_size: int
    population_fingerprint: str
    index: int

    def digest(self) -> str:
        material = (
            f"{self.seed}|{self.size}|{self.shard_size}|"
            f"{self.population_fingerprint}|{self.index}"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def filename(self) -> str:
        return f"skel-{self.index:06d}-{self.digest()}{SKELETON_SUFFIX}"

    def expected_length(self) -> int:
        """Number of skeletons the addressed generation shard must hold."""
        start = self.index * self.shard_size
        return max(0, min(self.size, start + self.shard_size) - start)

    @classmethod
    def for_config(cls, config: PopulationConfig, index: int) -> "SkeletonKey":
        return cls(
            seed=config.seed,
            size=config.size,
            shard_size=GENERATION_SHARD_SIZE,
            population_fingerprint=population_fingerprint(config),
            index=index,
        )


#: ``ChainSpec → CertificateChain`` — the materialisation cache shape shared
#: with :meth:`~repro.webpki.skeleton.DeploymentSkeleton.materialize`.
ChainCache = Dict[ChainSpec, CertificateChain]


def _iter_specs(shard: SkeletonShard) -> Iterator[ChainSpec]:
    """Every chain spec of a shard, in the deterministic annex order."""
    for skeleton in shard.skeletons:
        if skeleton.https_spec is not None:
            yield skeleton.https_spec
        if skeleton.quic_spec is not None:
            yield skeleton.quic_spec


def _encode_leaf_annex(
    shard: SkeletonShard,
    chain_cache: ChainCache,
    hierarchy: WebPkiHierarchy,
) -> bytes:
    """Encode the issued-leaf annex: one leaf record per chain spec.

    Skeleton decode alone only removes ~15% of generation cost — issuance
    dominates — so the store also carries each spec's issued *leaf* (the only
    per-domain certificate; every parent is a hierarchy or bloat-pool
    singleton recoverable from the spec).  Missing chains are issued here, so
    encoding from a cold run reuses the chains the campaign materialises
    anyway when the caller shares ``chain_cache``.
    """
    der_lens: List[int] = []
    tbs_lens: List[int] = []
    sig_lens: List[int] = []
    ski_lens: List[int] = []
    san_lens: List[int] = []
    sct_lens: List[int] = []
    serials = bytearray()
    rows: List[int] = []
    ders: List[bytes] = []
    skis: List[bytes] = []
    sans: List[bytes] = []
    scts: List[bytes] = []
    count = 0
    for spec in _iter_specs(shard):
        chain = chain_cache.get(spec)
        if chain is None:
            chain = chain_cache[spec] = spec.materialize(hierarchy)
        der, tbs_len, sig_len, serial, ski, san, sct, row = leaf_record(chain.leaf)
        der_lens.append(len(der))
        tbs_lens.append(tbs_len)
        sig_lens.append(sig_len)
        ski_lens.append(len(ski))
        san_lens.append(len(san))
        sct_lens.append(len(sct))
        serials += serial.to_bytes(16, "big")
        rows.extend(row)
        ders.append(der)
        skis.append(ski)
        sans.append(san)
        scts.append(sct)
        count += 1
    out = bytearray()
    out += struct.pack("<I", count)
    out += struct.pack(f"<{count}I", *der_lens)
    out += struct.pack(f"<{count}I", *tbs_lens)
    out += struct.pack(f"<{count}H", *sig_lens)
    out += struct.pack(f"<{count}H", *ski_lens)
    out += struct.pack(f"<{count}H", *san_lens)
    out += struct.pack(f"<{count}H", *sct_lens)
    out += serials
    out += struct.pack(f"<{7 * count}I", *rows)
    for blobs in (ders, skis, sans, scts):
        for blob in blobs:
            out += blob
    return bytes(out)


def _decode_leaf_annex(
    payload: bytes,
    pos: int,
    shard: SkeletonShard,
    hierarchy: WebPkiHierarchy,
) -> ChainCache:
    """Rebuild the shard's chain cache from its issued-leaf annex."""
    specs = list(_iter_specs(shard))
    (count,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    if count != len(specs):
        raise SkeletonStoreError(
            f"leaf annex carries {count} records for {len(specs)} chain specs"
        )
    der_lens = struct.unpack_from(f"<{count}I", payload, pos)
    pos += 4 * count
    tbs_lens = struct.unpack_from(f"<{count}I", payload, pos)
    pos += 4 * count
    sig_lens = struct.unpack_from(f"<{count}H", payload, pos)
    pos += 2 * count
    ski_lens = struct.unpack_from(f"<{count}H", payload, pos)
    pos += 2 * count
    san_lens = struct.unpack_from(f"<{count}H", payload, pos)
    pos += 2 * count
    sct_lens = struct.unpack_from(f"<{count}H", payload, pos)
    pos += 2 * count
    serials = payload[pos : pos + 16 * count]
    pos += 16 * count
    rows = struct.unpack_from(f"<{7 * count}I", payload, pos)
    pos += 28 * count
    der_pos = pos
    ski_pos = der_pos + sum(der_lens)
    san_pos = ski_pos + sum(ski_lens)
    sct_pos = san_pos + sum(san_lens)
    end = sct_pos + sum(sct_lens)
    if end != len(payload) or len(serials) != 16 * count:
        raise SkeletonStoreError("leaf annex is truncated or has trailing bytes")
    profiles = hierarchy.profiles
    cache: ChainCache = {}
    # Per-(profile, key algorithm) template + delivered-chain memo, and a
    # CertificateChain constructor bypass for the overwhelmingly common
    # no-bloat/no-trim spec: this loop rebuilds every issued chain of a
    # shard and is the warm path's largest single cost.
    templates: Dict[Tuple[str, object], tuple] = {}
    chain_new = CertificateChain.__new__
    from_bytes = int.from_bytes
    for i, spec in enumerate(specs):
        der = payload[der_pos : der_pos + der_lens[i]]
        der_pos += der_lens[i]
        ski = payload[ski_pos : ski_pos + ski_lens[i]]
        ski_pos += ski_lens[i]
        san = payload[san_pos : san_pos + san_lens[i]]
        san_pos += san_lens[i]
        sct = payload[sct_pos : sct_pos + sct_lens[i]]
        sct_pos += sct_lens[i]
        entry = templates.get((spec.ca_profile, spec.key_algorithm))
        if entry is None:
            profile = profiles[spec.ca_profile]
            entry = templates[(spec.ca_profile, spec.key_algorithm)] = (
                leaf_template(
                    profile.issuer, spec.key_algorithm or profile.leaf_key_algorithm
                ),
                profile.delivered_chain,
            )
        template, delivered = entry
        leaf = leaf_from_record(
            template,
            spec.domain,
            spec.san_names,  # bound method: expanded lazily on first read
            spec.validity_days,
            der,
            tbs_lens[i],
            sig_lens[i],
            from_bytes(serials[16 * i : 16 * i + 16], "big"),
            ski,
            san,
            sct,
            rows[7 * i : 7 * i + 7],
        )
        if spec.bloat_extras or spec.trim_to is not None:
            cache[spec] = spec.assemble(leaf, hierarchy)
        else:
            chain = chain_new(CertificateChain)
            chain.__dict__.update({"certificates": (leaf,) + delivered})
            cache[spec] = chain
    return cache


#: Length of the content-address digest embedded at the start of every
#: payload (hex prefix of :meth:`SkeletonKey.digest`).  The filename already
#: carries the address, but filenames can be forged by a rename — a foreign
#: shard of the *same shape* (index, rank range, length) copied under the
#: expected name would otherwise pass every structural check.  Embedding the
#: address in the digested payload makes the file self-identifying.
KEY_DIGEST_LENGTH = 16


def encode_skeleton_file(
    shard: SkeletonShard,
    chain_cache: Optional[ChainCache] = None,
    hierarchy: Optional[WebPkiHierarchy] = None,
    key: Optional[SkeletonKey] = None,
) -> bytes:
    """Serialise one generation shard (skeletons + leaf annex), with header.

    ``chain_cache`` supplies already-materialised chains; specs it is missing
    are issued (into it) here.  Passing ``None`` issues everything fresh.
    ``key`` embeds the shard's content address into the payload (always set
    on the store's write path); without one a placeholder is stored and the
    file will fail any keyed load.
    """
    hierarchy = hierarchy or default_hierarchy()
    if chain_cache is None:
        chain_cache = {}
    address = (key.digest() if key is not None else "0" * KEY_DIGEST_LENGTH).encode(
        "ascii"
    )
    skeleton_bytes = encode_skeleton_shard(shard)
    annex = _encode_leaf_annex(shard, chain_cache, hierarchy)
    payload = (
        address + struct.pack("<I", len(skeleton_bytes)) + skeleton_bytes + annex
    )
    return encode_self_verifying(SKELETON_FORMAT, payload)


def decode_skeleton_file(
    data: bytes, populate: bool = True, key: Optional[SkeletonKey] = None
) -> Tuple[SkeletonShard, Optional[ChainCache]]:
    """Verify and deserialise skeleton file bytes.

    With ``populate=True`` the issued-leaf annex is decoded into a chain
    cache (the warm path); ``populate=False`` skips the annex entirely, so
    skeleton-only consumers (the sweep discovery pass) stay issuance-free.
    A ``key`` additionally checks the payload's embedded content address, so
    a foreign file renamed to the expected filename is rejected even when it
    is internally consistent.

    Raises :class:`SkeletonStoreError` on any defect — bad header, truncated
    write, digest mismatch, stale format, foreign content address or a
    payload that does not decode.  Callers quarantine on failure.
    """
    try:
        payload = decode_self_verifying(SKELETON_FORMAT, data, label="skeleton shard")
    except SelfVerifyingFormatError as error:
        raise SkeletonStoreError(str(error)) from error
    if key is not None:
        stored = payload[:KEY_DIGEST_LENGTH].decode("ascii", errors="replace")
        if stored != key.digest():
            raise SkeletonStoreError(
                f"skeleton shard carries content address {stored!r}, expected "
                f"{key.digest()!r} — a foreign or renamed file"
            )
    try:
        base = KEY_DIGEST_LENGTH
        (skeleton_length,) = struct.unpack_from("<I", payload, base)
        shard = decode_skeleton_shard(payload[base + 4 : base + 4 + skeleton_length])
        if not populate:
            return shard, None
        cache = _decode_leaf_annex(
            payload, base + 4 + skeleton_length, shard, default_hierarchy()
        )
    except SkeletonStoreError:
        raise
    except (SkeletonCodecError, struct.error, IndexError, OverflowError, KeyError) as error:
        raise SkeletonStoreError(f"skeleton shard payload is invalid: {error}") from error
    return shard, cache


class SkeletonStore:
    """One directory of cached baseline skeleton shards."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        # Decoded-shard memo: scan shards smaller than the generation shard
        # size straddle generation shards, so consecutive range reads would
        # otherwise decode the same file repeatedly.
        self._memo: "OrderedDict[str, Tuple[SkeletonShard, Optional[ChainCache]]]" = (
            OrderedDict()
        )

    def reset_memo(self) -> None:
        """Drop in-process decoded shards.

        Benchmarks call this between measurements so a "warm" number
        exercises the disk decode path rather than a memory hit.
        """
        self._memo.clear()

    def _memoize(
        self,
        digest: str,
        shard: SkeletonShard,
        cache: Optional[ChainCache],
    ) -> None:
        existing = self._memo.get(digest)
        if existing is not None and existing[1] is not None and cache is None:
            cache = existing[1]  # never downgrade a populated entry
        self._memo[digest] = (shard, cache)
        self._memo.move_to_end(digest)
        while len(self._memo) > MEMO_CAPACITY:
            self._memo.popitem(last=False)

    # -- paths ----------------------------------------------------------------

    def path_for(self, key: SkeletonKey) -> str:
        return os.path.join(self.directory, key.filename())

    @property
    def quarantine_directory(self) -> str:
        return os.path.join(self.directory, QUARANTINE_DIRNAME)

    @property
    def metadata_path(self) -> str:
        return os.path.join(self.directory, STORE_METADATA_FILENAME)

    # -- population binding ----------------------------------------------------

    def bind(self, config: PopulationConfig) -> None:
        """Claim this directory for one ``(seed, size)`` population (or verify).

        The binding pins what every entry in the directory must share; the
        population-config fingerprint stays per-file (content-addressed), so
        one directory serves a grid whose members override generation
        fractions.  A mismatch is an actionable error, not a silent miss:
        pointing ``--skeleton-cache`` at a directory warmed for a different
        population is almost certainly an operator mistake.
        """
        expected = {
            "format": SKELETON_FORMAT.decode("ascii"),
            "seed": config.seed,
            "size": config.size,
            "generation_shard_size": GENERATION_SHARD_SIZE,
        }
        if os.path.exists(self.metadata_path):
            try:
                with open(self.metadata_path, "r", encoding="utf-8") as handle:
                    found = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise SkeletonStoreError(
                    f"skeleton cache directory {self.directory!r} has an unreadable "
                    f"{STORE_METADATA_FILENAME} ({error}); use a fresh directory"
                ) from error
            mismatched = sorted(
                name for name, value in expected.items() if found.get(name) != value
            )
            if mismatched:
                described = ", ".join(
                    f"{name}: {found.get(name)!r} != {expected[name]!r}"
                    for name in mismatched
                )
                raise SkeletonStoreError(
                    f"skeleton cache directory {self.directory!r} was warmed for a "
                    f"different population ({described}); point --skeleton-cache at "
                    "a fresh directory or rerun with the original parameters"
                )
        else:
            atomic_write_text(
                self.metadata_path,
                json.dumps(expected, indent=2, sort_keys=True) + "\n",
            )

    # -- save/load -------------------------------------------------------------

    def save(
        self,
        key: SkeletonKey,
        shard: SkeletonShard,
        chain_cache: Optional[ChainCache] = None,
    ) -> str:
        """Atomically persist one generation shard; returns the file path.

        No attempt bookkeeping is needed (unlike checkpoints): shard bytes
        are a deterministic function of the key, so concurrent or repeated
        writes race towards identical content.
        """
        path = self.path_for(key)
        atomic_write_bytes(path, encode_skeleton_file(shard, chain_cache, key=key))
        return path

    def load(
        self, key: SkeletonKey, populate: bool = True
    ) -> Optional[Tuple[SkeletonShard, Optional[ChainCache]]]:
        """Load one generation shard (and, if ``populate``, its chain cache).

        Returns ``None`` — after quarantining the file — on any defect: bad
        header, truncation, corruption, stale format, a foreign content
        address, or a decoded shard whose index / rank range / length does
        not match the key (a renamed or foreign file).  The caller then
        regenerates the shard.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        try:
            shard, cache = decode_skeleton_file(data, populate=populate, key=key)
        except SkeletonStoreError:
            self.quarantine(path)
            return None
        if (
            shard.index != key.index
            or shard.start_rank != key.index * key.shard_size + 1
            or len(shard.skeletons) != key.expected_length()
        ):
            self.quarantine(path)
            return None
        return shard, cache

    def quarantine(self, path: str) -> str:
        """Move a failed-verification file into ``quarantine/`` (kept, not trusted)."""
        return quarantine_file(path, self.quarantine_directory)

    def load_or_generate(
        self,
        config: PopulationConfig,
        shard_index: int,
        tranco=None,
        populate: bool = True,
    ) -> Tuple[SkeletonShard, Optional[ChainCache]]:
        """One generation shard of the *baseline* population, cache-first.

        ``config`` must be scenario-free (the caller strips scenarios before
        consulting the store and applies transforms after); a scenario here
        would poison the cache for every other consumer.

        With ``populate=True`` a hit also returns the shard's chain cache
        (rebuilt from the issued-leaf annex) and a miss issues every spec's
        chain, stores it, and returns the freshly built cache — so the warm
        path never issues and the cold path issues exactly once, sharing the
        chains with the campaign that triggered generation.  With
        ``populate=False`` (skeleton-only consumers: the sweep discovery
        pass) the annex is neither decoded nor — on a miss — produced: the
        store reads through without writing, because writing would force the
        issuance the skeleton pass exists to skip.
        """
        if config.scenario is not None and not config.scenario.is_identity:
            raise SkeletonStoreError(
                "skeleton store caches baseline shards only; strip the scenario "
                "from the config and apply its transform after load"
            )
        from ..webpki.population import _generate_shard_skeletons

        key = SkeletonKey.for_config(config, shard_index)
        memoed = self._memo.get(key.digest())
        if memoed is not None and (memoed[1] is not None or not populate):
            self._memo.move_to_end(key.digest())
            self.hits += 1
            _CACHE_COUNTERS["hits"] += 1
            return (memoed[0], memoed[1]) if populate else (memoed[0], None)
        loaded = self.load(key, populate=populate)
        if loaded is not None:
            self.hits += 1
            _CACHE_COUNTERS["hits"] += 1
            self._memoize(key.digest(), loaded[0], loaded[1])
            return loaded
        self.misses += 1
        _CACHE_COUNTERS["misses"] += 1
        tranco = tranco or generate_tranco_list(config.size, seed=config.seed)
        shard_start = shard_index * GENERATION_SHARD_SIZE
        domains = tranco.domains[shard_start : shard_start + GENERATION_SHARD_SIZE]
        base = config if config.scenario is None else dataclasses.replace(
            config, scenario=None
        )
        skeletons = _generate_shard_skeletons(base, domains, shard_index, shard_start + 1)
        shard = SkeletonShard(
            index=shard_index, start_rank=shard_start + 1, skeletons=tuple(skeletons)
        )
        if not populate:
            self._memoize(key.digest(), shard, None)
            return shard, None
        chain_cache: ChainCache = {}
        self.save(key, shard, chain_cache)
        self._memoize(key.digest(), shard, chain_cache)
        return shard, chain_cache

    # -- inspection / maintenance ---------------------------------------------

    def entries(self) -> List[str]:
        """Skeleton filenames currently in the directory (sorted)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(name for name in names if name.endswith(SKELETON_SUFFIX))

    def stats(self) -> Dict[str, object]:
        """Inspection summary: entry/byte/quarantine counts plus metadata."""
        entries = self.entries()
        total_bytes = 0
        for name in entries:
            try:
                total_bytes += os.path.getsize(os.path.join(self.directory, name))
            except OSError:
                pass
        quarantined = 0
        if os.path.isdir(self.quarantine_directory):
            quarantined = len(os.listdir(self.quarantine_directory))
        metadata: Optional[Dict] = None
        if os.path.exists(self.metadata_path):
            try:
                with open(self.metadata_path, "r", encoding="utf-8") as handle:
                    metadata = json.load(handle)
            except (OSError, json.JSONDecodeError):
                metadata = None
        return {
            "directory": self.directory,
            "entries": len(entries),
            "bytes": total_bytes,
            "quarantined": quarantined,
            "metadata": metadata,
        }

    def gc(self, config: Optional[PopulationConfig] = None) -> Dict[str, int]:
        """Drop quarantined files and (given ``config``) stale entries.

        With a ``config``, every skeleton file whose name is not one of the
        config's expected content addresses — a different population's
        leftovers, a renamed file, an aborted experiment — is deleted; the
        quarantine directory is always emptied.  Returns removal counts.
        """
        removed = {"stale": 0, "quarantined": 0}
        if config is not None:
            expected = {
                SkeletonKey.for_config(config, index).filename()
                for index in range(shard_count(config.size))
            }
            for name in self.entries():
                if name not in expected:
                    try:
                        os.unlink(os.path.join(self.directory, name))
                        removed["stale"] += 1
                    except OSError:
                        pass
        if os.path.isdir(self.quarantine_directory):
            for name in os.listdir(self.quarantine_directory):
                try:
                    os.unlink(os.path.join(self.quarantine_directory, name))
                    removed["quarantined"] += 1
                except OSError:
                    pass
            try:
                os.rmdir(self.quarantine_directory)
            except OSError:
                pass
        return removed


def shard_count(size: int) -> int:
    """Number of generation shards of a ``size``-domain population."""
    return -(-size // GENERATION_SHARD_SIZE)


def warm(
    store: "SkeletonStore | str",
    config: PopulationConfig,
    shard_indices: Optional[Iterable[int]] = None,
) -> Tuple[int, int]:
    """Pre-populate a cache with the baseline shards of ``config``.

    Returns ``(hits, misses)`` over the warmed indices — a second warm run
    reports all hits.  Used by ``repro skeletons --warm`` and tests.
    """
    if isinstance(store, str):
        store = SkeletonStore(store)
    base = (
        config
        if config.scenario is None
        else dataclasses.replace(config, scenario=None)
    )
    store.bind(base)
    tranco = generate_tranco_list(base.size, seed=base.seed)
    hits = misses = 0
    indices = (
        range(shard_count(base.size)) if shard_indices is None else shard_indices
    )
    for index in indices:
        before = store.hits
        store.load_or_generate(base, index, tranco=tranco)
        if store.hits > before:
            hits += 1
        else:
            misses += 1
    return hits, misses


def _covering_shards(start: int, stop: int) -> range:
    """Generation-shard indices covering the rank range ``[start, stop)``."""
    first = start // GENERATION_SHARD_SIZE
    last = max(first, (stop - 1) // GENERATION_SHARD_SIZE) if stop > start else first
    return range(first, last + 1)


def skeletons_for_range(
    store: "SkeletonStore | str",
    config: PopulationConfig,
    start: int,
    stop: int,
    tranco=None,
    chain_cache: Optional[ChainCache] = None,
):
    """Cache-first counterpart of ``deployments_for_range(..., skeleton=True)``.

    Loads (or generates and caches) the covering baseline generation shards,
    slices ``[start, stop)`` exactly like
    :func:`~repro.webpki.population.deployments_for_range`, then applies the
    config's scenario transform to the slice — the same transform-after-
    baseline order the grid dispatch path uses, so results are byte-identical
    to cache-free generation.

    Passing ``chain_cache`` additionally decodes the covering shards'
    issued-leaf annexes into it (the grid worker seeds its shared spec→chain
    cache this way, so member-scenario materialisation skips issuance for
    every untouched spec).
    """
    if isinstance(store, str):
        store = SkeletonStore(store)
    if not 0 <= start <= stop <= config.size:
        raise ValueError(f"range [{start}, {stop}) out of bounds for size {config.size}")
    base = (
        config
        if config.scenario is None
        else dataclasses.replace(config, scenario=None)
    )
    store.bind(base)
    tranco = tranco or generate_tranco_list(base.size, seed=base.seed)
    skeletons: List = []
    for shard_index in _covering_shards(start, stop):
        shard, cache = store.load_or_generate(
            base, shard_index, tranco=tranco, populate=chain_cache is not None
        )
        if cache and chain_cache is not None:
            chain_cache.update(cache)
        shard_start = shard_index * GENERATION_SHARD_SIZE
        skeletons.extend(
            shard.skeletons[max(start - shard_start, 0) : max(stop - shard_start, 0)]
        )
    scenario = config.scenario
    if scenario is not None and not scenario.is_identity:
        skeletons = list(scenario.transform_skeletons(skeletons))
    return skeletons


def deployments_for_range(
    store: "SkeletonStore | str",
    config: PopulationConfig,
    start: int,
    stop: int,
    tranco=None,
    chain_cache: Optional[ChainCache] = None,
):
    """Cache-first counterpart of ``deployments_for_range`` (materialised).

    The covering shards' issued-leaf annexes seed the chain cache, so a warm
    call materialises without issuing a single certificate; scenario
    transforms are applied to the skeleton slice first and hit the cache
    through spec equality (untouched specs) or the trim-aware fallback.  A
    caller-supplied ``chain_cache`` is used and extended in place (the grid
    path shares one across every scenario of a shard visit).
    """
    if isinstance(store, str):
        store = SkeletonStore(store)
    if not 0 <= start <= stop <= config.size:
        raise ValueError(f"range [{start}, {stop}) out of bounds for size {config.size}")
    base = (
        config
        if config.scenario is None
        else dataclasses.replace(config, scenario=None)
    )
    store.bind(base)
    tranco = tranco or generate_tranco_list(base.size, seed=base.seed)
    if chain_cache is None:
        chain_cache = {}
    skeletons: List = []
    for shard_index in _covering_shards(start, stop):
        shard, cache = store.load_or_generate(base, shard_index, tranco=tranco)
        if cache:
            chain_cache.update(cache)
        shard_start = shard_index * GENERATION_SHARD_SIZE
        skeletons.extend(
            shard.skeletons[max(start - shard_start, 0) : max(stop - shard_start, 0)]
        )
    scenario = config.scenario
    if scenario is not None and not scenario.is_identity:
        skeletons = list(scenario.transform_skeletons(skeletons))
    hierarchy = default_hierarchy()
    # Warm-path materialisation: every spec is normally already in the chain
    # cache (seeded by the annexes), so deployments are assembled straight
    # from the skeleton's field dict, bypassing the frozen-dataclass __init__
    # and the per-call issue() closure of DeploymentSkeleton.materialize.
    # Any miss (scenario-rewritten spec, trim, cold store) falls back to the
    # canonical materialize for that skeleton.
    from ..webpki.deployment import DomainDeployment

    deployment_new = DomainDeployment.__new__
    cache_get = chain_cache.get
    deployments = []
    append = deployments.append
    for skeleton in skeletons:
        https_spec = skeleton.https_spec
        if https_spec is not None:
            https_chain = cache_get(https_spec)
            if https_chain is None:
                append(skeleton.materialize(hierarchy, chain_cache))
                continue
        else:
            https_chain = None
        if skeleton.quic_shares_https:
            quic_chain = https_chain
        else:
            quic_spec = skeleton.quic_spec
            if quic_spec is not None:
                quic_chain = cache_get(quic_spec)
                if quic_chain is None:
                    append(skeleton.materialize(hierarchy, chain_cache))
                    continue
            else:
                quic_chain = None
        fields = dict(skeleton.__dict__)
        del fields["https_spec"], fields["quic_spec"], fields["quic_shares_https"]
        fields["https_chain"] = https_chain
        fields["quic_chain"] = quic_chain
        deployment = deployment_new(DomainDeployment)
        deployment.__dict__.update(fields)
        append(deployment)
    return deployments


def generate_population_cached(
    store: "SkeletonStore | str", config: Optional[PopulationConfig] = None
):
    """Cache-first counterpart of
    :func:`~repro.webpki.population.generate_population`.

    Materialises the full population through the store — warm directories
    skip every RNG roll and every certificate issuance — and returns an
    :class:`~repro.webpki.population.InternetPopulation` byte-identical to
    the eager generator's, including the ``_shard_regenerable`` mark (the
    cached path is faithful regeneration, so sharded runners may still ship
    ``(config, range)`` to workers).
    """
    from ..webpki.population import InternetPopulation

    config = config or PopulationConfig()
    tranco = generate_tranco_list(config.size, seed=config.seed)
    deployments = deployments_for_range(store, config, 0, config.size, tranco=tranco)
    population = InternetPopulation(config=config, tranco=tranco, deployments=deployments)
    population._shard_regenerable = True
    return population
