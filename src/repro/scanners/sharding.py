"""Sharded, multi-process execution of the measurement pipeline.

The per-domain stages of the campaign — HTTPS certificate collection, QUIC
handshake classification, the Initial-size sweep, certificate fetches over
QUIC and the compression scan — are embarrassingly parallel: every observation
depends on exactly one deployment.  This module exploits that by cutting the
population into deterministic, rank-contiguous :class:`ShardSpec` slices,
scanning each shard independently (:func:`scan_shard`, optionally in
``ProcessPoolExecutor`` workers), and merging the per-shard partial results
back into exactly what a serial run produces (:func:`merge_shard_results`).

Determinism rules, so ``workers=1`` and ``workers=N`` yield byte-identical
campaign reports:

* Shard boundaries depend only on the population size and ``shard_size`` —
  never on the worker count — so the same shards exist however many processes
  execute them.
* Each shard is scanned against a fabric built from its own deployments with a
  *fresh* :class:`~repro.quic.server.FlightPlanCache`; cache counters are a
  pure function of the shard, not of which worker it landed on.
* Merging concatenates observations in shard (= rank) order; the sweep is
  re-interleaved Initial-size-major, matching the serial sweep's iteration
  order.  Funnel counters add up; unique-chain counts merge as set unions.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..quic.server import FlightCacheInfo, FlightPlanCache
from ..scenarios import BASELINE, ScenarioSpec
from ..tls.cert_compression import CertificateCompressionAlgorithm
from ..webpki.deployment import DomainDeployment, ServiceCategory
from ..webpki.population import (
    InternetPopulation,
    PopulationConfig,
    build_network_for,
    build_origins_for,
    build_resolver_for,
    deployments_for_range,
)
from ..webpki.tranco import generate_tranco_list
from .compression_scanner import CompressionObservation, CompressionScanner
from .https_scanner import CertificateRecord, HttpsScanner, HttpsScanResult, ScanFunnel
from .qscanner import CertificateComparison, QScanner, QuicCertificateRecord
from .quicreach import (
    DEFAULT_ANALYSIS_INITIAL_SIZE,
    SWEEP_INITIAL_SIZES,
    HandshakeObservation,
    InitialSizeSweep,
    QuicReach,
    SweepResult,
)

#: Deployments per scan shard.  A constant (not derived from the worker
#: count!) so that shard boundaries — and therefore merged results — are
#: identical no matter how many processes execute the shards.
DEFAULT_SHARD_SIZE = 2048

#: Sweep target type: (domain, rank, provider).
ScanTarget = Tuple[str, int, Optional[str]]


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardSpec:
    """A half-open slice ``[start, stop)`` of the rank-ordered deployment list."""

    index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def plan_shards(total: int, shard_size: int = DEFAULT_SHARD_SIZE) -> Tuple[ShardSpec, ...]:
    """Cut ``total`` deployments into rank-contiguous shards of ``shard_size``."""
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    if total < 0:
        raise ValueError("total must not be negative")
    return tuple(
        ShardSpec(index=index, start=start, stop=min(start + shard_size, total))
        for index, start in enumerate(range(0, total, shard_size))
    )


# ---------------------------------------------------------------------------
# Per-shard scanning (runs inside worker processes)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to scan one shard, picklable as one unit.

    The shard's deployments travel one of two ways: by value (``deployments``)
    or by recipe (``population_config`` plus the ``[start, stop)`` index
    range, regenerated in the worker via
    :func:`~repro.webpki.population.deployments_for_range`).  The recipe form
    keeps certificate chains out of the parent→worker pickle stream — for
    populations from :func:`generate_population` both forms produce identical
    deployments, so scan results do not depend on the transport.
    """

    index: int
    deployments: Optional[Tuple[DomainDeployment, ...]] = None
    population_config: Optional[PopulationConfig] = None
    start: int = 0
    stop: int = 0
    #: Read the shard from the fork-inherited module global instead of
    #: pickling or regenerating (see :data:`_FORK_SHARED_DEPLOYMENTS`).
    use_fork_shared: bool = False
    analysis_initial_size: int = DEFAULT_ANALYSIS_INITIAL_SIZE
    #: RFC 8879 algorithms the scanning client offers in the analysis scan
    #: (empty, like the paper's scanner, unless a scenario turns it on).
    analysis_compression: Tuple[CertificateCompressionAlgorithm, ...] = ()
    run_sweep: bool = False
    #: This shard's slice of the *globally* computed sweep sample.
    sweep_targets: Tuple[ScanTarget, ...] = ()
    #: Alternative to ``sweep_targets`` for streaming runs, where the parent
    #: never sees the deployments: ``(quic_index_offset, stride)``.  The worker
    #: selects its own sweep targets — the QUIC targets of the shard whose
    #: *global* QUIC index (offset + local position) is a multiple of the
    #: stride — reproducing exactly the ``indexed[::stride]`` sample of
    #: :func:`global_sweep_sample` without shipping any target list.
    sweep_local_selection: Optional[Tuple[int, int]] = None
    sweep_initial_sizes: Tuple[int, ...] = SWEEP_INITIAL_SIZES
    #: Which shard-scan implementation the worker runs: ``"object"`` (the
    #: reference stages 1–4 over real fabric objects) or ``"columnar"`` (the
    #: fused arithmetic kernel in :mod:`repro.scanners.columnar`, streaming
    #: runs only).  Appended last so pickled tasks from older call sites keep
    #: their field order.
    scan_backend: str = "object"
    #: The scenario sweep riding this worker visit.  When set, the grid worker
    #: entry (:func:`repro.scanners.streaming._scan_and_summarize_grid`)
    #: materialises the shard's baseline skeletons once, replays every member
    #: transform against them, and emits one summary per member — the
    #: cross-scenario shard-reuse contract.  ``population_config`` then
    #: carries the *base* (scenario-free) campaign config; each member derives
    #: its own via :meth:`for_scenario`.  Appended after ``scan_backend`` to
    #: keep pickled field order stable.
    grid_scenarios: Optional[Tuple[ScenarioSpec, ...]] = None
    #: Directory of the persistent skeleton-shard store
    #: (:mod:`repro.scanners.skeleton_store`).  When set, recipe-form
    #: regeneration consults the store before generating and populates it
    #: after, so a warm worker skips the generation phase entirely.  Appended
    #: after ``grid_scenarios`` to keep pickled field order stable.
    skeleton_cache_dir: Optional[str] = None

    def for_scenario(self, scenario: ScenarioSpec) -> "ShardTask":
        """Derive the single-scenario task one grid member scans under.

        Equal by construction to the task an independent ``--scenario`` run
        would have built for this shard: the member's population config (spec
        embedded), analysis Initial size and client compression offer replace
        the grid-level ones, and ``grid_scenarios`` is cleared so downstream
        summarisers see an ordinary single-scenario task.
        """
        if self.population_config is None:
            raise ValueError("grid shard tasks must carry a population config")
        config = scenario.population_config(base=self.population_config)
        return dataclasses.replace(
            self,
            population_config=config,
            analysis_initial_size=(
                scenario.analysis_initial_size
                if scenario.analysis_initial_size is not None
                else DEFAULT_ANALYSIS_INITIAL_SIZE
            ),
            analysis_compression=scenario.client_compression,
            grid_scenarios=None,
        )

    def resolve_deployments(self) -> Tuple[DomainDeployment, ...]:
        if self.use_fork_shared:
            if _FORK_SHARED_DEPLOYMENTS is None:
                raise RuntimeError(
                    "shard task expects fork-inherited deployments, but none are set "
                    "in this process"
                )
            return tuple(_FORK_SHARED_DEPLOYMENTS[self.start : self.stop])
        if self.deployments is not None:
            return self.deployments
        if self.population_config is None:
            raise ValueError("shard task carries neither deployments nor a config")
        tranco = _cached_tranco(self.population_config.size, seed=self.population_config.seed)
        if self.skeleton_cache_dir is not None:
            from .skeleton_store import deployments_for_range as cached_range, store_for

            return tuple(
                cached_range(
                    store_for(self.skeleton_cache_dir),
                    self.population_config,
                    self.start,
                    self.stop,
                    tranco=tranco,
                )
            )
        return tuple(
            deployments_for_range(self.population_config, self.start, self.stop, tranco=tranco)
        )

    def scenario_fingerprint(self) -> str:
        """Fingerprint of the scenario this shard is scanned under.

        Recipe-form tasks carry the spec inside ``population_config.scenario``
        (that is how a scenario travels into worker processes); tasks without
        one are by definition the baseline.  The fingerprint is stamped into
        the shard's :class:`~repro.scanners.streaming.ShardSummary`, where the
        reducer uses it to reject mixed-scenario merges.
        """
        scenario = (
            self.population_config.scenario if self.population_config is not None else None
        )
        return (scenario or BASELINE).fingerprint()

    def resolve_skeletons(self) -> Sequence:
        """Cheap, count-only view of the shard (no certificate issuance).

        For recipe-form tasks this runs only the skeleton pass of two-phase
        generation (:mod:`repro.webpki.skeleton`) — the basis of the near-free
        sweep discovery pass.  Tasks that already hold materialised
        deployments (by value or fork-shared) return those: every counting
        attribute (``category``, ``rank``, ``provider``, …) reads identically
        off skeletons and deployments.
        """
        if self.use_fork_shared or self.deployments is not None:
            return self.resolve_deployments()
        if self.population_config is None:
            raise ValueError("shard task carries neither deployments nor a config")
        tranco = _cached_tranco(self.population_config.size, seed=self.population_config.seed)
        if self.skeleton_cache_dir is not None:
            from .skeleton_store import skeletons_for_range, store_for

            return tuple(
                skeletons_for_range(
                    store_for(self.skeleton_cache_dir),
                    self.population_config,
                    self.start,
                    self.stop,
                    tranco=tranco,
                )
            )
        return tuple(
            deployments_for_range(
                self.population_config, self.start, self.stop, tranco=tranco, skeleton=True
            )
        )


#: Per-process memo of the (names-only) ranked list, so a worker that scans
#: several shards of the same population regenerates it once.  The memo now
#: lives on ``generate_tranco_list`` itself (every regeneration path shares
#: it); the alias keeps this module's call sites self-describing.
_cached_tranco = generate_tranco_list

#: Deployment list published for fork-started workers.  Set by
#: :func:`run_sharded_scan` immediately before the pool forks; child processes
#: inherit it copy-on-write, so neither certificate chains nor regeneration
#: work ever crosses the parent→worker boundary.
_FORK_SHARED_DEPLOYMENTS: Optional[Sequence[DomainDeployment]] = None


@dataclass(frozen=True)
class ShardScanResult:
    """Partial results of stages 1–4 over one shard."""

    index: int
    funnel: ScanFunnel
    https_records: Tuple[CertificateRecord, ...]
    handshakes: Tuple[HandshakeObservation, ...]
    #: Sweep observations, Initial-size-major within the shard.
    sweep_observations: Tuple[HandshakeObservation, ...]
    quic_certificates: Tuple[QuicCertificateRecord, ...]
    comparison: CertificateComparison
    compression: Tuple[CompressionObservation, ...]
    flight_cache: FlightCacheInfo


def scan_shard(
    task: ShardTask, deployments: Optional[Tuple[DomainDeployment, ...]] = None
) -> ShardScanResult:
    """Run pipeline stages 1–4 over one shard.

    Module-level (not a closure or method) so ``ProcessPoolExecutor`` can
    pickle it; the worker builds the shard's own resolver/origins/network and
    warms its own flight-plan cache.  ``deployments`` lets callers that have
    already resolved the shard (the streaming reducer, which also summarises
    it) skip a second regeneration; it must equal ``task.resolve_deployments()``.
    """
    cache = FlightPlanCache()
    if deployments is None:
        deployments = task.resolve_deployments()

    # 1. HTTPS certificate collection over this shard's names.
    https_scanner = HttpsScanner(
        build_resolver_for(deployments), build_origins_for(deployments)
    )
    https_scan = https_scanner.scan([(d.domain, d.rank) for d in deployments])

    # 2. QUIC handshake classification at the analysis Initial size.
    network = build_network_for(deployments)
    quicreach = QuicReach(network, flight_cache=cache)
    targets: List[ScanTarget] = [
        (d.domain, d.rank, d.provider)
        for d in deployments
        if d.category is ServiceCategory.QUIC
    ]
    handshakes = quicreach.scan_many(
        targets, task.analysis_initial_size, compression=task.analysis_compression
    )

    # 2b. This shard's part of the Initial-size sweep.  The sample arrives
    # either routed by the parent (``sweep_targets``) or is selected locally
    # from the global stride (``sweep_local_selection``, streaming runs).
    sweep_targets = task.sweep_targets
    if task.run_sweep and task.sweep_local_selection is not None:
        offset, stride = task.sweep_local_selection
        sweep_targets = tuple(
            target
            for position, target in enumerate(targets)
            if (offset + position) % stride == 0
        )
    sweep_observations: Tuple[HandshakeObservation, ...] = ()
    if task.run_sweep and sweep_targets:
        sweep = InitialSizeSweep(quicreach, task.sweep_initial_sizes)
        sweep_observations = sweep.run(list(sweep_targets)).observations

    # 3. Certificates over QUIC and the QUIC-vs-HTTPS comparison.  Both sides
    # of every compared pair live in the same shard, so per-shard counters sum
    # to the global comparison.
    qscanner = QScanner(network)
    quic_domains = [domain for domain, _, _ in targets]
    quic_certificates = qscanner.fetch_many(quic_domains)
    comparison = qscanner.compare_with_https(
        quic_certificates, https_scan.chains_by_requested_domain()
    )

    # 4. Certificate-compression support.
    compression = CompressionScanner(network).scan_many(quic_domains)

    return ShardScanResult(
        index=task.index,
        funnel=https_scan.funnel,
        https_records=https_scan.records,
        handshakes=tuple(handshakes),
        sweep_observations=sweep_observations,
        quic_certificates=tuple(quic_certificates),
        comparison=comparison,
        compression=tuple(compression),
        flight_cache=cache.cache_info(),
    )


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MergedScanResults:
    """Stages 1–4 merged back into the serial pipeline's output shapes."""

    https_scan: HttpsScanResult
    handshakes: List[HandshakeObservation]
    sweep: Optional[SweepResult]
    quic_certificates: List[QuicCertificateRecord]
    certificate_comparison: CertificateComparison
    compression: List[CompressionObservation]
    flight_cache: FlightCacheInfo


def merge_shard_results(
    shards: Sequence[ShardScanResult],
    run_sweep: bool = False,
    sweep_initial_sizes: Sequence[int] = SWEEP_INITIAL_SIZES,
) -> MergedScanResults:
    """Merge per-shard partials into the exact serial-run result.

    ``shards`` must be in shard-index (= rank) order; concatenation then
    reproduces the serial per-deployment iteration order, and the sweep is
    re-interleaved Initial-size-major exactly like
    :class:`~repro.scanners.quicreach.InitialSizeSweep` iterates.
    """
    ordered = sorted(shards, key=lambda shard: shard.index)

    funnel = ScanFunnel()
    fingerprints: set = set()
    records: List[CertificateRecord] = []
    handshakes: List[HandshakeObservation] = []
    quic_certificates: List[QuicCertificateRecord] = []
    compression: List[CompressionObservation] = []
    total_compared = identical = 0
    cache_hits = cache_misses = cache_currsize = cache_maxsize = 0

    for shard in ordered:
        for name, value in shard.funnel.as_dict().items():
            if name == "unique_certificate_chains":
                continue
            setattr(funnel, name, getattr(funnel, name) + value)
        # Chains shared across shards must count once: union the fingerprints
        # (cached on the chains by the shard's own scan) rather than summing
        # the per-shard unique counts.
        fingerprints.update(record.fingerprint for record in shard.https_records)
        records.extend(shard.https_records)
        handshakes.extend(shard.handshakes)
        quic_certificates.extend(shard.quic_certificates)
        compression.extend(shard.compression)
        total_compared += shard.comparison.total_compared
        identical += shard.comparison.identical
        cache_hits += shard.flight_cache.hits
        cache_misses += shard.flight_cache.misses
        cache_currsize += shard.flight_cache.currsize
        # maxsize is a per-cache bound, not a counter: report the largest
        # bound in play rather than a meaningless sum over shards.
        cache_maxsize = max(cache_maxsize, shard.flight_cache.maxsize)
    funnel.unique_certificate_chains = len(fingerprints)

    sweep: Optional[SweepResult] = None
    if run_sweep:
        by_size: Dict[int, List[HandshakeObservation]] = {
            size: [] for size in sweep_initial_sizes
        }
        for shard in ordered:
            for observation in shard.sweep_observations:
                by_size[observation.initial_size].append(observation)
        sweep = SweepResult(
            observations=tuple(
                observation
                for size in sweep_initial_sizes
                for observation in by_size[size]
            )
        )

    return MergedScanResults(
        https_scan=HttpsScanResult(funnel=funnel, records=tuple(records)),
        handshakes=handshakes,
        sweep=sweep,
        quic_certificates=quic_certificates,
        certificate_comparison=CertificateComparison(
            total_compared=total_compared,
            identical=identical,
            different=total_compared - identical,
        ),
        compression=compression,
        flight_cache=FlightCacheInfo(
            hits=cache_hits,
            misses=cache_misses,
            currsize=cache_currsize,
            maxsize=cache_maxsize,
        ),
    )


# ---------------------------------------------------------------------------
# Retrying shard dispatch (the one recovery path every runner shares)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard retry knobs for :func:`dispatch_with_retry`.

    ``max_attempts`` counts dispatches, not failures: a shard is given up on
    after being dispatched that many times.  ``shard_timeout`` (seconds) only
    applies to multi-process dispatch — an in-process shard cannot be
    abandoned mid-call.  Backoff between retry rounds grows exponentially
    from ``backoff_base`` and is capped at ``backoff_cap``.
    """

    max_attempts: int = 3
    shard_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2 ** attempt))


class ShardDispatchError(RuntimeError):
    """Shards remained unfinished after every retry.

    Never a silently partial result: the error names exactly which shard
    indices are incomplete (``incomplete``) and which finished
    (``completed``), and — when a checkpoint store is attached — the caller
    persists the same lists as an ``incomplete.json`` manifest.
    """

    def __init__(
        self, message: str, incomplete: Sequence[int], completed: Sequence[int] = ()
    ) -> None:
        super().__init__(message)
        self.incomplete = tuple(sorted(incomplete))
        self.completed = tuple(sorted(completed))


def dispatch_with_retry(
    indices: Sequence[int],
    make_payload: Callable[[int, int], object],
    worker_fn: Callable[[object], object],
    workers: int,
    policy: Optional[RetryPolicy],
    on_result: Callable[[int, object, int], None],
    mp_context=None,
) -> None:
    """Run ``worker_fn`` over one payload per shard index, retrying failures.

    The durability core of both runners: each shard is dispatched up to
    ``policy.max_attempts`` times (``make_payload(index, attempt)`` builds the
    payload, so workers can know the attempt number), and
    ``on_result(index, result, attempt)`` is called exactly once per shard, in
    completion order — downstream folding must therefore be order-insensitive,
    which ``CampaignReducer`` guarantees by construction.  The attempt number
    lets checkpoint writers stay last-write-safe across retries.

    Failure containment, multi-process mode:

    * a worker exception fails only its own shard for that round;
    * a ``BrokenProcessPool`` (worker killed, OOM) fails every shard not yet
      collected, and the next round starts on a *fresh* pool;
    * shards exceeding ``policy.shard_timeout`` are abandoned together under
      one shared, progress-renewed deadline: the round waits in completion
      order (``concurrent.futures.wait``) and every completion renews the
      deadline, so K simultaneously stalled shards cost *one* timeout window
      — not K windows in series — before the pool is discarded (the stalled
      worker processes drain in the background) and the shards are
      re-dispatched on a fresh pool.

    Retries cannot change bytes: every shard result is a pure function of its
    task, so a rerun merges identically.  When shards still fail after the
    last attempt the whole dispatch raises :class:`ShardDispatchError` naming
    them — completed work is only durable if the caller checkpointed it.
    """
    policy = policy or RetryPolicy()
    pending: Dict[int, int] = {index: 0 for index in indices}
    completed: List[int] = []
    last_errors: Dict[int, BaseException] = {}
    multiprocess = workers > 1

    while pending:
        failed: List[int] = []
        if not multiprocess:
            for index in sorted(pending):
                try:
                    result = worker_fn(make_payload(index, pending[index]))
                except Exception as error:
                    failed.append(index)
                    last_errors[index] = error
                else:
                    completed.append(index)
                    on_result(index, result, pending[index])
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pending)), mp_context=mp_context
            )
            try:
                futures = {
                    pool.submit(worker_fn, make_payload(index, attempt)): index
                    for index, attempt in sorted(pending.items())
                }
                outstanding = set(futures)
                deadline = (
                    None
                    if policy.shard_timeout is None
                    else time.monotonic() + policy.shard_timeout
                )
                while outstanding:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        # No progress for a full timeout window: everything
                        # still outstanding is stalled.  Fail the whole set at
                        # once — the serial per-future wait this replaces
                        # burned K windows for K stalled shards.
                        for future in outstanding:
                            index = futures[future]
                            failed.append(index)
                            last_errors[index] = FutureTimeoutError(
                                f"shard {index} exceeded the shard timeout of "
                                f"{policy.shard_timeout}s with no round progress"
                            )
                        break
                    done, outstanding = wait(
                        outstanding, timeout=remaining, return_when=FIRST_COMPLETED
                    )
                    if not done:
                        continue  # next pass observes the expired deadline
                    for future in done:
                        index = futures[future]
                        try:
                            result = future.result()
                        except Exception as error:
                            # Worker exception or BrokenProcessPool — each
                            # fails this shard for this round only.  A broken
                            # pool completes all uncollected futures at once,
                            # so the loop drains without re-waiting.
                            failed.append(index)
                            last_errors[index] = error
                        else:
                            completed.append(index)
                            on_result(index, result, pending[index])
                    if deadline is not None:
                        # Progress renews the shared deadline: a round times
                        # out only after shard_timeout seconds of silence.
                        deadline = time.monotonic() + policy.shard_timeout
            finally:
                # Never wait: a stalled or dead pool must not block recovery.
                # Timed-out tasks may still be running; their results are
                # discarded with the pool, so `on_result` stays once-per-shard.
                pool.shutdown(wait=False, cancel_futures=True)

        retry: Dict[int, int] = {}
        exhausted: List[int] = []
        for index in failed:
            attempt = pending[index] + 1
            if attempt >= policy.max_attempts:
                exhausted.append(index)
            else:
                retry[index] = attempt
        if exhausted:
            incomplete = sorted(set(exhausted) | set(retry))
            error = ShardDispatchError(
                f"campaign incomplete: shards {incomplete} unfinished after "
                f"{policy.max_attempts} attempt(s) "
                f"(first unrecovered error: {last_errors[exhausted[0]]!r})",
                incomplete=incomplete,
                completed=completed,
            )
            error.__cause__ = last_errors[exhausted[0]]
            raise error
        pending = retry
        if pending:
            time.sleep(policy.backoff(max(pending.values()) - 1))


# ---------------------------------------------------------------------------
# Driving a full sharded scan
# ---------------------------------------------------------------------------

def sweep_sample_stride(total_quic_targets: int, sweep_sample_size: Optional[int]) -> int:
    """The sampling stride of the Figure 3 sweep over the global QUIC targets.

    Shared by :func:`global_sweep_sample` (eager runs, where the parent holds
    the targets) and the streaming runner (where workers select locally from
    ``(offset, stride)``), so the two sampling paths cannot drift apart.
    """
    if sweep_sample_size is None or total_quic_targets <= sweep_sample_size:
        return 1
    return max(1, total_quic_targets // sweep_sample_size)


def global_sweep_sample(
    deployments: Sequence[DomainDeployment],
    sweep_sample_size: Optional[int],
) -> List[Tuple[int, ScanTarget]]:
    """The sweep sample over the whole population, with deployment indices.

    This is the one place the sweep's sampling stride lives: the serial
    orchestrator and the sharded runner both call it, so they cannot drift
    apart.  Returns ``(deployment_index, target)`` pairs — the index (not the
    rank, which hand-assembled populations may renumber or reorder) is what
    routes a sampled target to the scan shard that owns it.
    """
    indexed: List[Tuple[int, ScanTarget]] = [
        (index, (d.domain, d.rank, d.provider))
        for index, d in enumerate(deployments)
        if d.category is ServiceCategory.QUIC
    ]
    stride = sweep_sample_stride(len(indexed), sweep_sample_size)
    return indexed[::stride]


def build_shard_tasks(
    deployments: Sequence[DomainDeployment],
    shard_size: int = DEFAULT_SHARD_SIZE,
    analysis_initial_size: int = DEFAULT_ANALYSIS_INITIAL_SIZE,
    analysis_compression: Sequence[CertificateCompressionAlgorithm] = (),
    run_sweep: bool = False,
    sweep_sample_size: Optional[int] = 2000,
    sweep_initial_sizes: Sequence[int] = SWEEP_INITIAL_SIZES,
    regenerate_config: Optional[PopulationConfig] = None,
    use_fork_shared: bool = False,
    scan_backend: str = "object",
    skeleton_cache_dir: Optional[str] = None,
) -> List[ShardTask]:
    """Plan shards over rank-ordered ``deployments`` and package their tasks.

    The sweep sample is chosen over the *whole* population first (the stride
    depends on the global QUIC-target count) and then routed to the shard that
    owns each sampled rank.  With ``use_fork_shared`` or ``regenerate_config``
    set, tasks carry only the index range instead of the deployments
    themselves (see :class:`ShardTask`).  ``skeleton_cache_dir`` points
    range-carrying tasks at a persistent skeleton store so worker-side
    regeneration reads cached shards instead of rolling the RNG.
    """
    specs = plan_shards(len(deployments), shard_size)
    sweep_by_shard: Dict[int, List[ScanTarget]] = {spec.index: [] for spec in specs}
    if run_sweep:
        for deployment_index, target in global_sweep_sample(deployments, sweep_sample_size):
            sweep_by_shard[deployment_index // shard_size].append(target)
    ship_by_value = not use_fork_shared and regenerate_config is None
    return [
        ShardTask(
            index=spec.index,
            deployments=(
                tuple(deployments[spec.start : spec.stop]) if ship_by_value else None
            ),
            population_config=None if use_fork_shared else regenerate_config,
            start=spec.start,
            stop=spec.stop,
            use_fork_shared=use_fork_shared,
            analysis_initial_size=analysis_initial_size,
            analysis_compression=tuple(analysis_compression),
            run_sweep=run_sweep,
            sweep_targets=tuple(sweep_by_shard[spec.index]),
            sweep_initial_sizes=tuple(sweep_initial_sizes),
            scan_backend=scan_backend,
            skeleton_cache_dir=skeleton_cache_dir,
        )
        for spec in specs
    ]


def run_sharded_scan(
    population: InternetPopulation,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    analysis_initial_size: int = DEFAULT_ANALYSIS_INITIAL_SIZE,
    analysis_compression: Sequence[CertificateCompressionAlgorithm] = (),
    run_sweep: bool = False,
    sweep_sample_size: Optional[int] = 2000,
    sweep_initial_sizes: Sequence[int] = SWEEP_INITIAL_SIZES,
    retry_policy: Optional[RetryPolicy] = None,
    scan_backend: Optional[str] = None,
    skeleton_cache_dir: Optional[str] = None,
) -> MergedScanResults:
    """Run stages 1–4 over the population, sharded across ``workers`` processes.

    ``workers=1`` executes the same shard tasks in-process (no pool), which is
    both the bitwise reference for multi-process runs and the tier-1/CI
    default.  The merged result does not depend on ``workers``.

    Dispatch goes through :func:`dispatch_with_retry`: a worker crash or a
    broken pool re-dispatches only the affected shards on a fresh pool, and
    exhausted retries raise :class:`ShardDispatchError` naming the incomplete
    shard indices instead of returning a silently partial merge.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    # The columnar backend emits ShardSummary objects, not per-domain
    # observations, so it only exists on the reduced (streaming) pipeline;
    # this runner's merge contract needs the full object-path partials.  The
    # environment knob is deliberately not consulted here for the same reason.
    if scan_backend is not None and scan_backend != "object":
        raise ValueError(
            f"run_sharded_scan only supports the 'object' backend, not "
            f"{scan_backend!r}; use the streaming pipeline "
            f"(run_streaming_scan / MeasurementCampaign(stream=True)) for "
            f"'columnar'"
        )
    multiprocess = workers > 1 and len(population.deployments) > shard_size
    # How shard deployments reach the workers, cheapest first:
    #  * fork start method: publish the list in a module global right before
    #    the pool forks; children inherit it copy-on-write, zero transfer,
    #  * spawn/forkserver + regenerable population: ship (config, range) and
    #    regenerate in the worker (parallel, no chains over the pipe),
    #  * otherwise: pickle the deployments into the task.
    fork_available = multiprocess and "fork" in multiprocessing.get_all_start_methods()
    regenerate_config = (
        population.config
        if multiprocess
        and not fork_available
        and getattr(population, "_shard_regenerable", False)
        else None
    )
    tasks = build_shard_tasks(
        population.deployments,
        shard_size=shard_size,
        analysis_initial_size=analysis_initial_size,
        analysis_compression=analysis_compression,
        run_sweep=run_sweep,
        sweep_sample_size=sweep_sample_size,
        sweep_initial_sizes=sweep_initial_sizes,
        regenerate_config=regenerate_config,
        use_fork_shared=fork_available,
        skeleton_cache_dir=skeleton_cache_dir if regenerate_config is not None else None,
    )
    tasks_by_index = {task.index: task for task in tasks}
    partials_by_index: Dict[int, ShardScanResult] = {}

    def on_result(index: int, partial: ShardScanResult, attempt: int = 0) -> None:
        partials_by_index[index] = partial

    def make_payload(index: int, attempt: int) -> ShardTask:
        return tasks_by_index[index]

    if not multiprocess:
        dispatch_with_retry(
            sorted(tasks_by_index), make_payload, scan_shard, 1, retry_policy, on_result
        )
    elif fork_available:
        global _FORK_SHARED_DEPLOYMENTS
        _FORK_SHARED_DEPLOYMENTS = population.deployments
        try:
            # The shared list stays published across retry rounds, so a fresh
            # fork pool spun up after a crash re-inherits it.
            dispatch_with_retry(
                sorted(tasks_by_index),
                make_payload,
                scan_shard,
                workers,
                retry_policy,
                on_result,
                mp_context=multiprocessing.get_context("fork"),
            )
        finally:
            _FORK_SHARED_DEPLOYMENTS = None
    else:
        dispatch_with_retry(
            sorted(tasks_by_index),
            make_payload,
            scan_shard,
            workers,
            retry_policy,
            on_result,
        )
    return merge_shard_results(
        [partials_by_index[task.index] for task in tasks],
        run_sweep=run_sweep,
        sweep_initial_sizes=sweep_initial_sizes,
    )
