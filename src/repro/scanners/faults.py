"""Deterministic fault injection for durability testing.

Crashes are the one campaign input the pipeline cannot derive from a seed —
unless they are planned.  A :class:`FaultPlan` scripts exactly when things go
wrong: a worker raises, dies by SIGKILL or stalls past the dispatch timeout
(keyed by ``(shard index, attempt number)``, so "crash once, succeed on
retry" is expressible), a freshly written checkpoint is corrupted or
truncated on disk, or the whole run is killed right after a shard's
checkpoint lands (the CI kill-and-resume smoke).  Because every fault is
keyed deterministically, the recovery paths in
:func:`~repro.scanners.streaming.run_streaming_scan` can be pinned by
byte-identity tests: an injected run must end in exactly the report an
uninterrupted run produces.

Plans are plain frozen dataclasses of primitives — picklable (they ride
inside worker payloads) and JSON round-trippable, so the CLI
(``repro campaign --fault-plan plan.json``) and the ``REPRO_FAULT_PLAN``
environment variable (a path, or inline JSON starting with ``{``) can arm
one without code.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Fault kinds a worker can suffer while scanning a shard.
WORKER_FAULT_KINDS = ("raise", "kill", "stall")

#: Fault kinds applied to a shard's checkpoint right after it is written
#: (``kill-run`` terminates the whole parent process instead — the
#: interrupted-campaign fault the resume path recovers from).
CHECKPOINT_FAULT_KINDS = ("corrupt", "truncate", "kill-run")


class FaultPlanError(ValueError):
    """A fault plan is malformed (unknown kind, bad JSON, missing keys)."""


class InjectedFault(RuntimeError):
    """Raised inside a worker by a ``raise``-kind fault."""


@dataclass(frozen=True)
class WorkerFault:
    """One scripted in-worker failure, keyed by shard index and attempt."""

    shard: int
    attempt: int
    kind: str
    #: ``stall`` only: how long the worker sleeps mid-shard.  Pick a value
    #: larger than the dispatcher's per-shard timeout to trigger it.
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown worker fault kind {self.kind!r} "
                f"(expected one of {', '.join(WORKER_FAULT_KINDS)})"
            )


@dataclass(frozen=True)
class CheckpointFault:
    """One scripted post-checkpoint failure, keyed by shard index.

    ``attempt`` optionally narrows the fault to the checkpoint written by one
    specific retry attempt; ``None`` (the default, and the legacy JSON shape)
    fires on every attempt's checkpoint.
    """

    shard: int
    kind: str
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in CHECKPOINT_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown checkpoint fault kind {self.kind!r} "
                f"(expected one of {', '.join(CHECKPOINT_FAULT_KINDS)})"
            )


def corrupt_file(path: str) -> None:
    """Flip one byte in the middle of ``path`` (a torn/bit-rotted artifact).

    The flip lands past the checkpoint header, so the file still *looks* like
    a checkpoint — exactly the case the embedded digest must catch.
    """
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        offset = size // 2
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def truncate_file(path: str) -> None:
    """Cut ``path`` to half its size (an interrupted write without atomicity)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected failures for one campaign run."""

    worker: Tuple[WorkerFault, ...] = ()
    checkpoint: Tuple[CheckpointFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "worker", tuple(self.worker))
        object.__setattr__(self, "checkpoint", tuple(self.checkpoint))

    # -- lookup ---------------------------------------------------------------

    def worker_fault(self, shard: int, attempt: int) -> Optional[WorkerFault]:
        for fault in self.worker:
            if fault.shard == shard and fault.attempt == attempt:
                return fault
        return None

    def inject_worker_fault(self, shard: int, attempt: int) -> None:
        """Execute the scripted fault for this ``(shard, attempt)``, if any.

        Runs inside the worker process, before the shard is scanned.
        ``raise`` throws :class:`InjectedFault`; ``kill`` SIGKILLs the worker
        (breaking the whole pool, the ``BrokenProcessPool`` recovery path);
        ``stall`` sleeps so a per-shard dispatch timeout fires.
        """
        fault = self.worker_fault(shard, attempt)
        if fault is None:
            return
        if fault.kind == "raise":
            raise InjectedFault(
                f"injected worker fault: shard {shard}, attempt {attempt}"
            )
        if fault.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault.kind == "stall":
            time.sleep(fault.stall_seconds)

    def apply_checkpoint_faults(self, shard: int, path: str, attempt: int = 0) -> None:
        """Execute the scripted post-checkpoint faults for ``shard``.

        Runs in the parent right after the shard's checkpoint is persisted:
        ``corrupt``/``truncate`` damage the file on disk (a later ``--resume``
        must detect, quarantine and re-scan), ``kill-run`` SIGKILLs the whole
        process mid-campaign, leaving the directory exactly as a crash would.
        ``attempt`` is the retry attempt whose checkpoint just landed; faults
        carrying an attempt key only fire when it matches.
        """
        for fault in self.checkpoint:
            if fault.shard != shard:
                continue
            if fault.attempt is not None and fault.attempt != attempt:
                continue
            if fault.kind == "corrupt":
                corrupt_file(path)
            elif fault.kind == "truncate":
                truncate_file(path)
            elif fault.kind == "kill-run":
                os.kill(os.getpid(), signal.SIGKILL)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "worker": [
                {
                    "shard": fault.shard,
                    "attempt": fault.attempt,
                    "kind": fault.kind,
                    "stall_seconds": fault.stall_seconds,
                }
                for fault in self.worker
            ],
            "checkpoint": [
                {"shard": fault.shard, "kind": fault.kind}
                if fault.attempt is None
                else {"shard": fault.shard, "kind": fault.kind, "attempt": fault.attempt}
                for fault in self.checkpoint
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError("a fault plan must be a JSON object")
        unknown = set(payload) - {"worker", "checkpoint"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan keys: {', '.join(sorted(unknown))}"
            )
        try:
            worker = tuple(
                WorkerFault(
                    shard=int(entry["shard"]),
                    attempt=int(entry.get("attempt", 0)),
                    kind=str(entry["kind"]),
                    stall_seconds=float(entry.get("stall_seconds", 0.0)),
                )
                for entry in payload.get("worker", ())
            )
            checkpoint = tuple(
                CheckpointFault(
                    shard=int(entry["shard"]),
                    kind=str(entry["kind"]),
                    attempt=(
                        int(entry["attempt"])
                        if entry.get("attempt") is not None
                        else None
                    ),
                )
                for entry in payload.get("checkpoint", ())
            )
        except (KeyError, TypeError, ValueError) as error:
            if isinstance(error, FaultPlanError):
                raise
            raise FaultPlanError(f"malformed fault plan entry: {error}") from error
        return cls(worker=worker, checkpoint=checkpoint)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as error:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {error}") from error


#: Environment variable arming a fault plan without touching the CLI: a path
#: to a plan JSON file, or inline JSON (recognised by a leading ``{``).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


def load_fault_plan(path: Optional[str] = None) -> Optional[FaultPlan]:
    """Resolve the armed fault plan: explicit path first, then the env var."""
    if path is not None:
        return FaultPlan.from_file(path)
    armed = os.environ.get(FAULT_PLAN_ENV)
    if not armed:
        return None
    if armed.lstrip().startswith("{"):
        return FaultPlan.from_json(armed)
    return FaultPlan.from_file(armed)
