"""Measurement toolchain.

One module per tool in the paper's Figure 10 pipeline:

* :mod:`repro.scanners.https_scanner` — steps 1–2: DNS, port checks, redirect
  following, HTTPS certificate collection (libcurl/zcrypto equivalent),
* :mod:`repro.scanners.quicreach` — step 3.1: QUIC handshake classification
  with an Initial-size sweep (microsoft/quicreach equivalent),
* :mod:`repro.scanners.qscanner` — step 3.2: certificates over QUIC
  (tumi8/QScanner equivalent),
* :mod:`repro.scanners.compression_scanner` — step 3.3: RFC 8879 support and
  rates (quiche-with-compression equivalent),
* :mod:`repro.scanners.zmap` — step 4.2: single unacknowledged Initial to every
  host of a prefix (zmap equivalent),
* :mod:`repro.scanners.backscatter` — step 4.1: telescope backscatter analysis,
* :mod:`repro.scanners.orchestrator` — step 5: runs the full campaign and
  merges the per-tool outputs into one results bundle for the analysis layer,
* :mod:`repro.scanners.sharding` — sharded, multi-process execution of the
  per-domain stages with deterministic merging,
* :mod:`repro.scanners.streaming` — streaming reduction of sharded campaigns:
  workers ship compact per-shard summaries, the parent merges them
  order-insensitively, reports stay byte-identical at bounded memory.
"""

from .https_scanner import HttpsScanner, HttpsScanResult, CertificateRecord, ScanFunnel
from .quicreach import QuicReach, HandshakeObservation, InitialSizeSweep, SweepResult
from .qscanner import QScanner, QuicCertificateRecord, CertificateComparison
from .compression_scanner import CompressionScanner, CompressionObservation
from .zmap import ZmapScanner, ZmapProbeResult
from .backscatter import BackscatterAnalyzer, ProviderBackscatter, simulate_spoofed_campaign
from .orchestrator import MeasurementCampaign, CampaignResults, run_grid_campaign
from .streaming import (
    CampaignReducer,
    ReducedCampaignResults,
    ReducedScanResults,
    ReductionSpec,
    ShardSummary,
    run_streaming_grid_scan,
    run_streaming_scan,
    summarize_shard,
)
from .sharding import (
    DEFAULT_SHARD_SIZE,
    MergedScanResults,
    ShardScanResult,
    ShardSpec,
    ShardTask,
    merge_shard_results,
    plan_shards,
    run_sharded_scan,
    scan_shard,
)

__all__ = [
    "CampaignReducer",
    "ReducedCampaignResults",
    "ReducedScanResults",
    "ReductionSpec",
    "ShardSummary",
    "run_grid_campaign",
    "run_streaming_grid_scan",
    "run_streaming_scan",
    "summarize_shard",
    "DEFAULT_SHARD_SIZE",
    "MergedScanResults",
    "ShardScanResult",
    "ShardSpec",
    "ShardTask",
    "merge_shard_results",
    "plan_shards",
    "run_sharded_scan",
    "scan_shard",
    "HttpsScanner",
    "HttpsScanResult",
    "CertificateRecord",
    "ScanFunnel",
    "QuicReach",
    "HandshakeObservation",
    "InitialSizeSweep",
    "SweepResult",
    "QScanner",
    "QuicCertificateRecord",
    "CertificateComparison",
    "CompressionScanner",
    "CompressionObservation",
    "ZmapScanner",
    "ZmapProbeResult",
    "BackscatterAnalyzer",
    "ProviderBackscatter",
    "simulate_spoofed_campaign",
    "MeasurementCampaign",
    "CampaignResults",
]
