"""Measurement campaign orchestrator (toolchain step 5: merge and sanitize).

Runs the full pipeline of the paper against a synthetic population:

1. HTTPS certificate collection over the Tranco-like list,
2. QUIC handshake classification (single Initial size and/or full sweep),
3. certificates over QUIC and the QUIC-vs-HTTPS comparison,
4. certificate-compression support scan,
5. incomplete handshakes: spoofed-source campaign observed by a telescope plus
   the ZMap-style scan of the Meta point of presence,

and bundles everything into :class:`CampaignResults`, the single input the
analysis layer (and therefore every figure and table) works from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.address import IPv4Prefix
from ..netsim.network import UdpNetwork
from ..netsim.telescope import Telescope
from ..quic.server import FlightCacheInfo, FlightPlanCache, flight_plan_cache_info
from ..scenarios import BASELINE, ScenarioSpec
from ..webpki.deployment import DomainDeployment, ServiceCategory
from ..webpki.population import (
    InternetPopulation,
    PopulationConfig,
    build_meta_point_of_presence,
    build_network_for,
    generate_population,
)
from .columnar import resolve_scan_backend
from .sharding import (
    DEFAULT_SHARD_SIZE,
    build_shard_tasks,
    dispatch_with_retry,
    global_sweep_sample,
    run_sharded_scan,
)
from .streaming import (
    CampaignReducer,
    META_SERVICE_DOMAINS,
    ReducedCampaignResults,
    ReductionSpec,
    SPOOF_PROVIDERS,
    _scan_and_summarize,
    provider_of_domain,
    run_streaming_grid_scan,
    run_streaming_scan,
    take_per_provider,
)
from .backscatter import BackscatterAnalyzer, ProviderBackscatter, simulate_spoofed_campaign
from .compression_scanner import CompressionObservation, CompressionScanner
from .https_scanner import HttpsScanner, HttpsScanResult
from .qscanner import CertificateComparison, QScanner, QuicCertificateRecord
from .quicreach import (
    DEFAULT_ANALYSIS_INITIAL_SIZE,
    HandshakeObservation,
    InitialSizeSweep,
    QuicReach,
    SweepResult,
)
from .zmap import ZmapProbeResult, ZmapScanner

#: Dark prefix used by the simulated telescope.
TELESCOPE_PREFIX = IPv4Prefix.parse("198.51.100.0/24")

#: The Meta point-of-presence prefix probed in §4.3.
META_POP_PREFIX = IPv4Prefix.parse("157.240.20.0/24")

# META_SERVICE_DOMAINS lives in .streaming next to provider_of_domain (the
# shared provider lookup); re-exported here for its historical import site.
__all__ = ["CampaignResults", "MeasurementCampaign", "META_SERVICE_DOMAINS"]


@dataclass
class CampaignResults:
    """Everything a full measurement campaign produced."""

    population: InternetPopulation
    https_scan: HttpsScanResult
    handshakes: List[HandshakeObservation]
    sweep: Optional[SweepResult]
    quic_certificates: List[QuicCertificateRecord]
    certificate_comparison: CertificateComparison
    compression: List[CompressionObservation]
    backscatter: Dict[str, ProviderBackscatter]
    meta_probe_before: List[ZmapProbeResult]
    meta_probe_after: List[ZmapProbeResult]
    analysis_initial_size: int = DEFAULT_ANALYSIS_INITIAL_SIZE
    #: Flight-plan cache counters accumulated while this campaign ran.
    flight_cache: Optional[FlightCacheInfo] = None
    #: Scenario the campaign ran under (``None``: plain baseline pipeline);
    #: non-identity scenarios are stamped into the report header.
    scenario: Optional[ScenarioSpec] = None

    # -- convenience accessors used by the figure modules ----------------------

    def quic_deployments(self) -> List[DomainDeployment]:
        return self.population.quic_services()

    def https_only_deployments(self) -> List[DomainDeployment]:
        return self.population.https_only_services()

    def reachable_handshakes(self) -> List[HandshakeObservation]:
        return [o for o in self.handshakes if o.reachable]

    def provider_of(self, domain: str) -> Optional[str]:
        """Provider of a scanned domain.

        Routes through the shared stage-5 lookup, so Meta PoP service domains
        resolve to ``"meta"`` even when absent from the population (they are
        always probed); any other unknown domain is ``None``.
        """
        return provider_of_domain(domain, self.population.deployment)


class MeasurementCampaign:
    """Configures and runs the full measurement pipeline.

    ``workers``/``shard_size`` switch the per-domain stages (1–4) onto the
    sharded runner of :mod:`repro.scanners.sharding`: the population is cut
    into rank-contiguous shards that are scanned independently — across
    ``workers`` processes when ``workers > 1`` — and merged back into results
    identical for every worker count.  Both default to ``None``, which keeps
    the single-process serial path (the tier-1/CI default).  The
    telescope/ZMap stage (5) always runs in the parent process: it is cheap,
    global (spoof-target selection scans the whole population) and identical
    either way.

    ``stream=True`` switches to the streaming reduction pipeline
    (:mod:`repro.scanners.streaming`): the population is regenerated shard by
    shard inside the workers, every shard is reduced to a compact summary
    before it reaches the parent, and ``run()`` returns a
    :class:`~repro.scanners.streaming.ReducedCampaignResults` whose report is
    byte-identical to the eager paths — at bounded parent memory, which is
    what makes 1M-domain campaigns practical.  Streaming regenerates from
    ``population_config``; passing a materialised ``population`` would defeat
    the point and is rejected.

    ``scenario`` runs the campaign under a what-if
    :class:`~repro.scenarios.ScenarioSpec`: the population config is derived
    through :meth:`~repro.scenarios.ScenarioSpec.population_config`, the
    scenario's analysis Initial size replaces the 1362-byte default, and the
    spec is attached to the results (reports stamp any non-identity
    scenario).  Equivalently, pass a ``population``/``population_config``
    already derived from a scenario — the campaign picks the embedded spec
    up.  The identity ``baseline-2022`` scenario is byte-for-byte the plain
    pipeline.
    """

    def __init__(
        self,
        population: Optional[InternetPopulation] = None,
        population_config: Optional[PopulationConfig] = None,
        run_sweep: bool = False,
        sweep_sample_size: Optional[int] = 2000,
        spoofed_targets_per_provider: int = 60,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        stream: bool = False,
        scenario: Optional[ScenarioSpec] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        retry_policy=None,
        fault_plan=None,
        scan_backend: Optional[str] = None,
        skeleton_cache_dir: Optional[str] = None,
    ) -> None:
        self.stream = stream
        #: Shard-scan implementation (see :mod:`repro.scanners.columnar`).
        #: An explicit value is validated eagerly; ``None`` stays ``None`` so
        #: only streamed runs consult the ``REPRO_SCAN_BACKEND`` environment
        #: knob (the eager pipelines keep their full-observation internals
        #: unless a caller opts into columnar explicitly).
        self.scan_backend = (
            resolve_scan_backend(scan_backend) if scan_backend is not None else None
        )
        if (checkpoint_dir is not None or resume) and not stream:
            raise ValueError(
                "checkpoint/resume rides the streaming pipeline; pass stream=True"
            )
        if scenario is not None:
            if population is not None:
                # A scenario-less population and the identity scenario denote
                # the same pipeline, so only reject genuine mismatches.
                embedded = population.config.scenario
                if embedded != scenario and not (embedded is None and scenario.is_identity):
                    raise ValueError(
                        "population was generated for a different scenario; "
                        "generate it from scenario.population_config() or pass "
                        "population_config instead"
                    )
            else:
                # Derive (or re-derive) the config under the scenario; any
                # caller-supplied fractions and size/seed are kept as the base.
                population_config = scenario.population_config(base=population_config)
        #: Persistent skeleton-shard cache directory (see
        #: :mod:`repro.scanners.skeleton_store`).  Works on every path:
        #: streamed workers read their ranges through the store, and eager
        #: campaigns generate the population itself through it.
        self.skeleton_cache_dir = skeleton_cache_dir
        if stream:
            if population is not None:
                raise ValueError(
                    "stream=True regenerates shards from population_config; "
                    "pass population_config (or neither), not a materialised population"
                )
            self.population = None
            self.population_config = population_config or PopulationConfig()
        else:
            if population is not None:
                self.population = population
            elif skeleton_cache_dir is not None:
                from .skeleton_store import generate_population_cached, store_for

                self.population = generate_population_cached(
                    store_for(skeleton_cache_dir), population_config
                )
            else:
                self.population = generate_population(population_config)
            self.population_config = self.population.config
        #: The campaign's scenario: explicit argument, or whatever the
        #: population config embeds (``None`` means plain baseline).
        self.scenario = scenario if scenario is not None else self.population_config.scenario
        #: Client Initial size of the single-size analysis scan — the one
        #: scan-side knob a scenario turns.
        self.analysis_initial_size = (
            self.scenario.analysis_initial_size
            if self.scenario is not None and self.scenario.analysis_initial_size is not None
            else DEFAULT_ANALYSIS_INITIAL_SIZE
        )
        #: RFC 8879 offer of the scanning client (empty at baseline, like the
        #: paper's scanner).
        self.analysis_compression = (
            tuple(self.scenario.client_compression) if self.scenario is not None else ()
        )
        self.run_sweep = run_sweep
        self.sweep_sample_size = sweep_sample_size
        self.spoofed_targets_per_provider = spoofed_targets_per_provider
        self.workers = workers
        self.shard_size = shard_size
        #: Durability knobs, streamed runs only (see run_streaming_scan).
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan

    # -- pipeline ---------------------------------------------------------------

    def run(self) -> "CampaignResults | ReducedCampaignResults":
        if self.stream:
            return self._run_streaming()
        if self.scan_backend == "columnar":
            return self._run_eager_columnar()
        if self.workers is not None or self.shard_size is not None:
            return self._run_sharded()
        return self._run_serial()

    def _run_serial(self) -> CampaignResults:
        cache_before = flight_plan_cache_info()
        population = self.population
        resolver = population.build_resolver()
        origins = population.build_origins()
        network = population.build_network()

        # 1. HTTPS certificate collection.
        https_scanner = HttpsScanner(resolver, origins)
        names = [(d.domain, d.rank) for d in population.deployments]
        https_scan = https_scanner.scan(names)

        # 2. QUIC handshake classification at the analysis Initial size.
        quicreach = QuicReach(network)
        targets = [
            (d.domain, d.rank, d.provider)
            for d in population.deployments
            if d.category is ServiceCategory.QUIC
        ]
        handshakes = quicreach.scan_many(
            targets, self.analysis_initial_size, compression=self.analysis_compression
        )

        # 2b. Optional full Initial-size sweep (Figure 3); sampled for speed.
        # The sample comes from the same helper the sharded runner routes
        # through, so serial and sharded runs sweep identical targets.
        sweep: Optional[SweepResult] = None
        if self.run_sweep:
            sample = [
                target
                for _, target in global_sweep_sample(
                    population.deployments, self.sweep_sample_size
                )
            ]
            sweep = InitialSizeSweep(quicreach).run(sample)

        # 3. Certificates over QUIC and comparison with HTTPS.
        qscanner = QScanner(network)
        quic_domains = [domain for domain, _, _ in targets]
        quic_certificates = qscanner.fetch_many(quic_domains)
        https_chains = https_scan.chains_by_requested_domain()
        certificate_comparison = qscanner.compare_with_https(quic_certificates, https_chains)

        # 4. Certificate-compression support.
        compression_scanner = CompressionScanner(network)
        compression = compression_scanner.scan_many(quic_domains)

        # 5. Incomplete handshakes: telescope backscatter and the Meta PoP.
        backscatter, meta_probe_before, meta_probe_after = (
            self._run_incomplete_handshake_stage(network)
        )

        cache_after = flight_plan_cache_info()
        flight_cache = FlightCacheInfo(
            hits=cache_after.hits - cache_before.hits,
            misses=cache_after.misses - cache_before.misses,
            currsize=cache_after.currsize,
            maxsize=cache_after.maxsize,
        )

        return CampaignResults(
            population=population,
            https_scan=https_scan,
            handshakes=handshakes,
            sweep=sweep,
            quic_certificates=quic_certificates,
            certificate_comparison=certificate_comparison,
            compression=compression,
            backscatter=backscatter,
            meta_probe_before=meta_probe_before,
            meta_probe_after=meta_probe_after,
            analysis_initial_size=self.analysis_initial_size,
            flight_cache=flight_cache,
            scenario=self.scenario,
        )

    def _run_sharded(self) -> CampaignResults:
        population = self.population

        # Stages 1–4 fan out over rank-contiguous shards (each worker warms
        # its own flight-plan cache) and merge deterministically.  Explicit
        # zeros pass through so run_sharded_scan/plan_shards reject them.
        merged = run_sharded_scan(
            population,
            workers=self.workers if self.workers is not None else 1,
            shard_size=self.shard_size if self.shard_size is not None else DEFAULT_SHARD_SIZE,
            analysis_initial_size=self.analysis_initial_size,
            analysis_compression=self.analysis_compression,
            run_sweep=self.run_sweep,
            sweep_sample_size=self.sweep_sample_size,
            retry_policy=self.retry_policy,
            skeleton_cache_dir=self.skeleton_cache_dir,
        )

        # Stage 5 runs in the parent over the full fabric, exactly as serially
        # — but against its own fresh flight-plan cache, so the final counters
        # are a pure function of the campaign (not of whatever else this
        # process simulated before).
        stage5_cache = FlightPlanCache()
        network = build_network_for(population.deployments, flight_cache=stage5_cache)
        backscatter, meta_probe_before, meta_probe_after = (
            self._run_incomplete_handshake_stage(network, flight_cache=stage5_cache)
        )

        stage5_info = stage5_cache.cache_info()
        flight_cache = FlightCacheInfo(
            hits=merged.flight_cache.hits + stage5_info.hits,
            misses=merged.flight_cache.misses + stage5_info.misses,
            currsize=merged.flight_cache.currsize + stage5_info.currsize,
            maxsize=max(merged.flight_cache.maxsize, stage5_info.maxsize),
        )

        return CampaignResults(
            population=population,
            https_scan=merged.https_scan,
            handshakes=merged.handshakes,
            sweep=merged.sweep,
            quic_certificates=merged.quic_certificates,
            certificate_comparison=merged.certificate_comparison,
            compression=merged.compression,
            backscatter=backscatter,
            meta_probe_before=meta_probe_before,
            meta_probe_after=meta_probe_after,
            analysis_initial_size=self.analysis_initial_size,
            flight_cache=flight_cache,
            scenario=self.scenario,
        )

    def _run_eager_columnar(self) -> ReducedCampaignResults:
        """Eager pipeline on the columnar backend.

        The already-materialised population is scan-reduced shard by shard
        through the columnar kernel and finalised exactly like a streamed run,
        so the report is byte-identical to every other path; the return type
        is :class:`~repro.scanners.streaming.ReducedCampaignResults` (summary
        internals, not per-domain observations).  Tasks ship the deployments
        by value — ``resolve_deployments`` prefers them — while still carrying
        the population config so the scenario fingerprint stamped into each
        summary matches this campaign's.
        """
        import dataclasses

        population = self.population
        workers = self.workers if self.workers is not None else 1
        spec = ReductionSpec(spoof_limit_per_provider=self.spoofed_targets_per_provider)
        tasks = [
            dataclasses.replace(task, population_config=population.config)
            for task in build_shard_tasks(
                population.deployments,
                shard_size=(
                    self.shard_size if self.shard_size is not None else DEFAULT_SHARD_SIZE
                ),
                analysis_initial_size=self.analysis_initial_size,
                analysis_compression=self.analysis_compression,
                run_sweep=self.run_sweep,
                sweep_sample_size=self.sweep_sample_size,
                scan_backend="columnar",
            )
        ]
        tasks_by_index = {task.index: task for task in tasks}
        reducer = CampaignReducer(spec=spec, run_sweep=self.run_sweep)

        def make_payload(index: int, attempt: int):
            return (tasks_by_index[index], spec, attempt, self.fault_plan)

        def on_result(index: int, summary, attempt: int = 0) -> None:
            reducer.add(summary)

        dispatch_with_retry(
            sorted(tasks_by_index),
            make_payload,
            _scan_and_summarize,
            workers if workers > 1 and len(tasks) > 1 else 1,
            self.retry_policy,
            on_result,
        )
        return self.finalize_streaming(reducer.reduced_scan())

    def _run_streaming(self) -> ReducedCampaignResults:
        """Streaming pipeline: scan + reduce per shard, stage 5 in the parent."""
        config = self.population_config
        spec = ReductionSpec(spoof_limit_per_provider=self.spoofed_targets_per_provider)
        scan = run_streaming_scan(
            config,
            workers=self.workers if self.workers is not None else 1,
            shard_size=self.shard_size if self.shard_size is not None else DEFAULT_SHARD_SIZE,
            run_sweep=self.run_sweep,
            sweep_sample_size=self.sweep_sample_size,
            analysis_initial_size=self.analysis_initial_size,
            analysis_compression=self.analysis_compression,
            spec=spec,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
            retry_policy=self.retry_policy,
            fault_plan=self.fault_plan,
            scan_backend=self.scan_backend,
            skeleton_cache_dir=self.skeleton_cache_dir,
        )
        return self.finalize_streaming(scan)

    def finalize_streaming(self, scan) -> ReducedCampaignResults:
        """Stage 5 + result assembly over already-reduced stages 1–4.

        Public seam for callers that drive the shard loop themselves — the
        phase profiler (``scripts/profile_campaign.py --phases``) and, later,
        checkpoint/resume from persisted ``ShardSummary`` sets.  The
        reduction's scenario fingerprint must match this campaign's: a
        persisted what-if reduction finalised under the wrong (or no)
        scenario would render a silently mislabeled report.
        """
        config = self.population_config
        expected = (self.scenario or BASELINE).fingerprint()
        if scan.scenario_fingerprint != expected:
            raise ValueError(
                "reduction was scanned under a different scenario than this "
                f"campaign ({scan.scenario_fingerprint[:12]} vs {expected[:12]}); "
                "construct the campaign from the same scenario's population config"
            )

        # Stage 5 over a mini-fabric of just the reduced spoof-target
        # deployments: `probe_unvalidated` depends only on the probed host, so
        # the backscatter and cache counters equal a full-fabric run.
        stage5_cache = FlightPlanCache()
        network = build_network_for(scan.spoof_deployments, flight_cache=stage5_cache)
        spoof_by_domain = {d.domain: d for d in scan.spoof_deployments}

        def provider_of(domain: str) -> Optional[str]:
            return provider_of_domain(domain, spoof_by_domain.get)

        backscatter, meta_probe_before, meta_probe_after = (
            self._run_incomplete_handshake_stage(
                network,
                flight_cache=stage5_cache,
                spoof_deployments=scan.spoof_deployments,
                provider_of=provider_of,
            )
        )

        stage5_info = stage5_cache.cache_info()
        flight_cache = FlightCacheInfo(
            hits=scan.flight_cache.hits + stage5_info.hits,
            misses=scan.flight_cache.misses + stage5_info.misses,
            currsize=scan.flight_cache.currsize + stage5_info.currsize,
            maxsize=max(scan.flight_cache.maxsize, stage5_info.maxsize),
        )

        return ReducedCampaignResults(
            scan=scan,
            population_size=config.size,
            backscatter=backscatter,
            meta_probe_before=meta_probe_before,
            meta_probe_after=meta_probe_after,
            analysis_initial_size=self.analysis_initial_size,
            flight_cache=flight_cache,
            scenario=self.scenario,
        )

    def _run_incomplete_handshake_stage(
        self,
        network: UdpNetwork,
        flight_cache=None,
        spoof_deployments: Optional[Sequence[DomainDeployment]] = None,
        provider_of=None,
    ):
        """Stage 5: spoofed-source campaign plus the Meta PoP probes."""
        # 5a. Spoofed handshakes observed at the telescope.
        telescope = Telescope()
        network.attach_telescope(TELESCOPE_PREFIX, telescope)
        if spoof_deployments is None:
            spoof_deployments = self._pick_spoof_deployments()
        spoof_targets = self._spoof_targets(network, spoof_deployments)
        simulate_spoofed_campaign(network, spoof_targets, TELESCOPE_PREFIX)
        analyzer = BackscatterAnalyzer(telescope, provider_of or self._provider_of_domain)
        backscatter = analyzer.analyze()

        # 5b. ZMap-style scan of the Meta point of presence, before and after
        # the responsible disclosure.
        meta_probe_before = self._probe_meta_pop(patched=False, flight_cache=flight_cache)
        meta_probe_after = self._probe_meta_pop(patched=True, flight_cache=flight_cache)
        return backscatter, meta_probe_before, meta_probe_after

    # -- helpers -----------------------------------------------------------------

    def _provider_of_domain(self, domain: str) -> Optional[str]:
        return provider_of_domain(domain, self.population.deployment)

    def _pick_spoof_deployments(self) -> List[DomainDeployment]:
        """The hypergiant-hosted services an attacker would reflect off.

        First ``spoofed_targets_per_provider`` QUIC deployments per hypergiant
        in deployment (= rank) order — the same selection (and the same code,
        :func:`~repro.scanners.streaming.take_per_provider`) the streaming
        reducer assembles from per-shard candidates.
        """
        return take_per_provider(
            self.population.quic_services(),
            self.spoofed_targets_per_provider,
            SPOOF_PROVIDERS,
        )

    def _spoof_targets(
        self, network: UdpNetwork, spoof_deployments: Sequence[DomainDeployment]
    ) -> List:
        """Resolve spoof deployments to addresses and add the Meta PoP hosts.

        The Meta PoP hosts are always included so Meta backscatter is observed
        even when the sampled population contains few Meta-hosted domains.
        """
        targets = []
        for deployment in spoof_deployments:
            host = network.host_for_domain(deployment.domain)
            if host is not None:
                targets.append(host.address)
        for host in build_meta_point_of_presence(patched=False, prefix=META_POP_PREFIX):
            network.attach_host(host)
            targets.append(host.address)
        return targets

    def _probe_meta_pop(self, patched: bool, flight_cache=None) -> List[ZmapProbeResult]:
        network = UdpNetwork(flight_cache=flight_cache)
        for host in build_meta_point_of_presence(patched=patched, prefix=META_POP_PREFIX):
            network.attach_host(host)
        scanner = ZmapScanner(network)
        return scanner.probe_prefix(META_POP_PREFIX)


# ---------------------------------------------------------------------------
# Grid campaigns (cross-scenario shard reuse)
# ---------------------------------------------------------------------------

def run_grid_campaign(
    grid,
    config: Optional[PopulationConfig] = None,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    spoofed_targets_per_provider: int = 60,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retry_policy=None,
    fault_plan=None,
    scan_backend: Optional[str] = None,
    progress=None,
    skeleton_cache_dir: Optional[str] = None,
) -> Dict[str, ReducedCampaignResults]:
    """Run every scenario of a :class:`~repro.scenarios.grid.ScenarioGrid`
    over one shared generation pass and finalize each member.

    The amortized equivalent of N independent streamed
    :class:`MeasurementCampaign` runs: stages 1–4 go through
    :func:`~repro.scanners.streaming.run_streaming_grid_scan` (one skeleton
    pass per shard visit, N scans), then stage 5 finalizes per member under
    its own campaign — so every returned
    :class:`~repro.scanners.streaming.ReducedCampaignResults` is
    byte-identical to the one its independent ``--scenario`` run produces.
    Results are keyed by member name, in grid order.
    """
    config = config or PopulationConfig()
    if config.scenario is not None:
        raise ValueError(
            "grid campaigns take a scenario-free base config; member "
            "scenarios derive their own configs from it"
        )
    spec = ReductionSpec(spoof_limit_per_provider=spoofed_targets_per_provider)
    scans = run_streaming_grid_scan(
        config,
        grid,
        workers=workers if workers is not None else 1,
        shard_size=shard_size if shard_size is not None else DEFAULT_SHARD_SIZE,
        spec=spec,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        retry_policy=retry_policy,
        fault_plan=fault_plan,
        scan_backend=scan_backend,
        progress=progress,
        skeleton_cache_dir=skeleton_cache_dir,
    )
    results: Dict[str, ReducedCampaignResults] = {}
    for scenario in grid:
        campaign = MeasurementCampaign(
            population_config=scenario.population_config(base=config),
            stream=True,
            spoofed_targets_per_provider=spoofed_targets_per_provider,
        )
        results[scenario.name] = campaign.finalize_streaming(scans[scenario.name])
    return results
