"""Streaming reduction of sharded campaigns (true 1M-domain runs).

The sharded runner of :mod:`repro.scanners.sharding` already splits scanning
across shards, but its merge still materialises every shard's full result —
certificate chains included — in the parent, which caps campaigns far below
the paper's 1M-domain Tranco scans.  This module closes that gap: shards flow
through scan *and* aggregation incrementally, and what a worker ships back is
a :class:`ShardSummary` — counters, CDF count-accumulators, chain-fingerprint
digests and compact row arrays — instead of deployments, certificate records
or handshake observation objects.

The streaming reduction contract (see docs/ARCHITECTURE.md):

* **Workers reduce, the parent merges.**  ``summarize_shard`` runs in the
  worker right after ``scan_shard`` and distils everything the analysis layer
  needs; the shard's deployments and chains never cross the process boundary
  and are freed as soon as the summary exists.
* **Merging is order-insensitive and associative.**  Counter-like state adds
  up in any order; state whose final order matters (per-observation row
  arrays, sweep observations, spoof candidates) is keyed by shard index and
  concatenated in index order at finalisation.  ``CampaignReducer.add`` and
  ``CampaignReducer.merge`` therefore commute, which
  ``tests/test_properties.py`` pins over random permutations and partitions.
* **Finalisation is byte-identical to the eager path.**  Every reduced figure
  input reproduces exactly the value the eager ``CampaignResults`` pipeline
  computes — including float-summation order for means and stable-sort
  tie-breaks — so ``build_report`` renders the same bytes either way
  (``tests/test_streaming_reduction.py``).
"""

from __future__ import annotations

import dataclasses
from array import array
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.grid import ScenarioGrid
    from ..scenarios.spec import ScenarioSpec

from ..analysis.figures import figure02b, figure07, figure08, figure12, figure13, table02
from ..core.limits import LARGER_COMMON_LIMIT
from ..quic.handshake import HandshakeClass
from ..quic.server import FlightCacheInfo
from ..scenarios import BASELINE_FINGERPRINT
from ..tls.cert_compression import (
    CertificateCompressionAlgorithm,
    compress_certificate_chain,
)
from ..webpki.deployment import DomainDeployment, ServiceCategory
from ..webpki.population import PopulationConfig, deployments_for_range
from ..x509.ca import default_hierarchy
from ..x509.field_sizes import san_byte_share
from .backscatter import ProviderBackscatter
from .compression_scanner import ALL_ALGORITHMS
from .https_scanner import ScanFunnel
from .qscanner import CertificateComparison
from .quicreach import (
    DEFAULT_ANALYSIS_INITIAL_SIZE,
    SWEEP_INITIAL_SIZES,
    HandshakeObservation,
    SweepResult,
)
from .checkpoint import CheckpointError, CheckpointKey, CheckpointStore
from .faults import FaultPlan
from .sharding import (
    DEFAULT_SHARD_SIZE,
    RetryPolicy,
    ShardDispatchError,
    ShardScanResult,
    ShardTask,
    dispatch_with_retry,
    plan_shards,
    scan_shard,
    sweep_sample_stride,
)
from .zmap import ZmapProbeResult

#: Hypergiants whose services the spoofed-source campaign reflects off.
SPOOF_PROVIDERS: Tuple[str, ...] = ("cloudflare", "google", "meta")

#: Domains the Meta PoP hosts serve; mapped to the "meta" provider even when
#: the scanned population contains no deployment for them.
META_SERVICE_DOMAINS: Tuple[str, ...] = (
    "facebook.com", "fbcdn.net", "instagram.com", "whatsapp.net",
    "messenger.com", "igcdn.com",
)


def provider_of_domain(domain: str, deployment_lookup) -> Optional[str]:
    """Map a scanned domain to its hosting provider name.

    The one implementation of the lookup the backscatter analysis needs:
    ``deployment_lookup`` returns the deployment (or ``None``) for a domain;
    Meta PoP service domains fall back to ``"meta"`` even when the sampled
    population holds no deployment for them (stage 5 always probes the Meta
    /24).  Shared by the eager :class:`~repro.scanners.orchestrator.CampaignResults`
    accessor, the campaign's stage-5 analyzer and the streaming finalisation,
    so the three cannot drift apart.
    """
    deployment = deployment_lookup(domain)
    if deployment is not None and deployment.provider is not None:
        return deployment.provider
    if domain in META_SERVICE_DOMAINS:
        return "meta"
    return None


def take_per_provider(
    deployments,
    limit: int,
    providers: Optional[Tuple[str, ...]] = None,
) -> List[DomainDeployment]:
    """First ``limit`` deployments per provider, in iteration order.

    The one implementation of the spoof-target cap walk: the eager picker,
    the per-shard candidate collection and the reducer's final selection all
    route through it, so the three stay byte-identical by construction.
    ``providers`` restricts which providers are eligible (``None``: all).
    """
    taken: List[DomainDeployment] = []
    per_provider: Dict[str, int] = {}
    for deployment in deployments:
        provider = deployment.provider or "unknown"
        if providers is not None and provider not in providers:
            continue
        if per_provider.get(provider, 0) >= limit:
            continue
        per_provider[provider] = per_provider.get(provider, 0) + 1
        taken.append(deployment)
    return taken


@dataclass(frozen=True)
class ReductionSpec:
    """Per-shard reduction knobs a worker needs besides the scan task."""

    spoof_providers: Tuple[str, ...] = SPOOF_PROVIDERS
    spoof_limit_per_provider: int = 60
    compression_algorithm: CertificateCompressionAlgorithm = (
        CertificateCompressionAlgorithm.BROTLI
    )
    limit_bytes: int = LARGER_COMMON_LIMIT


@dataclass(frozen=True)
class ShardSummary:
    """Everything one scanned shard contributes to the reduced campaign.

    Compact by construction: counters and ``value -> multiplicity`` maps for
    everything order-insensitive, ``array``/``bytes`` rows for the few series
    whose final order matters, and the shard's (small, capped) spoof-target
    deployments — never full certificate records or observation objects.
    """

    index: int
    #: Fingerprint of the scenario the shard was generated and scanned under
    #: (:meth:`~repro.scenarios.spec.ScenarioSpec.fingerprint`); the reducer
    #: rejects merging summaries whose fingerprints differ.
    scenario_fingerprint: str
    deployment_count: int
    quic_count: int
    https_only_count: int
    # Stage 1: HTTPS scan.
    funnel_counts: Dict[str, int]
    chain_digests: FrozenSet[bytes]
    # Stage 2: handshake classification.
    handshake_total: int
    reachable_count: int
    class_counts: Dict[HandshakeClass, int]
    amp_factor_counts: Dict[float, int]
    fig13_ranks: array
    fig13_classes: bytes
    fig5_tls: array
    fig5_total: array
    fig5_limit: array
    fig5_exceeds: int
    fig5_overhead_max: int
    # Stage 2b: the sampled sweep (small; kept as observations).
    sweep_observations: Tuple[HandshakeObservation, ...]
    # Stage 3: QUIC certificates.
    quic_certificate_count: int
    comparison_total: int
    comparison_identical: int
    # Stage 4: compression scan (wild measurements).
    wild_count: int
    wild_all_three: int
    wild_support_counts: Dict[CertificateCompressionAlgorithm, int]
    wild_rates: Dict[CertificateCompressionAlgorithm, array]
    # Ground-truth (population) reductions for the certificate figures.
    start_rank: int
    category_codes: bytes
    field_size_counts: Dict[str, Dict[int, int]]
    certificate_count: int
    quic_chain_size_counts: Dict[int, int]
    https_chain_size_counts: Dict[int, int]
    parent_chain_groups: Dict[str, Dict[Tuple[str, ...], "figure07.ParentChainStats"]]
    parent_chain_totals: Dict[str, int]
    field_sums: Dict[str, Dict[str, int]]
    field_counts: Dict[str, int]
    key_alg_counters: Dict[Tuple[str, str, object], int]
    key_alg_totals: Dict[Tuple[str, str], int]
    synth_rates: array
    synth_below_uncompressed: int
    synth_below_compressed: int
    synth_count: int
    fig14_leaf_sizes: array
    fig14_san_shares: array
    # Stage 5 inputs: this shard's spoof-target candidates (capped per provider).
    spoof_candidates: Tuple[DomainDeployment, ...]
    # Flight-plan cache counters of the shard's own cache.
    flight_cache: FlightCacheInfo


def summarize_shard(
    task: ShardTask,
    deployments: Sequence[DomainDeployment],
    scan: ShardScanResult,
    spec: ReductionSpec,
) -> ShardSummary:
    """Reduce one shard's deployments + scan result to a :class:`ShardSummary`.

    Runs inside the worker; after it returns, the shard's chains can be freed.
    """
    quic_deployments = [d for d in deployments if d.category is ServiceCategory.QUIC]
    https_only = [d for d in deployments if d.category is ServiceCategory.HTTPS_ONLY]

    # Stage 1: funnel counters (unique chains merge as a digest-set union).
    funnel_counts = scan.funnel.as_dict()
    funnel_counts.pop("unique_certificate_chains")
    chain_digests = frozenset(
        bytes.fromhex(record.fingerprint) for record in scan.https_records
    )

    # Stage 2: handshake observations -> per-figure compact series.
    reachable = 0
    class_counts: Dict[HandshakeClass, int] = {}
    amp_factor_counts: Dict[float, int] = {}
    fig13_ranks = array("q")
    fig13_classes = bytearray()
    fig5_tls = array("q")
    fig5_total = array("q")
    fig5_limit = array("q")
    fig5_exceeds = 0
    fig5_overhead_max = 0
    for observation in scan.handshakes:
        if not observation.reachable:
            continue
        reachable += 1
        handshake_class = observation.handshake_class
        if handshake_class is not None:
            class_counts[handshake_class] = class_counts.get(handshake_class, 0) + 1
            fig13_ranks.append(observation.rank)
            fig13_classes.append(figure13.CLASS_CODES[handshake_class])
        if observation.exceeds_limit:
            factor = observation.amplification_factor
            amp_factor_counts[factor] = amp_factor_counts.get(factor, 0) + 1
        if handshake_class is HandshakeClass.MULTI_RTT:
            limit = 3 * observation.initial_size
            fig5_tls.append(observation.tls_payload_bytes)
            fig5_total.append(observation.total_bytes)
            fig5_limit.append(limit)
            if observation.tls_payload_bytes > limit:
                fig5_exceeds += 1
            if observation.quic_overhead_bytes > fig5_overhead_max:
                fig5_overhead_max = observation.quic_overhead_bytes

    # Stage 4: wild compression measurements.
    wild_all_three = 0
    wild_support_counts: Dict[CertificateCompressionAlgorithm, int] = {
        algorithm: 0 for algorithm in ALL_ALGORITHMS
    }
    wild_rates: Dict[CertificateCompressionAlgorithm, array] = {
        algorithm: array("d") for algorithm in ALL_ALGORITHMS
    }
    for observation in scan.compression:
        if observation.supports_all_three:
            wild_all_three += 1
        for algorithm in ALL_ALGORITHMS:
            if observation.supports(algorithm):
                wild_support_counts[algorithm] += 1
            rate = observation.compression_rate(algorithm)
            if rate is not None:
                wild_rates[algorithm].append(rate)

    # Ground-truth reductions for the certificate/deployment figures.
    field_size_counts: Dict[str, Dict[int, int]] = {
        name: {} for name in figure02b.FIELD_NAMES
    }
    certificate_count = figure02b.accumulate_field_sizes(
        (
            certificate
            for deployment in deployments
            if deployment.delivered_chain is not None
            for certificate in deployment.delivered_chain.certificates
        ),
        field_size_counts,
    )

    quic_chain_size_counts: Dict[int, int] = {}
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is not None:
            size = chain.total_size
            quic_chain_size_counts[size] = quic_chain_size_counts.get(size, 0) + 1
    https_chain_size_counts: Dict[int, int] = {}
    for deployment in https_only:
        chain = deployment.https_chain
        if chain is not None:
            size = chain.total_size
            https_chain_size_counts[size] = https_chain_size_counts.get(size, 0) + 1

    parent_chain_groups: Dict[str, Dict[Tuple[str, ...], figure07.ParentChainStats]] = {
        "QUIC": {},
        "HTTPS-only": {},
    }
    parent_chain_totals = {
        "QUIC": figure07.accumulate_groups(
            quic_deployments, parent_chain_groups["QUIC"], task.start
        ),
        "HTTPS-only": figure07.accumulate_groups(
            https_only, parent_chain_groups["HTTPS-only"], task.start
        ),
    }

    field_sums, field_counts = figure08.empty_field_sums()
    figure08.accumulate_field_sums(quic_deployments, field_sums, field_counts)

    key_alg_counters: Dict[Tuple[str, str, object], int] = {}
    key_alg_totals: Dict[Tuple[str, str], int] = {}
    table02.accumulate_key_algorithms("QUIC", quic_deployments, key_alg_counters, key_alg_totals)
    table02.accumulate_key_algorithms("HTTPS-only", https_only, key_alg_counters, key_alg_totals)

    synth_rates = array("d")
    synth_below_uncompressed = synth_below_compressed = synth_count = 0
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        result = compress_certificate_chain(
            [certificate.der for certificate in chain], spec.compression_algorithm
        )
        synth_rates.append(result.ratio)
        synth_count += 1
        if result.uncompressed_size <= spec.limit_bytes:
            synth_below_uncompressed += 1
        if result.compressed_size <= spec.limit_bytes:
            synth_below_compressed += 1

    fig14_leaf_sizes = array("q")
    fig14_san_shares = array("d")
    for deployment in quic_deployments:
        chain = deployment.delivered_chain
        if chain is None:
            continue
        leaf = chain.leaf
        fig14_leaf_sizes.append(leaf.size)
        fig14_san_shares.append(san_byte_share(leaf))

    # Spoof-target candidates, capped per provider (the parent re-applies the
    # cap over the shard-ordered concatenation, so shipping up to the cap per
    # shard is a sufficient superset).
    spoof_candidates = take_per_provider(
        quic_deployments, spec.spoof_limit_per_provider, spec.spoof_providers
    )

    return ShardSummary(
        index=task.index,
        scenario_fingerprint=task.scenario_fingerprint(),
        deployment_count=len(deployments),
        quic_count=len(quic_deployments),
        https_only_count=len(https_only),
        funnel_counts=funnel_counts,
        chain_digests=chain_digests,
        handshake_total=len(scan.handshakes),
        reachable_count=reachable,
        class_counts=class_counts,
        amp_factor_counts=amp_factor_counts,
        fig13_ranks=fig13_ranks,
        fig13_classes=bytes(fig13_classes),
        fig5_tls=fig5_tls,
        fig5_total=fig5_total,
        fig5_limit=fig5_limit,
        fig5_exceeds=fig5_exceeds,
        fig5_overhead_max=fig5_overhead_max,
        sweep_observations=scan.sweep_observations,
        quic_certificate_count=len(scan.quic_certificates),
        comparison_total=scan.comparison.total_compared,
        comparison_identical=scan.comparison.identical,
        wild_count=len(scan.compression),
        wild_all_three=wild_all_three,
        wild_support_counts=wild_support_counts,
        wild_rates=wild_rates,
        start_rank=deployments[0].rank if deployments else task.start + 1,
        category_codes=bytes(
            figure12.CATEGORY_CODES[deployment.category] for deployment in deployments
        ),
        field_size_counts=field_size_counts,
        certificate_count=certificate_count,
        quic_chain_size_counts=quic_chain_size_counts,
        https_chain_size_counts=https_chain_size_counts,
        parent_chain_groups=parent_chain_groups,
        parent_chain_totals=parent_chain_totals,
        field_sums=field_sums,
        field_counts=field_counts,
        key_alg_counters=key_alg_counters,
        key_alg_totals=key_alg_totals,
        synth_rates=synth_rates,
        synth_below_uncompressed=synth_below_uncompressed,
        synth_below_compressed=synth_below_compressed,
        synth_count=synth_count,
        fig14_leaf_sizes=fig14_leaf_sizes,
        fig14_san_shares=fig14_san_shares,
        spoof_candidates=tuple(spoof_candidates),
        flight_cache=scan.flight_cache,
    )


def _scan_and_summarize(payload: Tuple[ShardTask, ReductionSpec, int, object]) -> ShardSummary:
    """Worker entry point: resolve, scan and reduce one shard.

    The payload carries the dispatch attempt number and the (optional)
    :class:`~repro.scanners.faults.FaultPlan`; a scripted fault for this
    ``(shard, attempt)`` fires before any scanning happens, so an injected
    crash never leaves a half-observed shard behind.
    """
    task, spec, attempt, fault_plan = payload
    if fault_plan is not None:
        fault_plan.inject_worker_fault(task.index, attempt)
    deployments = tuple(task.resolve_deployments())
    if task.scan_backend == "columnar":
        # Imported lazily: columnar imports this module at top level.
        from .columnar import summarize_shard_columnar

        return summarize_shard_columnar(task, deployments, spec)
    scan = scan_shard(task, deployments=deployments)
    return summarize_shard(task, deployments, scan, spec)


def _scan_and_summarize_grid(
    payload: Tuple[ShardTask, ReductionSpec, int, object]
) -> Tuple[ShardSummary, ...]:
    """Grid worker entry point: one generation pass, one summary per scenario.

    The cross-scenario shard-reuse contract (docs/ARCHITECTURE.md): scenarios
    are pure post-RNG skeleton transforms, so the shard's *baseline* skeletons
    are generated once per population-config group (members whose
    ``population_overrides`` change the config before generation get their own
    group), every member transform is replayed against them, and chains whose
    specs a transform left untouched are issued once via a shared
    ``ChainSpec → chain`` cache — equal specs materialise byte-identical
    chains, so reuse cannot change any scan result.  Within one scenario's
    scan the object-identity structure matches an independent run exactly
    (chain specs embed their domain, so no two deployments of a scan ever
    share a cache entry), keeping identity-keyed scan caches honest.

    Summaries come back in ``task.grid_scenarios`` order, each byte-identical
    to the summary an independent single-scenario campaign produces for this
    shard.
    """
    task, spec, attempt, fault_plan = payload
    if fault_plan is not None:
        fault_plan.inject_worker_fault(task.index, attempt)
    if not task.grid_scenarios:
        raise ValueError("grid worker dispatched a task without grid_scenarios")
    hierarchy = default_hierarchy()
    chain_cache: Dict = {}
    member_tasks = {
        scenario.name: task.for_scenario(scenario) for scenario in task.grid_scenarios
    }
    groups: Dict[PopulationConfig, List] = {}
    for scenario in task.grid_scenarios:
        base_config = dataclasses.replace(
            member_tasks[scenario.name].population_config, scenario=None
        )
        groups.setdefault(base_config, []).append(scenario)
    summaries: Dict[str, ShardSummary] = {}
    for base_config, members in groups.items():
        if task.skeleton_cache_dir is not None:
            # Warm path: the persistent store supplies the baseline skeletons
            # and seeds the shared spec→chain cache from the issued-leaf
            # annexes, so untouched specs materialise without issuance.
            from .skeleton_store import skeletons_for_range as cached_skeletons
            from .skeleton_store import store_for

            skeletons = cached_skeletons(
                store_for(task.skeleton_cache_dir),
                base_config,
                task.start,
                task.stop,
                chain_cache=chain_cache,
            )
        else:
            skeletons = deployments_for_range(
                base_config, task.start, task.stop, skeleton=True
            )
        for scenario in members:
            member_task = member_tasks[scenario.name]
            deployments = tuple(
                skeleton.materialize(hierarchy, chain_cache=chain_cache)
                for skeleton in scenario.transform_skeletons(skeletons)
            )
            if member_task.scan_backend == "columnar":
                # Imported lazily: columnar imports this module at top level.
                from .columnar import summarize_shard_columnar

                summaries[scenario.name] = summarize_shard_columnar(
                    member_task, deployments, spec
                )
            else:
                scan = scan_shard(member_task, deployments=deployments)
                summaries[scenario.name] = summarize_shard(
                    member_task, deployments, scan, spec
                )
    return tuple(summaries[scenario.name] for scenario in task.grid_scenarios)


def _count_quic_targets(task: ShardTask) -> Tuple[int, int]:
    """Sweep discovery pass: how many QUIC targets live in this shard.

    Counts from phase-1 skeletons (no certificate issuance), so with
    ``--stream --sweep`` the population's chains are generated once — by the
    scan pass — instead of twice.
    """
    skeletons = task.resolve_skeletons()
    return task.index, sum(
        1 for skeleton in skeletons if skeleton.category is ServiceCategory.QUIC
    )


# ---------------------------------------------------------------------------
# The reducer
# ---------------------------------------------------------------------------

def _merge_counts(target: Dict, source: Mapping) -> None:
    for key, value in source.items():
        target[key] = target.get(key, 0) + value


@dataclass(frozen=True)
class ReducedScanResults:
    """Stages 1–4 of a campaign, fully reduced (the parent-side contract).

    Order-normalised and comparable: two reducers fed the same shards in any
    order or grouping produce equal instances.
    """

    #: Fingerprint of the scenario every folded shard was scanned under;
    #: checked again at finalisation so persisted reductions (the
    #: checkpoint/resume seam) cannot be finalised under the wrong scenario.
    scenario_fingerprint: str
    deployment_count: int
    quic_count: int
    https_only_count: int
    funnel: ScanFunnel
    handshake_total: int
    reachable_count: int
    class_counts: Dict[HandshakeClass, int]
    amp_factor_counts: Dict[float, int]
    fig13_ranks: array
    fig13_classes: bytes
    fig5_rows: Tuple[Tuple[int, int, int], ...]
    fig5_exceeds: int
    fig5_overhead_max: int
    sweep: Optional[SweepResult]
    quic_certificate_count: int
    certificate_comparison: CertificateComparison
    wild_count: int
    wild_all_three: int
    wild_support_counts: Dict[CertificateCompressionAlgorithm, int]
    wild_rates: Dict[CertificateCompressionAlgorithm, array]
    category_runs: Tuple[Tuple[int, bytes], ...]
    field_size_counts: Dict[str, Dict[int, int]]
    certificate_count: int
    quic_chain_size_counts: Dict[int, int]
    https_chain_size_counts: Dict[int, int]
    parent_chain_groups: Dict[str, Dict[Tuple[str, ...], "figure07.ParentChainStats"]]
    parent_chain_totals: Dict[str, int]
    field_sums: Dict[str, Dict[str, int]]
    field_counts: Dict[str, int]
    key_alg_counters: Dict[Tuple[str, str, object], int]
    key_alg_totals: Dict[Tuple[str, str], int]
    synth_rates: array
    synth_below_uncompressed: int
    synth_below_compressed: int
    synth_count: int
    fig14_leaf_sizes: array
    fig14_san_shares: array
    spoof_deployments: Tuple[DomainDeployment, ...]
    flight_cache: FlightCacheInfo


class CampaignReducer:
    """Order-insensitive, associative accumulator of :class:`ShardSummary`.

    ``add`` folds one summary in; ``merge`` folds another reducer in (so
    reductions themselves can be computed in parallel and combined).  State
    whose final order matters is keyed by shard index and only concatenated
    (in index order) by :meth:`reduced_scan`.
    """

    def __init__(
        self,
        spec: Optional[ReductionSpec] = None,
        run_sweep: bool = False,
        sweep_initial_sizes: Sequence[int] = SWEEP_INITIAL_SIZES,
    ) -> None:
        self._spec = spec or ReductionSpec()
        self._run_sweep = run_sweep
        self._sweep_initial_sizes = tuple(sweep_initial_sizes)
        self._indexes: set = set()
        #: Scenario fingerprint of every folded summary (``None`` until the
        #: first fold); a differing fingerprint is a campaign mix-up, not a
        #: mergeable state, and is rejected.
        self._scenario_fingerprint: Optional[str] = None
        # Order-insensitive merged state.
        self._deployment_count = 0
        self._quic_count = 0
        self._https_only_count = 0
        self._funnel: Dict[str, int] = {}
        self._digests: set = set()
        self._handshake_total = 0
        self._reachable_count = 0
        self._class_counts: Dict[HandshakeClass, int] = {}
        self._amp_factor_counts: Dict[float, int] = {}
        self._fig5_exceeds = 0
        self._fig5_overhead_max = 0
        self._quic_certificate_count = 0
        self._comparison_total = 0
        self._comparison_identical = 0
        self._wild_count = 0
        self._wild_all_three = 0
        self._wild_support_counts: Dict[CertificateCompressionAlgorithm, int] = {}
        self._field_size_counts: Dict[str, Dict[int, int]] = {
            name: {} for name in figure02b.FIELD_NAMES
        }
        self._certificate_count = 0
        self._quic_chain_size_counts: Dict[int, int] = {}
        self._https_chain_size_counts: Dict[int, int] = {}
        self._parent_chain_groups: Dict[str, Dict[Tuple[str, ...], figure07.ParentChainStats]] = {
            "QUIC": {},
            "HTTPS-only": {},
        }
        self._parent_chain_totals: Dict[str, int] = {"QUIC": 0, "HTTPS-only": 0}
        self._field_sums, self._field_counts = figure08.empty_field_sums()
        self._key_alg_counters: Dict[Tuple[str, str, object], int] = {}
        self._key_alg_totals: Dict[Tuple[str, str], int] = {}
        self._synth_below_uncompressed = 0
        self._synth_below_compressed = 0
        self._synth_count = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_currsize = 0
        self._cache_maxsize = 0
        # Shard-index-keyed state (concatenated in index order at finalise).
        self._category_runs: Dict[int, Tuple[int, bytes]] = {}
        self._fig13: Dict[int, Tuple[array, bytes]] = {}
        self._fig5: Dict[int, Tuple[array, array, array]] = {}
        self._wild_rates: Dict[int, Dict[CertificateCompressionAlgorithm, array]] = {}
        self._synth_rates: Dict[int, array] = {}
        self._fig14: Dict[int, Tuple[array, array]] = {}
        self._sweep: Dict[int, Tuple[HandshakeObservation, ...]] = {}
        self._spoof: Dict[int, Tuple[DomainDeployment, ...]] = {}
        #: How many spoof candidates (per provider) each shard *shipped* —
        #: kept for every shard so stored candidates can be trimmed as soon
        #: as earlier shards are known to cover the per-provider caps.
        self._spoof_shipped: Dict[int, Dict[str, int]] = {}
        #: Trim watermark: shards ``[0, _spoof_frontier)`` are all present and
        #: already trimmed; ``_spoof_covered`` is their (cap-saturated)
        #: per-provider candidate count.  Advancing incrementally keeps the
        #: trim O(candidates) overall instead of re-walking every shard per add.
        self._spoof_frontier = 0
        self._spoof_covered: Dict[str, int] = {}

    # -- folding -----------------------------------------------------------------

    def add(self, summary: ShardSummary) -> None:
        """Fold one shard summary in (via :meth:`merge`, the single fold path)."""
        delta = CampaignReducer(
            spec=self._spec,
            run_sweep=self._run_sweep,
            sweep_initial_sizes=self._sweep_initial_sizes,
        )
        delta._load(summary)
        self.merge(delta)

    def _load(self, summary: ShardSummary) -> None:
        """Initialise this (empty) reducer with exactly one shard's summary.

        Plain assignments only — all fold logic lives in :meth:`merge`, so a
        new ``ShardSummary`` field cannot be folded one way by ``add`` and
        another by ``merge``.  The summary's containers are referenced, not
        copied: merging only ever mutates the *target* reducer's state.
        """
        index = summary.index
        self._indexes = {index}
        self._scenario_fingerprint = summary.scenario_fingerprint
        self._deployment_count = summary.deployment_count
        self._quic_count = summary.quic_count
        self._https_only_count = summary.https_only_count
        self._funnel = dict(summary.funnel_counts)
        self._digests = set(summary.chain_digests)
        self._handshake_total = summary.handshake_total
        self._reachable_count = summary.reachable_count
        self._class_counts = dict(summary.class_counts)
        self._amp_factor_counts = dict(summary.amp_factor_counts)
        self._fig5_exceeds = summary.fig5_exceeds
        self._fig5_overhead_max = summary.fig5_overhead_max
        self._quic_certificate_count = summary.quic_certificate_count
        self._comparison_total = summary.comparison_total
        self._comparison_identical = summary.comparison_identical
        self._wild_count = summary.wild_count
        self._wild_all_three = summary.wild_all_three
        self._wild_support_counts = dict(summary.wild_support_counts)
        self._field_size_counts = summary.field_size_counts
        self._certificate_count = summary.certificate_count
        self._quic_chain_size_counts = dict(summary.quic_chain_size_counts)
        self._https_chain_size_counts = dict(summary.https_chain_size_counts)
        self._parent_chain_groups = summary.parent_chain_groups
        self._parent_chain_totals = dict(summary.parent_chain_totals)
        self._field_sums = summary.field_sums
        self._field_counts = dict(summary.field_counts)
        self._key_alg_counters = dict(summary.key_alg_counters)
        self._key_alg_totals = dict(summary.key_alg_totals)
        self._synth_below_uncompressed = summary.synth_below_uncompressed
        self._synth_below_compressed = summary.synth_below_compressed
        self._synth_count = summary.synth_count
        self._cache_hits = summary.flight_cache.hits
        self._cache_misses = summary.flight_cache.misses
        self._cache_currsize = summary.flight_cache.currsize
        self._cache_maxsize = summary.flight_cache.maxsize
        self._category_runs = {index: (summary.start_rank, summary.category_codes)}
        self._fig13 = {index: (summary.fig13_ranks, summary.fig13_classes)}
        self._fig5 = {index: (summary.fig5_tls, summary.fig5_total, summary.fig5_limit)}
        self._wild_rates = {index: summary.wild_rates}
        self._synth_rates = {index: summary.synth_rates}
        self._fig14 = {index: (summary.fig14_leaf_sizes, summary.fig14_san_shares)}
        self._sweep = {index: summary.sweep_observations} if summary.sweep_observations else {}
        shipped: Dict[str, int] = {}
        for deployment in summary.spoof_candidates:
            provider = deployment.provider or "unknown"
            shipped[provider] = shipped.get(provider, 0) + 1
        self._spoof_shipped = {index: shipped}
        self._spoof = {index: summary.spoof_candidates} if summary.spoof_candidates else {}

    def _trim_spoof_candidates(self) -> None:
        """Drop stored spoof candidates that earlier shards already cover.

        Candidate deployments carry full certificate chains — the one heavy
        payload in a summary — so the reducer must not hoard them: once the
        contiguous shard prefix ships enough candidates of a provider to
        satisfy the cap, later candidates of that provider can never be
        selected and are freed.  The watermark only advances over shards
        *present so far*, which underestimates the covered prefix, so the
        final selection is independent of arrival order; shards beyond a gap
        are held untrimmed until the gap fills (bounded by arrival skew —
        ``pool.map`` delivers in order).
        """
        limit = self._spec.spoof_limit_per_provider
        while self._spoof_frontier in self._spoof_shipped:
            index = self._spoof_frontier
            candidates = self._spoof.get(index)
            if candidates:
                kept: List[DomainDeployment] = []
                taken: Dict[str, int] = {}
                for deployment in candidates:
                    provider = deployment.provider or "unknown"
                    if self._spoof_covered.get(provider, 0) + taken.get(provider, 0) >= limit:
                        continue
                    taken[provider] = taken.get(provider, 0) + 1
                    kept.append(deployment)
                if len(kept) != len(candidates):
                    if kept:
                        self._spoof[index] = tuple(kept)
                    else:
                        del self._spoof[index]
            for provider, count in self._spoof_shipped[index].items():
                self._spoof_covered[provider] = min(
                    limit, self._spoof_covered.get(provider, 0) + count
                )
            self._spoof_frontier = index + 1
        if all(
            self._spoof_covered.get(provider, 0) >= limit
            for provider in self._spec.spoof_providers
        ):
            # The contiguous prefix saturates every cap: candidates of any
            # later shard (gaps included) can never be selected.
            for index in [i for i in self._spoof if i >= self._spoof_frontier]:
                del self._spoof[index]

    def merge(self, other: "CampaignReducer") -> None:
        """Fold another reducer's state into this one (disjoint shard sets)."""
        overlap = self._indexes & other._indexes
        if overlap:
            raise ValueError(f"shards reduced twice: {sorted(overlap)}")
        if other._scenario_fingerprint is not None:
            if self._scenario_fingerprint is None:
                self._scenario_fingerprint = other._scenario_fingerprint
            elif self._scenario_fingerprint != other._scenario_fingerprint:
                raise ValueError(
                    "mixed-scenario merge rejected: shard summaries were scanned "
                    f"under different scenario specs ({self._scenario_fingerprint[:12]} "
                    f"vs {other._scenario_fingerprint[:12]})"
                )
        self._indexes |= other._indexes
        self._deployment_count += other._deployment_count
        self._quic_count += other._quic_count
        self._https_only_count += other._https_only_count
        _merge_counts(self._funnel, other._funnel)
        self._digests |= other._digests
        self._handshake_total += other._handshake_total
        self._reachable_count += other._reachable_count
        _merge_counts(self._class_counts, other._class_counts)
        _merge_counts(self._amp_factor_counts, other._amp_factor_counts)
        self._fig5_exceeds += other._fig5_exceeds
        self._fig5_overhead_max = max(self._fig5_overhead_max, other._fig5_overhead_max)
        self._quic_certificate_count += other._quic_certificate_count
        self._comparison_total += other._comparison_total
        self._comparison_identical += other._comparison_identical
        self._wild_count += other._wild_count
        self._wild_all_three += other._wild_all_three
        _merge_counts(self._wild_support_counts, other._wild_support_counts)
        for name, counts in other._field_size_counts.items():
            _merge_counts(self._field_size_counts[name], counts)
        self._certificate_count += other._certificate_count
        _merge_counts(self._quic_chain_size_counts, other._quic_chain_size_counts)
        _merge_counts(self._https_chain_size_counts, other._https_chain_size_counts)
        for group, stats_by_key in other._parent_chain_groups.items():
            merged = self._parent_chain_groups[group]
            for key, stats in stats_by_key.items():
                existing = merged.get(key)
                if existing is None:
                    merged[key] = figure07.ParentChainStats(
                        count=stats.count,
                        leaf_size_counts=dict(stats.leaf_size_counts),
                        first_index=stats.first_index,
                        parent_sizes=stats.parent_sizes,
                    )
                else:
                    existing.merge(stats)
        _merge_counts(self._parent_chain_totals, other._parent_chain_totals)
        for label, sums in other._field_sums.items():
            _merge_counts(self._field_sums[label], sums)
        _merge_counts(self._field_counts, other._field_counts)
        _merge_counts(self._key_alg_counters, other._key_alg_counters)
        _merge_counts(self._key_alg_totals, other._key_alg_totals)
        self._synth_below_uncompressed += other._synth_below_uncompressed
        self._synth_below_compressed += other._synth_below_compressed
        self._synth_count += other._synth_count
        self._cache_hits += other._cache_hits
        self._cache_misses += other._cache_misses
        self._cache_currsize += other._cache_currsize
        self._cache_maxsize = max(self._cache_maxsize, other._cache_maxsize)
        self._category_runs.update(other._category_runs)
        self._fig13.update(other._fig13)
        self._fig5.update(other._fig5)
        self._wild_rates.update(other._wild_rates)
        self._synth_rates.update(other._synth_rates)
        self._fig14.update(other._fig14)
        self._sweep.update(other._sweep)
        self._spoof.update(other._spoof)
        self._spoof_shipped.update(other._spoof_shipped)
        self._trim_spoof_candidates()

    # -- finalisation ------------------------------------------------------------

    def reduced_scan(self) -> ReducedScanResults:
        """Normalise the merged state into the deterministic reduced contract."""
        funnel = ScanFunnel()
        for name, value in self._funnel.items():
            setattr(funnel, name, value)
        funnel.unique_certificate_chains = len(self._digests)

        ordered = sorted(self._indexes)

        fig13_ranks = array("q")
        fig13_classes = bytearray()
        for index in ordered:
            ranks, classes = self._fig13.get(index, (array("q"), b""))
            fig13_ranks.extend(ranks)
            fig13_classes.extend(classes)

        fig5_rows: List[Tuple[int, int, int]] = []
        for index in ordered:
            tls, total, limit = self._fig5.get(index, (array("q"),) * 3)
            fig5_rows.extend(zip(tls, total, limit))

        wild_rates: Dict[CertificateCompressionAlgorithm, array] = {
            algorithm: array("d") for algorithm in ALL_ALGORITHMS
        }
        for index in ordered:
            for algorithm, rates in self._wild_rates.get(index, {}).items():
                wild_rates[algorithm].extend(rates)

        synth_rates = array("d")
        for index in ordered:
            synth_rates.extend(self._synth_rates.get(index, array("d")))

        fig14_leaf_sizes = array("q")
        fig14_san_shares = array("d")
        for index in ordered:
            sizes, shares = self._fig14.get(index, (array("q"), array("d")))
            fig14_leaf_sizes.extend(sizes)
            fig14_san_shares.extend(shares)

        category_runs = tuple(
            (self._category_runs[index][0], self._category_runs[index][1])
            for index in ordered
            if index in self._category_runs
        )

        sweep: Optional[SweepResult] = None
        if self._run_sweep:
            by_size: Dict[int, List[HandshakeObservation]] = {
                size: [] for size in self._sweep_initial_sizes
            }
            for index in ordered:
                for observation in self._sweep.get(index, ()):
                    by_size[observation.initial_size].append(observation)
            sweep = SweepResult(
                observations=tuple(
                    observation
                    for size in self._sweep_initial_sizes
                    for observation in by_size[size]
                )
            )

        spoof = take_per_provider(
            (
                deployment
                for index in ordered
                for deployment in self._spoof.get(index, ())
            ),
            self._spec.spoof_limit_per_provider,
        )

        return ReducedScanResults(
            scenario_fingerprint=self._scenario_fingerprint or BASELINE_FINGERPRINT,
            deployment_count=self._deployment_count,
            quic_count=self._quic_count,
            https_only_count=self._https_only_count,
            funnel=funnel,
            handshake_total=self._handshake_total,
            reachable_count=self._reachable_count,
            class_counts=dict(self._class_counts),
            amp_factor_counts=dict(self._amp_factor_counts),
            fig13_ranks=fig13_ranks,
            fig13_classes=bytes(fig13_classes),
            fig5_rows=tuple(fig5_rows),
            fig5_exceeds=self._fig5_exceeds,
            fig5_overhead_max=self._fig5_overhead_max,
            sweep=sweep,
            quic_certificate_count=self._quic_certificate_count,
            certificate_comparison=CertificateComparison(
                total_compared=self._comparison_total,
                identical=self._comparison_identical,
                different=self._comparison_total - self._comparison_identical,
            ),
            wild_count=self._wild_count,
            wild_all_three=self._wild_all_three,
            wild_support_counts={
                algorithm: self._wild_support_counts.get(algorithm, 0)
                for algorithm in ALL_ALGORITHMS
            },
            wild_rates=wild_rates,
            category_runs=category_runs,
            field_size_counts={
                name: dict(counts) for name, counts in self._field_size_counts.items()
            },
            certificate_count=self._certificate_count,
            quic_chain_size_counts=dict(self._quic_chain_size_counts),
            https_chain_size_counts=dict(self._https_chain_size_counts),
            parent_chain_groups={
                # Deep-copied: merge() mutates ParentChainStats in place, so a
                # snapshot must not alias the reducer's live group stats.
                group: {
                    key: figure07.ParentChainStats(
                        count=stats.count,
                        leaf_size_counts=dict(stats.leaf_size_counts),
                        first_index=stats.first_index,
                        parent_sizes=stats.parent_sizes,
                    )
                    for key, stats in stats_by_key.items()
                }
                for group, stats_by_key in self._parent_chain_groups.items()
            },
            parent_chain_totals=dict(self._parent_chain_totals),
            field_sums={label: dict(sums) for label, sums in self._field_sums.items()},
            field_counts=dict(self._field_counts),
            key_alg_counters=dict(self._key_alg_counters),
            key_alg_totals=dict(self._key_alg_totals),
            synth_rates=synth_rates,
            synth_below_uncompressed=self._synth_below_uncompressed,
            synth_below_compressed=self._synth_below_compressed,
            synth_count=self._synth_count,
            fig14_leaf_sizes=fig14_leaf_sizes,
            fig14_san_shares=fig14_san_shares,
            spoof_deployments=tuple(spoof),
            flight_cache=FlightCacheInfo(
                hits=self._cache_hits,
                misses=self._cache_misses,
                currsize=self._cache_currsize,
                maxsize=self._cache_maxsize,
            ),
        )


# ---------------------------------------------------------------------------
# The streamed campaign result (what build_report consumes)
# ---------------------------------------------------------------------------

@dataclass
class ReducedCampaignResults:
    """A full campaign's results in reduced (streaming) form.

    The streaming counterpart of
    :class:`repro.scanners.orchestrator.CampaignResults`:
    :func:`repro.analysis.report.build_report` accepts either and renders
    byte-identical reports.  Stage 5 (backscatter, Meta PoP) runs in the
    parent over the reduced spoof-target deployments and is therefore carried
    at full fidelity, like the (small, sampled) sweep.
    """

    scan: ReducedScanResults
    population_size: int
    backscatter: Dict[str, ProviderBackscatter]
    meta_probe_before: List[ZmapProbeResult]
    meta_probe_after: List[ZmapProbeResult]
    analysis_initial_size: int = DEFAULT_ANALYSIS_INITIAL_SIZE
    flight_cache: Optional[FlightCacheInfo] = None
    #: Scenario the campaign ran under (``None``: plain baseline pipeline);
    #: non-identity scenarios are stamped into the report header.
    scenario: Optional["ScenarioSpec"] = None

    # -- convenience accessors mirroring CampaignResults ----------------------

    @property
    def quic_count(self) -> int:
        return self.scan.quic_count

    @property
    def https_only_count(self) -> int:
        return self.scan.https_only_count

    @property
    def sweep(self) -> Optional[SweepResult]:
        return self.scan.sweep

    @property
    def certificate_comparison(self) -> CertificateComparison:
        return self.scan.certificate_comparison

    @property
    def https_funnel(self) -> ScanFunnel:
        return self.scan.funnel


# ---------------------------------------------------------------------------
# Driving a streamed scan
# ---------------------------------------------------------------------------

def run_streaming_scan(
    config: PopulationConfig,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    run_sweep: bool = False,
    sweep_sample_size: Optional[int] = 2000,
    sweep_initial_sizes: Sequence[int] = SWEEP_INITIAL_SIZES,
    analysis_initial_size: int = DEFAULT_ANALYSIS_INITIAL_SIZE,
    analysis_compression: Sequence[CertificateCompressionAlgorithm] = (),
    spec: Optional[ReductionSpec] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retry_policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    scan_backend: Optional[str] = None,
    skeleton_cache_dir: Optional[str] = None,
) -> ReducedScanResults:
    """Stream stages 1–4 over a generated population, reducing as shards finish.

    The parent never materialises the population: tasks carry only
    ``(config, index range)``; workers regenerate, scan and reduce their
    shard, and ship back a :class:`ShardSummary`.  With ``run_sweep`` a
    near-free discovery pass first counts QUIC targets per shard so workers
    can select their slice of the globally-strided sweep sample locally; the
    count comes from phase-1 skeletons (two-phase generation), so the
    population's certificate chains are generated once — by the scan pass —
    not twice.

    Durability (see docs/ARCHITECTURE.md, "Durable campaigns"):

    * ``checkpoint_dir`` persists every :class:`ShardSummary` to disk as it is
      reduced — content-addressed, atomic, self-verifying
      (:mod:`repro.scanners.checkpoint`).
    * ``resume`` folds the directory's valid checkpoints in first and
      dispatches only the missing shards; invalid files are quarantined and
      their shards re-scanned, so a resumed report stays byte-identical to an
      uninterrupted run.
    * ``retry_policy`` re-dispatches crashed / timed-out shards on a fresh
      pool; exhausted retries raise
      :class:`~repro.scanners.sharding.ShardDispatchError` after writing an
      ``incomplete.json`` manifest naming the missing shard indices.
    * ``fault_plan`` arms the deterministic fault-injection harness
      (:mod:`repro.scanners.faults`) — testing only.

    ``scan_backend`` picks the shard-scan implementation (``"object"`` or
    ``"columnar"``, see :mod:`repro.scanners.columnar`); ``None`` consults the
    ``REPRO_SCAN_BACKEND`` environment knob and defaults to ``"object"``.
    Both backends produce byte-identical summaries, so checkpoints written by
    one backend resume cleanly under the other.

    ``skeleton_cache_dir`` points workers at a persistent
    :class:`~repro.scanners.skeleton_store.SkeletonStore`: generation becomes
    a verified read of cached baseline shards (warm) or a read-through that
    populates the store (cold), byte-identical either way.  Composes freely
    with checkpoints, resume, retries and both backends.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if resume and checkpoint_dir is None:
        raise CheckpointError("resume requires a checkpoint directory")
    if skeleton_cache_dir is not None:
        # Bind (or verify) the directory in the parent so a mismatched cache
        # fails fast with one actionable error instead of once per worker.
        from .skeleton_store import store_for

        base = (
            config
            if config.scenario is None
            else dataclasses.replace(config, scenario=None)
        )
        store_for(skeleton_cache_dir).bind(base)
    from .columnar import resolve_scan_backend  # lazy: columnar imports us

    scan_backend = resolve_scan_backend(scan_backend)
    spec = spec or ReductionSpec()
    shard_specs = plan_shards(config.size, shard_size)
    multiprocess = workers > 1 and len(shard_specs) > 1

    store: Optional[CheckpointStore] = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.bind_campaign(config, shard_size)

    selections: List[Optional[Tuple[int, int]]] = [None] * len(shard_specs)
    if run_sweep and sweep_sample_size is None:
        # Unsampled sweep: the stride is 1 whatever the QUIC-target count, so
        # skip the discovery pass entirely (even skeleton counts cannot
        # affect the result).
        selections = [(0, 1)] * len(shard_specs)
    elif run_sweep:
        count_tasks = [
            ShardTask(
                index=shard.index,
                population_config=config,
                start=shard.start,
                stop=shard.stop,
                skeleton_cache_dir=skeleton_cache_dir,
            )
            for shard in shard_specs
        ]
        counts = [0] * len(shard_specs)
        if multiprocess:
            with ProcessPoolExecutor(max_workers=min(workers, len(count_tasks))) as pool:
                for index, count in pool.map(_count_quic_targets, count_tasks):
                    counts[index] = count
        else:
            for task in count_tasks:
                index, count = _count_quic_targets(task)
                counts[index] = count
        stride = sweep_sample_stride(sum(counts), sweep_sample_size)
        offset = 0
        for index, count in enumerate(counts):
            selections[index] = (offset, stride)
            offset += count

    tasks = [
        ShardTask(
            index=shard.index,
            population_config=config,
            start=shard.start,
            stop=shard.stop,
            analysis_initial_size=analysis_initial_size,
            analysis_compression=tuple(analysis_compression),
            run_sweep=run_sweep,
            sweep_local_selection=selections[shard.index],
            sweep_initial_sizes=tuple(sweep_initial_sizes),
            scan_backend=scan_backend,
            skeleton_cache_dir=skeleton_cache_dir,
        )
        for shard in shard_specs
    ]
    reducer = CampaignReducer(
        spec=spec, run_sweep=run_sweep, sweep_initial_sizes=sweep_initial_sizes
    )

    # Resume: fold every valid persisted summary first (invalid files are
    # quarantined by the store and their shards land back in the dispatch
    # set).  The reducer re-checks scenario fingerprints on every fold, and
    # finalize_streaming re-checks once more at the resume seam.
    resumed_indices: frozenset = frozenset()
    if resume and store is not None:
        resumed = store.load_valid(
            config, shard_size, [shard.index for shard in shard_specs]
        )
        for index in sorted(resumed):
            reducer.add(resumed[index])
        resumed_indices = frozenset(resumed)

    tasks_by_index = {task.index: task for task in tasks}
    to_run = sorted(set(tasks_by_index) - resumed_indices)

    def make_payload(index: int, attempt: int):
        return (tasks_by_index[index], spec, attempt, fault_plan)

    def on_result(index: int, summary: ShardSummary, attempt: int = 0) -> None:
        if store is not None:
            path = store.save(
                CheckpointKey.for_campaign(config, shard_size, index),
                summary,
                attempt=attempt,
            )
            if fault_plan is not None:
                fault_plan.apply_checkpoint_faults(index, path, attempt)
        reducer.add(summary)

    try:
        dispatch_with_retry(
            to_run,
            make_payload,
            _scan_and_summarize,
            workers if multiprocess else 1,
            retry_policy,
            on_result,
        )
    except ShardDispatchError as error:
        if store is not None:
            completed = sorted(set(tasks_by_index) - set(error.incomplete))
            store.write_incomplete_manifest(completed, error.incomplete)
        raise
    if store is not None:
        store.clear_incomplete_manifest()
    return reducer.reduced_scan()


def run_streaming_grid_scan(
    config: PopulationConfig,
    grid: "ScenarioGrid",
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    spec: Optional[ReductionSpec] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retry_policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    scan_backend: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    skeleton_cache_dir: Optional[str] = None,
) -> Dict[str, ReducedScanResults]:
    """Stream an N-scenario grid over one population at one-generation cost.

    The amortized counterpart of N :func:`run_streaming_scan` calls: every
    worker visit to a shard generates the baseline skeletons once, replays
    all requested scenario transforms against them and scans each
    (:func:`_scan_and_summarize_grid`), so the sweep costs ``1×generation +
    N×scan`` instead of ``N×(generation + scan)``.  Results fan into one
    :class:`CampaignReducer` per member scenario — each reducer still sees
    exactly one fingerprint, so the mixed-scenario rejection of single runs
    is unchanged — and the returned per-scenario
    :class:`ReducedScanResults` are byte-identical to independent runs.

    ``config`` is the scenario-free *base* campaign config; each member
    derives its own via :meth:`ScenarioSpec.population_config`, so members
    with ``population_overrides`` participate too (they form their own
    generation group inside the worker visit).

    Durability mirrors single-scenario runs but at ``(shard, scenario)``
    granularity: one ``checkpoint_dir`` holds the whole grid
    (:meth:`CheckpointStore.bind_grid` binds ``(seed, size, shard_size,
    grid fingerprint)``; checkpoint files stay content-addressed by member
    fingerprint), and ``resume`` dispatches each shard with only the member
    scenarios missing from the store.

    ``progress`` (optional) receives one human-readable line per reduced
    shard visit and per resume fold — the CLI surfaces it so long sweeps are
    not silent.

    The Initial-size sweep is not available through the grid path: sweep
    discovery is a per-campaign global pass, so sweeping members would cost
    the very duplication this runner removes.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if resume and checkpoint_dir is None:
        raise CheckpointError("resume requires a checkpoint directory")
    if config.scenario is not None:
        raise ValueError(
            "grid scans take a scenario-free base config; member scenarios "
            "derive their own configs from it"
        )
    from .columnar import resolve_scan_backend  # lazy: columnar imports us

    scan_backend = resolve_scan_backend(scan_backend)
    if skeleton_cache_dir is not None:
        # Fail fast in the parent on a mismatched cache directory; the base
        # config is already scenario-free here (checked above).
        from .skeleton_store import store_for

        store_for(skeleton_cache_dir).bind(config)
    spec = spec or ReductionSpec()
    scenarios = tuple(grid)
    member_configs = {
        scenario.name: scenario.population_config(base=config) for scenario in scenarios
    }
    shard_specs = plan_shards(config.size, shard_size)
    multiprocess = workers > 1 and len(shard_specs) > 1

    store: Optional[CheckpointStore] = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.bind_grid(config, shard_size, grid)

    reducers = {
        scenario.name: CampaignReducer(spec=spec, run_sweep=False)
        for scenario in scenarios
    }

    indices = [shard.index for shard in shard_specs]
    # Scenarios still to scan, per shard; resume drains (shard, scenario)
    # pairs out of this map so a task only carries its missing members.
    pending: Dict[int, List] = {index: list(scenarios) for index in indices}
    if resume and store is not None:
        for scenario in scenarios:
            resumed = store.load_valid(
                member_configs[scenario.name], shard_size, indices
            )
            for index in sorted(resumed):
                reducers[scenario.name].add(resumed[index])
                pending[index].remove(scenario)
        if progress is not None:
            folded = sum(len(scenarios) - len(missing) for missing in pending.values())
            progress(
                f"resumed {folded}/{len(indices) * len(scenarios)} "
                f"(shard, scenario) checkpoints"
            )

    tasks_by_index: Dict[int, ShardTask] = {}
    for shard in shard_specs:
        missing = pending[shard.index]
        if not missing:
            continue
        tasks_by_index[shard.index] = ShardTask(
            index=shard.index,
            population_config=config,
            start=shard.start,
            stop=shard.stop,
            scan_backend=scan_backend,
            grid_scenarios=tuple(missing),
            skeleton_cache_dir=skeleton_cache_dir,
        )
    to_run = sorted(tasks_by_index)
    total_pairs = sum(len(task.grid_scenarios) for task in tasks_by_index.values())
    reduced_pairs = 0

    def make_payload(index: int, attempt: int):
        return (tasks_by_index[index], spec, attempt, fault_plan)

    def on_result(index: int, summaries: Tuple[ShardSummary, ...], attempt: int = 0) -> None:
        nonlocal reduced_pairs
        members = tasks_by_index[index].grid_scenarios
        if len(summaries) != len(members):
            raise ValueError(
                f"grid worker returned {len(summaries)} summaries for "
                f"{len(members)} scenarios on shard {index}"
            )
        for scenario, summary in zip(members, summaries):
            if store is not None:
                path = store.save(
                    CheckpointKey.for_campaign(
                        member_configs[scenario.name], shard_size, index
                    ),
                    summary,
                    attempt=attempt,
                )
                if fault_plan is not None:
                    fault_plan.apply_checkpoint_faults(index, path, attempt)
            reducers[scenario.name].add(summary)
        reduced_pairs += len(members)
        if progress is not None:
            progress(
                f"shard {index}: {len(members)} scenario(s) reduced "
                f"({reduced_pairs}/{total_pairs} pairs)"
            )

    try:
        dispatch_with_retry(
            to_run,
            make_payload,
            _scan_and_summarize_grid,
            workers if multiprocess else 1,
            retry_policy,
            on_result,
        )
    except ShardDispatchError as error:
        if store is not None:
            completed = sorted(set(indices) - set(error.incomplete))
            store.write_incomplete_manifest(completed, error.incomplete)
        raise
    if store is not None:
        store.clear_incomplete_manifest()
    return {scenario.name: reducers[scenario.name].reduced_scan() for scenario in scenarios}
