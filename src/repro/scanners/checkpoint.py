"""Durable shard checkpoints: content-addressed persistence of ``ShardSummary``.

A streamed campaign is exactly a set of independent, order-insensitively
mergeable :class:`~repro.scanners.streaming.ShardSummary` objects — tiny,
picklable and scenario-fingerprinted.  This module persists each one to disk
as it is reduced, so an interrupted 1M-domain run resumes in seconds instead
of restarting from zero:

* **Content-addressed filenames.**  A checkpoint's name embeds a digest of
  ``(seed, population size, shard size, scenario fingerprint, shard index)``
  (:class:`CheckpointKey`), so a directory can never silently mix summaries
  from different campaigns: a resume only ever loads files whose name matches
  the campaign it is resuming.
* **Atomic, self-verifying files.**  Every checkpoint is written tmp-file +
  ``os.replace`` (:mod:`repro.core.ioutil`) with a header carrying the format
  version, payload length and payload SHA-256.  A torn, truncated, bit-rotted
  or stale-format file fails verification on load, is moved into a
  ``quarantine/`` subdirectory (never deleted — it is evidence) and its shard
  is simply re-scanned; a checkpoint is an optimisation, never a source of
  truth the pipeline must trust.
* **Campaign metadata.**  ``campaign.json`` records which campaign a
  directory belongs to; binding a different ``(seed, size, shard size,
  scenario)`` to the same directory is rejected with an actionable error
  instead of quietly interleaving incompatible artifacts.
* **Incomplete manifests.**  When a run gives up (shard retries exhausted) it
  writes ``incomplete.json`` naming exactly which shard indices are missing —
  a failed campaign is loudly partial, never silently so.  Byte-identity of
  finished reports stays absolute: the reducer and
  :meth:`~repro.scanners.orchestrator.MeasurementCampaign.finalize_streaming`
  re-check scenario fingerprints at the resume seam.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from ..core.ioutil import (
    SelfVerifyingFormatError,
    atomic_write_bytes,
    atomic_write_text,
    decode_self_verifying,
    encode_self_verifying,
    quarantine_file,
)
from ..scenarios import BASELINE
from ..webpki.population import PopulationConfig

#: Checkpoint file format tag; bump on any incompatible layout change so old
#: files are quarantined (and regenerated) instead of misparsed.
CHECKPOINT_FORMAT = b"repro-ckpt/1"

#: Name of the per-directory campaign metadata file.
CAMPAIGN_METADATA_FILENAME = "campaign.json"

#: Name of the manifest written when a run ends with missing shards.
INCOMPLETE_MANIFEST_FILENAME = "incomplete.json"

#: Subdirectory failed-verification checkpoints are moved into.
QUARANTINE_DIRNAME = "quarantine"


class CheckpointError(RuntimeError):
    """A checkpoint directory cannot be used for this campaign."""


def scenario_fingerprint_of(config: PopulationConfig) -> str:
    """The scenario fingerprint a campaign over ``config`` stamps into shards."""
    return (config.scenario or BASELINE).fingerprint()


@dataclass(frozen=True)
class CheckpointKey:
    """The content address of one shard's checkpoint."""

    seed: int
    size: int
    shard_size: int
    scenario_fingerprint: str
    index: int

    def digest(self) -> str:
        material = (
            f"{self.seed}|{self.size}|{self.shard_size}|"
            f"{self.scenario_fingerprint}|{self.index}"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def filename(self) -> str:
        return f"shard-{self.index:06d}-{self.digest()}.ckpt"

    @classmethod
    def for_campaign(
        cls, config: PopulationConfig, shard_size: int, index: int
    ) -> "CheckpointKey":
        return cls(
            seed=config.seed,
            size=config.size,
            shard_size=shard_size,
            scenario_fingerprint=scenario_fingerprint_of(config),
            index=index,
        )


def encode_checkpoint(summary: object) -> bytes:
    """Serialise a shard summary with the self-verifying header."""
    payload = pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL)
    return encode_self_verifying(CHECKPOINT_FORMAT, payload)


def decode_checkpoint(data: bytes) -> object:
    """Verify and deserialise checkpoint bytes.

    Raises :class:`CheckpointError` on any defect — missing or malformed
    header, unknown format version, length mismatch (truncation) or digest
    mismatch (corruption).  Callers quarantine on failure.
    """
    try:
        payload = decode_self_verifying(CHECKPOINT_FORMAT, data, label="checkpoint")
    except SelfVerifyingFormatError as error:
        raise CheckpointError(str(error)) from error
    try:
        return pickle.loads(payload)
    except Exception as error:  # pickle raises a zoo of types on bad input
        raise CheckpointError(f"checkpoint payload does not unpickle: {error}") from error


class CheckpointStore:
    """One directory of shard checkpoints for one campaign."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        # Highest retry attempt that has written each filename, for the
        # last-write-safe guard in :meth:`save`.
        self._saved_attempts: Dict[str, int] = {}

    # -- paths ----------------------------------------------------------------

    def path_for(self, key: CheckpointKey) -> str:
        return os.path.join(self.directory, key.filename())

    @property
    def quarantine_directory(self) -> str:
        return os.path.join(self.directory, QUARANTINE_DIRNAME)

    @property
    def metadata_path(self) -> str:
        return os.path.join(self.directory, CAMPAIGN_METADATA_FILENAME)

    @property
    def incomplete_manifest_path(self) -> str:
        return os.path.join(self.directory, INCOMPLETE_MANIFEST_FILENAME)

    # -- campaign binding ------------------------------------------------------

    def _campaign_metadata(self, config: PopulationConfig, shard_size: int) -> Dict:
        return {
            "format": CHECKPOINT_FORMAT.decode("ascii"),
            "seed": config.seed,
            "size": config.size,
            "shard_size": shard_size,
            "scenario_fingerprint": scenario_fingerprint_of(config),
            "scenario": (config.scenario or BASELINE).name,
        }

    def bind_campaign(self, config: PopulationConfig, shard_size: int) -> None:
        """Claim this directory for one campaign (or verify an existing claim).

        A directory whose ``campaign.json`` names a different ``(seed, size,
        shard size, scenario)`` is rejected: resuming — or checkpointing into
        — it would interleave summaries that can never merge.
        """
        self._verify_or_claim(self._campaign_metadata(config, shard_size))

    def bind_grid(self, config: PopulationConfig, shard_size: int, grid) -> None:
        """Claim this directory for one scenario-grid campaign (or verify it).

        The binding is relaxed relative to :meth:`bind_campaign`: it pins
        ``(seed, size, shard_size, grid fingerprint)`` — what every member of
        the sweep shares — while the member scenarios themselves stay
        content-addressed per checkpoint file.  The grid fingerprint is
        order- and name-insensitive (:meth:`ScenarioGrid.fingerprint`), so a
        reordered or renamed sweep over the same member set resumes cleanly;
        the grid name and member list are written for humans but not matched.
        """
        expected = {
            "format": CHECKPOINT_FORMAT.decode("ascii"),
            "seed": config.seed,
            "size": config.size,
            "shard_size": shard_size,
            "grid_fingerprint": grid.fingerprint(),
        }
        self._verify_or_claim(
            expected,
            extra={"grid": grid.name, "scenarios": sorted(grid.member_names)},
        )

    def _verify_or_claim(self, expected: Dict, extra: Optional[Dict] = None) -> None:
        if os.path.exists(self.metadata_path):
            try:
                with open(self.metadata_path, "r", encoding="utf-8") as handle:
                    found = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise CheckpointError(
                    f"checkpoint directory {self.directory!r} has an unreadable "
                    f"{CAMPAIGN_METADATA_FILENAME} ({error}); use a fresh directory"
                ) from error
            mismatched = sorted(
                name
                for name, value in expected.items()
                if found.get(name) != value
            )
            if mismatched:
                described = ", ".join(
                    f"{name}: {found.get(name)!r} != {expected[name]!r}"
                    for name in mismatched
                )
                raise CheckpointError(
                    f"checkpoint directory {self.directory!r} belongs to a "
                    f"different campaign ({described}); point --checkpoint-dir at "
                    "a fresh directory or rerun with the original parameters"
                )
        else:
            payload = dict(expected)
            payload.update(extra or {})
            atomic_write_text(
                self.metadata_path,
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
            )

    # -- save/load -------------------------------------------------------------

    def save(self, key: CheckpointKey, summary: object, attempt: int = 0) -> str:
        """Atomically persist one shard summary; returns the checkpoint path.

        ``attempt`` is the retry attempt that produced ``summary``.  A save
        from an attempt older than one already persisted for the same file is
        skipped (the existing path is returned): if a timed-out attempt's
        result surfaces after its retry already checkpointed, the stale bytes
        can never clobber the newer ones.  Equal or newer attempts overwrite
        as before — shard summaries are deterministic per attempt, so the
        guard only suppresses genuinely out-of-order writes.
        """
        path = self.path_for(key)
        persisted = self._saved_attempts.get(path)
        if persisted is not None and attempt < persisted:
            return path
        atomic_write_bytes(path, encode_checkpoint(summary))
        self._saved_attempts[path] = attempt
        return path

    def quarantine(self, path: str) -> str:
        """Move a failed-verification file into ``quarantine/`` (kept, not trusted)."""
        return quarantine_file(path, self.quarantine_directory)

    def load(self, key: CheckpointKey) -> Optional[object]:
        """Load one shard's checkpoint, or ``None`` if absent or invalid.

        Any defect — bad header, truncation, corruption, stale format, or a
        summary whose shard index / scenario fingerprint does not match the
        key (a renamed or foreign file) — quarantines the file and returns
        ``None``, so the caller re-scans the shard.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        try:
            summary = decode_checkpoint(data)
        except CheckpointError:
            self.quarantine(path)
            return None
        if (
            getattr(summary, "index", None) != key.index
            or getattr(summary, "scenario_fingerprint", None)
            != key.scenario_fingerprint
        ):
            self.quarantine(path)
            return None
        return summary

    def load_valid(
        self,
        config: PopulationConfig,
        shard_size: int,
        shard_indices: Iterable[int],
    ) -> Dict[int, object]:
        """All valid checkpoints of this campaign among ``shard_indices``."""
        loaded: Dict[int, object] = {}
        for index in shard_indices:
            summary = self.load(CheckpointKey.for_campaign(config, shard_size, index))
            if summary is not None:
                loaded[index] = summary
        return loaded

    # -- completion manifests --------------------------------------------------

    def write_incomplete_manifest(
        self, completed: Sequence[int], incomplete: Sequence[int]
    ) -> str:
        """Record exactly which shards a failed run is missing."""
        payload = {
            "completed": sorted(completed),
            "incomplete": sorted(incomplete),
        }
        atomic_write_text(
            self.incomplete_manifest_path,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        return self.incomplete_manifest_path

    def clear_incomplete_manifest(self) -> None:
        """Drop a stale failure manifest once a run completes every shard."""
        try:
            os.unlink(self.incomplete_manifest_path)
        except FileNotFoundError:
            pass
