"""Command-line interface.

``python -m repro`` exposes the things a user most often wants without
writing code:

* ``campaign`` — run the full measurement campaign (optionally under a
  what-if ``--scenario``) and print (or write) the evaluation report,
* ``compare`` — run several scenarios and print a side-by-side delta table,
* ``scenarios`` — list the built-in what-if scenarios,
* ``skeletons`` — pre-warm, inspect or garbage-collect the persistent
  skeleton-shard cache used by ``--skeleton-cache``,
* ``predict`` — predict the handshake outcome for a CA chain profile and a
  client Initial size,
* ``profiles`` — list the built-in CA chain profiles and server behaviours.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.report import build_report
from .core import predict_handshake, required_initial_size
from .quic.profiles import BUILTIN_PROFILES
from .scanners import MeasurementCampaign
from .scenarios import BUILTIN_SCENARIOS, ScenarioError, load_scenario
from .tls.cert_compression import CertificateCompressionAlgorithm
from .webpki import PopulationConfig, generate_population
from .x509.ca import default_hierarchy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'On the Interplay between TLS Certificates and QUIC Performance'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    campaign = subparsers.add_parser("campaign", help="run the measurement campaign and print the report")
    campaign.add_argument("--size", type=int, default=3000, help="population size (default: 3000)")
    campaign.add_argument("--seed", type=int, default=2022, help="population seed (default: 2022)")
    campaign.add_argument("--sweep", action="store_true", help="also run the Figure 3 Initial-size sweep")
    campaign.add_argument("--output", type=str, default=None, help="write the report to this file")
    campaign.add_argument(
        "--export-dir", type=str, default=None,
        help="also export the report and per-figure CSV data series to this directory",
    )
    campaign.add_argument(
        "--workers", type=int, default=None,
        help="scan shards in this many worker processes (default: single-process serial)",
    )
    campaign.add_argument(
        "--shard-size", type=int, default=None,
        help="deployments per scan shard (default: 2048; implies the sharded runner)",
    )
    campaign.add_argument(
        "--stream", action="store_true",
        help="streaming reduction pipeline: generate, scan and reduce shard by "
             "shard so parent memory stays bounded (1M-domain campaigns); "
             "reports are byte-identical to the eager path",
    )
    campaign.add_argument(
        "--checkpoint-dir", type=str, default=None, metavar="DIR",
        help="persist each finished shard's summary to this directory "
             "(atomic, content-addressed, self-verifying); requires --stream",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="load valid checkpoints from --checkpoint-dir and dispatch only "
             "the missing shards; corrupt checkpoints are quarantined and "
             "re-scanned, and the finished report is byte-identical to an "
             "uninterrupted run",
    )
    campaign.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="abandon and re-dispatch a shard that runs longer than this "
             "(multi-worker runs only)",
    )
    campaign.add_argument(
        "--max-shard-retries", type=int, default=None, metavar="N",
        help="dispatch each shard at most N times before failing the run "
             "with a manifest of incomplete shards (default: 3)",
    )
    campaign.add_argument(
        "--fault-plan", type=str, default=None, metavar="FILE.json",
        help="arm a deterministic fault-injection plan (testing/CI; see "
             "repro.scanners.faults)",
    )
    campaign.add_argument(
        "--timings", action="store_true",
        help="print per-phase wall clock (generation / campaign / report) to "
             "stderr; see scripts/profile_campaign.py --phases for the full "
             "per-stage breakdown",
    )
    campaign.add_argument(
        "--scenario", type=str, default=None, metavar="NAME|FILE.json",
        help="run the campaign under a what-if scenario: a built-in name "
             "(see 'repro scenarios') or a scenario JSON file",
    )
    campaign.add_argument(
        "--scenario-grid", type=str, default=None, metavar="GRID|FILE.json",
        help="sweep a whole scenario grid in one shared-generation campaign "
             "(cross-scenario shard reuse): a built-in grid name, a grid JSON "
             "file, or a comma-separated scenario list; emits one report per "
             "member (with --output DIR, one <member>.report.txt each)",
    )
    campaign.add_argument(
        "--scan-backend", type=str, default=None, metavar="{object,columnar}",
        help="shard-scan implementation: 'object' (reference pipeline over "
             "real fabric objects) or 'columnar' (fused whole-shard "
             "arithmetic, byte-identical reports, ~2x faster scan+reduce); "
             "default: the REPRO_SCAN_BACKEND environment variable, else "
             "'object'",
    )
    campaign.add_argument(
        "--skeleton-cache", type=str, default=None, metavar="DIR",
        help="persist generation's baseline skeleton shards in this directory "
             "and read them back on later runs (warm-start: generation "
             "becomes a verified disk read, reports stay byte-identical); "
             "composes with --stream, --checkpoint-dir/--resume, "
             "--scenario-grid and both scan backends; pre-warm or inspect "
             "with 'repro skeletons'",
    )

    compare = subparsers.add_parser(
        "compare",
        help="run several scenarios over the same population and print a "
             "side-by-side delta table",
    )
    compare.add_argument(
        "--scenarios", type=str, default=None, metavar="NAME[,NAME...]",
        help="comma-separated scenario names or JSON files "
             "(default: every built-in scenario, baseline first)",
    )
    compare.add_argument(
        "--grid", type=str, default=None, metavar="GRID|FILE.json",
        help="sweep a scenario grid instead and print the adoption-curve "
             "table: a built-in grid name (e.g. 'compression-adoption'), a "
             "grid JSON file, or a comma-separated scenario list",
    )
    compare.add_argument("--size", type=int, default=1200, help="population size (default: 1200)")
    compare.add_argument("--seed", type=int, default=2022, help="population seed (default: 2022)")
    compare.add_argument(
        "--workers", type=int, default=None,
        help="scan shards in this many worker processes",
    )
    compare.add_argument(
        "--shard-size", type=int, default=None,
        help="deployments per scan shard (default: 2048)",
    )
    compare.add_argument(
        "--scan-backend", type=str, default=None, metavar="{object,columnar}",
        help="shard-scan implementation (see 'repro campaign --help')",
    )
    compare.add_argument(
        "--progress", action="store_true",
        help="print per-shard progress lines to stderr while the sweep runs",
    )
    compare.add_argument(
        "--skeleton-cache", type=str, default=None, metavar="DIR",
        help="read/write the persistent skeleton-shard cache in DIR "
             "(see 'repro campaign --help')",
    )

    scenarios = subparsers.add_parser("scenarios", help="list the built-in what-if scenarios")
    scenarios.add_argument(
        "--names", action="store_true",
        help="print bare scenario names only (one per line, for scripting)",
    )
    scenarios.add_argument(
        "--grid", type=str, default=None, metavar="GRID|FILE.json",
        help="dry-run a scenario grid instead: expand it and list every "
             "member with its fingerprint (nothing is generated or scanned)",
    )

    skeletons = subparsers.add_parser(
        "skeletons",
        help="manage the persistent skeleton-shard cache (pre-warm, inspect, gc)",
    )
    skeleton_actions = skeletons.add_subparsers(dest="action", required=True)
    skel_warm = skeleton_actions.add_parser(
        "warm",
        help="pre-generate every baseline shard of a population into the cache "
             "so later campaigns warm-start",
    )
    skel_warm.add_argument("directory", help="cache directory (created if missing)")
    skel_warm.add_argument("--size", type=int, default=3000, help="population size (default: 3000)")
    skel_warm.add_argument("--seed", type=int, default=2022, help="population seed (default: 2022)")
    skel_warm.add_argument(
        "--shards", type=str, default=None, metavar="I[,J...]",
        help="warm only these generation-shard indices (default: all)",
    )
    skel_stats = skeleton_actions.add_parser(
        "stats", help="show entry count, bytes, quarantine count and binding"
    )
    skel_stats.add_argument("directory", help="cache directory")
    skel_gc = skeleton_actions.add_parser(
        "gc",
        help="empty the quarantine; with --size/--seed also drop entries that "
             "are not content addresses of that population",
    )
    skel_gc.add_argument("directory", help="cache directory")
    skel_gc.add_argument(
        "--size", type=int, default=None,
        help="population size whose entries to keep (with --seed)",
    )
    skel_gc.add_argument(
        "--seed", type=int, default=None,
        help="population seed whose entries to keep (with --size)",
    )

    predict = subparsers.add_parser("predict", help="predict the handshake class for a chain profile")
    predict.add_argument("--chain", required=True, help="CA chain profile label (see 'profiles')")
    predict.add_argument("--domain", default="example.org", help="domain to issue the leaf for")
    predict.add_argument("--initial-size", type=int, default=1357, help="client Initial size in bytes")
    predict.add_argument("--compression", choices=["none", "zlib", "brotli", "zstd"], default="none")

    subparsers.add_parser("profiles", help="list CA chain profiles and server behaviour profiles")
    return parser


def _run_campaign(args: argparse.Namespace) -> int:
    import time

    from .scanners.checkpoint import CheckpointError
    from .scanners.faults import FaultPlanError, load_fault_plan
    from .scanners.sharding import RetryPolicy, ShardDispatchError

    if args.scenario_grid and args.scenario:
        print(
            "error: --scenario-grid and --scenario are mutually exclusive; "
            "put the scenario in the grid",
            file=sys.stderr,
        )
        return 2
    if args.scenario_grid and args.sweep:
        print(
            "error: --sweep is per-campaign discovery and cannot ride a grid "
            "sweep; run it against a single scenario",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume needs --checkpoint-dir DIR to resume from", file=sys.stderr)
        return 2
    if args.checkpoint_dir and not args.stream and not args.scenario_grid:
        print(
            "error: checkpointing rides the streaming pipeline; add --stream",
            file=sys.stderr,
        )
        return 2
    try:
        fault_plan = load_fault_plan(args.fault_plan)
    except FaultPlanError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    retry_policy = None
    if args.shard_timeout is not None or args.max_shard_retries is not None:
        try:
            retry_policy = RetryPolicy(
                max_attempts=(
                    args.max_shard_retries if args.max_shard_retries is not None else 3
                ),
                shard_timeout=args.shard_timeout,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    from .scanners.columnar import resolve_scan_backend

    try:
        # Validates the explicit flag and (when no flag is given) the
        # REPRO_SCAN_BACKEND environment knob, before any generation work.
        resolve_scan_backend(args.scan_backend)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    config = PopulationConfig(size=args.size, seed=args.seed)
    if args.scenario_grid:
        return _run_grid_campaign(args, config, retry_policy, fault_plan)
    if args.scenario:
        try:
            scenario = load_scenario(args.scenario)
            config = scenario.population_config(base=config)
        except ScenarioError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    from .scanners.skeleton_store import SkeletonStoreError

    t0 = time.perf_counter()
    try:
        campaign = _build_campaign(args, config, retry_policy, fault_plan)
    except SkeletonStoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    t1 = time.perf_counter()
    try:
        results = campaign.run()
    except (CheckpointError, SkeletonStoreError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ShardDispatchError as error:
        suffix = (
            f"; manifest of incomplete shards: "
            f"{args.checkpoint_dir}/incomplete.json"
            if args.checkpoint_dir
            else ""
        )
        print(f"error: {error}{suffix}", file=sys.stderr)
        return 1
    t2 = time.perf_counter()
    report = build_report(results, include_sweep=args.sweep)
    t3 = time.perf_counter()
    if args.timings:
        print(f"population generation: {t1 - t0:8.2f} s", file=sys.stderr)
        print(f"campaign:              {t2 - t1:8.2f} s", file=sys.stderr)
        print(f"report:                {t3 - t2:8.2f} s", file=sys.stderr)
    if args.output:
        from .core.ioutil import atomic_write_text

        atomic_write_text(args.output, report.text + "\n")
        print(f"report written to {args.output}")
    else:
        print(report.text)
    if args.export_dir:
        from .analysis.export import export_evaluation

        exported = export_evaluation(results, args.export_dir, report)
        print(f"{exported.file_count} files exported to {exported.directory}")
    return 0


def _build_campaign(args, config, retry_policy, fault_plan) -> MeasurementCampaign:
    if args.stream:
        # Streaming regenerates inside the workers: generation time is part of
        # the campaign phase (scripts/profile_campaign.py --phases splits it).
        return MeasurementCampaign(
            population_config=config,
            run_sweep=args.sweep,
            workers=args.workers,
            shard_size=args.shard_size,
            stream=True,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            scan_backend=args.scan_backend,
            skeleton_cache_dir=args.skeleton_cache,
        )
    # Only the explicit flag switches the eager pipeline's backend; the
    # environment knob applies to streamed runs (resolved inside
    # run_streaming_scan), so it cannot silently change eager internals.
    # Eager generation routes through the campaign when a skeleton cache is
    # requested, so --skeleton-cache warm-starts it too.
    return MeasurementCampaign(
        population=(None if args.skeleton_cache else generate_population(config)),
        population_config=config,
        run_sweep=args.sweep,
        workers=args.workers,
        shard_size=args.shard_size,
        retry_policy=retry_policy,
        scan_backend=args.scan_backend,
        skeleton_cache_dir=args.skeleton_cache,
    )


def _run_grid_campaign(args, config, retry_policy, fault_plan) -> int:
    """The ``campaign --scenario-grid`` branch: one generation, N reports.

    The grid path is always streamed (workers regenerate their shards), so
    ``--stream`` is implied; checkpoints land at ``(shard, scenario)``
    granularity.  ``--output`` names a directory holding one
    ``<member>.report.txt`` per grid member; ``--export-dir`` exports each
    member's full CSV bundle into ``<dir>/<member>/``.
    """
    import os
    import time

    from .scanners.checkpoint import CheckpointError
    from .scanners.orchestrator import run_grid_campaign
    from .scanners.sharding import ShardDispatchError
    from .scanners.skeleton_store import SkeletonStoreError
    from .scenarios import load_grid

    try:
        grid = load_grid(args.scenario_grid)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def progress(line: str) -> None:
        print(line, file=sys.stderr)

    t0 = time.perf_counter()
    try:
        results = run_grid_campaign(
            grid,
            config=config,
            workers=args.workers,
            shard_size=args.shard_size,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            scan_backend=args.scan_backend,
            progress=progress,
            skeleton_cache_dir=args.skeleton_cache,
        )
    except (CheckpointError, SkeletonStoreError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ShardDispatchError as error:
        suffix = (
            f"; manifest of incomplete shards: "
            f"{args.checkpoint_dir}/incomplete.json"
            if args.checkpoint_dir
            else ""
        )
        print(f"error: {error}{suffix}", file=sys.stderr)
        return 1
    t1 = time.perf_counter()
    reports = {name: build_report(results[name]) for name in grid.member_names}
    t2 = time.perf_counter()
    if args.timings:
        print(f"grid campaign ({len(grid)} scenarios): {t1 - t0:8.2f} s", file=sys.stderr)
        print(f"reports:               {t2 - t1:8.2f} s", file=sys.stderr)
    if args.output:
        from .core.ioutil import atomic_write_text

        os.makedirs(args.output, exist_ok=True)
        for name, report in reports.items():
            path = os.path.join(args.output, f"{name}.report.txt")
            atomic_write_text(path, report.text + "\n")
        print(f"{len(reports)} reports written to {args.output}")
    else:
        for index, (name, report) in enumerate(reports.items()):
            if index:
                print()
            print(f"=== scenario: {name} ===")
            print(report.text)
    if args.export_dir:
        from .analysis.export import export_evaluation

        total = 0
        for name, report in reports.items():
            exported = export_evaluation(
                results[name], os.path.join(args.export_dir, name), report
            )
            total += exported.file_count
        print(f"{total} files exported to {args.export_dir}")
    return 0


def _run_predict(args: argparse.Namespace) -> int:
    hierarchy = default_hierarchy()
    if args.chain not in hierarchy.profiles:
        print(f"unknown chain profile: {args.chain!r} (see 'repro profiles')", file=sys.stderr)
        return 2
    chain = hierarchy.profiles[args.chain].issue(args.domain)
    compression = None
    if args.compression != "none":
        compression = {
            "zlib": CertificateCompressionAlgorithm.ZLIB,
            "brotli": CertificateCompressionAlgorithm.BROTLI,
            "zstd": CertificateCompressionAlgorithm.ZSTD,
        }[args.compression]
    prediction = predict_handshake(chain, args.initial_size, compression=compression)
    needed = required_initial_size(chain, compression)
    print(f"chain profile:       {args.chain}")
    print(f"delivered chain:     {chain.total_size} bytes over {chain.depth} certificates")
    print(f"TLS first flight:    {prediction.tls_flight_size} bytes")
    print(f"estimated wire size: {prediction.estimated_first_flight_bytes} bytes")
    print(f"amplification budget:{prediction.amplification_budget} bytes (3 x {args.initial_size})")
    print(f"predicted class:     {prediction.predicted_class.value}")
    if needed is None:
        print("smallest 1-RTT Initial: none (the flight cannot fit below the MTU-limited budget)")
    else:
        print(f"smallest 1-RTT Initial: {needed} bytes")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from .scanners.columnar import resolve_scan_backend
    from .scenarios import compare_grid, compare_scenarios

    if args.grid and args.scenarios:
        print(
            "error: --grid and --scenarios are mutually exclusive; a "
            "comma-separated list works as a --grid spec too",
            file=sys.stderr,
        )
        return 2
    try:
        resolve_scan_backend(args.scan_backend)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    progress = None
    if args.progress:
        def progress(line: str) -> None:
            print(line, file=sys.stderr)

    from .scanners.skeleton_store import SkeletonStoreError

    if args.grid:
        try:
            curve = compare_grid(
                args.grid,
                size=args.size,
                seed=args.seed,
                workers=args.workers,
                shard_size=args.shard_size,
                scan_backend=args.scan_backend,
                progress=progress,
                skeleton_cache_dir=args.skeleton_cache,
            )
        except (ScenarioError, SkeletonStoreError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(curve.render_text())
        return 0

    names = (
        [name.strip() for name in args.scenarios.split(",") if name.strip()]
        if args.scenarios
        else list(BUILTIN_SCENARIOS)
    )
    try:
        comparison = compare_scenarios(
            names,
            size=args.size,
            seed=args.seed,
            workers=args.workers,
            shard_size=args.shard_size,
            progress=progress,
            skeleton_cache_dir=args.skeleton_cache,
        )
    except (ScenarioError, SkeletonStoreError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(comparison.render_text())
    return 0


def _run_skeletons(args: argparse.Namespace) -> int:
    from .scanners.skeleton_store import SkeletonStore, SkeletonStoreError, warm

    store = SkeletonStore(args.directory)
    if args.action == "warm":
        config = PopulationConfig(size=args.size, seed=args.seed)
        indices = None
        if args.shards:
            try:
                indices = [int(part) for part in args.shards.split(",") if part.strip()]
            except ValueError:
                print(f"error: --shards must be integers: {args.shards!r}", file=sys.stderr)
                return 2
        try:
            hits, misses = warm(store, config, shard_indices=indices)
        except SkeletonStoreError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"warmed {hits + misses} shard(s) for size={args.size} seed={args.seed}: "
            f"{misses} generated, {hits} already cached"
        )
        return 0
    if args.action == "stats":
        stats = store.stats()
        metadata = stats["metadata"] or {}
        print(f"directory:   {stats['directory']}")
        print(f"entries:     {stats['entries']}")
        print(f"bytes:       {stats['bytes']}")
        print(f"quarantined: {stats['quarantined']}")
        if metadata:
            print(
                "bound to:    seed={seed} size={size} "
                "generation_shard_size={generation_shard_size} ({format})".format(**metadata)
            )
        else:
            print("bound to:    (unbound — no skeletons.json yet)")
        return 0
    # gc
    if (args.size is None) != (args.seed is None):
        print("error: gc needs --size and --seed together (or neither)", file=sys.stderr)
        return 2
    config = (
        PopulationConfig(size=args.size, seed=args.seed) if args.size is not None else None
    )
    removed = store.gc(config)
    print(
        f"removed {removed['stale']} stale entr{'y' if removed['stale'] == 1 else 'ies'}, "
        f"{removed['quarantined']} quarantined file(s)"
    )
    return 0


def _run_scenarios(args: argparse.Namespace) -> int:
    if args.grid:
        from .scenarios import load_grid

        try:
            grid = load_grid(args.grid)
        except ScenarioError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"Scenario grid '{grid.name}' — {len(grid)} members "
              f"(fingerprint {grid.fingerprint()[:16]}):")
        if grid.description:
            print(f"  {grid.description}")
        print()
        for spec in grid:
            print(f"  {spec.name:<40s} {spec.fingerprint()[:16]}")
        return 0
    if args.names:
        for name in BUILTIN_SCENARIOS:
            print(name)
        return 0
    print("Built-in what-if scenarios (run with 'repro campaign --scenario NAME',")
    print("diff several with 'repro compare'; a JSON file in the ScenarioSpec")
    print("shape works anywhere a name does):")
    print()
    for name, spec in BUILTIN_SCENARIOS.items():
        print(f"  {name:<24s} {spec.description}")
    return 0


def _run_profiles(_: argparse.Namespace) -> int:
    hierarchy = default_hierarchy()
    print("CA chain profiles:")
    for label, profile in sorted(hierarchy.profiles.items()):
        print(f"  {label:<40s} parent chain {profile.parent_chain_size:>5d} B, "
              f"leaf {profile.leaf_key_algorithm.label}")
    print()
    print("Server behaviour profiles:")
    for profile in BUILTIN_PROFILES.values():
        print(f"  {profile.describe()}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "campaign":
        return _run_campaign(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "scenarios":
        return _run_scenarios(args)
    if args.command == "skeletons":
        return _run_skeletons(args)
    if args.command == "predict":
        return _run_predict(args)
    if args.command == "profiles":
        return _run_profiles(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
