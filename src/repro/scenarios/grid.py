"""Scenario grids: ordered scenario sets that sweep in one shared campaign.

A :class:`ScenarioGrid` names an ordered collection of :class:`ScenarioSpec`s
that are meant to run over the *same* ``(seed, size)`` population — the shape
of every counterfactual sweep the paper gestures at ("how much RFC 8879
adoption until median amplification drops below 3×?").  Because scenarios are
pure post-RNG skeleton transforms, the streaming runner can materialise each
shard's baseline skeletons once and replay every member transform against
them (:func:`repro.scanners.streaming.run_streaming_grid_scan`): an N-member
grid costs one generation plus N scans instead of N of each.

Grids are built three ways, all JSON-round-trippable:

* an explicit scenario list (built-in names, scenario files, or inline specs);
* an *axis product*: scalar knob axes expanded over a base scenario, e.g.
  ``{"axes": {"compression_adoption": [0.0, 0.5, 1.0],
  "trim_chain_depth": [null, 2]}}`` → 6 scenarios;
* a built-in grid name (:data:`BUILTIN_GRIDS`) — ``compression-adoption`` is
  the canonical 0→100%-in-10%-steps adoption curve, ``what-ifs`` bundles
  every built-in scenario.

:meth:`ScenarioGrid.fingerprint` hashes the *set* of member fingerprints
(order-insensitive: reordering a sweep does not invalidate its checkpoints).
``campaign.json`` in a grid checkpoint directory binds ``(seed, size,
shard_size, grid_fingerprint)``, and per-shard checkpoint files stay addressed
by their member scenario's own fingerprint — so one checkpoint directory
holds the whole grid and a resume dispatches only the missing
``(shard, scenario)`` pairs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..tls.cert_compression import CertificateCompressionAlgorithm
from .builtin import BUILTIN_SCENARIOS, load_scenario
from .spec import ScenarioError, ScenarioSpec

#: Scenario knobs an axis may sweep: everything a spec serialises except its
#: identity fields.  Values pass through :meth:`ScenarioSpec.from_dict`, so
#: axis entries use the JSON shapes (labels for enums, objects for mappings).
AXIS_FIELDS = (
    "population",
    "leaf_key_algorithm",
    "trim_chain_depth",
    "universal_compression",
    "client_compression",
    "profile_overrides",
    "analysis_initial_size",
    "compression_adoption",
)


def _axis_value_label(value: object) -> str:
    """Deterministic short label for one axis value, used in member names."""
    if value is None:
        return "off"
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (list, tuple)):
        return "+".join(str(item) for item in value) or "none"
    if isinstance(value, dict):
        return "+".join(f"{k}-{v}" for k, v in sorted(value.items())) or "none"
    return str(value)


@dataclass(frozen=True)
class ScenarioGrid:
    """An ordered, uniquely-named scenario set swept over one population."""

    name: str
    description: str = ""
    scenarios: Tuple[ScenarioSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError("a scenario grid needs a non-empty name")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ScenarioError(f"scenario grid {self.name!r} has no scenarios")
        for scenario in self.scenarios:
            if not isinstance(scenario, ScenarioSpec):
                raise ScenarioError(
                    f"scenario grid {self.name!r}: members must be ScenarioSpec "
                    f"values (got {scenario!r})"
                )
        names = [scenario.name for scenario in self.scenarios]
        if len(names) != len(set(names)):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ScenarioError(
                f"scenario grid {self.name!r}: duplicate member name(s): "
                f"{', '.join(duplicates)}"
            )
        fingerprints = [scenario.fingerprint() for scenario in self.scenarios]
        if len(fingerprints) != len(set(fingerprints)):
            raise ScenarioError(
                f"scenario grid {self.name!r}: two members share a fingerprint "
                f"(identical knob sets under different names are still one "
                f"campaign — drop the duplicate)"
            )

    # -- identity --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    @property
    def member_names(self) -> Tuple[str, ...]:
        return tuple(scenario.name for scenario in self.scenarios)

    def fingerprint(self) -> str:
        """SHA-256 over the sorted member fingerprints.

        Order-insensitive and name-insensitive at the grid level: the campaign
        a grid denotes is exactly the set of member scenario campaigns, so two
        grids over the same members bind the same checkpoint directory even if
        the sweep was reordered or renamed between runs.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            payload = json.dumps(
                {
                    "format": "scenario-grid/1",
                    "scenarios": sorted(s.fingerprint() for s in self.scenarios),
                },
                sort_keys=True,
            ).encode("utf-8")
            cached = hashlib.sha256(payload).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The explicit (axis-expanded) JSON form; round-trips via from_dict."""
        return {
            "name": self.name,
            "description": self.description,
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioGrid":
        if not isinstance(payload, dict):
            raise ScenarioError(
                f"a scenario grid must be a JSON object, not {type(payload).__name__}"
            )
        known = {"name", "description", "scenarios", "base", "axes"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ScenarioError(f"unknown scenario grid field(s): {', '.join(unknown)}")
        name = str(payload.get("name", ""))
        members: List[ScenarioSpec] = []
        raw_scenarios = payload.get("scenarios") or []
        if not isinstance(raw_scenarios, (list, tuple)):
            raise ScenarioError(
                "'scenarios' must be a JSON array of scenario names or objects "
                f"(got {raw_scenarios!r})"
            )
        for entry in raw_scenarios:
            members.append(_resolve_member(entry))
        if "axes" in payload:
            members.extend(
                _expand_axes(
                    base=_resolve_member(payload.get("base", "baseline-2022")),
                    axes=payload["axes"],
                )
            )
        return cls(
            name=name,
            description=str(payload.get("description", "")),
            scenarios=tuple(members),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioGrid":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"scenario grid is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str) -> "ScenarioGrid":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ScenarioError(
                f"cannot read scenario grid file {path!r}: {error}"
            ) from error
        return cls.from_json(text)


def _resolve_member(entry: object) -> ScenarioSpec:
    """One grid member: a built-in name / scenario file path, or an inline spec."""
    if isinstance(entry, str):
        return load_scenario(entry)
    if isinstance(entry, dict):
        return ScenarioSpec.from_dict(entry)
    raise ScenarioError(
        f"grid scenarios must be names or scenario objects (got {entry!r})"
    )


def _expand_axes(base: ScenarioSpec, axes: object) -> List[ScenarioSpec]:
    """Cartesian product of scalar knob axes over ``base``, in axis order."""
    if not isinstance(axes, dict) or not axes:
        raise ScenarioError(
            "'axes' must be a non-empty JSON object mapping scenario knobs to "
            f"value arrays (got {axes!r})"
        )
    unknown = sorted(set(axes) - set(AXIS_FIELDS))
    if unknown:
        raise ScenarioError(
            f"unknown grid axis knob(s): {', '.join(unknown)} "
            f"(sweepable: {', '.join(AXIS_FIELDS)})"
        )
    keys = list(axes)
    for key in keys:
        if not isinstance(axes[key], (list, tuple)) or not axes[key]:
            raise ScenarioError(
                f"grid axis {key!r} must be a non-empty JSON array of values "
                f"(got {axes[key]!r})"
            )
    members: List[ScenarioSpec] = []
    base_payload = base.to_dict()
    for combo in itertools.product(*(axes[key] for key in keys)):
        payload = dict(base_payload)
        suffix = []
        for key, value in zip(keys, combo):
            payload[key] = value
            suffix.append(f"{key}={_axis_value_label(value)}")
        payload["name"] = base.name + "".join(f"+{part}" for part in suffix)
        payload["description"] = (
            f"{base.name} with " + ", ".join(suffix)
        )
        members.append(ScenarioSpec.from_dict(payload))
    return members


# ---------------------------------------------------------------------------
# Built-in grids
# ---------------------------------------------------------------------------

def _adoption_point(percent: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"compression-adoption-{percent:03d}",
        description=(
            f"{percent}% of servers deploy RFC 8879 brotli (deterministic "
            f"per-domain adoption); the scanning client offers brotli."
        ),
        compression_adoption=percent / 100,
        client_compression=(CertificateCompressionAlgorithm.BROTLI,),
    )


#: The paper's counterfactual asked properly: server-side RFC 8879 adoption
#: swept 0→100% in 10% steps, client offering brotli throughout.  Feed it to
#: ``repro compare --grid compression-adoption`` for the adoption-curve table.
COMPRESSION_ADOPTION_GRID = ScenarioGrid(
    name="compression-adoption",
    description=(
        "Server RFC 8879 adoption swept 0%→100% in 10% steps "
        "(client offers brotli at every point)."
    ),
    scenarios=tuple(_adoption_point(percent) for percent in range(0, 101, 10)),
)

#: Every built-in scenario as one shared-generation sweep — the 6-scenario
#: grid the benchmark harness amortises against 6 independent campaigns.
WHAT_IF_GRID = ScenarioGrid(
    name="what-ifs",
    description="The 2022 baseline plus every built-in what-if scenario.",
    scenarios=tuple(BUILTIN_SCENARIOS.values()),
)

BUILTIN_GRIDS: Dict[str, ScenarioGrid] = {
    grid.name: grid for grid in (COMPRESSION_ADOPTION_GRID, WHAT_IF_GRID)
}


def load_grid(spec: str) -> ScenarioGrid:
    """Resolve a grid from a built-in name, a JSON file, or a scenario list.

    Resolution order mirrors :func:`load_scenario`: built-in grid names win;
    anything that looks like (or is) a file on disk is parsed as a grid JSON
    file; a comma-separated list of scenario names/files becomes an ad-hoc
    explicit grid (named after the list itself).
    """
    grid = BUILTIN_GRIDS.get(spec)
    if grid is not None:
        return grid
    if os.path.exists(spec) or spec.endswith(".json"):
        return ScenarioGrid.from_file(spec)
    if "," in spec or spec in BUILTIN_SCENARIOS:
        names = [name.strip() for name in spec.split(",") if name.strip()]
        if not names:
            raise ScenarioError("scenario grid list is empty")
        return ScenarioGrid(
            name=spec,
            description="ad-hoc grid from a scenario list",
            scenarios=tuple(load_scenario(name) for name in names),
        )
    raise ScenarioError(
        f"unknown scenario grid {spec!r}: not a built-in grid "
        f"({', '.join(sorted(BUILTIN_GRIDS))}), not a grid JSON file, and not "
        f"a comma-separated scenario list"
    )
