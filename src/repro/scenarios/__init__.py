"""First-class what-if scenarios over the reproduction pipeline.

See :mod:`repro.scenarios.spec` for the contract and
:mod:`repro.scenarios.grid` for multi-scenario sweeps.  The comparison and
grid helpers are exposed lazily (PEP 562): they import the campaign
orchestrator, which itself imports the scanner stack that depends on this
package's spec module.
"""

from .builtin import (
    BASELINE,
    BASELINE_FINGERPRINT,
    BUILTIN_SCENARIOS,
    load_scenario,
)
from .spec import ScenarioError, ScenarioSpec

__all__ = [
    "BASELINE",
    "BASELINE_FINGERPRINT",
    "BUILTIN_GRIDS",
    "BUILTIN_SCENARIOS",
    "AdoptionCurve",
    "ScenarioComparison",
    "ScenarioError",
    "ScenarioGrid",
    "ScenarioOutcome",
    "ScenarioSpec",
    "compare_grid",
    "compare_scenarios",
    "load_grid",
    "load_scenario",
    "outcome_from_results",
]

_LAZY_COMPARE = {
    "compare_scenarios",
    "compare_grid",
    "AdoptionCurve",
    "ScenarioComparison",
    "ScenarioOutcome",
    "outcome_from_results",
}
_LAZY_GRID = {"ScenarioGrid", "BUILTIN_GRIDS", "load_grid"}


def __getattr__(name):
    if name in _LAZY_COMPARE:
        from . import compare

        return getattr(compare, name)
    if name in _LAZY_GRID:
        from . import grid

        return getattr(grid, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
