"""First-class what-if scenarios over the reproduction pipeline.

See :mod:`repro.scenarios.spec` for the contract.  The comparison helper is
exposed lazily (PEP 562): it imports the campaign orchestrator, which itself
imports the scanner stack that depends on this package's spec module.
"""

from .builtin import (
    BASELINE,
    BASELINE_FINGERPRINT,
    BUILTIN_SCENARIOS,
    load_scenario,
)
from .spec import ScenarioError, ScenarioSpec

__all__ = [
    "BASELINE",
    "BASELINE_FINGERPRINT",
    "BUILTIN_SCENARIOS",
    "ScenarioComparison",
    "ScenarioError",
    "ScenarioOutcome",
    "ScenarioSpec",
    "compare_scenarios",
    "load_scenario",
    "outcome_from_results",
]

_LAZY = {"compare_scenarios", "ScenarioComparison", "ScenarioOutcome", "outcome_from_results"}


def __getattr__(name):
    if name in _LAZY:
        from . import compare

        return getattr(compare, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
