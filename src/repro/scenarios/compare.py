"""Side-by-side scenario comparison: N what-if campaigns, one delta table.

:func:`compare_scenarios` runs each scenario through the streaming reduction
pipeline (bounded parent memory, any population size the machine can scan) and
distils the counterfactual headline numbers the paper argues about into a
:class:`ScenarioComparison`:

* the handshake-class funnel (1-RTT / RETRY / Multi-RTT / Amplification
  shares over reachable QUIC services),
* amplification factors (share of handshakes exceeding the 3x limit, their
  mean and maximum factor),
* the compression rescue share (QUIC chains that fit under the common
  deployment limit only once brotli-compressed).

The table is deterministic for a given ``(scenarios, size, seed)`` — worker
count and shard size never change the numbers (the streaming reduction
contract) — so it can be diffed, committed, or pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..quic.handshake import HandshakeClass
from .builtin import load_scenario
from .spec import ScenarioError, ScenarioSpec

#: Handshake classes shown in the funnel, in report order.
FUNNEL_CLASSES: Tuple[HandshakeClass, ...] = (
    HandshakeClass.ONE_RTT,
    HandshakeClass.RETRY,
    HandshakeClass.MULTI_RTT,
    HandshakeClass.AMPLIFICATION,
)


@dataclass(frozen=True)
class ScenarioOutcome:
    """The headline numbers of one scenario's campaign."""

    scenario: ScenarioSpec
    population_size: int
    analysis_initial_size: int
    quic_count: int
    reachable_count: int
    #: ``(class label, share of reachable)`` in :data:`FUNNEL_CLASSES` order.
    class_shares: Tuple[Tuple[str, float], ...]
    #: Share of reachable handshakes whose first RTT exceeds 3x the Initial.
    exceeding_share: float
    #: Mean amplification factor over the exceeding handshakes (0 when none).
    amplification_mean: float
    #: Largest observed amplification factor (0 when none exceed).
    amplification_max: float
    #: Share of QUIC chains that fit the common limit only once compressed.
    compression_rescue_share: float

    @property
    def one_rtt_share(self) -> float:
        return dict(self.class_shares).get(HandshakeClass.ONE_RTT.value, 0.0)


def outcome_from_results(scenario: ScenarioSpec, results) -> ScenarioOutcome:
    """Reduce one streamed campaign's results to its comparison outcome."""
    scan = results.scan
    reachable = scan.reachable_count
    class_shares = tuple(
        (
            handshake_class.value,
            (scan.class_counts.get(handshake_class, 0) / reachable) if reachable else 0.0,
        )
        for handshake_class in FUNNEL_CLASSES
    )
    exceeding = sum(scan.amp_factor_counts.values())
    amplification_mean = (
        sum(factor * count for factor, count in scan.amp_factor_counts.items()) / exceeding
        if exceeding
        else 0.0
    )
    amplification_max = max(scan.amp_factor_counts) if scan.amp_factor_counts else 0.0
    rescue_share = (
        (scan.synth_below_compressed - scan.synth_below_uncompressed) / scan.synth_count
        if scan.synth_count
        else 0.0
    )
    return ScenarioOutcome(
        scenario=scenario,
        population_size=results.population_size,
        analysis_initial_size=results.analysis_initial_size,
        quic_count=scan.quic_count,
        reachable_count=reachable,
        class_shares=class_shares,
        exceeding_share=(exceeding / reachable) if reachable else 0.0,
        amplification_mean=amplification_mean,
        amplification_max=amplification_max,
        compression_rescue_share=rescue_share,
    )


@dataclass(frozen=True)
class ScenarioComparison:
    """All outcomes of one comparison run, renderable as a delta table."""

    outcomes: Tuple[ScenarioOutcome, ...]
    population_size: int
    seed: int

    @property
    def baseline(self) -> ScenarioOutcome:
        """The first scenario: the reference column deltas are taken against."""
        return self.outcomes[0]

    def rows(self) -> List[Tuple[str, Tuple[float, ...], str]]:
        """``(metric label, per-scenario values, kind)`` rows of the table.

        ``kind`` is ``"count"``, ``"share"`` or ``"factor"`` and selects the
        cell formatting.
        """
        rows: List[Tuple[str, Tuple[float, ...], str]] = [
            ("QUIC services", tuple(float(o.quic_count) for o in self.outcomes), "count"),
            ("reachable", tuple(float(o.reachable_count) for o in self.outcomes), "count"),
        ]
        for position, handshake_class in enumerate(FUNNEL_CLASSES):
            rows.append(
                (
                    f"{handshake_class.value} share",
                    tuple(o.class_shares[position][1] for o in self.outcomes),
                    "share",
                )
            )
        rows.append(
            ("exceeds 3x limit", tuple(o.exceeding_share for o in self.outcomes), "share")
        )
        rows.append(
            ("mean amp factor", tuple(o.amplification_mean for o in self.outcomes), "factor")
        )
        rows.append(
            ("max amp factor", tuple(o.amplification_max for o in self.outcomes), "factor")
        )
        rows.append(
            (
                "compression rescue",
                tuple(o.compression_rescue_share for o in self.outcomes),
                "share",
            )
        )
        return rows

    @staticmethod
    def _cell(value: float, reference: Optional[float], kind: str) -> str:
        if kind == "count":
            text = f"{int(value)}"
            if reference is not None and value != reference:
                text += f" ({int(value - reference):+d})"
        elif kind == "share":
            text = f"{value:7.2%}"
            if reference is not None:
                delta = (value - reference) * 100.0
                text += f" ({delta:+.2f}pp)" if abs(delta) >= 0.005 else " (=)"
        else:  # factor
            text = f"{value:6.2f}x"
            if reference is not None:
                delta = value - reference
                text += f" ({delta:+.2f})" if abs(delta) >= 0.005 else " (=)"
        return text

    def render_text(self) -> str:
        """The side-by-side delta table (first scenario is the reference)."""
        names = [outcome.scenario.name for outcome in self.outcomes]
        initial_sizes = [outcome.analysis_initial_size for outcome in self.outcomes]
        header: List[List[str]] = [["metric", *names]]
        body: List[List[str]] = [
            ["client Initial", *(f"{size} B" for size in initial_sizes)]
        ]
        for label, values, kind in self.rows():
            reference = values[0]
            cells = [label]
            for position, value in enumerate(values):
                cells.append(self._cell(value, None if position == 0 else reference, kind))
            body.append(cells)

        widths = [
            max(len(row[column]) for row in header + body)
            for column in range(len(header[0]))
        ]
        lines = [
            f"Scenario comparison — {self.population_size} domains, seed {self.seed} "
            f"(deltas vs {names[0]})"
        ]
        for row in header:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            )
            lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)


def compare_scenarios(
    scenarios: Sequence[Union[ScenarioSpec, str]],
    size: int = 1200,
    seed: int = 2022,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    spoofed_targets_per_provider: int = 25,
) -> ScenarioComparison:
    """Run each scenario through the streaming pipeline and tabulate deltas.

    ``scenarios`` may mix :class:`ScenarioSpec` values with built-in names or
    JSON file paths (resolved via :func:`~repro.scenarios.builtin.load_scenario`).
    The first scenario is the reference column; by convention start with
    ``baseline-2022``.  All campaigns share ``size``/``seed``, so every delta
    is attributable to the scenario alone.
    """
    from ..scanners.orchestrator import MeasurementCampaign

    if not scenarios:
        raise ScenarioError("compare_scenarios needs at least one scenario")
    specs = [
        scenario if isinstance(scenario, ScenarioSpec) else load_scenario(scenario)
        for scenario in scenarios
    ]
    outcomes = []
    for spec in specs:
        campaign = MeasurementCampaign(
            population_config=spec.population_config(size=size, seed=seed),
            workers=workers,
            shard_size=shard_size,
            stream=True,
            spoofed_targets_per_provider=spoofed_targets_per_provider,
        )
        outcomes.append(outcome_from_results(spec, campaign.run()))
    return ScenarioComparison(outcomes=tuple(outcomes), population_size=size, seed=seed)
