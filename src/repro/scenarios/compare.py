"""Side-by-side scenario comparison: N what-if campaigns, one delta table.

:func:`compare_scenarios` runs each scenario through the streaming reduction
pipeline (bounded parent memory, any population size the machine can scan) and
distils the counterfactual headline numbers the paper argues about into a
:class:`ScenarioComparison`:

* the handshake-class funnel (1-RTT / RETRY / Multi-RTT / Amplification
  shares over reachable QUIC services),
* amplification factors (share of handshakes exceeding the 3x limit, their
  median, mean and maximum factor),
* the compression rescue share (QUIC chains that fit under the common
  deployment limit only once brotli-compressed).

All member campaigns share one generation pass: comparisons route through
:func:`~repro.scanners.orchestrator.run_grid_campaign` (cross-scenario shard
reuse), so an N-scenario table costs ``1×generation + N×scan`` and reports
progress per reduced shard instead of running N silent serial campaigns.
:func:`compare_grid` sweeps a whole :class:`~repro.scenarios.grid.ScenarioGrid`
the same way and renders the :class:`AdoptionCurve` — "median amplification vs
compression adoption fraction", the paper's counterfactual asked properly.

Every table is deterministic for a given ``(scenarios, size, seed)`` — worker
count and shard size never change the numbers (the streaming reduction
contract) — so it can be diffed, committed, or pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

from ..quic.handshake import HandshakeClass
from .builtin import load_scenario
from .spec import ScenarioError, ScenarioSpec

#: Handshake classes shown in the funnel, in report order.
FUNNEL_CLASSES: Tuple[HandshakeClass, ...] = (
    HandshakeClass.ONE_RTT,
    HandshakeClass.RETRY,
    HandshakeClass.MULTI_RTT,
    HandshakeClass.AMPLIFICATION,
)


@dataclass(frozen=True)
class ScenarioOutcome:
    """The headline numbers of one scenario's campaign."""

    scenario: ScenarioSpec
    population_size: int
    analysis_initial_size: int
    quic_count: int
    reachable_count: int
    #: ``(class label, share of reachable)`` in :data:`FUNNEL_CLASSES` order.
    class_shares: Tuple[Tuple[str, float], ...]
    #: Share of reachable handshakes whose first RTT exceeds 3x the Initial.
    exceeding_share: float
    #: Mean amplification factor over the exceeding handshakes (0 when none).
    amplification_mean: float
    #: Largest observed amplification factor (0 when none exceed).
    amplification_max: float
    #: Share of QUIC chains that fit the common limit only once compressed.
    compression_rescue_share: float
    #: Median amplification factor over the exceeding handshakes (lower
    #: weighted median; 0 when none exceed).  Appended with a default so
    #: positional construction predating the field stays valid.
    amplification_median: float = 0.0

    @property
    def one_rtt_share(self) -> float:
        return dict(self.class_shares).get(HandshakeClass.ONE_RTT.value, 0.0)


def _weighted_median(counts: Mapping[float, int]) -> float:
    """Lower weighted median of a ``value → count`` multiset (0 when empty)."""
    total = sum(counts.values())
    if not total:
        return 0.0
    midpoint = (total - 1) // 2
    seen = 0
    for value in sorted(counts):
        seen += counts[value]
        if seen > midpoint:
            return value
    return 0.0


def outcome_from_results(scenario: ScenarioSpec, results) -> ScenarioOutcome:
    """Reduce one streamed campaign's results to its comparison outcome."""
    scan = results.scan
    reachable = scan.reachable_count
    class_shares = tuple(
        (
            handshake_class.value,
            (scan.class_counts.get(handshake_class, 0) / reachable) if reachable else 0.0,
        )
        for handshake_class in FUNNEL_CLASSES
    )
    exceeding = sum(scan.amp_factor_counts.values())
    amplification_mean = (
        sum(factor * count for factor, count in scan.amp_factor_counts.items()) / exceeding
        if exceeding
        else 0.0
    )
    amplification_max = max(scan.amp_factor_counts) if scan.amp_factor_counts else 0.0
    rescue_share = (
        (scan.synth_below_compressed - scan.synth_below_uncompressed) / scan.synth_count
        if scan.synth_count
        else 0.0
    )
    return ScenarioOutcome(
        scenario=scenario,
        population_size=results.population_size,
        analysis_initial_size=results.analysis_initial_size,
        quic_count=scan.quic_count,
        reachable_count=reachable,
        class_shares=class_shares,
        exceeding_share=(exceeding / reachable) if reachable else 0.0,
        amplification_mean=amplification_mean,
        amplification_max=amplification_max,
        compression_rescue_share=rescue_share,
        amplification_median=_weighted_median(scan.amp_factor_counts),
    )


@dataclass(frozen=True)
class ScenarioComparison:
    """All outcomes of one comparison run, renderable as a delta table."""

    outcomes: Tuple[ScenarioOutcome, ...]
    population_size: int
    seed: int

    @property
    def baseline(self) -> ScenarioOutcome:
        """The first scenario: the reference column deltas are taken against."""
        return self.outcomes[0]

    def rows(self) -> List[Tuple[str, Tuple[float, ...], str]]:
        """``(metric label, per-scenario values, kind)`` rows of the table.

        ``kind`` is ``"count"``, ``"share"`` or ``"factor"`` and selects the
        cell formatting.
        """
        rows: List[Tuple[str, Tuple[float, ...], str]] = [
            ("QUIC services", tuple(float(o.quic_count) for o in self.outcomes), "count"),
            ("reachable", tuple(float(o.reachable_count) for o in self.outcomes), "count"),
        ]
        for position, handshake_class in enumerate(FUNNEL_CLASSES):
            rows.append(
                (
                    f"{handshake_class.value} share",
                    tuple(o.class_shares[position][1] for o in self.outcomes),
                    "share",
                )
            )
        rows.append(
            ("exceeds 3x limit", tuple(o.exceeding_share for o in self.outcomes), "share")
        )
        rows.append(
            ("mean amp factor", tuple(o.amplification_mean for o in self.outcomes), "factor")
        )
        rows.append(
            ("max amp factor", tuple(o.amplification_max for o in self.outcomes), "factor")
        )
        rows.append(
            (
                "compression rescue",
                tuple(o.compression_rescue_share for o in self.outcomes),
                "share",
            )
        )
        return rows

    @staticmethod
    def _cell(value: float, reference: Optional[float], kind: str) -> str:
        if kind == "count":
            text = f"{int(value)}"
            if reference is not None and value != reference:
                text += f" ({int(value - reference):+d})"
        elif kind == "share":
            text = f"{value:7.2%}"
            if reference is not None:
                delta = (value - reference) * 100.0
                text += f" ({delta:+.2f}pp)" if abs(delta) >= 0.005 else " (=)"
        else:  # factor
            text = f"{value:6.2f}x"
            if reference is not None:
                delta = value - reference
                text += f" ({delta:+.2f})" if abs(delta) >= 0.005 else " (=)"
        return text

    def render_text(self) -> str:
        """The side-by-side delta table (first scenario is the reference)."""
        names = [outcome.scenario.name for outcome in self.outcomes]
        initial_sizes = [outcome.analysis_initial_size for outcome in self.outcomes]
        header: List[List[str]] = [["metric", *names]]
        body: List[List[str]] = [
            ["client Initial", *(f"{size} B" for size in initial_sizes)]
        ]
        for label, values, kind in self.rows():
            reference = values[0]
            cells = [label]
            for position, value in enumerate(values):
                cells.append(self._cell(value, None if position == 0 else reference, kind))
            body.append(cells)

        widths = [
            max(len(row[column]) for row in header + body)
            for column in range(len(header[0]))
        ]
        lines = [
            f"Scenario comparison — {self.population_size} domains, seed {self.seed} "
            f"(deltas vs {names[0]})"
        ]
        for row in header:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            )
            lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)


def _grid_outcomes(
    grid,
    size: int,
    seed: int,
    workers: Optional[int],
    shard_size: Optional[int],
    spoofed_targets_per_provider: int,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    scan_backend: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    skeleton_cache_dir: Optional[str] = None,
) -> Tuple[ScenarioOutcome, ...]:
    """One shared-generation sweep over ``grid``, reduced to outcomes."""
    from ..scanners.orchestrator import run_grid_campaign
    from ..webpki.population import PopulationConfig

    results = run_grid_campaign(
        grid,
        config=PopulationConfig(size=size, seed=seed),
        workers=workers,
        shard_size=shard_size,
        spoofed_targets_per_provider=spoofed_targets_per_provider,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        scan_backend=scan_backend,
        progress=progress,
        skeleton_cache_dir=skeleton_cache_dir,
    )
    return tuple(
        outcome_from_results(scenario, results[scenario.name]) for scenario in grid
    )


def compare_scenarios(
    scenarios: Sequence[Union[ScenarioSpec, str]],
    size: int = 1200,
    seed: int = 2022,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    spoofed_targets_per_provider: int = 25,
    progress: Optional[Callable[[str], None]] = None,
    skeleton_cache_dir: Optional[str] = None,
) -> ScenarioComparison:
    """Run the scenarios as one shared-generation sweep and tabulate deltas.

    ``scenarios`` may mix :class:`ScenarioSpec` values with built-in names or
    JSON file paths (resolved via :func:`~repro.scenarios.builtin.load_scenario`).
    The first scenario is the reference column; by convention start with
    ``baseline-2022``.  All campaigns share ``size``/``seed``, so every delta
    is attributable to the scenario alone.

    The member campaigns route through the shared grid dispatch path
    (cross-scenario shard reuse): one generation pass, N scans, ``progress``
    lines as shards reduce — and numbers identical to N independent runs.
    """
    from .grid import ScenarioGrid

    if not scenarios:
        raise ScenarioError("compare_scenarios needs at least one scenario")
    specs = [
        scenario if isinstance(scenario, ScenarioSpec) else load_scenario(scenario)
        for scenario in scenarios
    ]
    grid = ScenarioGrid(
        name="comparison",
        description="ad-hoc comparison grid",
        scenarios=tuple(specs),
    )
    outcomes = _grid_outcomes(
        grid, size, seed, workers, shard_size, spoofed_targets_per_provider,
        progress=progress, skeleton_cache_dir=skeleton_cache_dir,
    )
    return ScenarioComparison(outcomes=outcomes, population_size=size, seed=seed)


@dataclass(frozen=True)
class AdoptionCurve:
    """A grid sweep rendered as an adoption-curve table.

    One row per grid member, in grid order.  Members with the
    :attr:`~repro.scenarios.spec.ScenarioSpec.compression_adoption` knob set
    are labelled by their adoption fraction — the canonical
    ``compression-adoption`` grid renders as "median amplification vs
    compression adoption fraction" — and any other member is labelled by its
    scenario name, so mixed grids (axis products, what-if bundles) tabulate
    the same way.  Deterministic for a given ``(grid, size, seed)``.
    """

    grid_name: str
    population_size: int
    seed: int
    outcomes: Tuple[ScenarioOutcome, ...]

    @staticmethod
    def _label(outcome: ScenarioOutcome) -> str:
        adoption = outcome.scenario.compression_adoption
        if adoption is not None:
            return f"{adoption:.0%}"
        return outcome.scenario.name

    def rows(self) -> List[Tuple[str, ScenarioOutcome]]:
        return [(self._label(outcome), outcome) for outcome in self.outcomes]

    def render_text(self) -> str:
        header = [
            "adoption",
            "exceeds 3x",
            "median amp",
            "mean amp",
            "max amp",
            "1-RTT share",
            "compression rescue",
        ]
        body: List[List[str]] = []
        for label, outcome in self.rows():
            body.append(
                [
                    label,
                    f"{outcome.exceeding_share:.2%}",
                    f"{outcome.amplification_median:.2f}x",
                    f"{outcome.amplification_mean:.2f}x",
                    f"{outcome.amplification_max:.2f}x",
                    f"{outcome.one_rtt_share:.2%}",
                    f"{outcome.compression_rescue_share:.2%}",
                ]
            )
        widths = [
            max(len(row[column]) for row in [header] + body)
            for column in range(len(header))
        ]
        lines = [
            f"Adoption curve — {self.grid_name}: median amplification vs "
            f"compression adoption fraction ({self.population_size} domains, "
            f"seed {self.seed})"
        ]
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(header, widths))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)


def compare_grid(
    grid,
    size: int = 1200,
    seed: int = 2022,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    spoofed_targets_per_provider: int = 25,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    scan_backend: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    skeleton_cache_dir: Optional[str] = None,
) -> AdoptionCurve:
    """Sweep a scenario grid in one shared-generation campaign.

    ``grid`` is a :class:`~repro.scenarios.grid.ScenarioGrid` or anything
    :func:`~repro.scenarios.grid.load_grid` resolves (a built-in grid name, a
    grid JSON file, a comma-separated scenario list).  Returns the
    :class:`AdoptionCurve` over the per-scenario results; pass
    ``checkpoint_dir``/``resume`` to make long sweeps durable at
    ``(shard, scenario)`` granularity.
    """
    from .grid import ScenarioGrid, load_grid

    if not isinstance(grid, ScenarioGrid):
        grid = load_grid(str(grid))
    outcomes = _grid_outcomes(
        grid, size, seed, workers, shard_size, spoofed_targets_per_provider,
        checkpoint_dir=checkpoint_dir, resume=resume, scan_backend=scan_backend,
        progress=progress, skeleton_cache_dir=skeleton_cache_dir,
    )
    return AdoptionCurve(
        grid_name=grid.name,
        population_size=size,
        seed=seed,
        outcomes=outcomes,
    )
